//! # nncell — Fast Nearest Neighbor Search in High-Dimensional Space
//!
//! A from-scratch Rust implementation of the *NN-cell* approach of
//! Berchtold, Ertl, Keim, Kriegel and Seidl (ICDE 1998): exact
//! nearest-neighbor search by **precomputing the solution space**.
//!
//! For every database point the first-order Voronoi cell (its *NN-cell*) is
//! approximated by a minimum bounding hyper-rectangle obtained from `2·d`
//! linear programs; the rectangles are stored in an X-tree, and a
//! nearest-neighbor query becomes a cheap *point query* on that index.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`geom`] — points, MBRs, halfspaces, metrics ([`nncell_geom`])
//! * [`lp`] — simplex & Seidel LP solvers, Voronoi-cell extents ([`nncell_lp`])
//! * [`index`] — R\*-tree and X-tree on a simulated page store ([`nncell_index`])
//! * [`data`] — workload generators ([`nncell_data`])
//! * [`core`] — the NN-cell index itself ([`nncell_core`])
//!
//! ## Quickstart
//!
//! ```
//! use nncell::core::{NnCellIndex, BuildConfig, Query, QueryError, Strategy};
//! use nncell::data::{UniformGenerator, Generator};
//!
//! let points = UniformGenerator::new(6).generate(500, 42);
//! let index = NnCellIndex::build(points.clone(), BuildConfig::builder().strategy(Strategy::Sphere).build()).unwrap();
//!
//! // The query engine is the query API: typed requests in, responses with
//! // per-query statistics out.
//! let engine = index.engine();
//! let hit = engine.execute(&Query::nn(vec![0.3; 6])).unwrap();
//! // The NN-cell result is exact: it matches a linear scan.
//! let scan = nncell::core::linear_scan_nn(&points, &[0.3; 6]).unwrap();
//! assert_eq!(hit.best, scan);
//! assert!(hit.stats.candidates >= 1);
//!
//! // Batches fan out across a thread pool, bit-identical to sequential.
//! let queries = vec![Query::nn(vec![0.7; 6]), Query::knn(vec![0.2; 6], 10)];
//! let responses = engine.batch(&queries);
//! assert_eq!(responses[1].as_ref().unwrap().len(), 10);
//!
//! // Malformed input is a typed error, not a silent `None`.
//! assert_eq!(
//!     engine.execute(&Query::nn(vec![0.5])).unwrap_err(),
//!     QueryError::DimMismatch { expected: 6, got: 1 }
//! );
//! ```
//!
//! Everything configurable hangs off [`core::BuildConfig`]: the
//! constraint-selection [`core::Strategy`], the LP backend, cell
//! decomposition, threads for the build phase, and insert-time refinement.
//! Built indexes persist with `index.save(path)` /
//! [`core::NnCellIndex::load`] (no LP reruns on load), support dynamic
//! [`core::NnCellIndex::insert`] / [`core::NnCellIndex::remove`], and work
//! with any positive-diagonal weighted Euclidean metric
//! ([`geom::WeightedEuclidean`]).
//!
//! Dynamic indexes can also run **crash-consistently**:
//! [`core::NnCellIndex::open_durable`] journals every update to a
//! write-ahead log (fsynced before acknowledgement) and rotates snapshots
//! atomically, so acknowledged updates survive `kill -9` — see
//! `DESIGN.md` §9 and `tests/crash_recovery.rs`.
//!
//! The stack is observable end to end:
//! [`core::NnCellIndex::attach_metrics`] wires query latency histograms,
//! LP/tree/WAL counters, a build-phase profiler, and a slow-query ring
//! into a lock-light [`core::Registry`] whose snapshots render Prometheus
//! text or JSON — opt-in, allocation-free on the hot path (`DESIGN.md`
//! §11).
//!
//! Runnable walkthroughs live in `examples/` (`quickstart`,
//! `image_retrieval`, `molecular_screening`, `dynamic_updates`,
//! `voronoi_2d`), and the `nncell` CLI (`crates/cli`) wraps generate /
//! build / insert / remove / recover / query / info / stats / bench flows
//! for the shell.

pub use nncell_core as core;
pub use nncell_data as data;
pub use nncell_geom as geom;
pub use nncell_index as index;
pub use nncell_lp as lp;

pub use nncell_core::error;
pub use nncell_core::Error;

/// The names almost every nncell program needs, importable in one line:
///
/// ```
/// use nncell::prelude::*;
///
/// let points = vec![
///     geom::Point::new(vec![0.2, 0.3]),
///     geom::Point::new(vec![0.7, 0.8]),
/// ];
/// # // (the prelude also exports `Point` directly)
/// let index = NnCellIndex::build(points, BuildConfig::builder().strategy(Strategy::Sphere).build()).unwrap();
/// let hit = index.engine().execute(&Query::nn([0.25, 0.25])).unwrap();
/// assert_eq!(hit.best.id, 0);
/// ```
pub mod prelude {
    pub use crate::geom;
    pub use nncell_core::{
        BuildConfig, ConstraintPool, Error, NnCellIndex, Query, QueryEngine, QueryResponse,
        Registry, ShardedIndex, Strategy,
    };
    pub use nncell_geom::Point;
}
