//! Tiny dependency-free flag parser for the CLI.
//!
//! Grammar: `nncell <command> [--flag value]...`. Flags are long-form only;
//! unknown flags are hard errors so typos never silently fall back to
//! defaults. A flag followed by another flag (or by the end of the line) is
//! a bare boolean switch, e.g. `--repair`.

use std::collections::BTreeMap;

/// A parsed command line: the subcommand and its `--flag value` pairs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Parsed {
    /// The subcommand (first positional argument).
    pub command: String,
    flags: BTreeMap<String, String>,
}

/// Parse errors with a user-facing message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Parsed {
    /// Parses `args` (without the program name).
    pub fn parse<I, S>(args: I) -> Result<Parsed, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut it = args.into_iter().map(Into::into).peekable();
        let command = it
            .next()
            .ok_or_else(|| ArgError("missing command".into()))?;
        if command.starts_with("--") {
            return Err(ArgError(format!(
                "expected a command before flags, got {command}"
            )));
        }
        let mut flags = BTreeMap::new();
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(ArgError(format!("unexpected positional argument {arg}")));
            };
            if name.is_empty() {
                return Err(ArgError("empty flag name".into()));
            }
            // A value never starts with `--`; without one the flag is a
            // bare boolean switch (stored as the empty string).
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().unwrap_or_default(),
                _ => String::new(),
            };
            if flags.insert(name.to_string(), value).is_some() {
                return Err(ArgError(format!("flag --{name} given twice")));
            }
        }
        Ok(Parsed { command, flags })
    }

    /// Required string flag.
    pub fn require(&self, name: &str) -> Result<&str, ArgError> {
        self.flags
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| ArgError(format!("missing required flag --{name}")))
    }

    /// Optional string flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// Optional parsed flag with default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("flag --{name}: cannot parse {v:?}"))),
        }
    }

    /// Ensures only the listed flags were provided.
    pub fn allow_only(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for k in self.flags.keys() {
            if !allowed.contains(&k.as_str()) {
                return Err(ArgError(format!(
                    "unknown flag --{k} (allowed: {})",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_and_flags() {
        let p = Parsed::parse(["build", "--n", "100", "--dim", "8"]).unwrap();
        assert_eq!(p.command, "build");
        assert_eq!(p.require("n").unwrap(), "100");
        assert_eq!(p.get_or("dim", 0usize).unwrap(), 8);
        assert_eq!(p.get_or("seed", 7u64).unwrap(), 7);
        assert!(p.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Parsed::parse(Vec::<String>::new()).is_err());
        assert!(Parsed::parse(["--n", "5"]).is_err(), "flag before command");
        assert!(Parsed::parse(["x", "stray"]).is_err(), "positional");
        assert!(Parsed::parse(["x", "--n", "1", "--n", "2"]).is_err(), "dup");
    }

    #[test]
    fn bare_flags_are_boolean_switches() {
        let p = Parsed::parse(["verify", "--repair", "--index", "f.idx"]).unwrap();
        assert_eq!(p.get("repair"), Some(""));
        assert_eq!(p.require("index").unwrap(), "f.idx");
        let p = Parsed::parse(["verify", "--repair"]).unwrap();
        assert!(p.get("repair").is_some());
    }

    #[test]
    fn unknown_flags_detected() {
        let p = Parsed::parse(["q", "--good", "1", "--bad", "2"]).unwrap();
        assert!(p.allow_only(&["good"]).is_err());
        assert!(p.allow_only(&["good", "bad"]).is_ok());
    }

    #[test]
    fn parse_errors_name_the_flag() {
        let p = Parsed::parse(["q", "--n", "xyz"]).unwrap();
        let err = p.get_or("n", 1usize).unwrap_err();
        assert!(err.0.contains("--n"));
    }
}
