//! `nncell` — command-line front end for the NN-cell index.
//!
//! ```text
//! nncell generate --kind uniform --n 2000 --dim 8 --seed 42 --out pts.csv
//! nncell build    --points pts.csv --strategy sphere --out idx.nncell
//! nncell build    --points pts.csv --strategy sphere --wal idx.db
//! nncell query    --index idx.nncell --point 0.1,0.2,... [--k 5]
//! nncell query    --wal idx.db --point 0.1,0.2,...
//! nncell insert   --wal idx.db --point 0.1,0.2,...
//! nncell remove   --wal idx.db --id 17
//! nncell recover  --wal idx.db [--checkpoint]
//! nncell flush    --wal idx.db
//! nncell info     --index idx.nncell
//! nncell verify   --index idx.nncell [--repair]
//! nncell bench    --index idx.nncell --queries 200 --seed 7
//! nncell stats    --index idx.nncell [--json | --prom | --slow]
//! nncell stats    --server 127.0.0.1:8321
//! nncell serve    (--index idx.nncell | --wal idx.db) [--addr HOST:PORT]
//!                 [--threads 4] [--queue-depth 64] [--deadline-ms 2000]
//! ```
//!
//! `--wal DIR` commands operate on a crash-consistent directory: every
//! insert/remove is journaled and fsynced before it is acknowledged, and
//! `recover` replays the journal after a crash (see DESIGN.md §Durability).

mod args;
mod csv;

use args::Parsed;
use nncell_core::wal::WalTail;
use nncell_core::{
    BuildConfig, ConstraintPool, DurableIndex, FoldConfig, InputPolicy, NnCellIndex, Query,
    Registry, ShardedIndex, Strategy,
};
use nncell_geom::Point;
use nncell_data::{
    ClusteredGenerator, FourierGenerator, Generator, GridGenerator, SparseGenerator,
    UniformGenerator,
};
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "help" || argv[0] == "--help" {
        print_help();
        return ExitCode::SUCCESS;
    }
    match run(argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: Vec<String>) -> Result<(), String> {
    let p = Parsed::parse(argv).map_err(|e| e.to_string())?;
    match p.command.as_str() {
        "generate" => cmd_generate(&p),
        "build" => cmd_build(&p),
        "query" => cmd_query(&p),
        "insert" => cmd_insert(&p),
        "remove" => cmd_remove(&p),
        "recover" => cmd_recover(&p),
        "flush" => cmd_flush(&p),
        "info" => cmd_info(&p),
        "verify" => cmd_verify(&p),
        "bench" => cmd_bench(&p),
        "stats" => cmd_stats(&p),
        "serve" => cmd_serve(&p),
        "trace" => cmd_trace(&p),
        other => Err(format!("unknown command {other:?}; try `nncell help`")),
    }
}

fn cmd_generate(p: &Parsed) -> Result<(), String> {
    p.allow_only(&["kind", "n", "dim", "seed", "out", "clusters", "sigma"])
        .map_err(|e| e.to_string())?;
    let kind = p.get("kind").unwrap_or("uniform");
    let n: usize = p.get_or("n", 1_000).map_err(|e| e.to_string())?;
    let dim: usize = p.get_or("dim", 8).map_err(|e| e.to_string())?;
    let seed: u64 = p.get_or("seed", 42).map_err(|e| e.to_string())?;
    let out = p.require("out").map_err(|e| e.to_string())?;
    let points = match kind {
        "uniform" => UniformGenerator::new(dim).generate(n, seed),
        "grid" => GridGenerator::new(dim).generate(n, seed),
        "sparse" => SparseGenerator::new(dim).generate(n, seed),
        "clustered" => {
            let clusters: usize = p.get_or("clusters", 8).map_err(|e| e.to_string())?;
            let sigma: f64 = p.get_or("sigma", 0.05).map_err(|e| e.to_string())?;
            ClusteredGenerator::new(dim, clusters, sigma).generate(n, seed)
        }
        "fourier" => FourierGenerator::new(dim).generate(n, seed),
        other => return Err(format!("unknown --kind {other:?}")),
    };
    csv::write_points(out, &points).map_err(|e| e.to_string())?;
    println!("wrote {n} {kind} points (d={dim}) to {out}");
    Ok(())
}

fn parse_strategy(s: &str) -> Result<Strategy, String> {
    Ok(match s {
        "correct" => Strategy::Correct,
        "correct-pruned" | "pruned" => Strategy::CorrectPruned,
        "point" => Strategy::Point,
        "sphere" => Strategy::Sphere,
        "nn-direction" | "nndirection" => Strategy::NnDirection,
        other => return Err(format!("unknown --strategy {other:?}")),
    })
}

/// `--pool exhaustive | approx | approx:K` (the bare `approx` uses the
/// dimension-derived [`ConstraintPool::recommended_k`]).
fn parse_pool(s: &str, dim: usize) -> Result<ConstraintPool, String> {
    if s == "exhaustive" {
        return Ok(ConstraintPool::Exhaustive);
    }
    if s == "approx" {
        return Ok(ConstraintPool::ApproxKnn {
            k: ConstraintPool::recommended_k(dim),
        });
    }
    if let Some(k) = s.strip_prefix("approx:") {
        let k: usize = k.parse().map_err(|_| format!("bad --pool {s:?}"))?;
        return Ok(ConstraintPool::ApproxKnn { k });
    }
    Err(format!(
        "unknown --pool {s:?} (expected exhaustive, approx, or approx:K)"
    ))
}

fn cmd_build(p: &Parsed) -> Result<(), String> {
    p.allow_only(&[
        "points",
        "strategy",
        "pool",
        "decompose",
        "seed",
        "threads",
        "out",
        "wal",
        "shards",
        "skip-invalid",
        "lp-max-iterations",
    ])
    .map_err(|e| e.to_string())?;
    let points = csv::read_points(p.require("points").map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    let strategy = parse_strategy(p.get("strategy").unwrap_or("correct-pruned"))?;
    let dim = points.first().map_or(2, Point::dim);
    let mut b = BuildConfig::builder()
        .strategy(strategy)
        .seed(p.get_or("seed", 0).map_err(|e| e.to_string())?)
        .threads(p.get_or("threads", 1).map_err(|e| e.to_string())?);
    if let Some(pool) = p.get("pool") {
        b = b.constraint_pool(parse_pool(pool, dim)?);
    }
    let decompose: usize = p.get_or("decompose", 1).map_err(|e| e.to_string())?;
    if decompose > 1 {
        b = b.decompose_pieces(decompose);
    }
    if p.get("skip-invalid").is_some() {
        b = b.input_policy(InputPolicy::Skip);
    }
    if let Some(iters) = p.get("lp-max-iterations") {
        let n: usize = iters
            .parse()
            .map_err(|_| format!("bad --lp-max-iterations {iters:?}"))?;
        b = b.lp_max_iterations(n);
    }
    let cfg = b.build();
    let out = p.get("out");
    let wal = p.get("wal");
    if out.is_none() && wal.is_none() {
        return Err("build needs --out FILE (plain snapshot), --wal DIR (durable directory), or both".into());
    }
    let shards: usize = p.get_or("shards", 1).map_err(|e| e.to_string())?;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    if shards > 1 {
        return cmd_build_sharded(points, shards, cfg, out, wal);
    }
    let t = Instant::now();
    let index = NnCellIndex::build(points, cfg).map_err(|e| e.to_string())?;
    let bs = index.build_stats().clone();
    let (n_cells, n_pieces) = (index.len(), index.total_pieces());
    let mut sinks = Vec::new();
    if let Some(out) = out {
        index.save(out).map_err(|e| e.to_string())?;
        sinks.push(format!("saved to {out}"));
    }
    if let Some(dir) = wal {
        DurableIndex::create(dir, index).map_err(|e| e.to_string())?;
        sinks.push(format!("durable directory initialized at {dir}"));
    }
    println!(
        "built {n_cells} cells ({n_pieces} pieces) in {:.2}s — {} LPs over {} constraints — {}",
        t.elapsed().as_secs_f64(),
        bs.lp.lp_calls,
        bs.lp.constraints,
        sinks.join(", ")
    );
    if bs.skipped_points > 0 {
        println!(
            "skipped {} invalid input point(s) (--skip-invalid)",
            bs.skipped_points
        );
    }
    if bs.lp.fallback_lps > 0 || bs.lp.clamped_extents > 0 {
        println!(
            "LP degradation: {} fallback solve(s), {} extent(s) clamped to the data space \
             (results stay exact; approximations widen)",
            bs.lp.fallback_lps, bs.lp.clamped_extents
        );
    }
    print_build_profile(&bs.profile);
    Ok(())
}

/// `build --shards N`: partition round-robin, build every shard in its own
/// thread, and land in a sharded directory (plain via `--out`, durable via
/// `--wal` — both work; the save happens before the durable conversion
/// consumes the in-memory masters).
fn cmd_build_sharded(
    points: Vec<nncell_geom::Point>,
    shards: usize,
    cfg: BuildConfig,
    out: Option<&str>,
    wal: Option<&str>,
) -> Result<(), String> {
    let t = Instant::now();
    let index = ShardedIndex::build(points, shards, cfg).map_err(|e| e.to_string())?;
    let bs = index.build_stats();
    let n_cells = index.len();
    let n_pieces: usize = (0..shards).map(|i| index.shard(i).total_pieces()).sum();
    let mut sinks = Vec::new();
    if let Some(dir) = out {
        index.save(dir).map_err(|e| e.to_string())?;
        sinks.push(format!("saved sharded directory to {dir}"));
    }
    if let Some(dir) = wal {
        index.into_durable(dir).map_err(|e| e.to_string())?;
        sinks.push(format!("durable sharded directory initialized at {dir}"));
    }
    println!(
        "built {n_cells} cells ({n_pieces} pieces) across {shards} shard(s) in {:.2}s — \
         {} LPs over {} constraints — {}",
        t.elapsed().as_secs_f64(),
        bs.lp.lp_calls,
        bs.lp.constraints,
        sinks.join(", ")
    );
    if bs.skipped_points > 0 {
        println!(
            "skipped {} invalid input point(s) (--skip-invalid)",
            bs.skipped_points
        );
    }
    print_build_profile(&bs.profile);
    Ok(())
}

/// Opens a sharded layout when the path carries a sharded manifest (plain
/// or durable), regardless of which flag it arrived under.
fn open_sharded_at(path: &str, durable_hint: bool) -> Result<Option<ShardedIndex>, String> {
    if ShardedIndex::manifest_shards(path).is_none() {
        return Ok(None);
    }
    let idx = if durable_hint {
        ShardedIndex::open_durable_existing(path).map_err(|e| e.to_string())?
    } else {
        ShardedIndex::load(path).map_err(|e| e.to_string())?
    };
    Ok(Some(idx))
}

fn cmd_query(p: &Parsed) -> Result<(), String> {
    p.allow_only(&["index", "wal", "point", "k", "radius"])
        .map_err(|e| e.to_string())?;
    let q = csv::parse_point(p.require("point").map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    let k: usize = p.get_or("k", 1).map_err(|e| e.to_string())?;
    let query = match p.get("radius") {
        Some(r) => {
            if p.get("k").is_some() {
                return Err("query takes --k or --radius, not both".into());
            }
            let r: f64 = r.parse().map_err(|_| format!("bad --radius {r:?}"))?;
            Query::radius(q, r)
        }
        None => Query::knn(q, k),
    };
    // All four surfaces (plain file, durable dir, and the sharded flavor
    // of each — auto-detected from the on-disk manifest) route through the
    // same engine semantics, so a malformed query produces the same typed
    // QueryError everywhere.
    let resp = match (p.get("index"), p.get("wal")) {
        (Some(file), None) => match open_sharded_at(file, false)? {
            Some(sharded) => sharded.query(&query).map_err(|e| e.to_string())?,
            None => NnCellIndex::load(file)
                .map_err(|e| e.to_string())?
                .engine()
                .execute(&query)
                .map_err(|e| e.to_string())?,
        },
        (None, Some(dir)) => match open_sharded_at(dir, true)? {
            Some(sharded) => sharded.query(&query).map_err(|e| e.to_string())?,
            None => DurableIndex::open(dir)
                .map_err(|e| e.to_string())?
                .index()
                .engine()
                .execute(&query)
                .map_err(|e| e.to_string())?,
        },
        _ => return Err("query needs exactly one of --index FILE or --wal DIR".into()),
    };
    if k == 1 && p.get("radius").is_none() {
        println!(
            "nearest neighbor: #{} at distance {:.6}",
            resp.best.id, resp.best.dist
        );
    } else {
        for (rank, r) in resp.iter().enumerate() {
            println!("{:>3}. #{} at distance {:.6}", rank + 1, r.id, r.dist);
        }
    }
    let st = resp.stats;
    println!(
        "stats: {} candidate(s), {} page(s){}",
        st.candidates,
        st.pages,
        if st.fallback {
            " — answered by exact scan fallback"
        } else {
            ""
        }
    );
    Ok(())
}

fn cmd_insert(p: &Parsed) -> Result<(), String> {
    p.allow_only(&["wal", "point", "checkpoint"])
        .map_err(|e| e.to_string())?;
    let dir = p.require("wal").map_err(|e| e.to_string())?;
    let coords = csv::parse_point(p.require("point").map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    if let Some(sharded) = open_sharded_at(dir, true)? {
        let id = sharded.insert(Point::new(coords)).map_err(|e| e.to_string())?;
        println!(
            "inserted point #{id} into shard {} — journaled and fsynced \
             ({} record(s) across {} shard journal(s))",
            id % sharded.num_shards(),
            sharded.wal_records(),
            sharded.num_shards()
        );
        return maybe_checkpoint_sharded(p, sharded);
    }
    let mut index = DurableIndex::open(dir).map_err(|e| e.to_string())?;
    let id = index.insert(Point::new(coords)).map_err(|e| e.to_string())?;
    println!(
        "inserted point #{id} — journaled and fsynced ({} record(s) since last checkpoint)",
        index.wal_records()
    );
    maybe_checkpoint(p, index)
}

fn cmd_remove(p: &Parsed) -> Result<(), String> {
    p.allow_only(&["wal", "id", "checkpoint"])
        .map_err(|e| e.to_string())?;
    let dir = p.require("wal").map_err(|e| e.to_string())?;
    let id: usize = p
        .require("id")
        .map_err(|e| e.to_string())?
        .parse()
        .map_err(|_| "bad --id (expected a point id)".to_string())?;
    if let Some(sharded) = open_sharded_at(dir, true)? {
        if sharded.remove(id).map_err(|e| e.to_string())? {
            println!(
                "removed point #{id} from shard {} — journaled and fsynced \
                 ({} record(s) across {} shard journal(s))",
                id % sharded.num_shards(),
                sharded.wal_records(),
                sharded.num_shards()
            );
        } else {
            println!("point #{id} is not live; nothing journaled");
        }
        return maybe_checkpoint_sharded(p, sharded);
    }
    let mut index = DurableIndex::open(dir).map_err(|e| e.to_string())?;
    if index.remove(id).map_err(|e| e.to_string())? {
        println!(
            "removed point #{id} — journaled and fsynced ({} record(s) since last checkpoint)",
            index.wal_records()
        );
    } else {
        println!("point #{id} is not live; nothing journaled");
    }
    maybe_checkpoint(p, index)
}

fn print_recovery(rec: &nncell_core::RecoveryReport, generation: u64) {
    println!("generation     : {}", rec.generation);
    println!("records replayed: {}", rec.replayed);
    if rec.skipped > 0 {
        println!("records skipped : {}", rec.skipped);
    }
    match rec.wal_tail {
        WalTail::Clean => println!("journal tail   : clean"),
        WalTail::Truncated { offset } => println!(
            "journal tail   : torn record at byte {offset} (unacknowledged write dropped)"
        ),
        WalTail::Corrupt { offset } => println!(
            "journal tail   : corrupt record at byte {offset} (damaged suffix dropped)"
        ),
    }
    if rec.rotated {
        println!("rotated        : damaged journal retired; now at generation {generation}");
    }
}

fn cmd_recover(p: &Parsed) -> Result<(), String> {
    p.allow_only(&["wal", "checkpoint"])
        .map_err(|e| e.to_string())?;
    let dir = p.require("wal").map_err(|e| e.to_string())?;
    if let Some(sharded) = open_sharded_at(dir, true)? {
        for (i, rec) in sharded.recovery().iter().enumerate() {
            println!("--- shard {i} ---");
            print_recovery(rec, rec.generation + u64::from(rec.rotated));
        }
        println!("live points    : {} across {} shard(s)", sharded.len(), sharded.num_shards());
        return maybe_checkpoint_sharded(p, sharded);
    }
    let index = DurableIndex::open(dir).map_err(|e| e.to_string())?;
    let rec = index.recovery().clone();
    print_recovery(&rec, index.generation());
    println!("live points    : {}", index.len());
    maybe_checkpoint(p, index)
}

/// `flush --wal DIR`: land every journaled record in the snapshot and
/// reset the journals. Opening the directory already replays the WAL
/// into the in-memory masters (the offline equivalent of folding the
/// memtable tail); `flush` makes that state the new on-disk baseline so
/// the next open carries zero replay debt.
fn cmd_flush(p: &Parsed) -> Result<(), String> {
    p.allow_only(&["wal"]).map_err(|e| e.to_string())?;
    let dir = p.require("wal").map_err(|e| e.to_string())?;
    if let Some(sharded) = open_sharded_at(dir, true)? {
        let replayed: usize = sharded.recovery().iter().map(|r| r.replayed).sum();
        sharded.checkpoint().map_err(|e| e.to_string())?;
        println!(
            "flushed {replayed} journaled record(s) into the snapshot across {} shard(s); \
             journals reset",
            sharded.num_shards()
        );
        return Ok(());
    }
    let mut index = DurableIndex::open(dir).map_err(|e| e.to_string())?;
    let replayed = index.recovery().replayed;
    index.checkpoint().map_err(|e| e.to_string())?;
    println!(
        "flushed {replayed} journaled record(s) into the snapshot (generation {}); journal reset",
        index.generation()
    );
    Ok(())
}

/// Shared `--checkpoint` tail for sharded durable directories.
fn maybe_checkpoint_sharded(p: &Parsed, index: ShardedIndex) -> Result<(), String> {
    if p.get("checkpoint").is_some() {
        index.checkpoint().map_err(|e| e.to_string())?;
        println!("checkpointed all {} shard(s) (journals reset)", index.num_shards());
    }
    Ok(())
}

/// Shared `--checkpoint` tail for the durable subcommands.
fn maybe_checkpoint(p: &Parsed, mut index: DurableIndex) -> Result<(), String> {
    if p.get("checkpoint").is_some() {
        index.checkpoint().map_err(|e| e.to_string())?;
        println!(
            "checkpointed to generation {} (journal reset)",
            index.generation()
        );
    }
    Ok(())
}

fn cmd_info(p: &Parsed) -> Result<(), String> {
    p.allow_only(&["index"]).map_err(|e| e.to_string())?;
    let index = NnCellIndex::load(p.require("index").map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    let cells: Vec<_> = (0..index.points().len())
        .filter_map(|i| index.cell(i).cloned())
        .collect();
    println!("dimensionality : {}", index.dim());
    println!("live points    : {}", index.len());
    println!("cell pieces    : {}", index.total_pieces());
    println!("strategy       : {}", index.config().strategy.name());
    println!("decomposition  : {:?}", index.config().decompose_pieces);
    println!("cell-tree pages: {}", index.cell_tree_pages());
    println!(
        "avg overlap    : {:.3}",
        nncell_core::average_overlap(&cells)
    );
    let report = index.verify_integrity();
    if report.is_ok() {
        println!("integrity      : ok ({} cells checked)", report.checked_cells);
    } else {
        println!(
            "integrity      : {} of {} cells BAD — run `nncell verify --repair`",
            report.bad_cells.len(),
            report.checked_cells
        );
    }
    Ok(())
}

fn cmd_verify(p: &Parsed) -> Result<(), String> {
    p.allow_only(&["index", "repair", "out"])
        .map_err(|e| e.to_string())?;
    let path = p.require("index").map_err(|e| e.to_string())?;
    let mut index = NnCellIndex::load(path).map_err(|e| e.to_string())?;
    let report = index.verify_integrity();
    if report.is_ok() {
        println!("ok: all {} cells pass integrity checks", report.checked_cells);
        return Ok(());
    }
    println!(
        "{} of {} cells fail integrity checks: {:?}{}",
        report.bad_cells.len(),
        report.checked_cells,
        &report.bad_cells[..report.bad_cells.len().min(20)],
        if report.bad_cells.len() > 20 { " …" } else { "" }
    );
    if p.get("repair").is_none() {
        return Err("index is damaged (rerun with --repair to recompute bad cells)".into());
    }
    let n = index.repair();
    let after = index.verify_integrity();
    if !after.is_ok() {
        return Err(format!(
            "repair recomputed {n} cell(s) but {} still fail",
            after.bad_cells.len()
        ));
    }
    let out = p.get("out").unwrap_or(path);
    index.save(out).map_err(|e| e.to_string())?;
    println!("repaired {n} cell(s); index saved to {out}");
    Ok(())
}

fn cmd_bench(p: &Parsed) -> Result<(), String> {
    p.allow_only(&["index", "queries", "seed", "k", "threads", "json"])
        .map_err(|e| e.to_string())?;
    let index = NnCellIndex::load(p.require("index").map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    let n_q: usize = p.get_or("queries", 200).map_err(|e| e.to_string())?;
    let seed: u64 = p.get_or("seed", 7).map_err(|e| e.to_string())?;
    let k: usize = p.get_or("k", 1).map_err(|e| e.to_string())?;
    let default_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads: usize = p
        .get_or("threads", default_threads)
        .map_err(|e| e.to_string())?;
    let queries: Vec<Query> = UniformGenerator::new(index.dim())
        .generate(n_q, seed)
        .iter()
        .map(|pt| Query::knn(pt.as_slice(), k))
        .collect();

    index.reset_stats();
    let t = Instant::now();
    let seq = index.engine().with_threads(1).batch(&queries);
    let seq_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let par = index.engine().with_threads(threads).batch(&queries);
    let par_s = t.elapsed().as_secs_f64();
    if seq != par {
        return Err("parallel batch diverged from sequential execution".into());
    }

    let ok = seq.iter().filter(|r| r.is_ok()).count();
    let cands: usize = seq
        .iter()
        .filter_map(|r| r.as_ref().ok())
        .map(|r| r.stats.candidates)
        .sum();
    let pages: u64 = seq
        .iter()
        .filter_map(|r| r.as_ref().ok())
        .map(|r| r.stats.pages)
        .sum();
    let fallbacks = seq
        .iter()
        .filter_map(|r| r.as_ref().ok())
        .filter(|r| r.stats.fallback)
        .count();
    let pruned: u64 = seq
        .iter()
        .filter_map(|r| r.as_ref().ok())
        .map(|r| r.stats.nodes_pruned)
        .sum();
    let aborted: usize = seq
        .iter()
        .filter_map(|r| r.as_ref().ok())
        .map(|r| r.stats.candidates_aborted_early)
        .sum();
    let seq_qps = n_q as f64 / seq_s;
    let par_qps = n_q as f64 / par_s;
    println!(
        "{n_q} queries (k={k}), {ok} answered — sequential {seq_qps:.0} q/s, \
         {threads}-thread batch {par_qps:.0} q/s ({:.2}x)",
        par_qps / seq_qps
    );
    println!(
        "per query: {:.1} candidates, {:.1} pages, {:.1} subtrees pruned, \
         {:.1} early-aborted; {fallbacks} scan fallback(s); \
         parallel results bit-identical to sequential",
        cands as f64 / n_q as f64,
        pages as f64 / n_q as f64,
        pruned as f64 / n_q as f64,
        aborted as f64 / n_q as f64,
    );
    if let Some(path) = p.get("json") {
        let json = format!(
            "{{\n  \"queries\": {n_q},\n  \"k\": {k},\n  \"threads\": {threads},\n  \
             \"seq_qps\": {seq_qps:.2},\n  \"par_qps\": {par_qps:.2},\n  \
             \"speedup\": {:.4},\n  \"mean_candidates\": {:.4},\n  \
             \"mean_pages\": {:.4},\n  \"fallbacks\": {fallbacks}\n}}\n",
            par_qps / seq_qps,
            cands as f64 / n_q as f64,
            pages as f64 / n_q as f64,
        );
        std::fs::write(path, json).map_err(|e| e.to_string())?;
        println!("wrote {path}");
    }
    Ok(())
}

/// Either surface the observability commands accept: a plain snapshot, a
/// durable directory (whose WAL/rotation counters come along for free),
/// or the sharded flavor of either — auto-detected from the manifest and
/// reporting per-shard labeled series.
enum LoadedIndex {
    Plain(Box<NnCellIndex>),
    Durable(Box<DurableIndex>),
    Sharded(Box<ShardedIndex>),
}

impl LoadedIndex {
    fn open(p: &Parsed, cmd: &str) -> Result<Self, String> {
        match (p.get("index"), p.get("wal")) {
            (Some(file), None) => Ok(match open_sharded_at(file, false)? {
                Some(s) => LoadedIndex::Sharded(Box::new(s)),
                None => LoadedIndex::Plain(Box::new(
                    NnCellIndex::load(file).map_err(|e| e.to_string())?,
                )),
            }),
            (None, Some(dir)) => Ok(match open_sharded_at(dir, true)? {
                Some(s) => LoadedIndex::Sharded(Box::new(s)),
                None => LoadedIndex::Durable(Box::new(
                    DurableIndex::open(dir).map_err(|e| e.to_string())?,
                )),
            }),
            _ => Err(format!(
                "{cmd} needs exactly one of --index FILE or --wal DIR"
            )),
        }
    }

    fn attach_metrics(&mut self, registry: std::sync::Arc<Registry>) {
        match self {
            LoadedIndex::Plain(i) => i.attach_metrics(registry),
            LoadedIndex::Durable(d) => d.attach_metrics(registry),
            LoadedIndex::Sharded(s) => s.attach_metrics(registry),
        }
    }

    fn dim(&self) -> usize {
        match self {
            LoadedIndex::Plain(i) => i.dim(),
            LoadedIndex::Durable(d) => d.index().dim(),
            LoadedIndex::Sharded(s) => s.dim(),
        }
    }

    fn num_shards(&self) -> usize {
        match self {
            LoadedIndex::Sharded(s) => s.num_shards(),
            _ => 1,
        }
    }

    fn run_batch(&self, queries: &[Query], threads: usize) {
        match self {
            LoadedIndex::Plain(i) => {
                let _ = i.engine().with_threads(threads).batch(queries);
            }
            LoadedIndex::Durable(d) => {
                let _ = d.index().engine().with_threads(threads).batch(queries);
            }
            // Sharding is the concurrency story here: the fan-out across
            // shard engines replaces the single engine's thread pool.
            LoadedIndex::Sharded(s) => {
                let _ = s.batch(queries);
            }
        }
    }

    /// Slow-query rings, one per shard (exactly one for unsharded).
    fn slow_logs(&self) -> Vec<std::sync::Arc<nncell_core::SlowQueryLog>> {
        use std::sync::Arc;
        match self {
            LoadedIndex::Plain(i) => i
                .metrics()
                .map(|m| Arc::clone(m.engine().slow_log()))
                .into_iter()
                .collect(),
            LoadedIndex::Durable(d) => d
                .index()
                .metrics()
                .map(|m| Arc::clone(m.engine().slow_log()))
                .into_iter()
                .collect(),
            LoadedIndex::Sharded(s) => (0..s.num_shards())
                .filter_map(|i| {
                    let shard = s.shard(i);
                    shard.metrics().map(|m| Arc::clone(m.engine().slow_log()))
                })
                .collect(),
        }
    }

    fn build_profile(&self) -> nncell_core::BuildProfile {
        match self {
            LoadedIndex::Plain(i) => i.build_stats().profile,
            LoadedIndex::Durable(d) => d.index().build_stats().profile,
            LoadedIndex::Sharded(s) => s.build_stats().profile,
        }
    }
}

/// Builds the [`nncell_server::ServeIndex`] for `serve` from the same
/// `--index FILE`/`--wal DIR` surfaces the other commands accept, with
/// the extra twist that a missing `--wal` directory is initialized
/// fresh (requires `--dim`; `--shards` > 1 makes it sharded).
///
/// Sharded indexes get the journaled memtable tail (O(1) write acks, a
/// supervised background folder) unless `--tail-max 0` asks for the
/// synchronous write path.
fn open_serve_index(p: &Parsed) -> Result<nncell_server::ServeIndex, String> {
    use nncell_server::ServeIndex;
    let tail_max: usize = p.get_or("tail-max", 4096).map_err(|e| e.to_string())?;
    let fold_interval_ms: u64 = p
        .get_or("fold-interval-ms", 20)
        .map_err(|e| e.to_string())?;
    let memtable = |s: ShardedIndex| -> ServeIndex {
        if tail_max == 0 {
            return ServeIndex::Sharded(s);
        }
        ServeIndex::Sharded(s.with_memtable(FoldConfig {
            tail_max,
            poll_interval: std::time::Duration::from_millis(fold_interval_ms.max(1)),
            ..FoldConfig::default()
        }))
    };
    match (p.get("index"), p.get("wal")) {
        (Some(file), None) => Ok(match open_sharded_at(file, false)? {
            Some(s) => memtable(s),
            None => ServeIndex::Plain(NnCellIndex::load(file).map_err(|e| e.to_string())?),
        }),
        (None, Some(dir)) => {
            if let Some(s) = open_sharded_at(dir, true)? {
                return Ok(memtable(s));
            }
            if std::path::Path::new(dir).join("CURRENT").exists() {
                return Ok(ServeIndex::Durable(std::sync::Mutex::new(
                    DurableIndex::open(dir).map_err(|e| e.to_string())?,
                )));
            }
            // Fresh directory: initialize an empty durable index.
            let dim: usize = p
                .get("dim")
                .ok_or("--wal DIR does not exist yet; --dim N is required to initialize it")?
                .parse()
                .map_err(|_| "bad --dim".to_string())?;
            let shards: usize = p.get_or("shards", 1).map_err(|e| e.to_string())?;
            let cfg = BuildConfig::builder().strategy(Strategy::CorrectPruned).build();
            if shards > 1 {
                Ok(memtable(
                    ShardedIndex::open_durable(dir, dim, shards, cfg)
                        .map_err(|e| e.to_string())?,
                ))
            } else {
                Ok(ServeIndex::Durable(std::sync::Mutex::new(
                    NnCellIndex::open_durable(dir, dim, cfg).map_err(|e| e.to_string())?,
                )))
            }
        }
        _ => Err("serve needs exactly one of --index FILE or --wal DIR".into()),
    }
}

fn cmd_serve(p: &Parsed) -> Result<(), String> {
    p.allow_only(&[
        "index",
        "wal",
        "addr",
        "threads",
        "queue-depth",
        "deadline-ms",
        "retry-after",
        "slow-ms",
        "dim",
        "shards",
        "tail-max",
        "fold-interval-ms",
        "chaos",
        "trace-sample",
    ])
    .map_err(|e| e.to_string())?;
    let index = open_serve_index(p)?;
    let config = nncell_server::ServerConfig {
        addr: p.get("addr").unwrap_or("127.0.0.1:8321").to_string(),
        threads: p.get_or("threads", 4).map_err(|e| e.to_string())?,
        queue_depth: p.get_or("queue-depth", 64).map_err(|e| e.to_string())?,
        deadline: std::time::Duration::from_millis(
            p.get_or("deadline-ms", 2_000).map_err(|e| e.to_string())?,
        ),
        retry_after_secs: p.get_or("retry-after", 1).map_err(|e| e.to_string())?,
        slow_ms: p.get_or("slow-ms", 100).map_err(|e| e.to_string())?,
        chaos: p.get("chaos").is_some(),
        trace_sample: p.get_or("trace-sample", 0).map_err(|e| e.to_string())?,
        ..nncell_server::ServerConfig::default()
    };
    if config.threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    // One registry serves both the index families (queries, WAL, trees)
    // and the HTTP families — /metrics exposes the whole picture.
    let registry = Registry::new();
    let mut index = index;
    match &mut index {
        nncell_server::ServeIndex::Sharded(s) => s.attach_metrics(registry.clone()),
        nncell_server::ServeIndex::Durable(m) => match m.lock() {
            Ok(mut d) => d.attach_metrics(registry.clone()),
            Err(p) => p.into_inner().attach_metrics(registry.clone()),
        },
        nncell_server::ServeIndex::Plain(i) => i.attach_metrics(registry.clone()),
    }
    let server = nncell_server::Server::bind(config, index, registry)
        .map_err(|e| format!("bind failed: {e}"))?;
    nncell_server::install_signal_handlers();
    // The E2E harness starts us with --addr 127.0.0.1:0 and parses this
    // line for the real port, so flush it through any pipe buffering.
    println!("listening on {}", server.local_addr());
    println!(
        "serving: POST /query /batch /insert /remove — GET /metrics /healthz /readyz /debug/trace"
    );
    match server.index() {
        nncell_server::ServeIndex::Sharded(s) if s.memtable_enabled() => {
            let max = s.fold_config().map_or(0, |c| c.tail_max);
            println!(
                "write path: journaled memtable tail (O(1) acks, background folder, \
                 backpressure past {max} unfolded ops)"
            );
        }
        nncell_server::ServeIndex::Sharded(_) => {
            println!("write path: synchronous snapshot publish (--tail-max 0)");
        }
        _ => {}
    }
    println!("shutdown: SIGTERM/ctrl-c drains in-flight requests, then checkpoints");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server
        .run()
        .map_err(|e| format!("final checkpoint failed: {e}"))?;
    println!("drained and checkpointed; bye");
    Ok(())
}

/// The `stats --server ADDR` shed-pressure view: scrapes `/metrics` off
/// a running server and surfaces admission-control numbers (queue
/// depth, sheds, Retry-After) without the operator parsing Prometheus
/// text by hand.
fn cmd_stats_server(addr: &str) -> Result<(), String> {
    let client = nncell_server::Client::new(addr);
    let resp = client
        .get("/metrics")
        .map_err(|e| format!("scrape of http://{addr}/metrics failed: {e}"))?;
    if resp.status != 200 {
        return Err(format!("/metrics answered {}", resp.status));
    }
    let text = resp.text();
    let value = |base: &str| -> u64 {
        text.lines()
            .filter(|l| !l.starts_with('#'))
            .filter_map(|l| {
                let (name, v) = l.split_once(' ')?;
                let series_base = name.split('{').next().unwrap_or(name);
                (series_base == base).then(|| v.trim().parse::<f64>().ok())?
            })
            .sum::<f64>() as u64
    };
    let ready = matches!(client.get("/readyz"), Ok(r) if r.status == 200);
    println!("server         : {addr} ({})", if ready { "ready" } else { "draining/not ready" });
    println!(
        "admission      : queue depth {}, {} in flight, {} shed (429) total",
        value("nncell_http_queue_depth"),
        value("nncell_http_inflight"),
        value("nncell_http_shed_total"),
    );
    println!(
        "backpressure   : Retry-After {}s advertised on 429",
        value("nncell_http_retry_after_seconds"),
    );
    println!(
        "failures       : {} deadline-exceeded (503), {} isolated panic(s) (500)",
        value("nncell_http_deadline_exceeded_total"),
        value("nncell_http_panics_total"),
    );
    println!(
        "requests       : {} completed",
        value("nncell_http_requests_total"),
    );
    // Always print the write-path lines: degraded-mode and tail depth
    // must be visible even on a quiet server (empty slow-query ring, no
    // traffic since start). The memtable family only exists when the
    // server runs a journaled tail — say so explicitly instead of
    // silently omitting the folder's health.
    if text.contains("nncell_tail_depth") {
        println!(
            "write path     : {} unfolded tail op(s), {} fold(s) ({} record(s)), \
             {} backpressure shed(s)",
            value("nncell_tail_depth"),
            value("nncell_fold_total"),
            value("nncell_fold_records_total"),
            value("nncell_tail_backpressure_total"),
        );
        println!(
            "folder         : {}, {} fold failure(s)",
            if value("nncell_fold_degraded") > 0 {
                "DEGRADED (folds failing; tail absorbing writes, queries exact)"
            } else {
                "healthy"
            },
            value("nncell_fold_failures_total"),
        );
    } else {
        println!("write path     : synchronous (no memtable tail)");
    }
    if text.contains("nncell_trace_spans_total") {
        println!(
            "tracing        : {} span(s) in {} trace(s) recorded, {} evicted from the flight ring",
            value("nncell_trace_spans_total"),
            value("nncell_trace_traces_total"),
            value("nncell_trace_dropped_spans_total"),
        );
    }
    Ok(())
}

/// `trace --server ADDR [--last N] [--out FILE]`: pulls the flight
/// recorder's most recent request traces off a running server as Chrome
/// trace-event JSON. Written to `--out` (or stdout) verbatim — the file
/// loads directly in Perfetto (ui.perfetto.dev) or chrome://tracing.
fn cmd_trace(p: &Parsed) -> Result<(), String> {
    p.allow_only(&["server", "last", "out"])
        .map_err(|e| e.to_string())?;
    let addr = p
        .get("server")
        .ok_or("trace needs --server HOST:PORT (a running `nncell serve`)")?;
    let last: usize = p.get_or("last", 16).map_err(|e| e.to_string())?;
    let client = nncell_server::Client::new(addr);
    let resp = client
        .get(&format!("/debug/trace?last={last}"))
        .map_err(|e| format!("fetch of http://{addr}/debug/trace failed: {e}"))?;
    if resp.status != 200 {
        return Err(format!("/debug/trace answered {}", resp.status));
    }
    let body = resp.text();
    match p.get("out") {
        Some(path) => {
            std::fs::write(path, &body).map_err(|e| format!("write {path}: {e}"))?;
            let spans = body.matches("\"ph\":\"X\"").count();
            println!(
                "wrote {spans} span(s) to {path} — open in Perfetto (ui.perfetto.dev) \
                 or chrome://tracing"
            );
        }
        None => println!("{body}"),
    }
    Ok(())
}

fn cmd_stats(p: &Parsed) -> Result<(), String> {
    p.allow_only(&[
        "index",
        "wal",
        "server",
        "queries",
        "seed",
        "k",
        "threads",
        "json",
        "prom",
        "slow",
        "slow-threshold-us",
    ])
    .map_err(|e| e.to_string())?;
    if let Some(addr) = p.get("server") {
        return cmd_stats_server(addr);
    }
    let registry = Registry::new();
    let mut loaded = LoadedIndex::open(p, "stats")?;
    loaded.attach_metrics(registry.clone());
    let n_q: usize = p.get_or("queries", 200).map_err(|e| e.to_string())?;
    let seed: u64 = p.get_or("seed", 7).map_err(|e| e.to_string())?;
    let k: usize = p.get_or("k", 1).map_err(|e| e.to_string())?;
    let threads: usize = p.get_or("threads", 1).map_err(|e| e.to_string())?;
    let slow_threshold_us: u64 = p
        .get_or("slow-threshold-us", 0)
        .map_err(|e| e.to_string())?;
    let slow_logs = loaded.slow_logs();
    if p.get("slow").is_some() {
        for log in &slow_logs {
            log.set_threshold_ns(slow_threshold_us.saturating_mul(1_000));
        }
    }
    if n_q > 0 {
        let queries: Vec<Query> = UniformGenerator::new(loaded.dim())
            .generate(n_q, seed)
            .iter()
            .map(|pt| Query::knn(pt.as_slice(), k))
            .collect();
        loaded.run_batch(&queries, threads.max(1));
    }
    let snap = registry.snapshot();
    if p.get("json").is_some() {
        println!("{}", snap.to_json().trim_end());
        return Ok(());
    }
    if p.get("prom").is_some() {
        print!("{}", snap.to_prometheus());
        return Ok(());
    }
    if p.get("slow").is_some() {
        let sharded = slow_logs.len() > 1;
        for (i, slow) in slow_logs.iter().enumerate() {
            let entries = slow.drain();
            let scope = if sharded {
                format!("shard {i}: ")
            } else {
                String::new()
            };
            println!(
                "{scope}slow queries (threshold {slow_threshold_us} µs): {} captured, {} total seen",
                entries.len(),
                slow.total_seen()
            );
            for e in entries {
                // A nonzero trace id is an exemplar: the same id keys the
                // span timeline in the flight recorder (/debug/trace).
                let trace = if e.trace_id != 0 {
                    format!(" trace={:032x}", e.trace_id)
                } else {
                    String::new()
                };
                println!(
                    "  #{:<4} {:>10.1} µs  k={} candidates={} pages={}{}{trace}  [{}]",
                    e.seq,
                    e.latency_ns as f64 / 1_000.0,
                    e.k,
                    e.candidates,
                    e.pages,
                    if e.fallback { " fallback" } else { "" },
                    e.point
                        .iter()
                        .map(|c| format!("{c:.4}"))
                        .collect::<Vec<_>>()
                        .join(","),
                );
            }
        }
        return Ok(());
    }
    // Human-readable summary. Sharded indexes register per-shard labeled
    // series (`name{shard="i"}`); sum_counters/sum_gauges fold a whole
    // family into one number either way.
    let shards = loaded.num_shards();
    println!(
        "workload       : {n_q} queries (k={k}, threads={threads}, seed={seed}){}",
        if shards > 1 {
            format!(" fanned out across {shards} shards")
        } else {
            String::new()
        }
    );
    let get = |name: &str| snap.sum_counters(name).unwrap_or(0);
    println!(
        "queries        : {} ok, {} error(s), {} scan fallback(s)",
        get("nncell_queries_total") - get("nncell_query_errors_total"),
        get("nncell_query_errors_total"),
        get("nncell_query_fallback_total"),
    );
    // Latency histograms stay per shard: there is one series per engine,
    // labeled when sharded.
    let latency_series: Vec<(String, &str)> = if shards > 1 {
        (0..shards)
            .map(|i| {
                (
                    format!("nncell_query_latency_ns{{shard=\"{i}\"}}"),
                    "latency",
                )
            })
            .collect()
    } else {
        vec![("nncell_query_latency_ns".to_string(), "latency")]
    };
    for (i, (name, _)) in latency_series.iter().enumerate() {
        if let Some(h) = snap.histogram(name) {
            let label = if shards > 1 {
                format!("latency (s{i})  ")
            } else {
                "latency        ".to_string()
            };
            println!(
                "{label}: p50 ≤ {:.1} µs, p90 ≤ {:.1} µs, p99 ≤ {:.1} µs, max {:.1} µs",
                h.percentile(0.50) as f64 / 1_000.0,
                h.percentile(0.90) as f64 / 1_000.0,
                h.percentile(0.99) as f64 / 1_000.0,
                h.max as f64 / 1_000.0,
            );
        }
    }
    let hist = |name: &str| {
        if shards > 1 {
            snap.histogram(&format!("{name}{{shard=\"0\"}}"))
        } else {
            snap.histogram(name)
        }
    };
    if let Some(h) = hist("nncell_query_candidates") {
        println!(
            "candidates     : mean {:.1}, p99 ≤ {}, max {}{}",
            h.mean(),
            h.percentile(0.99),
            h.max,
            if shards > 1 { " (shard 0)" } else { "" }
        );
    }
    if let Some(h) = hist("nncell_query_pages") {
        println!(
            "pages/query    : mean {:.1}, p99 ≤ {}, max {}{}",
            h.mean(),
            h.percentile(0.99),
            h.max,
            if shards > 1 { " (shard 0)" } else { "" }
        );
    }
    println!(
        "cell tree      : {} page read(s), {} cache hit(s), {} split(s), {} pages",
        get("nncell_cell_tree_page_reads_total"),
        get("nncell_cell_tree_cache_hits_total"),
        get("nncell_cell_tree_splits_total"),
        snap.sum_gauges("nncell_cell_tree_pages").unwrap_or(0),
    );
    println!(
        "LP (lifetime)  : {} LP call(s) over {} constraint(s), {} fallback(s), {} clamp(s)",
        get("nncell_lp_calls_total"),
        get("nncell_lp_constraints_total"),
        get("nncell_lp_fallback_total"),
        get("nncell_lp_clamped_extents_total"),
    );
    if snap.sum_counters("nncell_wal_appends_total").is_some() {
        println!(
            "durability     : {} WAL append(s), {} fsync(s), {} replayed, {} dropped, {} rotation(s)",
            get("nncell_wal_appends_total"),
            get("nncell_wal_fsyncs_total"),
            get("nncell_wal_replayed_total"),
            get("nncell_wal_replay_dropped_total"),
            get("nncell_snapshot_rotations_total"),
        );
    }
    print_build_profile(&loaded.build_profile());
    Ok(())
}

/// Shared build-profile report (`build` prints it after construction,
/// `stats` prints the lifetime totals carried by the snapshot).
fn print_build_profile(profile: &nncell_core::BuildProfile) {
    if profile.lp_solve.calls == 0 {
        return;
    }
    println!(
        "build profile  : constraints {:.3}s/{} cell(s), LP {:.3}s, decomposition {:.3}s/{}, \
         bulk load {:.3}s",
        profile.constraint_selection.seconds(),
        profile.constraint_selection.calls,
        profile.lp_solve.seconds(),
        profile.decomposition.seconds(),
        profile.decomposition.calls,
        profile.bulk_load.seconds(),
    );
    if profile.batches > 0 {
        println!(
            "build batches  : {} batch(es), slowest {:.3}s of {:.3}s total",
            profile.batches,
            profile.batch_max_nanos as f64 / 1e9,
            profile.batch_total_nanos as f64 / 1e9,
        );
    }
}

fn print_help() {
    println!(
        "nncell — exact NN search by indexing Voronoi-cell approximations (ICDE'98)

USAGE: nncell <command> [--flag value]...

COMMANDS
  generate  --out FILE [--kind uniform|grid|sparse|clustered|fourier]
            [--n 1000] [--dim 8] [--seed 42] [--clusters 8] [--sigma 0.05]
  build     --points FILE (--out FILE | --wal DIR) [--strategy correct|
            correct-pruned|point|sphere|nn-direction] [--decompose K] [--seed S]
            [--pool exhaustive|approx|approx:K] [--threads T] [--shards S]
            [--skip-invalid] [--lp-max-iterations N]
  query     (--index FILE | --wal DIR) --point x,y,... [--k K | --radius R]
  insert    --wal DIR --point x,y,... [--checkpoint]
  remove    --wal DIR --id N [--checkpoint]
  recover   --wal DIR [--checkpoint]
  flush     --wal DIR              (land journaled records, reset journals)
  info      --index FILE
  verify    --index FILE [--repair] [--out FILE]
  bench     --index FILE [--queries 200] [--seed 7] [--k 1] [--threads N]
            [--json FILE]
  stats     (--index FILE | --wal DIR) [--queries 200] [--seed 7] [--k 1]
            [--threads 1] [--json | --prom | --slow [--slow-threshold-us N]]
  stats     --server HOST:PORT     (shed-pressure view of a running server)
  serve     (--index FILE | --wal DIR) [--addr 127.0.0.1:8321] [--threads 4]
            [--queue-depth 64] [--deadline-ms 2000] [--retry-after 1]
            [--slow-ms 100] [--tail-max 4096] [--fold-interval-ms 20]
            [--trace-sample N] [--dim N --shards S  (fresh --wal init)]
  trace     --server HOST:PORT [--last 16] [--out FILE]
            (fetch recent request traces as Chrome trace-event JSON)
  help

`build --pool approx` constructs cells from each point's approximate
k-nearest constraint pool (sub-quadratic; `approx:K` picks the pool size,
bare `approx` uses the dimension-derived default) instead of the
exhaustive per-cell gather; answers are identical either way. `query
--radius R` returns every point within distance R, sorted by distance.

`build --shards S` (S > 1) partitions points round-robin into S shards,
builds them in parallel, and writes a sharded directory (plain with --out,
durable with --wal). query/insert/remove/recover/stats auto-detect sharded
layouts from the on-disk manifest; sharded answers are bit-identical to
unsharded ones, and sharded metrics register per-shard `shard=\"i\"` series.

`stats` attaches a metrics registry, replays a generated workload, and
reports query-latency percentiles, candidate/page histograms, tree and LP
counters, and (for --wal) WAL/fsync/rotation counters. --json and --prom
print the raw registry snapshot; --slow drains the slow-query ring.

`serve` runs the fault-tolerant HTTP layer: bounded admission queue
(full → 429 + Retry-After), per-request deadlines (exceeded → 503),
panicking requests isolated to a 500, and SIGTERM/ctrl-c draining
in-flight work before a final WAL checkpoint. `stats --server ADDR`
scrapes /metrics off a running server for the shed-pressure summary.

`serve --trace-sample N` records every Nth request as a span tree in the
always-on flight recorder (0 = off; a client-sent sampled `traceparent`
header always forces recording). `trace --server ADDR` exports the most
recent traces as Chrome trace-event JSON — pipe to a file (--out) and
load it in Perfetto (ui.perfetto.dev) or chrome://tracing. Slow-query
entries carry the trace id of their request as an exemplar.

Sharded serving uses the LSM-style write path: inserts/removes are
journaled and land in a small unindexed memtable tail (fsync, then an
O(1) ack — no cell construction on the write path); a supervised
background folder folds the tail into the NN-cells. Queries merge the
tail by linear scan and stay exact throughout, even while the folder is
failing (visible as `nncell_fold_*` metrics and in /readyz). A tail past
--tail-max unfolded ops sheds writes with 429 + Retry-After;
--tail-max 0 restores the synchronous write path. `flush` folds a
directory's journal into the snapshot offline."
    );
}
