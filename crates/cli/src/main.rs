//! `nncell` — command-line front end for the NN-cell index.
//!
//! ```text
//! nncell generate --kind uniform --n 2000 --dim 8 --seed 42 --out pts.csv
//! nncell build    --points pts.csv --strategy sphere --out idx.nncell
//! nncell build    --points pts.csv --strategy sphere --wal idx.db
//! nncell query    --index idx.nncell --point 0.1,0.2,... [--k 5]
//! nncell query    --wal idx.db --point 0.1,0.2,...
//! nncell insert   --wal idx.db --point 0.1,0.2,...
//! nncell remove   --wal idx.db --id 17
//! nncell recover  --wal idx.db [--checkpoint]
//! nncell info     --index idx.nncell
//! nncell verify   --index idx.nncell [--repair]
//! nncell bench    --index idx.nncell --queries 200 --seed 7
//! nncell stats    --index idx.nncell [--json | --prom | --slow]
//! ```
//!
//! `--wal DIR` commands operate on a crash-consistent directory: every
//! insert/remove is journaled and fsynced before it is acknowledged, and
//! `recover` replays the journal after a crash (see DESIGN.md §Durability).

mod args;
mod csv;

use args::Parsed;
use nncell_core::wal::WalTail;
use nncell_core::{
    BuildConfig, DurableIndex, InputPolicy, NnCellIndex, Query, Registry, Strategy,
};
use nncell_geom::Point;
use nncell_data::{
    ClusteredGenerator, FourierGenerator, Generator, GridGenerator, SparseGenerator,
    UniformGenerator,
};
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "help" || argv[0] == "--help" {
        print_help();
        return ExitCode::SUCCESS;
    }
    match run(argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: Vec<String>) -> Result<(), String> {
    let p = Parsed::parse(argv).map_err(|e| e.to_string())?;
    match p.command.as_str() {
        "generate" => cmd_generate(&p),
        "build" => cmd_build(&p),
        "query" => cmd_query(&p),
        "insert" => cmd_insert(&p),
        "remove" => cmd_remove(&p),
        "recover" => cmd_recover(&p),
        "info" => cmd_info(&p),
        "verify" => cmd_verify(&p),
        "bench" => cmd_bench(&p),
        "stats" => cmd_stats(&p),
        other => Err(format!("unknown command {other:?}; try `nncell help`")),
    }
}

fn cmd_generate(p: &Parsed) -> Result<(), String> {
    p.allow_only(&["kind", "n", "dim", "seed", "out", "clusters", "sigma"])
        .map_err(|e| e.to_string())?;
    let kind = p.get("kind").unwrap_or("uniform");
    let n: usize = p.get_or("n", 1_000).map_err(|e| e.to_string())?;
    let dim: usize = p.get_or("dim", 8).map_err(|e| e.to_string())?;
    let seed: u64 = p.get_or("seed", 42).map_err(|e| e.to_string())?;
    let out = p.require("out").map_err(|e| e.to_string())?;
    let points = match kind {
        "uniform" => UniformGenerator::new(dim).generate(n, seed),
        "grid" => GridGenerator::new(dim).generate(n, seed),
        "sparse" => SparseGenerator::new(dim).generate(n, seed),
        "clustered" => {
            let clusters: usize = p.get_or("clusters", 8).map_err(|e| e.to_string())?;
            let sigma: f64 = p.get_or("sigma", 0.05).map_err(|e| e.to_string())?;
            ClusteredGenerator::new(dim, clusters, sigma).generate(n, seed)
        }
        "fourier" => FourierGenerator::new(dim).generate(n, seed),
        other => return Err(format!("unknown --kind {other:?}")),
    };
    csv::write_points(out, &points).map_err(|e| e.to_string())?;
    println!("wrote {n} {kind} points (d={dim}) to {out}");
    Ok(())
}

fn parse_strategy(s: &str) -> Result<Strategy, String> {
    Ok(match s {
        "correct" => Strategy::Correct,
        "correct-pruned" | "pruned" => Strategy::CorrectPruned,
        "point" => Strategy::Point,
        "sphere" => Strategy::Sphere,
        "nn-direction" | "nndirection" => Strategy::NnDirection,
        other => return Err(format!("unknown --strategy {other:?}")),
    })
}

fn cmd_build(p: &Parsed) -> Result<(), String> {
    p.allow_only(&[
        "points",
        "strategy",
        "decompose",
        "seed",
        "threads",
        "out",
        "wal",
        "skip-invalid",
        "lp-max-iterations",
    ])
    .map_err(|e| e.to_string())?;
    let points = csv::read_points(p.require("points").map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    let strategy = parse_strategy(p.get("strategy").unwrap_or("correct-pruned"))?;
    let mut cfg = BuildConfig::new(strategy)
        .with_seed(p.get_or("seed", 0).map_err(|e| e.to_string())?)
        .with_threads(p.get_or("threads", 1).map_err(|e| e.to_string())?);
    let decompose: usize = p.get_or("decompose", 1).map_err(|e| e.to_string())?;
    if decompose > 1 {
        cfg = cfg.with_decomposition(decompose);
    }
    if p.get("skip-invalid").is_some() {
        cfg = cfg.with_input_policy(InputPolicy::Skip);
    }
    if let Some(iters) = p.get("lp-max-iterations") {
        let n: usize = iters
            .parse()
            .map_err(|_| format!("bad --lp-max-iterations {iters:?}"))?;
        cfg = cfg.with_lp_max_iterations(n);
    }
    let out = p.get("out");
    let wal = p.get("wal");
    if out.is_none() && wal.is_none() {
        return Err("build needs --out FILE (plain snapshot), --wal DIR (durable directory), or both".into());
    }
    let t = Instant::now();
    let index = NnCellIndex::build(points, cfg).map_err(|e| e.to_string())?;
    let bs = index.build_stats().clone();
    let (n_cells, n_pieces) = (index.len(), index.total_pieces());
    let mut sinks = Vec::new();
    if let Some(out) = out {
        index.save(out).map_err(|e| e.to_string())?;
        sinks.push(format!("saved to {out}"));
    }
    if let Some(dir) = wal {
        DurableIndex::create(dir, index).map_err(|e| e.to_string())?;
        sinks.push(format!("durable directory initialized at {dir}"));
    }
    println!(
        "built {n_cells} cells ({n_pieces} pieces) in {:.2}s — {} LPs over {} constraints — {}",
        t.elapsed().as_secs_f64(),
        bs.lp.lp_calls,
        bs.lp.constraints,
        sinks.join(", ")
    );
    if bs.skipped_points > 0 {
        println!(
            "skipped {} invalid input point(s) (--skip-invalid)",
            bs.skipped_points
        );
    }
    if bs.lp.fallback_lps > 0 || bs.lp.clamped_extents > 0 {
        println!(
            "LP degradation: {} fallback solve(s), {} extent(s) clamped to the data space \
             (results stay exact; approximations widen)",
            bs.lp.fallback_lps, bs.lp.clamped_extents
        );
    }
    print_build_profile(&bs.profile);
    Ok(())
}

fn cmd_query(p: &Parsed) -> Result<(), String> {
    p.allow_only(&["index", "wal", "point", "k"])
        .map_err(|e| e.to_string())?;
    let loaded;
    let durable;
    let index = match (p.get("index"), p.get("wal")) {
        (Some(file), None) => {
            loaded = NnCellIndex::load(file).map_err(|e| e.to_string())?;
            &loaded
        }
        (None, Some(dir)) => {
            durable = DurableIndex::open(dir).map_err(|e| e.to_string())?;
            durable.index()
        }
        _ => return Err("query needs exactly one of --index FILE or --wal DIR".into()),
    };
    let q = csv::parse_point(p.require("point").map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    let k: usize = p.get_or("k", 1).map_err(|e| e.to_string())?;
    // Both surfaces (--index and --wal) route through the same engine, so a
    // malformed query produces the same typed QueryError either way.
    let resp = index
        .engine()
        .execute(&Query::knn(q, k))
        .map_err(|e| e.to_string())?;
    if k == 1 {
        println!(
            "nearest neighbor: #{} at distance {:.6}",
            resp.best.id, resp.best.dist
        );
    } else {
        for (rank, r) in resp.iter().enumerate() {
            println!("{:>3}. #{} at distance {:.6}", rank + 1, r.id, r.dist);
        }
    }
    let st = resp.stats;
    println!(
        "stats: {} candidate(s), {} page(s){}",
        st.candidates,
        st.pages,
        if st.fallback {
            " — answered by exact scan fallback"
        } else {
            ""
        }
    );
    Ok(())
}

fn cmd_insert(p: &Parsed) -> Result<(), String> {
    p.allow_only(&["wal", "point", "checkpoint"])
        .map_err(|e| e.to_string())?;
    let dir = p.require("wal").map_err(|e| e.to_string())?;
    let coords = csv::parse_point(p.require("point").map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    let mut index = DurableIndex::open(dir).map_err(|e| e.to_string())?;
    let id = index.insert(Point::new(coords)).map_err(|e| e.to_string())?;
    println!(
        "inserted point #{id} — journaled and fsynced ({} record(s) since last checkpoint)",
        index.wal_records()
    );
    maybe_checkpoint(p, index)
}

fn cmd_remove(p: &Parsed) -> Result<(), String> {
    p.allow_only(&["wal", "id", "checkpoint"])
        .map_err(|e| e.to_string())?;
    let dir = p.require("wal").map_err(|e| e.to_string())?;
    let id: usize = p
        .require("id")
        .map_err(|e| e.to_string())?
        .parse()
        .map_err(|_| "bad --id (expected a point id)".to_string())?;
    let mut index = DurableIndex::open(dir).map_err(|e| e.to_string())?;
    if index.remove(id).map_err(|e| e.to_string())? {
        println!(
            "removed point #{id} — journaled and fsynced ({} record(s) since last checkpoint)",
            index.wal_records()
        );
    } else {
        println!("point #{id} is not live; nothing journaled");
    }
    maybe_checkpoint(p, index)
}

fn cmd_recover(p: &Parsed) -> Result<(), String> {
    p.allow_only(&["wal", "checkpoint"])
        .map_err(|e| e.to_string())?;
    let dir = p.require("wal").map_err(|e| e.to_string())?;
    let index = DurableIndex::open(dir).map_err(|e| e.to_string())?;
    let rec = index.recovery().clone();
    println!("generation     : {}", rec.generation);
    println!("records replayed: {}", rec.replayed);
    if rec.skipped > 0 {
        println!("records skipped : {}", rec.skipped);
    }
    match rec.wal_tail {
        WalTail::Clean => println!("journal tail   : clean"),
        WalTail::Truncated { offset } => println!(
            "journal tail   : torn record at byte {offset} (unacknowledged write dropped)"
        ),
        WalTail::Corrupt { offset } => println!(
            "journal tail   : corrupt record at byte {offset} (damaged suffix dropped)"
        ),
    }
    if rec.rotated {
        println!(
            "rotated        : damaged journal retired; now at generation {}",
            index.generation()
        );
    }
    println!("live points    : {}", index.len());
    maybe_checkpoint(p, index)
}

/// Shared `--checkpoint` tail for the durable subcommands.
fn maybe_checkpoint(p: &Parsed, mut index: DurableIndex) -> Result<(), String> {
    if p.get("checkpoint").is_some() {
        index.checkpoint().map_err(|e| e.to_string())?;
        println!(
            "checkpointed to generation {} (journal reset)",
            index.generation()
        );
    }
    Ok(())
}

fn cmd_info(p: &Parsed) -> Result<(), String> {
    p.allow_only(&["index"]).map_err(|e| e.to_string())?;
    let index = NnCellIndex::load(p.require("index").map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    let cells: Vec<_> = (0..index.points().len())
        .filter_map(|i| index.cell(i).cloned())
        .collect();
    println!("dimensionality : {}", index.dim());
    println!("live points    : {}", index.len());
    println!("cell pieces    : {}", index.total_pieces());
    println!("strategy       : {}", index.config().strategy.name());
    println!("decomposition  : {:?}", index.config().decompose_pieces);
    println!("cell-tree pages: {}", index.cell_tree_pages());
    println!(
        "avg overlap    : {:.3}",
        nncell_core::average_overlap(&cells)
    );
    let report = index.verify_integrity();
    if report.is_ok() {
        println!("integrity      : ok ({} cells checked)", report.checked_cells);
    } else {
        println!(
            "integrity      : {} of {} cells BAD — run `nncell verify --repair`",
            report.bad_cells.len(),
            report.checked_cells
        );
    }
    Ok(())
}

fn cmd_verify(p: &Parsed) -> Result<(), String> {
    p.allow_only(&["index", "repair", "out"])
        .map_err(|e| e.to_string())?;
    let path = p.require("index").map_err(|e| e.to_string())?;
    let mut index = NnCellIndex::load(path).map_err(|e| e.to_string())?;
    let report = index.verify_integrity();
    if report.is_ok() {
        println!("ok: all {} cells pass integrity checks", report.checked_cells);
        return Ok(());
    }
    println!(
        "{} of {} cells fail integrity checks: {:?}{}",
        report.bad_cells.len(),
        report.checked_cells,
        &report.bad_cells[..report.bad_cells.len().min(20)],
        if report.bad_cells.len() > 20 { " …" } else { "" }
    );
    if p.get("repair").is_none() {
        return Err("index is damaged (rerun with --repair to recompute bad cells)".into());
    }
    let n = index.repair();
    let after = index.verify_integrity();
    if !after.is_ok() {
        return Err(format!(
            "repair recomputed {n} cell(s) but {} still fail",
            after.bad_cells.len()
        ));
    }
    let out = p.get("out").unwrap_or(path);
    index.save(out).map_err(|e| e.to_string())?;
    println!("repaired {n} cell(s); index saved to {out}");
    Ok(())
}

fn cmd_bench(p: &Parsed) -> Result<(), String> {
    p.allow_only(&["index", "queries", "seed", "k", "threads", "json"])
        .map_err(|e| e.to_string())?;
    let index = NnCellIndex::load(p.require("index").map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    let n_q: usize = p.get_or("queries", 200).map_err(|e| e.to_string())?;
    let seed: u64 = p.get_or("seed", 7).map_err(|e| e.to_string())?;
    let k: usize = p.get_or("k", 1).map_err(|e| e.to_string())?;
    let default_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads: usize = p
        .get_or("threads", default_threads)
        .map_err(|e| e.to_string())?;
    let queries: Vec<Query> = UniformGenerator::new(index.dim())
        .generate(n_q, seed)
        .iter()
        .map(|pt| Query::knn(pt.as_slice(), k))
        .collect();

    index.reset_stats();
    let t = Instant::now();
    let seq = index.engine().with_threads(1).batch(&queries);
    let seq_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let par = index.engine().with_threads(threads).batch(&queries);
    let par_s = t.elapsed().as_secs_f64();
    if seq != par {
        return Err("parallel batch diverged from sequential execution".into());
    }

    let ok = seq.iter().filter(|r| r.is_ok()).count();
    let cands: usize = seq
        .iter()
        .filter_map(|r| r.as_ref().ok())
        .map(|r| r.stats.candidates)
        .sum();
    let pages: u64 = seq
        .iter()
        .filter_map(|r| r.as_ref().ok())
        .map(|r| r.stats.pages)
        .sum();
    let fallbacks = seq
        .iter()
        .filter_map(|r| r.as_ref().ok())
        .filter(|r| r.stats.fallback)
        .count();
    let seq_qps = n_q as f64 / seq_s;
    let par_qps = n_q as f64 / par_s;
    println!(
        "{n_q} queries (k={k}), {ok} answered — sequential {seq_qps:.0} q/s, \
         {threads}-thread batch {par_qps:.0} q/s ({:.2}x)",
        par_qps / seq_qps
    );
    println!(
        "per query: {:.1} candidates, {:.1} pages; {fallbacks} scan fallback(s); \
         parallel results bit-identical to sequential",
        cands as f64 / n_q as f64,
        pages as f64 / n_q as f64,
    );
    if let Some(path) = p.get("json") {
        let json = format!(
            "{{\n  \"queries\": {n_q},\n  \"k\": {k},\n  \"threads\": {threads},\n  \
             \"seq_qps\": {seq_qps:.2},\n  \"par_qps\": {par_qps:.2},\n  \
             \"speedup\": {:.4},\n  \"mean_candidates\": {:.4},\n  \
             \"mean_pages\": {:.4},\n  \"fallbacks\": {fallbacks}\n}}\n",
            par_qps / seq_qps,
            cands as f64 / n_q as f64,
            pages as f64 / n_q as f64,
        );
        std::fs::write(path, json).map_err(|e| e.to_string())?;
        println!("wrote {path}");
    }
    Ok(())
}

/// Either surface the observability commands accept: a plain snapshot or a
/// durable directory (whose WAL/rotation counters come along for free).
enum LoadedIndex {
    Plain(Box<NnCellIndex>),
    Durable(Box<DurableIndex>),
}

impl LoadedIndex {
    fn open(p: &Parsed, cmd: &str) -> Result<Self, String> {
        match (p.get("index"), p.get("wal")) {
            (Some(file), None) => Ok(LoadedIndex::Plain(Box::new(
                NnCellIndex::load(file).map_err(|e| e.to_string())?,
            ))),
            (None, Some(dir)) => Ok(LoadedIndex::Durable(Box::new(
                DurableIndex::open(dir).map_err(|e| e.to_string())?,
            ))),
            _ => Err(format!(
                "{cmd} needs exactly one of --index FILE or --wal DIR"
            )),
        }
    }

    fn attach_metrics(&mut self, registry: std::sync::Arc<Registry>) {
        match self {
            LoadedIndex::Plain(i) => i.attach_metrics(registry),
            LoadedIndex::Durable(d) => d.attach_metrics(registry),
        }
    }

    fn index(&self) -> &NnCellIndex {
        match self {
            LoadedIndex::Plain(i) => i,
            LoadedIndex::Durable(d) => d.index(),
        }
    }
}

fn cmd_stats(p: &Parsed) -> Result<(), String> {
    p.allow_only(&[
        "index",
        "wal",
        "queries",
        "seed",
        "k",
        "threads",
        "json",
        "prom",
        "slow",
        "slow-threshold-us",
    ])
    .map_err(|e| e.to_string())?;
    let registry = Registry::new();
    let mut loaded = LoadedIndex::open(p, "stats")?;
    loaded.attach_metrics(registry.clone());
    let index = loaded.index();
    let n_q: usize = p.get_or("queries", 200).map_err(|e| e.to_string())?;
    let seed: u64 = p.get_or("seed", 7).map_err(|e| e.to_string())?;
    let k: usize = p.get_or("k", 1).map_err(|e| e.to_string())?;
    let threads: usize = p.get_or("threads", 1).map_err(|e| e.to_string())?;
    let slow_threshold_us: u64 = p
        .get_or("slow-threshold-us", 0)
        .map_err(|e| e.to_string())?;
    let metrics = index.metrics().expect("metrics attached above");
    if p.get("slow").is_some() {
        metrics
            .engine()
            .slow_log()
            .set_threshold_ns(slow_threshold_us.saturating_mul(1_000));
    }
    if n_q > 0 {
        let queries: Vec<Query> = UniformGenerator::new(index.dim())
            .generate(n_q, seed)
            .iter()
            .map(|pt| Query::knn(pt.as_slice(), k))
            .collect();
        let _ = index.engine().with_threads(threads.max(1)).batch(&queries);
    }
    let snap = registry.snapshot();
    if p.get("json").is_some() {
        println!("{}", snap.to_json().trim_end());
        return Ok(());
    }
    if p.get("prom").is_some() {
        print!("{}", snap.to_prometheus());
        return Ok(());
    }
    if p.get("slow").is_some() {
        let slow = metrics.engine().slow_log();
        let entries = slow.drain();
        println!(
            "slow queries (threshold {slow_threshold_us} µs): {} captured, {} total seen",
            entries.len(),
            slow.total_seen()
        );
        for e in entries {
            println!(
                "  #{:<4} {:>10.1} µs  k={} candidates={} pages={}{}  [{}]",
                e.seq,
                e.latency_ns as f64 / 1_000.0,
                e.k,
                e.candidates,
                e.pages,
                if e.fallback { " fallback" } else { "" },
                e.point
                    .iter()
                    .map(|c| format!("{c:.4}"))
                    .collect::<Vec<_>>()
                    .join(","),
            );
        }
        return Ok(());
    }
    // Human-readable summary.
    println!("workload       : {n_q} queries (k={k}, threads={threads}, seed={seed})");
    let get = |name: &str| snap.counter(name).unwrap_or(0);
    println!(
        "queries        : {} ok, {} error(s), {} scan fallback(s)",
        get("nncell_queries_total") - get("nncell_query_errors_total"),
        get("nncell_query_errors_total"),
        get("nncell_query_fallback_total"),
    );
    if let Some(h) = snap.histogram("nncell_query_latency_ns") {
        println!(
            "latency        : p50 ≤ {:.1} µs, p90 ≤ {:.1} µs, p99 ≤ {:.1} µs, max {:.1} µs",
            h.percentile(0.50) as f64 / 1_000.0,
            h.percentile(0.90) as f64 / 1_000.0,
            h.percentile(0.99) as f64 / 1_000.0,
            h.max as f64 / 1_000.0,
        );
    }
    if let Some(h) = snap.histogram("nncell_query_candidates") {
        println!(
            "candidates     : mean {:.1}, p99 ≤ {}, max {}",
            h.mean(),
            h.percentile(0.99),
            h.max
        );
    }
    if let Some(h) = snap.histogram("nncell_query_pages") {
        println!(
            "pages/query    : mean {:.1}, p99 ≤ {}, max {}",
            h.mean(),
            h.percentile(0.99),
            h.max
        );
    }
    println!(
        "cell tree      : {} page read(s), {} cache hit(s), {} split(s), {} pages",
        get("nncell_cell_tree_page_reads_total"),
        get("nncell_cell_tree_cache_hits_total"),
        get("nncell_cell_tree_splits_total"),
        snap.gauge("nncell_cell_tree_pages").unwrap_or(0),
    );
    println!(
        "LP (lifetime)  : {} LP call(s) over {} constraint(s), {} fallback(s), {} clamp(s)",
        get("nncell_lp_calls_total"),
        get("nncell_lp_constraints_total"),
        get("nncell_lp_fallback_total"),
        get("nncell_lp_clamped_extents_total"),
    );
    if snap.counter("nncell_wal_appends_total").is_some() {
        println!(
            "durability     : {} WAL append(s), {} fsync(s), {} replayed, {} dropped, {} rotation(s)",
            get("nncell_wal_appends_total"),
            get("nncell_wal_fsyncs_total"),
            get("nncell_wal_replayed_total"),
            get("nncell_wal_replay_dropped_total"),
            get("nncell_snapshot_rotations_total"),
        );
    }
    print_build_profile(&index.build_stats().profile);
    Ok(())
}

/// Shared build-profile report (`build` prints it after construction,
/// `stats` prints the lifetime totals carried by the snapshot).
fn print_build_profile(profile: &nncell_core::BuildProfile) {
    if profile.lp_solve.calls == 0 {
        return;
    }
    println!(
        "build profile  : constraints {:.3}s/{} cell(s), LP {:.3}s, decomposition {:.3}s/{}, \
         bulk load {:.3}s",
        profile.constraint_selection.seconds(),
        profile.constraint_selection.calls,
        profile.lp_solve.seconds(),
        profile.decomposition.seconds(),
        profile.decomposition.calls,
        profile.bulk_load.seconds(),
    );
    if profile.batches > 0 {
        println!(
            "build batches  : {} batch(es), slowest {:.3}s of {:.3}s total",
            profile.batches,
            profile.batch_max_nanos as f64 / 1e9,
            profile.batch_total_nanos as f64 / 1e9,
        );
    }
}

fn print_help() {
    println!(
        "nncell — exact NN search by indexing Voronoi-cell approximations (ICDE'98)

USAGE: nncell <command> [--flag value]...

COMMANDS
  generate  --out FILE [--kind uniform|grid|sparse|clustered|fourier]
            [--n 1000] [--dim 8] [--seed 42] [--clusters 8] [--sigma 0.05]
  build     --points FILE (--out FILE | --wal DIR) [--strategy correct|
            correct-pruned|point|sphere|nn-direction] [--decompose K] [--seed S]
            [--threads T] [--skip-invalid] [--lp-max-iterations N]
  query     (--index FILE | --wal DIR) --point x,y,... [--k K]
  insert    --wal DIR --point x,y,... [--checkpoint]
  remove    --wal DIR --id N [--checkpoint]
  recover   --wal DIR [--checkpoint]
  info      --index FILE
  verify    --index FILE [--repair] [--out FILE]
  bench     --index FILE [--queries 200] [--seed 7] [--k 1] [--threads N]
            [--json FILE]
  stats     (--index FILE | --wal DIR) [--queries 200] [--seed 7] [--k 1]
            [--threads 1] [--json | --prom | --slow [--slow-threshold-us N]]
  help

`stats` attaches a metrics registry, replays a generated workload, and
reports query-latency percentiles, candidate/page histograms, tree and LP
counters, and (for --wal) WAL/fsync/rotation counters. --json and --prom
print the raw registry snapshot; --slow drains the slow-query ring."
    );
}
