//! Minimal CSV point I/O: one point per line, comma-separated coordinates.

use nncell_geom::Point;
use std::fs;
use std::io::Write;
use std::path::Path;

/// I/O or format failure with a user-facing message.
#[derive(Debug)]
pub struct CsvError(pub String);

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CsvError {}

/// Writes points as CSV.
pub fn write_points(path: impl AsRef<Path>, points: &[Point]) -> Result<(), CsvError> {
    let mut out = String::new();
    for p in points {
        let line: Vec<String> = p.iter().map(|c| format!("{c}")).collect();
        out.push_str(&line.join(","));
        out.push('\n');
    }
    let mut f = fs::File::create(&path)
        .map_err(|e| CsvError(format!("cannot create {}: {e}", path.as_ref().display())))?;
    f.write_all(out.as_bytes())
        .map_err(|e| CsvError(format!("write failed: {e}")))?;
    Ok(())
}

/// Reads points from CSV, validating rectangularity and finiteness.
pub fn read_points(path: impl AsRef<Path>) -> Result<Vec<Point>, CsvError> {
    let text = fs::read_to_string(&path)
        .map_err(|e| CsvError(format!("cannot read {}: {e}", path.as_ref().display())))?;
    let mut points = Vec::new();
    let mut dim = None;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let coords: Result<Vec<f64>, _> = line.split(',').map(|t| t.trim().parse()).collect();
        let coords = coords.map_err(|_| CsvError(format!("line {}: bad number", lineno + 1)))?;
        if coords.iter().any(|c: &f64| !c.is_finite()) {
            return Err(CsvError(format!("line {}: non-finite value", lineno + 1)));
        }
        match dim {
            None => dim = Some(coords.len()),
            Some(d) if d != coords.len() => {
                return Err(CsvError(format!(
                    "line {}: {} coordinates, expected {}",
                    lineno + 1,
                    coords.len(),
                    d
                )))
            }
            _ => {}
        }
        points.push(Point::new(coords));
    }
    if points.is_empty() {
        return Err(CsvError("no points in file".into()));
    }
    Ok(points)
}

/// Parses a single `x,y,z` query string.
pub fn parse_point(s: &str) -> Result<Vec<f64>, CsvError> {
    let coords: Result<Vec<f64>, _> = s.split(',').map(|t| t.trim().parse()).collect();
    let coords = coords.map_err(|_| CsvError(format!("bad point literal {s:?}")))?;
    if coords.is_empty() {
        return Err(CsvError("empty point".into()));
    }
    if coords.iter().any(|c| !c.is_finite()) {
        return Err(CsvError(format!("non-finite coordinate in point {s:?}")));
    }
    Ok(coords)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("nncell_cli_{name}_{}", std::process::id()))
    }

    #[test]
    fn roundtrip() {
        let pts = vec![Point::new(vec![0.1, 0.2]), Point::new(vec![0.3, 0.4])];
        let p = tmp("rt.csv");
        write_points(&p, &pts).unwrap();
        let back = read_points(&p).unwrap();
        std::fs::remove_file(&p).ok();
        assert_eq!(back, pts);
    }

    #[test]
    fn rejects_ragged_and_bad_numbers() {
        let p = tmp("bad.csv");
        std::fs::write(&p, "0.1,0.2\n0.3\n").unwrap();
        assert!(read_points(&p).is_err());
        std::fs::write(&p, "0.1,abc\n").unwrap();
        assert!(read_points(&p).is_err());
        std::fs::write(&p, "").unwrap();
        assert!(read_points(&p).is_err());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let p = tmp("com.csv");
        std::fs::write(&p, "# header\n\n0.5,0.5\n").unwrap();
        let pts = read_points(&p).unwrap();
        std::fs::remove_file(&p).ok();
        assert_eq!(pts.len(), 1);
    }

    #[test]
    fn point_literal() {
        assert_eq!(parse_point("0.1, 0.2,0.3").unwrap(), vec![0.1, 0.2, 0.3]);
        assert!(parse_point("a,b").is_err());
    }
}
