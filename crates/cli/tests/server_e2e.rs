//! Subprocess robustness E2E for `nncell serve`: the three headline
//! fault-tolerance claims, exercised against the *real binary* over a
//! real TCP socket (the in-process tests in `crates/server` cover the
//! same machinery without process boundaries or signals).
//!
//! 1. **Admission control**: a mixed read/write storm at well over
//!    queue capacity is shed with `429 Retry-After` — no deadlock, no
//!    unbounded queueing — and the server keeps answering afterwards.
//! 2. **Crash safety**: `kill -9` in the middle of a write storm, then
//!    reopen the durable directory in-process. Every acknowledged
//!    insert must be there with bit-identical coordinates, and the
//!    recovered index must answer queries bit-identically to a fresh
//!    in-process engine replaying the recovered writes.
//! 3. **Graceful shutdown**: SIGTERM drains in-flight requests, prints
//!    the drain banner, and leaves *zero replay debt* — reopening
//!    replays no WAL records because the drain ended in a checkpoint.

use nncell_core::{BuildConfig, Query, ShardedIndex, Strategy};
use nncell_server::Client;
use std::io::BufRead;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const DIM: usize = 2;
const SHARDS: usize = 2;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "nncell_server_e2e_{name}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cfg() -> BuildConfig {
    // Must match what `serve` uses for a fresh `--wal` directory.
    BuildConfig::builder().strategy(Strategy::CorrectPruned).build()
}

/// A running `nncell serve` subprocess: the parsed listen address plus
/// a captured stdout transcript (drained by a thread so the child can
/// never block on a full pipe).
struct ServerProc {
    child: Child,
    addr: String,
    stdout: Arc<Mutex<String>>,
}

impl ServerProc {
    fn spawn(args: &[&str]) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_nncell"))
            .arg("serve")
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn nncell serve");
        let out = child.stdout.take().expect("piped stdout");
        let mut reader = std::io::BufReader::new(out);
        let mut addr = None;
        let mut line = String::new();
        let deadline = Instant::now() + Duration::from_secs(60);
        while Instant::now() < deadline {
            line.clear();
            let n = reader.read_line(&mut line).expect("read server stdout");
            assert!(n > 0, "server exited before announcing its address");
            if let Some(rest) = line.trim().strip_prefix("listening on ") {
                addr = Some(rest.to_string());
                break;
            }
        }
        let addr = addr.expect("server never printed `listening on`");
        let stdout = Arc::new(Mutex::new(String::new()));
        let sink = Arc::clone(&stdout);
        std::thread::spawn(move || {
            let mut line = String::new();
            while reader.read_line(&mut line).map(|n| n > 0).unwrap_or(false) {
                if let Ok(mut s) = sink.lock() {
                    s.push_str(&line);
                }
                line.clear();
            }
        });
        Self {
            child,
            addr,
            stdout,
        }
    }

    fn client(&self) -> Client {
        let mut c = Client::new(self.addr.clone());
        c.max_attempts = 1;
        c
    }

    fn transcript(&self) -> String {
        match self.stdout.lock() {
            Ok(s) => s.clone(),
            Err(p) => p.into_inner().clone(),
        }
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn point_for(i: usize) -> Vec<f64> {
    vec![
        ((i * 37) % 101) as f64 / 101.0,
        ((i * 61 + 13) % 103) as f64 / 103.0,
    ]
}

fn insert_body(coords: &[f64]) -> String {
    let nums: Vec<String> = coords.iter().map(|c| format!("{c}")).collect();
    format!("{{\"point\":[{}]}}", nums.join(","))
}

/// Parses `{"id":N}` out of a 200 insert response.
fn acked_id(body: &str) -> usize {
    let digits: String = body
        .chars()
        .skip_while(|c| !c.is_ascii_digit())
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().expect("insert response carries an id")
}

/// Admission control under a storm at far past queue capacity: some
/// requests are shed with `429 Retry-After`, nothing deadlocks, and the
/// server still answers cleanly once the storm passes.
#[test]
fn storm_past_capacity_sheds_429_and_recovers() {
    let wal = tmp("storm");
    let srv = ServerProc::spawn(&[
        "--wal",
        wal.to_str().unwrap(),
        "--dim",
        "2",
        "--shards",
        "2",
        "--addr",
        "127.0.0.1:0",
        "--threads",
        "1",
        "--queue-depth",
        "2",
        "--deadline-ms",
        "10000",
    ]);

    // Seed a point so reads have something to hit.
    let c = srv.client();
    assert_eq!(
        c.post("/insert", &insert_body(&point_for(0))).unwrap().status,
        200
    );

    // 2x capacity and then some: 16 concurrent mixed read/write clients
    // against 1 worker + 2 queue slots. Raw clients, no retry — we want
    // to *see* the sheds.
    let outcomes: Vec<(u16, bool)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..16)
            .map(|i| {
                let client = srv.client();
                s.spawn(move || {
                    let r = if i % 4 == 0 {
                        client.post("/insert", &insert_body(&point_for(100 + i)))
                    } else {
                        client.post("/query", "{\"point\":[0.5,0.5]}")
                    };
                    match r {
                        Ok(resp) => {
                            let retry_after =
                                resp.header("retry-after").is_some();
                            (resp.status, retry_after)
                        }
                        Err(_) => (0, false),
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let ok = outcomes.iter().filter(|(s, _)| *s == 200).count();
    let shed = outcomes.iter().filter(|(s, _)| *s == 429).count();
    assert!(ok >= 1, "some requests must get through: {outcomes:?}");
    for (status, retry_after) in &outcomes {
        if *status == 429 {
            assert!(retry_after, "every 429 must carry Retry-After");
        }
    }
    // With 16 against 1+2 capacity, the kernel accept backlog can soak
    // a few, but a majority being answered 200 with zero sheds would
    // mean admission control never engaged.
    assert!(
        shed >= 1,
        "a 16-way storm against capacity 3 must shed: {outcomes:?}"
    );

    // The storm passed; the server is healthy and still serving.
    let after = c.post("/query", "{\"point\":[0.5,0.5]}").unwrap();
    assert_eq!(after.status, 200, "server must serve after the storm");
    let health = c.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    let _ = std::fs::remove_dir_all(&wal);
}

/// `kill -9` mid-write-storm, then recover: every acknowledged insert
/// is present bit-for-bit, and the recovered index answers queries
/// bit-identically to an in-process engine replaying the same writes.
#[test]
fn kill_nine_mid_storm_recovers_acked_writes_bit_identical() {
    let wal = tmp("kill9");
    let mut srv = ServerProc::spawn(&[
        "--wal",
        wal.to_str().unwrap(),
        "--dim",
        "2",
        "--shards",
        "2",
        "--addr",
        "127.0.0.1:0",
        "--threads",
        "2",
    ]);

    // Write storm: 4 threads hammer inserts, recording (id, coords) for
    // every *acknowledged* (200) write. SIGKILL lands mid-storm.
    let acked: Arc<Mutex<Vec<(usize, Vec<f64>)>>> = Arc::new(Mutex::new(Vec::new()));
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let client = srv.client();
                let acked = Arc::clone(&acked);
                s.spawn(move || {
                    for i in 0..200 {
                        let coords = point_for(t * 1000 + i);
                        match client.post("/insert", &insert_body(&coords)) {
                            Ok(resp) if resp.status == 200 => {
                                let id = acked_id(&resp.text());
                                acked.lock().unwrap().push((id, coords));
                            }
                            // Shed, refused, or the process is gone.
                            Ok(_) | Err(_) => {
                                if client.get("/healthz").is_err() {
                                    break;
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        // Let the storm make progress, then pull the plug. SIGKILL: no
        // drain, no checkpoint, no atexit — whatever the WAL acked is
        // all the recovery gets.
        std::thread::sleep(Duration::from_millis(300));
        srv.child.kill().expect("SIGKILL the server");
        let _ = srv.child.wait();
        for h in handles {
            h.join().unwrap();
        }
    });

    let mut acked = match acked.lock() {
        Ok(g) => g.clone(),
        Err(p) => p.into_inner().clone(),
    };
    acked.sort_by_key(|(id, _)| *id);
    assert!(
        acked.len() >= 8,
        "storm only acked {} writes before the kill — too few to prove anything",
        acked.len()
    );

    // Recover in-process. Every acked id must be live with identical
    // bits; ids beyond the acked set are allowed (in-flight at SIGKILL,
    // acked to no one) but must be contiguous assignments, not garbage.
    let recovered = ShardedIndex::open_durable(&wal, DIM, SHARDS, cfg())
        .expect("recovery after SIGKILL");
    for (id, coords) in &acked {
        let shard = recovered.shard(id % SHARDS);
        let local = id / SHARDS;
        assert!(
            shard.is_live(local),
            "acked insert id {id} lost by SIGKILL recovery"
        );
        let got = shard.points()[local].as_slice();
        assert_eq!(
            got, &coords[..],
            "acked insert id {id} recovered with different bits"
        );
    }

    // Bit-identical serving: replay the *recovered* state into a fresh
    // in-process engine (same shard count, same build config) and
    // compare answers bit-for-bit across a probe grid.
    let replay = ShardedIndex::new(DIM, SHARDS, cfg());
    let total: usize = (0..SHARDS)
        .map(|i| recovered.shard(i).points().len())
        .sum();
    for g in 0..total {
        let shard = recovered.shard(g % SHARDS);
        let local = g / SHARDS;
        // Replay inserts in global id order; re-remove is impossible
        // here (the storm never removes), so every slot is live.
        assert!(shard.is_live(local), "insert-only storm left a dead slot");
        let id = replay
            .insert(shard.points()[local].clone())
            .expect("in-memory replay insert");
        assert_eq!(id, g, "replay must assign the same global ids");
    }
    for probe in 0..20 {
        let q = Query::knn(point_for(probe * 7 + 3), 3);
        let a = recovered.query(&q).expect("recovered query");
        let b = replay.query(&q).expect("replay query");
        let a_ids: Vec<_> = a.iter().map(|r| (r.id, r.dist.to_bits())).collect();
        let b_ids: Vec<_> = b.iter().map(|r| (r.id, r.dist.to_bits())).collect();
        assert_eq!(
            a_ids, b_ids,
            "recovered index diverged from in-process replay on probe {probe}"
        );
    }
    let _ = std::fs::remove_dir_all(&wal);
}

/// SIGTERM drains and checkpoints: the process exits cleanly with the
/// drain banner, and reopening replays zero WAL records.
#[test]
fn sigterm_drains_checkpoints_and_leaves_zero_replay_debt() {
    let wal = tmp("sigterm");
    let mut srv = ServerProc::spawn(&[
        "--wal",
        wal.to_str().unwrap(),
        "--dim",
        "2",
        "--shards",
        "2",
        "--addr",
        "127.0.0.1:0",
        "--threads",
        "2",
    ]);

    let c = srv.client();
    let mut expect = Vec::new();
    for i in 0..12 {
        let coords = point_for(i);
        let r = c.post("/insert", &insert_body(&coords)).unwrap();
        assert_eq!(r.status, 200);
        expect.push((acked_id(&r.text()), coords));
    }

    // SIGTERM, not SIGKILL: the server must drain and checkpoint.
    let term = Command::new("kill")
        .arg("-TERM")
        .arg(srv.child.id().to_string())
        .status()
        .expect("send SIGTERM");
    assert!(term.success());
    let deadline = Instant::now() + Duration::from_secs(60);
    let status = loop {
        if let Some(st) = srv.child.try_wait().expect("wait for server") {
            break st;
        }
        assert!(
            Instant::now() < deadline,
            "server did not exit within 60s of SIGTERM"
        );
        std::thread::sleep(Duration::from_millis(25));
    };
    assert!(status.success(), "graceful shutdown must exit 0: {status}");
    assert!(
        srv.transcript().contains("drained and checkpointed; bye"),
        "missing drain banner in:\n{}",
        srv.transcript()
    );

    // Zero replay debt: the drain ended in a checkpoint, so recovery
    // replays nothing and every acked insert is in the snapshot.
    let reopened = ShardedIndex::open_durable(&wal, DIM, SHARDS, cfg())
        .expect("reopen after graceful shutdown");
    for report in reopened.recovery() {
        assert_eq!(
            report.replayed, 0,
            "graceful shutdown left WAL records to replay: {report:?}"
        );
    }
    assert_eq!(reopened.len(), expect.len());
    for (id, coords) in &expect {
        let shard = reopened.shard(id % SHARDS);
        assert_eq!(shard.points()[id / SHARDS].as_slice(), &coords[..]);
    }
    // And the points actually serve.
    let hit = reopened
        .query(&Query::nn(expect[5].1.clone()))
        .unwrap()
        .best;
    assert_eq!(hit.id, expect[5].0);
    assert!(hit.dist < 1e-12);
    let _ = std::fs::remove_dir_all(&wal);
}

/// End-to-end trace propagation through the real binary: a client-sent
/// sampled `traceparent` forces recording server-side (sampling is off
/// by default), the response echoes the same trace id, and
/// `GET /debug/trace` exports the nested server → shard → engine and
/// WAL span tree as Chrome trace-event JSON.
#[test]
fn traceparent_round_trips_and_debug_trace_exports_the_tree() {
    use nncell_obs::trace;
    use nncell_obs::SpanContext;

    let wal = tmp("trace");
    let srv = ServerProc::spawn(&[
        "--wal",
        wal.to_str().unwrap(),
        "--dim",
        "2",
        "--shards",
        "2",
        "--addr",
        "127.0.0.1:0",
        "--threads",
        "2",
    ]);
    let client = srv.client();

    // Seed some untraced points so the query has work to do.
    for i in 0..12 {
        let r = client
            .post("/insert", &insert_body(&point_for(i)))
            .expect("seed insert");
        assert_eq!(r.status, 200);
    }

    // Traced requests: the std-only client forwards the calling
    // thread's sampled context as a `traceparent` header automatically.
    const TRACE: u128 = 0xe2e0_0000_0000_0000_0000_0000_0000_0001;
    trace::init();
    let (query_resp, insert_resp) = {
        let _root = trace::root_from(
            "e2e.client",
            Some(SpanContext {
                trace: TRACE,
                span: 0x42,
                sampled: true,
            }),
        );
        let q = client
            .post("/query", "{\"point\":[0.4,0.6],\"k\":3}")
            .expect("traced query");
        let i = client
            .post("/insert", &insert_body(&[0.11, 0.22]))
            .expect("traced insert");
        (q, i)
    };
    assert_eq!(query_resp.status, 200);
    assert_eq!(insert_resp.status, 200);

    // The response echoes the continued trace: same trace id, a
    // server-minted span id, sampled flag intact.
    for resp in [&query_resp, &insert_resp] {
        let echoed = resp
            .header("traceparent")
            .expect("server echoes traceparent on traced requests");
        let ctx = SpanContext::parse_traceparent(echoed).expect("well-formed traceparent");
        assert_eq!(ctx.trace, TRACE, "trace id unchanged through the round trip");
        assert!(ctx.sampled);
    }

    let export = client.get("/debug/trace?last=50").expect("debug trace");
    assert_eq!(export.status, 200);
    let body = export.text();
    assert!(
        body.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["),
        "not Chrome trace-event JSON:\n{body}"
    );
    assert_eq!(body.matches('{').count(), body.matches('}').count());

    // Only the events of our trace (the seed inserts were unsampled and
    // must not appear — sampling is off by default).
    let hex = format!("{TRACE:032x}");
    let events: Vec<&str> = body.lines().filter(|l| l.contains("\"name\"")).collect();
    assert!(
        events.iter().all(|l| l.contains(&hex)),
        "unsampled request leaked into the flight recorder:\n{body}"
    );

    // The full nested tree is there: request lifecycle, shard fan-out,
    // engine work, and the WAL append of the traced insert.
    for name in [
        "server.request",
        "server.queue_wait",
        "server.parse",
        "server.handle",
        "server.serialize",
        "shard.query",
        "engine.query",
        "wal.append",
    ] {
        assert!(
            events.iter().any(|l| l.contains(&format!("\"name\":\"{name}\""))),
            "span {name} missing from export:\n{body}"
        );
    }

    // Spot-check the nesting: every shard.query parents an engine.query,
    // and the shard spans hang off a server.handle span.
    let field = |line: &str, key: &str| -> String {
        let tag = format!("\"{key}\":\"");
        let start = line.find(&tag).map(|i| i + tag.len()).unwrap_or(0);
        line[start..].chars().take_while(|c| *c != '"').collect()
    };
    let span_of = |name: &str| -> Vec<String> {
        events
            .iter()
            .filter(|l| l.contains(&format!("\"name\":\"{name}\"")))
            .map(|l| field(l, "span"))
            .collect()
    };
    let handle_spans = span_of("server.handle");
    let shard_events: Vec<&&str> = events
        .iter()
        .filter(|l| l.contains("\"name\":\"shard.query\""))
        .collect();
    assert_eq!(shard_events.len(), 2, "one span per shard:\n{body}");
    for ev in &shard_events {
        assert!(
            handle_spans.contains(&field(ev, "parent")),
            "shard span not parented by server.handle:\n{body}"
        );
    }
    let shard_spans = span_of("shard.query");
    for ev in events.iter().filter(|l| l.contains("\"name\":\"engine.query\"")) {
        assert!(
            shard_spans.contains(&field(ev, "parent")),
            "engine span not parented by a shard span:\n{body}"
        );
    }

    let _ = std::fs::remove_dir_all(&wal);
}
