//! End-to-end tests spawning the actual `nncell` binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_nncell"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nncell_cli_e2e_{name}_{}", std::process::id()))
}

#[test]
fn generate_build_query_info_bench_pipeline() {
    let pts = tmp("pts.csv");
    let idx = tmp("idx.nncell");

    let out = bin()
        .args(["generate", "--kind", "uniform", "--n", "200", "--dim", "4"])
        .args(["--seed", "5", "--out", pts.to_str().unwrap()])
        .output()
        .expect("spawn generate");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = bin()
        .args(["build", "--points", pts.to_str().unwrap()])
        .args(["--strategy", "sphere", "--out", idx.to_str().unwrap()])
        .output()
        .expect("spawn build");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("built 200 cells"));

    let out = bin()
        .args(["query", "--index", idx.to_str().unwrap()])
        .args(["--point", "0.5,0.5,0.5,0.5", "--k", "3"])
        .output()
        .expect("spawn query");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.lines().count() >= 3, "three kNN lines: {text}");

    let out = bin()
        .args(["info", "--index", idx.to_str().unwrap()])
        .output()
        .expect("spawn info");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("live points    : 200"), "{text}");

    let out = bin()
        .args(["bench", "--index", idx.to_str().unwrap(), "--queries", "20"])
        .output()
        .expect("spawn bench");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("20 queries"));

    std::fs::remove_file(&pts).ok();
    std::fs::remove_file(&idx).ok();
}

#[test]
fn durable_build_insert_remove_crash_recover_pipeline() {
    let pts = tmp("wal_pts.csv");
    let db = tmp("wal_db");
    std::fs::remove_dir_all(&db).ok();

    bin()
        .args(["generate", "--n", "80", "--dim", "3", "--seed", "9"])
        .args(["--out", pts.to_str().unwrap()])
        .output()
        .unwrap();
    let out = bin()
        .args(["build", "--points", pts.to_str().unwrap()])
        .args(["--strategy", "sphere", "--wal", db.to_str().unwrap()])
        .output()
        .expect("spawn build --wal");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("durable directory initialized"));

    // Journal two inserts and a remove (each acknowledged once fsynced).
    let out = bin()
        .args(["insert", "--wal", db.to_str().unwrap(), "--point", "0.91,0.92,0.93"])
        .output()
        .expect("spawn insert");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("inserted point #80"));
    let out = bin()
        .args(["insert", "--wal", db.to_str().unwrap(), "--point", "0.11,0.12,0.13"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = bin()
        .args(["remove", "--wal", db.to_str().unwrap(), "--id", "80"])
        .output()
        .expect("spawn remove");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("removed point #80"));

    // Removing a dead id journals nothing but still succeeds.
    let out = bin()
        .args(["remove", "--wal", db.to_str().unwrap(), "--id", "80"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("not live"));

    // Simulate a crash mid-append: tear the journal tail with garbage.
    let wal_file = std::fs::read_dir(&db)
        .unwrap()
        .filter_map(|e| e.ok())
        .find(|e| e.file_name().to_string_lossy().starts_with("wal."))
        .expect("wal file present")
        .path();
    let mut bytes = std::fs::read(&wal_file).unwrap();
    bytes.extend_from_slice(&[0x7F, 0x00, 0x13]);
    std::fs::write(&wal_file, &bytes).unwrap();

    // Recovery replays the acknowledged prefix and reports the torn tail.
    let out = bin()
        .args(["recover", "--wal", db.to_str().unwrap(), "--checkpoint"])
        .output()
        .expect("spawn recover");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("records replayed: 3"), "{text}");
    assert!(text.contains("torn record"), "{text}");
    assert!(text.contains("live points    : 81"), "{text}");
    assert!(text.contains("checkpointed"), "{text}");

    // Queries work straight off the durable directory; the surviving
    // insert near (0.11, 0.12, 0.13) is found, the removed one is gone.
    let out = bin()
        .args(["query", "--wal", db.to_str().unwrap(), "--point", "0.11,0.12,0.13"])
        .output()
        .expect("spawn query --wal");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("#81 at distance 0.000000"), "{text}");

    std::fs::remove_file(&pts).ok();
    std::fs::remove_dir_all(&db).ok();
}

#[test]
fn stats_reports_metrics_snapshot_and_slow_queries() {
    let pts = tmp("stats_pts.csv");
    let idx = tmp("stats_idx.nncell");
    bin()
        .args(["generate", "--n", "150", "--dim", "4", "--seed", "3"])
        .args(["--out", pts.to_str().unwrap()])
        .output()
        .unwrap();
    let out = bin()
        .args(["build", "--points", pts.to_str().unwrap()])
        .args(["--strategy", "sphere", "--out", idx.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Human-readable summary: percentiles, counters, and the LP section.
    let out = bin()
        .args(["stats", "--index", idx.to_str().unwrap(), "--queries", "40"])
        .output()
        .expect("spawn stats");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("latency        : p50"), "{text}");
    assert!(text.contains("40 queries"), "{text}");
    assert!(text.contains("cell tree"), "{text}");

    // --json prints the raw registry snapshot; the query counter matches
    // the workload exactly (40 issued, 0 errors).
    let out = bin()
        .args(["stats", "--index", idx.to_str().unwrap()])
        .args(["--queries", "40", "--k", "3", "--json"])
        .output()
        .expect("spawn stats --json");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let json = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        json.contains("\"nncell_queries_total\": {\"type\": \"counter\", \"value\": 40}"),
        "{json}"
    );
    assert!(
        json.contains("\"nncell_query_errors_total\": {\"type\": \"counter\", \"value\": 0}"),
        "{json}"
    );
    assert!(
        json.contains("\"nncell_live_points\": {\"type\": \"gauge\", \"value\": 150}"),
        "{json}"
    );
    assert!(
        json.contains("\"nncell_query_latency_ns\": {\"type\": \"histogram\", \"count\": 40,"),
        "{json}"
    );
    assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'), "{json}");

    // --prom renders Prometheus exposition text.
    let out = bin()
        .args(["stats", "--index", idx.to_str().unwrap()])
        .args(["--queries", "10", "--prom"])
        .output()
        .expect("spawn stats --prom");
    assert!(out.status.success());
    let prom = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(prom.contains("# TYPE nncell_query_latency_ns histogram"), "{prom}");
    assert!(prom.contains("nncell_queries_total 10"), "{prom}");

    // --slow with threshold 0 captures every query in the ring.
    let out = bin()
        .args(["stats", "--index", idx.to_str().unwrap()])
        .args(["--queries", "12", "--slow", "--slow-threshold-us", "0"])
        .output()
        .expect("spawn stats --slow");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("12 total seen"), "{text}");
    assert!(text.contains("candidates="), "{text}");

    // The durable surface adds WAL counters to the same snapshot.
    let db = tmp("stats_db");
    std::fs::remove_dir_all(&db).ok();
    bin()
        .args(["build", "--points", pts.to_str().unwrap()])
        .args(["--strategy", "sphere", "--wal", db.to_str().unwrap()])
        .output()
        .unwrap();
    let out = bin()
        .args(["stats", "--wal", db.to_str().unwrap(), "--queries", "5"])
        .output()
        .expect("spawn stats --wal");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("durability"), "{text}");

    std::fs::remove_file(&pts).ok();
    std::fs::remove_file(&idx).ok();
    std::fs::remove_dir_all(&db).ok();
}

#[test]
fn bad_usage_fails_cleanly() {
    // Unknown command.
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Unknown flag.
    let out = bin()
        .args(["generate", "--bogus", "1", "--out", "/dev/null"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));

    // Missing index file.
    let out = bin()
        .args(["info", "--index", "/nonexistent/idx"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    // Dimension mismatch in query.
    let pts = tmp("dim.csv");
    let idx = tmp("dim.nncell");
    bin()
        .args(["generate", "--n", "50", "--dim", "3", "--out", pts.to_str().unwrap()])
        .output()
        .unwrap();
    bin()
        .args(["build", "--points", pts.to_str().unwrap(), "--out", idx.to_str().unwrap()])
        .output()
        .unwrap();
    let out = bin()
        .args(["query", "--index", idx.to_str().unwrap(), "--point", "0.5,0.5"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    // The typed QueryError::DimMismatch message, identical on every surface.
    assert!(String::from_utf8_lossy(&out.stderr).contains("coordinate(s)"));
    assert!(String::from_utf8_lossy(&out.stderr).contains("3-dimensional"));
    std::fs::remove_file(&pts).ok();
    std::fs::remove_file(&idx).ok();
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
    // No args behaves like help.
    let out = bin().output().unwrap();
    assert!(out.status.success());
}
