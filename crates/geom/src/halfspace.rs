//! Linear constraints (halfspaces), in particular Voronoi bisectors.

use crate::metric::Metric;
use crate::EPS;

/// A closed halfspace `{ x : a·x ≤ b }`.
#[derive(Clone, Debug, PartialEq)]
pub struct Halfspace {
    normal: Box<[f64]>,
    offset: f64,
}

impl Halfspace {
    /// Creates the halfspace `normal·x ≤ offset`.
    ///
    /// # Panics
    /// Panics on an empty or non-finite normal.
    pub fn new(normal: impl Into<Vec<f64>>, offset: f64) -> Self {
        let normal: Vec<f64> = normal.into();
        assert!(!normal.is_empty(), "halfspace needs at least one dimension");
        assert!(
            normal.iter().all(|c| c.is_finite()) && offset.is_finite(),
            "halfspace coefficients must be finite"
        );
        Self {
            normal: normal.into_boxed_slice(),
            offset,
        }
    }

    /// The bisector halfspace `{ x : d(x,p) ≤ d(x,q) }` under a (weighted)
    /// Euclidean metric — the set of points at least as close to `p` as to
    /// `q`.
    ///
    /// Expanding `Σ wᵢ(xᵢ-pᵢ)² ≤ Σ wᵢ(xᵢ-qᵢ)²` gives the linear form
    /// `Σ 2wᵢ(qᵢ-pᵢ) xᵢ ≤ Σ wᵢ(qᵢ²-pᵢ²)`.
    ///
    /// ```
    /// use nncell_geom::{Halfspace, Euclidean};
    /// let h = Halfspace::bisector(&Euclidean, &[0.0, 0.0], &[1.0, 1.0]);
    /// assert!(h.contains(&[0.1, 0.1]));      // closer to p
    /// assert!(!h.contains(&[0.9, 0.9]));     // closer to q
    /// assert!(h.eval(&[0.5, 0.5]).abs() < 1e-12); // midpoint on boundary
    /// ```
    ///
    /// # Panics
    /// Panics if `p` and `q` have different dimensionality.
    pub fn bisector<M: Metric>(metric: &M, p: &[f64], q: &[f64]) -> Self {
        assert_eq!(p.len(), q.len(), "bisector of mismatched dimensionality");
        let mut normal = Vec::with_capacity(p.len());
        let mut offset = 0.0;
        for i in 0..p.len() {
            let w = metric.weight(i);
            normal.push(2.0 * w * (q[i] - p[i]));
            offset += w * (q[i] * q[i] - p[i] * p[i]);
        }
        Self::new(normal, offset)
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.normal.len()
    }

    /// The normal vector `a`.
    #[inline]
    pub fn normal(&self) -> &[f64] {
        &self.normal
    }

    /// The offset `b`.
    #[inline]
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// `a·x − b`: negative strictly inside, zero on the boundary, positive
    /// outside.
    pub fn eval(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.dim());
        self.normal
            .iter()
            .zip(x.iter())
            .map(|(a, v)| a * v)
            .sum::<f64>()
            - self.offset
    }

    /// Closed containment test with [`EPS`] slack.
    pub fn contains(&self, x: &[f64]) -> bool {
        self.eval(x) <= EPS * (1.0 + self.offset.abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{dist_sq, Euclidean, WeightedEuclidean};

    #[test]
    fn eval_and_contains() {
        // x + y <= 1
        let h = Halfspace::new(vec![1.0, 1.0], 1.0);
        assert!(h.contains(&[0.2, 0.3]));
        assert!(h.contains(&[0.5, 0.5])); // boundary
        assert!(!h.contains(&[0.8, 0.9]));
        assert!((h.eval(&[0.8, 0.9]) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn bisector_agrees_with_distance_comparison() {
        let p = [0.2, 0.7, 0.1];
        let q = [0.9, 0.3, 0.5];
        let h = Halfspace::bisector(&Euclidean, &p, &q);
        // sample points and cross-check
        for k in 0..50 {
            let t = k as f64 / 49.0;
            let x = [t, 1.0 - t, 0.5 * t];
            let closer_to_p = dist_sq(&x, &p) <= dist_sq(&x, &q) + 1e-12;
            assert_eq!(h.contains(&x), closer_to_p, "x={x:?}");
        }
    }

    #[test]
    fn bisector_midpoint_on_boundary() {
        let p = [0.0, 0.0];
        let q = [1.0, 1.0];
        let h = Halfspace::bisector(&Euclidean, &p, &q);
        assert!(h.eval(&[0.5, 0.5]).abs() < 1e-12);
        assert!(h.contains(&p));
        assert!(!h.contains(&q));
    }

    #[test]
    fn weighted_bisector_matches_weighted_distances() {
        let m = WeightedEuclidean::new(vec![4.0, 1.0]);
        let p = [0.0, 0.0];
        let q = [1.0, 0.0];
        let h = Halfspace::bisector(&m, &p, &q);
        for k in 0..20 {
            let x = [k as f64 / 19.0, 0.3];
            let closer = m.dist_sq(&x, &p) <= m.dist_sq(&x, &q) + 1e-12;
            assert_eq!(h.contains(&x), closer);
        }
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_rejected() {
        let _ = Halfspace::new(vec![f64::NAN], 0.0);
    }
}
