//! Geometry substrate for the `nncell` workspace.
//!
//! Everything in the NN-cell pipeline speaks this crate's vocabulary:
//!
//! * [`Point`] — an owned point in `R^d`,
//! * [`Mbr`] — a minimum bounding hyper-rectangle with the volume / margin /
//!   overlap / MINDIST / MINMAXDIST machinery that R\*-trees, X-trees and the
//!   NN-cell approximations need,
//! * [`Halfspace`] — a linear constraint `a·x ≤ b`, in particular the
//!   perpendicular bisector halfspaces that bound Voronoi cells,
//! * [`DataSpace`] — the bounded data space (default `[0,1]^d`) that clips
//!   every NN-cell,
//! * [`metric`] — distance functions (Euclidean and weighted Euclidean; only
//!   (weighted) L2 yields *linear* bisectors, which the LP formulation needs).
//!
//! The crate is dependency-free and `f64` throughout.

// Indexed loops over parallel coordinate arrays are the house style in this
// numeric code; iterator-zip rewrites obscure the math.
#![allow(clippy::needless_range_loop)]

pub mod dataspace;
pub mod halfspace;
pub mod mbr;
pub mod metric;
pub mod point;
pub mod polygon;

pub use dataspace::DataSpace;
pub use halfspace::Halfspace;
pub use mbr::Mbr;
pub use metric::{
    dist, dist_sq, dist_sq_early_abort, weighted_dist_sq, weighted_dist_sq_early_abort, Euclidean,
    Metric, WeightedEuclidean,
};
pub use point::Point;
pub use polygon::{voronoi_cell_2d, ConvexPolygon};

/// Relative/absolute tolerance used by geometric predicates across the
/// workspace. Chosen large enough to absorb simplex round-off on unit-box
/// coordinates and small enough not to merge distinct Voronoi vertices at
/// realistic database sizes.
pub const EPS: f64 = 1e-9;

/// Returns `true` when `a` and `b` are equal up to [`EPS`] (absolute, suited
/// to unit-box coordinates).
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS
}
