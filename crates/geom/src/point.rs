//! Owned points in `R^d`.

use std::fmt;
use std::ops::{Deref, Index};

/// An owned point in `R^d`.
///
/// A thin wrapper over `Box<[f64]>` that keeps the dimensionality explicit
/// and dereferences to a slice, so all free functions taking `&[f64]`
/// (e.g. [`crate::metric::dist`]) accept it directly.
#[derive(Clone, PartialEq)]
pub struct Point {
    coords: Box<[f64]>,
}

impl Point {
    /// Creates a point from any coordinate container.
    ///
    /// # Panics
    /// Panics if `coords` is empty: zero-dimensional points are never
    /// meaningful in this workspace and allowing them would push degenerate
    /// checks into every caller.
    pub fn new(coords: impl Into<Vec<f64>>) -> Self {
        let coords: Vec<f64> = coords.into();
        assert!(!coords.is_empty(), "Point must have at least one dimension");
        Self {
            coords: coords.into_boxed_slice(),
        }
    }

    /// The origin of `R^d`.
    pub fn origin(dim: usize) -> Self {
        Self::new(vec![0.0; dim])
    }

    /// Dimensionality `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// Coordinates as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.coords
    }

    /// Consumes the point and returns its coordinates.
    pub fn into_vec(self) -> Vec<f64> {
        self.coords.into_vec()
    }

    /// Squared Euclidean norm `‖p‖²`.
    #[inline]
    pub fn norm_sq(&self) -> f64 {
        self.coords.iter().map(|c| c * c).sum()
    }

    /// Returns `true` if all coordinates are finite.
    pub fn is_finite(&self) -> bool {
        self.coords.iter().all(|c| c.is_finite())
    }
}

impl Deref for Point {
    type Target = [f64];
    #[inline]
    fn deref(&self) -> &[f64] {
        &self.coords
    }
}

impl Index<usize> for Point {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.coords[i]
    }
}

impl From<Vec<f64>> for Point {
    fn from(v: Vec<f64>) -> Self {
        Self::new(v)
    }
}

impl From<&[f64]> for Point {
    fn from(v: &[f64]) -> Self {
        Self::new(v.to_vec())
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Point{:?}", self.coords)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let p = Point::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(p.dim(), 3);
        assert_eq!(p[1], 2.0);
        assert_eq!(p.as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn norm_sq_matches_hand_computation() {
        let p = Point::new(vec![3.0, 4.0]);
        assert_eq!(p.norm_sq(), 25.0);
    }

    #[test]
    fn origin_is_all_zero() {
        let p = Point::origin(4);
        assert_eq!(p.as_slice(), &[0.0; 4]);
        assert_eq!(p.norm_sq(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn zero_dim_rejected() {
        let _ = Point::new(Vec::new());
    }

    #[test]
    fn deref_allows_slice_ops() {
        let p = Point::new(vec![0.5, 0.25]);
        let sum: f64 = p.iter().sum();
        assert_eq!(sum, 0.75);
    }

    #[test]
    fn finite_detection() {
        assert!(Point::new(vec![1.0, 2.0]).is_finite());
        assert!(!Point::new(vec![f64::NAN]).is_finite());
        assert!(!Point::new(vec![f64::INFINITY, 0.0]).is_finite());
    }

    #[test]
    fn into_vec_round_trips() {
        let v = vec![0.1, 0.2, 0.3];
        assert_eq!(Point::new(v.clone()).into_vec(), v);
    }
}
