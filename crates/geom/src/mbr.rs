//! Minimum bounding hyper-rectangles (MBRs).
//!
//! MBRs serve three roles in this workspace: directory / leaf regions in the
//! R\*-tree and X-tree, the approximations of NN-cells (Definition 3 of the
//! paper), and the slabs of the MBR decomposition (Definition 5).

use crate::point::Point;
use crate::EPS;
use std::fmt;

/// An axis-aligned hyper-rectangle `[lo₁,hi₁] × … × [lo_d,hi_d]`.
///
/// Invariant: `lo.len() == hi.len()` and `loᵢ ≤ hiᵢ` for all `i` (enforced by
/// constructors; degenerate zero-extent boxes are allowed — a point's MBR is
/// a point).
#[derive(Clone, PartialEq)]
pub struct Mbr {
    lo: Box<[f64]>,
    hi: Box<[f64]>,
}

impl Mbr {
    /// Creates an MBR from explicit bounds.
    ///
    /// # Panics
    /// Panics if the bounds have different lengths, are empty, or are
    /// inverted beyond [`EPS`] (tiny inversions from LP round-off are
    /// snapped shut).
    pub fn new(lo: impl Into<Vec<f64>>, hi: impl Into<Vec<f64>>) -> Self {
        let lo: Vec<f64> = lo.into();
        let mut hi: Vec<f64> = hi.into();
        assert_eq!(lo.len(), hi.len(), "bound dimensionality mismatch");
        assert!(!lo.is_empty(), "Mbr must have at least one dimension");
        for i in 0..lo.len() {
            assert!(
                hi[i] >= lo[i] - EPS,
                "inverted bounds in dim {i}: [{}, {}]",
                lo[i],
                hi[i]
            );
            if hi[i] < lo[i] {
                hi[i] = lo[i];
            }
        }
        Self {
            lo: lo.into_boxed_slice(),
            hi: hi.into_boxed_slice(),
        }
    }

    /// The degenerate MBR covering exactly one point.
    pub fn from_point(p: &[f64]) -> Self {
        Self::new(p.to_vec(), p.to_vec())
    }

    /// The tightest MBR covering all `points`.
    ///
    /// Returns `None` when `points` is empty.
    pub fn from_points<'a, I>(points: I) -> Option<Self>
    where
        I: IntoIterator<Item = &'a Point>,
    {
        let mut iter = points.into_iter();
        let first = iter.next()?;
        let mut mbr = Self::from_point(first);
        for p in iter {
            mbr.expand_to_point(p);
        }
        Some(mbr)
    }

    /// The tightest MBR covering all rectangles in `mbrs`.
    ///
    /// Returns `None` when `mbrs` is empty.
    pub fn union_all<'a, I>(mbrs: I) -> Option<Self>
    where
        I: IntoIterator<Item = &'a Mbr>,
    {
        let mut iter = mbrs.into_iter();
        let mut acc = iter.next()?.clone();
        for m in iter {
            acc.union_assign(m);
        }
        Some(acc)
    }

    /// Dimensionality `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Lower bounds.
    #[inline]
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper bounds.
    #[inline]
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Extent `hiᵢ − loᵢ` of dimension `i`.
    #[inline]
    pub fn extent(&self, i: usize) -> f64 {
        self.hi[i] - self.lo[i]
    }

    /// Center point.
    pub fn center(&self) -> Point {
        Point::new(
            self.lo
                .iter()
                .zip(self.hi.iter())
                .map(|(l, h)| 0.5 * (l + h))
                .collect::<Vec<_>>(),
        )
    }

    /// Product of extents. Zero for degenerate boxes.
    pub fn volume(&self) -> f64 {
        self.lo
            .iter()
            .zip(self.hi.iter())
            .map(|(l, h)| h - l)
            .product()
    }

    /// Sum of extents (the R\*-tree "margin" surrogate for surface area).
    pub fn margin(&self) -> f64 {
        self.lo.iter().zip(self.hi.iter()).map(|(l, h)| h - l).sum()
    }

    /// Closed containment test for a point.
    pub fn contains_point(&self, p: &[f64]) -> bool {
        debug_assert_eq!(p.len(), self.dim());
        self.lo
            .iter()
            .zip(self.hi.iter())
            .zip(p.iter())
            .all(|((l, h), x)| *l - EPS <= *x && *x <= *h + EPS)
    }

    /// Returns `true` if `other` lies entirely inside `self` (closed).
    pub fn contains_mbr(&self, other: &Mbr) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        (0..self.dim()).all(|i| self.lo[i] - EPS <= other.lo[i] && other.hi[i] <= self.hi[i] + EPS)
    }

    /// Closed intersection test.
    pub fn intersects(&self, other: &Mbr) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        (0..self.dim()).all(|i| self.lo[i] <= other.hi[i] + EPS && other.lo[i] <= self.hi[i] + EPS)
    }

    /// Volume of the intersection with `other` (zero if disjoint).
    pub fn overlap_volume(&self, other: &Mbr) -> f64 {
        debug_assert_eq!(self.dim(), other.dim());
        let mut v = 1.0;
        for i in 0..self.dim() {
            let lo = self.lo[i].max(other.lo[i]);
            let hi = self.hi[i].min(other.hi[i]);
            if hi <= lo {
                return 0.0;
            }
            v *= hi - lo;
        }
        v
    }

    /// The intersection box, or `None` if the boxes are disjoint (open test:
    /// touching boxes intersect in a degenerate box).
    pub fn intersection(&self, other: &Mbr) -> Option<Mbr> {
        debug_assert_eq!(self.dim(), other.dim());
        let mut lo = Vec::with_capacity(self.dim());
        let mut hi = Vec::with_capacity(self.dim());
        for i in 0..self.dim() {
            let l = self.lo[i].max(other.lo[i]);
            let h = self.hi[i].min(other.hi[i]);
            if h < l - EPS {
                return None;
            }
            lo.push(l);
            hi.push(h.max(l));
        }
        Some(Mbr::new(lo, hi))
    }

    /// Grows `self` to cover `p`.
    pub fn expand_to_point(&mut self, p: &[f64]) {
        debug_assert_eq!(p.len(), self.dim());
        for i in 0..p.len() {
            if p[i] < self.lo[i] {
                self.lo[i] = p[i];
            }
            if p[i] > self.hi[i] {
                self.hi[i] = p[i];
            }
        }
    }

    /// Grows `self` to cover `other`.
    pub fn union_assign(&mut self, other: &Mbr) {
        debug_assert_eq!(self.dim(), other.dim());
        for i in 0..self.dim() {
            if other.lo[i] < self.lo[i] {
                self.lo[i] = other.lo[i];
            }
            if other.hi[i] > self.hi[i] {
                self.hi[i] = other.hi[i];
            }
        }
    }

    /// The union box of `self` and `other`.
    pub fn union(&self, other: &Mbr) -> Mbr {
        let mut u = self.clone();
        u.union_assign(other);
        u
    }

    /// Volume increase needed to cover `other` (the R\*-tree ChooseSubtree
    /// criterion).
    pub fn enlargement(&self, other: &Mbr) -> f64 {
        self.union(other).volume() - self.volume()
    }

    /// MINDIST²: squared Euclidean distance from `p` to the closest point of
    /// the box (zero if `p` is inside). Used for best-first NN search.
    pub fn min_dist_sq(&self, p: &[f64]) -> f64 {
        debug_assert_eq!(p.len(), self.dim());
        let mut s = 0.0;
        for i in 0..p.len() {
            let d = if p[i] < self.lo[i] {
                self.lo[i] - p[i]
            } else if p[i] > self.hi[i] {
                p[i] - self.hi[i]
            } else {
                0.0
            };
            s += d * d;
        }
        s
    }

    /// MINMAXDIST² of Roussopoulos et al. (RKV95): the smallest upper bound
    /// on the distance from `p` to the nearest *object inside* the box,
    /// assuming the box is minimal (touches an object on every face).
    pub fn minmax_dist_sq(&self, p: &[f64]) -> f64 {
        debug_assert_eq!(p.len(), self.dim());
        let d = self.dim();
        // rmᵢ: the near face coordinate; rMᵢ: the far corner coordinate.
        let mut total_max = 0.0;
        let mut rm = vec![0.0; d];
        let mut rmax = vec![0.0; d];
        for i in 0..d {
            let mid = 0.5 * (self.lo[i] + self.hi[i]);
            rm[i] = if p[i] <= mid { self.lo[i] } else { self.hi[i] };
            rmax[i] = if p[i] >= mid { self.lo[i] } else { self.hi[i] };
            let dm = p[i] - rmax[i];
            total_max += dm * dm;
        }
        let mut best = f64::INFINITY;
        for k in 0..d {
            let dmax = p[k] - rmax[k];
            let dmin = p[k] - rm[k];
            let v = total_max - dmax * dmax + dmin * dmin;
            if v < best {
                best = v;
            }
        }
        best
    }

    /// Squared distance from `p` to the farthest corner of the box.
    pub fn max_dist_sq(&self, p: &[f64]) -> f64 {
        debug_assert_eq!(p.len(), self.dim());
        let mut s = 0.0;
        for i in 0..p.len() {
            let d = (p[i] - self.lo[i]).abs().max((p[i] - self.hi[i]).abs());
            s += d * d;
        }
        s
    }

    /// Returns `true` if the sphere `(center, radius)` intersects the box.
    pub fn intersects_sphere(&self, center: &[f64], radius: f64) -> bool {
        self.min_dist_sq(center) <= radius * radius + EPS
    }

    /// Splits the box into two at coordinate `at` of dimension `dim`.
    ///
    /// Returns `None` if `at` is outside the open extent of that dimension.
    pub fn split_at(&self, dim: usize, at: f64) -> Option<(Mbr, Mbr)> {
        if at <= self.lo[dim] || at >= self.hi[dim] {
            return None;
        }
        let mut left = self.clone();
        let mut right = self.clone();
        left.hi[dim] = at;
        right.lo[dim] = at;
        Some((left, right))
    }
}

impl fmt::Debug for Mbr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mbr[")?;
        for i in 0..self.dim() {
            if i > 0 {
                write!(f, " × ")?;
            }
            write!(f, "[{:.4},{:.4}]", self.lo[i], self.hi[i])?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit2() -> Mbr {
        Mbr::new(vec![0.0, 0.0], vec![1.0, 1.0])
    }

    #[test]
    fn volume_margin_center() {
        let m = Mbr::new(vec![0.0, 0.0], vec![2.0, 3.0]);
        assert_eq!(m.volume(), 6.0);
        assert_eq!(m.margin(), 5.0);
        assert_eq!(m.center().as_slice(), &[1.0, 1.5]);
    }

    #[test]
    fn containment_and_intersection() {
        let m = unit2();
        assert!(m.contains_point(&[0.5, 0.5]));
        assert!(m.contains_point(&[0.0, 1.0])); // closed
        assert!(!m.contains_point(&[1.5, 0.5]));
        let n = Mbr::new(vec![0.5, 0.5], vec![2.0, 2.0]);
        assert!(m.intersects(&n));
        assert!((m.overlap_volume(&n) - 0.25).abs() < 1e-12);
        let far = Mbr::new(vec![2.0, 2.0], vec![3.0, 3.0]);
        assert_eq!(m.overlap_volume(&far), 0.0);
        assert!(m.intersection(&far).is_none());
    }

    #[test]
    fn touching_boxes_intersect_with_zero_overlap() {
        let a = Mbr::new(vec![0.0], vec![1.0]);
        let b = Mbr::new(vec![1.0], vec![2.0]);
        assert!(a.intersects(&b));
        assert_eq!(a.overlap_volume(&b), 0.0);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i.volume(), 0.0);
    }

    #[test]
    fn union_and_enlargement() {
        let a = Mbr::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let b = Mbr::new(vec![2.0, 0.0], vec![3.0, 1.0]);
        let u = a.union(&b);
        assert_eq!(u.lo(), &[0.0, 0.0]);
        assert_eq!(u.hi(), &[3.0, 1.0]);
        assert_eq!(a.enlargement(&b), 2.0);
    }

    #[test]
    fn from_points_covers_all() {
        let pts = vec![
            Point::new(vec![0.2, 0.8]),
            Point::new(vec![0.6, 0.1]),
            Point::new(vec![0.4, 0.5]),
        ];
        let m = Mbr::from_points(&pts).unwrap();
        assert_eq!(m.lo(), &[0.2, 0.1]);
        assert_eq!(m.hi(), &[0.6, 0.8]);
        for p in &pts {
            assert!(m.contains_point(p));
        }
        assert!(Mbr::from_points(std::iter::empty()).is_none());
    }

    #[test]
    fn min_dist_inside_is_zero_outside_positive() {
        let m = unit2();
        assert_eq!(m.min_dist_sq(&[0.5, 0.5]), 0.0);
        assert!((m.min_dist_sq(&[2.0, 0.5]) - 1.0).abs() < 1e-12);
        // diagonal corner distance
        assert!((m.min_dist_sq(&[2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn minmax_dist_bounds_mindist_and_maxdist() {
        let m = Mbr::new(vec![0.2, 0.3], vec![0.7, 0.9]);
        let q = [0.0, 0.0];
        let mind = m.min_dist_sq(&q);
        let mm = m.minmax_dist_sq(&q);
        let maxd = m.max_dist_sq(&q);
        assert!(mind <= mm + 1e-12);
        assert!(mm <= maxd + 1e-12);
    }

    #[test]
    fn minmax_dist_degenerate_box_equals_point_distance() {
        let m = Mbr::from_point(&[0.5, 0.5]);
        let q = [0.0, 0.0];
        assert!((m.minmax_dist_sq(&q) - 0.5).abs() < 1e-12);
        assert!((m.min_dist_sq(&q) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sphere_intersection() {
        let m = unit2();
        assert!(m.intersects_sphere(&[1.5, 0.5], 0.6));
        assert!(!m.intersects_sphere(&[1.5, 0.5], 0.4));
        assert!(m.intersects_sphere(&[0.5, 0.5], 0.01)); // center inside
    }

    #[test]
    fn split_at_partitions_volume() {
        let m = unit2();
        let (l, r) = m.split_at(0, 0.3).unwrap();
        assert!((l.volume() + r.volume() - m.volume()).abs() < 1e-12);
        assert_eq!(l.hi()[0], 0.3);
        assert_eq!(r.lo()[0], 0.3);
        assert!(m.split_at(0, 0.0).is_none());
        assert!(m.split_at(0, 1.0).is_none());
    }

    #[test]
    fn union_all_matches_pairwise() {
        let ms = vec![
            Mbr::new(vec![0.0], vec![0.2]),
            Mbr::new(vec![0.5], vec![0.9]),
            Mbr::new(vec![0.1], vec![0.4]),
        ];
        let u = Mbr::union_all(&ms).unwrap();
        assert_eq!(u.lo(), &[0.0]);
        assert_eq!(u.hi(), &[0.9]);
    }

    #[test]
    #[should_panic(expected = "inverted bounds")]
    fn inverted_bounds_rejected() {
        let _ = Mbr::new(vec![1.0], vec![0.0]);
    }

    #[test]
    fn tiny_inversion_snapped() {
        let m = Mbr::new(vec![1.0], vec![1.0 - 1e-12]);
        assert!(m.hi()[0] >= m.lo()[0]);
    }
}
