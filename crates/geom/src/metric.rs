//! Distance functions.
//!
//! The NN-cell construction requires Voronoi bisectors to be *linear*, which
//! holds for the Euclidean metric and, more generally, for any
//! positive-diagonal weighted Euclidean metric. Both are provided behind the
//! [`Metric`] trait so indexes and the NN-cell pipeline can be instantiated
//! with either.

/// Squared Euclidean distance between two coordinate slices.
///
/// This is the **single** L2 kernel of the workspace: the linear scan, the
/// NN-cell query shims, and the batch [`query engine`](../index.html) all
/// route through it, so distances are bit-identical across every execution
/// path. Four independent accumulators break the sequential floating-point
/// reduction dependency, letting LLVM auto-vectorize the loop; the
/// accumulator combination order is fixed, so results are deterministic.
///
/// # Panics
/// Panics (debug builds) if the slices have different lengths.
#[inline]
pub fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f64; 4];
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (x, y) in (&mut ca).zip(&mut cb) {
        let d0 = x[0] - y[0];
        let d1 = x[1] - y[1];
        let d2 = x[2] - y[2];
        let d3 = x[3] - y[3];
        acc[0] += d0 * d0;
        acc[1] += d1 * d1;
        acc[2] += d2 * d2;
        acc[3] += d3 * d3;
    }
    let mut tail = 0.0;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        let d = x - y;
        tail += d * d;
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + tail
}

/// Euclidean distance between two coordinate slices.
#[inline]
pub fn dist(a: &[f64], b: &[f64]) -> f64 {
    dist_sq(a, b).sqrt()
}

/// [`dist_sq`] with VA-file-style partial-distance early abort (Weber et
/// al.): the partial sum is checked after every 4-lane block, and the
/// evaluation bails with `None` as soon as it exceeds `bound_sq` while
/// further lanes remain unprocessed. A completed evaluation returns
/// `Some(d²)` that is **bit-identical** to [`dist_sq`] — the accumulators,
/// chunking, and combination order are the same.
///
/// Soundness of the abort: every accumulator only ever grows (squares are
/// non-negative and rounded floating-point addition of non-negative terms
/// is monotone), and the checkpoint combines them in the final combination
/// order, so the partial sum at any checkpoint is ≤ the completed kernel
/// value. `None` therefore *proves* `dist_sq(a, b) > bound_sq`; it never
/// fires for a point whose true distance is within the bound (equality
/// included — the comparison is strict).
///
/// For `a.len() < 8` there is no interior checkpoint and the kernel never
/// aborts; the early exit only pays off when whole lane blocks can be
/// skipped.
#[inline]
pub fn dist_sq_early_abort(a: &[f64], b: &[f64], bound_sq: f64) -> Option<f64> {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f64; 4];
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    let mut first = true;
    for (x, y) in (&mut ca).zip(&mut cb) {
        if !first && ((acc[0] + acc[1]) + (acc[2] + acc[3])) > bound_sq {
            return None;
        }
        first = false;
        let d0 = x[0] - y[0];
        let d1 = x[1] - y[1];
        let d2 = x[2] - y[2];
        let d3 = x[3] - y[3];
        acc[0] += d0 * d0;
        acc[1] += d1 * d1;
        acc[2] += d2 * d2;
        acc[3] += d3 * d3;
    }
    let tail_a = ca.remainder();
    if !first && !tail_a.is_empty() && ((acc[0] + acc[1]) + (acc[2] + acc[3])) > bound_sq {
        return None;
    }
    let mut tail = 0.0;
    for (x, y) in tail_a.iter().zip(cb.remainder()) {
        let d = x - y;
        tail += d * d;
    }
    Some(((acc[0] + acc[1]) + (acc[2] + acc[3])) + tail)
}

/// [`weighted_dist_sq`] with the same early-abort contract as
/// [`dist_sq_early_abort`]: `None` proves the weighted squared distance
/// exceeds `bound_sq`; `Some` is bit-identical to the exact kernel.
#[inline]
pub fn weighted_dist_sq_early_abort(
    w: &[f64],
    a: &[f64],
    b: &[f64],
    bound_sq: f64,
) -> Option<f64> {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), w.len());
    let mut acc = [0.0f64; 4];
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    let mut cw = w.chunks_exact(4);
    let mut first = true;
    for ((x, y), w) in (&mut ca).zip(&mut cb).zip(&mut cw) {
        if !first && ((acc[0] + acc[1]) + (acc[2] + acc[3])) > bound_sq {
            return None;
        }
        first = false;
        let d0 = x[0] - y[0];
        let d1 = x[1] - y[1];
        let d2 = x[2] - y[2];
        let d3 = x[3] - y[3];
        acc[0] += w[0] * d0 * d0;
        acc[1] += w[1] * d1 * d1;
        acc[2] += w[2] * d2 * d2;
        acc[3] += w[3] * d3 * d3;
    }
    let tail_a = ca.remainder();
    if !first && !tail_a.is_empty() && ((acc[0] + acc[1]) + (acc[2] + acc[3])) > bound_sq {
        return None;
    }
    let mut tail = 0.0;
    for ((x, y), w) in tail_a.iter().zip(cb.remainder()).zip(cw.remainder()) {
        let d = x - y;
        tail += w * d * d;
    }
    Some(((acc[0] + acc[1]) + (acc[2] + acc[3])) + tail)
}

/// A distance function whose perpendicular bisectors are hyperplanes.
///
/// This is the class of metrics the NN-cell linear-programming formulation
/// supports: `d(x,p) ≤ d(x,q)` must reduce to one linear constraint on `x`.
/// Implementations provide the quadratic form pieces; the bisector itself is
/// assembled in `nncell-lp`.
pub trait Metric: Clone + Send + Sync + 'static {
    /// Squared distance. Implementations must be non-negative and symmetric.
    fn dist_sq(&self, a: &[f64], b: &[f64]) -> f64;

    /// Distance (defaults to `sqrt(dist_sq)`).
    fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        self.dist_sq(a, b).sqrt()
    }

    /// Squared distance with early abort: returns `None` only when the
    /// evaluation was cut short by proving `dist_sq(a, b) > bound_sq`
    /// mid-kernel; a `Some` value must be bit-identical to
    /// [`Metric::dist_sq`]. The default implementation never aborts (it
    /// completes the exact kernel), which is sound for any metric;
    /// implementations with block-structured kernels override it with a
    /// genuine partial-distance abort.
    #[inline]
    fn dist_sq_early_abort(&self, a: &[f64], b: &[f64], bound_sq: f64) -> Option<f64> {
        let _ = bound_sq;
        Some(self.dist_sq(a, b))
    }

    /// The diagonal weight of dimension `i` in the metric's quadratic form.
    ///
    /// The bisector of `p`,`q` under `Σ wᵢ(xᵢ-pᵢ)² ≤ Σ wᵢ(xᵢ-qᵢ)²` is
    /// `Σ 2wᵢ(qᵢ-pᵢ)·xᵢ ≤ Σ wᵢ(qᵢ²-pᵢ²)`, so the weights fully determine the
    /// linear constraint.
    fn weight(&self, i: usize) -> f64;
}

/// The standard Euclidean (L2) metric.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Euclidean;

impl Metric for Euclidean {
    #[inline]
    fn dist_sq(&self, a: &[f64], b: &[f64]) -> f64 {
        dist_sq(a, b)
    }

    #[inline]
    fn dist_sq_early_abort(&self, a: &[f64], b: &[f64], bound_sq: f64) -> Option<f64> {
        dist_sq_early_abort(a, b, bound_sq)
    }

    #[inline]
    fn weight(&self, _i: usize) -> f64 {
        1.0
    }
}

/// A diagonally weighted Euclidean metric `d(a,b)² = Σ wᵢ (aᵢ-bᵢ)²`.
///
/// Useful for user-adaptable similarity search where feature dimensions have
/// different importances; bisectors stay linear so the whole NN-cell pipeline
/// works unchanged.
#[derive(Clone, Debug, PartialEq)]
pub struct WeightedEuclidean {
    weights: std::sync::Arc<[f64]>,
}

impl WeightedEuclidean {
    /// Creates a weighted metric.
    ///
    /// # Panics
    /// Panics if any weight is non-positive or non-finite — such a "metric"
    /// would not be a metric and would produce unbounded Voronoi cells.
    pub fn new(weights: impl Into<Vec<f64>>) -> Self {
        let weights: Vec<f64> = weights.into();
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "weights must be finite and positive"
        );
        Self {
            weights: weights.into(),
        }
    }

    /// The weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

/// Squared weighted-L2 distance `Σ wᵢ (aᵢ-bᵢ)²` — the weighted sibling of
/// [`dist_sq`], with the same 4-accumulator auto-vectorizable shape and the
/// same deterministic combination order.
#[inline]
pub fn weighted_dist_sq(w: &[f64], a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), w.len());
    let mut acc = [0.0f64; 4];
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    let mut cw = w.chunks_exact(4);
    for ((x, y), w) in (&mut ca).zip(&mut cb).zip(&mut cw) {
        let d0 = x[0] - y[0];
        let d1 = x[1] - y[1];
        let d2 = x[2] - y[2];
        let d3 = x[3] - y[3];
        acc[0] += w[0] * d0 * d0;
        acc[1] += w[1] * d1 * d1;
        acc[2] += w[2] * d2 * d2;
        acc[3] += w[3] * d3 * d3;
    }
    let mut tail = 0.0;
    for ((x, y), w) in ca
        .remainder()
        .iter()
        .zip(cb.remainder())
        .zip(cw.remainder())
    {
        let d = x - y;
        tail += w * d * d;
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + tail
}

impl Metric for WeightedEuclidean {
    #[inline]
    fn dist_sq(&self, a: &[f64], b: &[f64]) -> f64 {
        weighted_dist_sq(&self.weights, a, b)
    }

    #[inline]
    fn dist_sq_early_abort(&self, a: &[f64], b: &[f64], bound_sq: f64) -> Option<f64> {
        weighted_dist_sq_early_abort(&self.weights, a, b, bound_sq)
    }

    #[inline]
    fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_basics() {
        assert_eq!(dist(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(dist_sq(&[1.0], &[4.0]), 9.0);
        assert_eq!(Euclidean.dist(&[0.0], &[2.0]), 2.0);
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_diagonal() {
        let a = [0.2, 0.9, 0.4];
        let b = [0.7, 0.1, 0.3];
        assert_eq!(dist_sq(&a, &b), dist_sq(&b, &a));
        assert_eq!(dist_sq(&a, &a), 0.0);
    }

    #[test]
    fn weighted_matches_manual() {
        let m = WeightedEuclidean::new(vec![2.0, 0.5]);
        // 2*(1-0)^2 + 0.5*(0-2)^2 = 2 + 2 = 4
        assert_eq!(m.dist_sq(&[1.0, 0.0], &[0.0, 2.0]), 4.0);
        assert_eq!(m.dist(&[1.0, 0.0], &[0.0, 2.0]), 2.0);
    }

    #[test]
    fn weighted_with_unit_weights_equals_euclidean() {
        let m = WeightedEuclidean::new(vec![1.0; 3]);
        let a = [0.1, 0.5, 0.9];
        let b = [0.3, 0.2, 0.8];
        assert!((m.dist_sq(&a, &b) - dist_sq(&a, &b)).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn weighted_rejects_zero_weight() {
        let _ = WeightedEuclidean::new(vec![1.0, 0.0]);
    }

    #[test]
    fn kernel_matches_naive_summation_for_all_lengths() {
        // Exercise every remainder length (0..4) and a long vector; the
        // unrolled kernel must agree with the naive loop to within the
        // rounding slack of a reassociated sum.
        for d in [1usize, 2, 3, 4, 5, 7, 8, 13, 16, 33, 100] {
            let a: Vec<f64> = (0..d).map(|i| (i as f64 * 0.37).sin()).collect();
            let b: Vec<f64> = (0..d).map(|i| (i as f64 * 0.73).cos()).collect();
            let w: Vec<f64> = (0..d).map(|i| 0.5 + (i % 5) as f64).collect();
            let naive: f64 = a
                .iter()
                .zip(&b)
                .map(|(x, y)| {
                    let d = x - y;
                    d * d
                })
                .sum();
            let naive_w: f64 = a
                .iter()
                .zip(&b)
                .zip(&w)
                .map(|((x, y), w)| {
                    let d = x - y;
                    w * d * d
                })
                .sum();
            assert!((dist_sq(&a, &b) - naive).abs() <= 1e-12 * naive.max(1.0), "d={d}");
            assert!(
                (weighted_dist_sq(&w, &a, &b) - naive_w).abs() <= 1e-12 * naive_w.max(1.0),
                "d={d}"
            );
            // Determinism: bit-identical on repeat calls.
            assert_eq!(dist_sq(&a, &b).to_bits(), dist_sq(&a, &b).to_bits());
            let m = WeightedEuclidean::new(w.clone());
            assert_eq!(m.dist_sq(&a, &b).to_bits(), weighted_dist_sq(&w, &a, &b).to_bits());
        }
    }

    #[test]
    fn early_abort_agrees_with_exact_kernel_for_all_lane_widths() {
        // For every remainder width and a spread of bounds, the abort
        // kernel must (a) be bit-identical to the exact kernel whenever it
        // completes, and (b) abort only when the true distance genuinely
        // exceeds the bound. Checked for both the plain and weighted forms.
        for d in [1usize, 2, 3, 4, 5, 6, 7, 8, 9, 12, 13, 16, 33] {
            let a: Vec<f64> = (0..d).map(|i| (i as f64 * 0.37).sin()).collect();
            let b: Vec<f64> = (0..d).map(|i| (i as f64 * 0.73).cos()).collect();
            let w: Vec<f64> = (0..d).map(|i| 0.5 + (i % 5) as f64).collect();
            let exact = dist_sq(&a, &b);
            let exact_w = weighted_dist_sq(&w, &a, &b);
            for frac in [0.0, 0.25, 0.5, 0.9999, 1.0, 1.0001, 2.0] {
                let bound = exact * frac;
                match dist_sq_early_abort(&a, &b, bound) {
                    Some(v) => assert_eq!(v.to_bits(), exact.to_bits(), "d={d} frac={frac}"),
                    None => assert!(exact > bound, "d={d} frac={frac}: aborted within bound"),
                }
                let bound_w = exact_w * frac;
                match weighted_dist_sq_early_abort(&w, &a, &b, bound_w) {
                    Some(v) => assert_eq!(v.to_bits(), exact_w.to_bits(), "d={d} frac={frac}"),
                    None => assert!(exact_w > bound_w, "d={d} frac={frac}: aborted within bound"),
                }
            }
            // Equality never aborts: a point exactly on the bound survives
            // (the tie-break by id needs its completed distance).
            assert_eq!(
                dist_sq_early_abort(&a, &b, exact).map(f64::to_bits),
                Some(exact.to_bits())
            );
            // An unbounded call is exactly the plain kernel.
            assert_eq!(
                dist_sq_early_abort(&a, &b, f64::INFINITY).map(f64::to_bits),
                Some(exact.to_bits())
            );
        }
    }

    #[test]
    fn early_abort_actually_aborts_on_wide_vectors() {
        // With ≥ 2 lane blocks and a tiny bound, the first checkpoint must
        // fire (returns None) — the "never aborts" default would hide a
        // wiring mistake in the fast path.
        let a = vec![1.0; 16];
        let b = vec![0.0; 16];
        assert_eq!(dist_sq_early_abort(&a, &b, 0.5), None);
        let w = vec![2.0; 16];
        assert_eq!(weighted_dist_sq_early_abort(&w, &a, &b, 0.5), None);
        // Metric-trait plumbing reaches the same kernels.
        assert_eq!(Euclidean.dist_sq_early_abort(&a, &b, 0.5), None);
        assert_eq!(
            WeightedEuclidean::new(w.clone()).dist_sq_early_abort(&a, &b, 0.5),
            None
        );
    }

    #[test]
    fn triangle_inequality_spot_checks() {
        let pts = [
            vec![0.0, 0.0],
            vec![1.0, 0.3],
            vec![0.4, 0.8],
            vec![0.9, 0.9],
        ];
        for a in &pts {
            for b in &pts {
                for c in &pts {
                    assert!(dist(a, b) + dist(b, c) >= dist(a, c) - 1e-12);
                }
            }
        }
    }
}
