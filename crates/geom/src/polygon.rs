//! Exact 2-D convex polygons by halfspace clipping.
//!
//! The NN-cell pipeline computes cell MBRs by linear programming in any
//! dimension; in 2-D the cells themselves are cheap to materialize by
//! clipping the data-space rectangle with each bisector (Sutherland–Hodgman
//! on a convex clip region). This module provides that exact ground truth —
//! used to validate the LP extents in tests and to render the paper's
//! figure-1/2 NN-diagrams.

use crate::halfspace::Halfspace;
use crate::mbr::Mbr;
use crate::EPS;

/// A convex polygon in the plane (counter-clockwise vertex order; may be
/// empty after aggressive clipping).
#[derive(Clone, Debug, PartialEq)]
pub struct ConvexPolygon {
    vertices: Vec<[f64; 2]>,
}

impl ConvexPolygon {
    /// The rectangle `[lo₀,hi₀] × [lo₁,hi₁]` as a polygon.
    ///
    /// # Panics
    /// Panics if `rect` is not 2-dimensional.
    pub fn from_rect(rect: &Mbr) -> Self {
        assert_eq!(rect.dim(), 2, "ConvexPolygon is 2-D only");
        let (l0, l1) = (rect.lo()[0], rect.lo()[1]);
        let (h0, h1) = (rect.hi()[0], rect.hi()[1]);
        Self {
            vertices: vec![[l0, l1], [h0, l1], [h0, h1], [l0, h1]],
        }
    }

    /// An explicit polygon (assumed convex, CCW).
    pub fn new(vertices: Vec<[f64; 2]>) -> Self {
        Self { vertices }
    }

    /// The vertices (CCW).
    pub fn vertices(&self) -> &[[f64; 2]] {
        &self.vertices
    }

    /// Whether no area is left.
    pub fn is_empty(&self) -> bool {
        self.vertices.len() < 3
    }

    /// Clips the polygon by `h` (keeps the side where `h` holds).
    ///
    /// # Panics
    /// Panics if `h` is not 2-dimensional.
    pub fn clip(&self, h: &Halfspace) -> ConvexPolygon {
        assert_eq!(h.dim(), 2, "ConvexPolygon is 2-D only");
        let n = self.vertices.len();
        if n == 0 {
            return self.clone();
        }
        let inside = |v: &[f64; 2]| h.eval(v) <= EPS;
        let mut out: Vec<[f64; 2]> = Vec::with_capacity(n + 1);
        for i in 0..n {
            let cur = self.vertices[i];
            let next = self.vertices[(i + 1) % n];
            let cur_in = inside(&cur);
            let next_in = inside(&next);
            if cur_in {
                out.push(cur);
            }
            if cur_in != next_in {
                // Edge crosses the boundary a·x = b: solve for t.
                let a = h.normal();
                let fc = a[0] * cur[0] + a[1] * cur[1] - h.offset();
                let fn_ = a[0] * next[0] + a[1] * next[1] - h.offset();
                let t = fc / (fc - fn_);
                out.push([
                    cur[0] + t * (next[0] - cur[0]),
                    cur[1] + t * (next[1] - cur[1]),
                ]);
            }
        }
        ConvexPolygon { vertices: out }
    }

    /// Signed area (positive for CCW).
    pub fn area(&self) -> f64 {
        let n = self.vertices.len();
        if n < 3 {
            return 0.0;
        }
        let mut s = 0.0;
        for i in 0..n {
            let [x1, y1] = self.vertices[i];
            let [x2, y2] = self.vertices[(i + 1) % n];
            s += x1 * y2 - x2 * y1;
        }
        0.5 * s
    }

    /// Containment test (convex, CCW ⇒ point is left of every edge).
    pub fn contains(&self, p: &[f64]) -> bool {
        let n = self.vertices.len();
        if n < 3 {
            return false;
        }
        for i in 0..n {
            let [x1, y1] = self.vertices[i];
            let [x2, y2] = self.vertices[(i + 1) % n];
            let cross = (x2 - x1) * (p[1] - y1) - (y2 - y1) * (p[0] - x1);
            if cross < -EPS {
                return false;
            }
        }
        true
    }

    /// Tight bounding box, or `None` when empty.
    pub fn mbr(&self) -> Option<Mbr> {
        if self.is_empty() {
            return None;
        }
        let mut lo = [f64::INFINITY; 2];
        let mut hi = [f64::NEG_INFINITY; 2];
        for v in &self.vertices {
            for k in 0..2 {
                lo[k] = lo[k].min(v[k]);
                hi[k] = hi[k].max(v[k]);
            }
        }
        Some(Mbr::new(lo.to_vec(), hi.to_vec()))
    }
}

/// The exact 2-D NN-cell of `points[index]`: the data-space rectangle
/// clipped by every bisector. The exact counterpart of the LP-based MBR
/// approximation (`nncell-lp`), usable as ground truth.
pub fn voronoi_cell_2d(points: &[Vec<f64>], index: usize, space: &Mbr) -> ConvexPolygon {
    let p = &points[index];
    let mut poly = ConvexPolygon::from_rect(space);
    for (j, q) in points.iter().enumerate() {
        if j == index {
            continue;
        }
        if crate::metric::dist_sq(p, q) <= f64::EPSILON {
            continue;
        }
        let h = Halfspace::bisector(&crate::metric::Euclidean, p, q);
        poly = poly.clip(&h);
        if poly.is_empty() {
            break;
        }
    }
    poly
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Mbr {
        Mbr::new(vec![0.0, 0.0], vec![1.0, 1.0])
    }

    #[test]
    fn rect_polygon_roundtrip() {
        let p = ConvexPolygon::from_rect(&unit());
        assert_eq!(p.vertices().len(), 4);
        assert!((p.area() - 1.0).abs() < 1e-12);
        assert!(p.contains(&[0.5, 0.5]));
        assert!(!p.contains(&[1.5, 0.5]));
        let m = p.mbr().unwrap();
        assert_eq!(m, unit());
    }

    #[test]
    fn clip_halves_the_square() {
        let p = ConvexPolygon::from_rect(&unit());
        // keep x <= 0.5
        let c = p.clip(&Halfspace::new(vec![1.0, 0.0], 0.5));
        assert!((c.area() - 0.5).abs() < 1e-12);
        assert!(c.contains(&[0.25, 0.5]));
        assert!(!c.contains(&[0.75, 0.5]));
    }

    #[test]
    fn clip_to_nothing() {
        let p = ConvexPolygon::from_rect(&unit());
        let c = p.clip(&Halfspace::new(vec![1.0, 0.0], -0.5)); // x <= -0.5
        assert!(c.is_empty());
        assert_eq!(c.area(), 0.0);
        assert!(c.mbr().is_none());
        // Clipping an empty polygon stays empty (and must not panic).
        let again = c.clip(&Halfspace::new(vec![0.0, 1.0], 0.5));
        assert!(again.is_empty());
    }

    #[test]
    fn diagonal_clip_area() {
        let p = ConvexPolygon::from_rect(&unit());
        // keep x + y <= 1 → triangle of area 1/2
        let c = p.clip(&Halfspace::new(vec![1.0, 1.0], 1.0));
        assert!((c.area() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn voronoi_cells_tile_the_square() {
        let pts = vec![
            vec![0.2, 0.3],
            vec![0.7, 0.2],
            vec![0.5, 0.8],
            vec![0.9, 0.9],
            vec![0.1, 0.9],
        ];
        let total: f64 = (0..pts.len())
            .map(|i| voronoi_cell_2d(&pts, i, &unit()).area())
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "cells must tile: {total}");
        // Each point is inside its own cell.
        for i in 0..pts.len() {
            assert!(voronoi_cell_2d(&pts, i, &unit()).contains(&pts[i]));
        }
    }

    #[test]
    fn cell_membership_matches_nearest_point() {
        let pts = vec![
            vec![0.25, 0.25],
            vec![0.75, 0.25],
            vec![0.25, 0.75],
            vec![0.75, 0.75],
        ];
        let cells: Vec<ConvexPolygon> = (0..4).map(|i| voronoi_cell_2d(&pts, i, &unit())).collect();
        for gx in 0..20 {
            for gy in 0..20 {
                let q = [gx as f64 / 19.0, gy as f64 / 19.0];
                let nn = (0..4)
                    .min_by(|&a, &b| {
                        crate::metric::dist_sq(&q, &pts[a])
                            .partial_cmp(&crate::metric::dist_sq(&q, &pts[b]))
                            .unwrap()
                    })
                    .unwrap();
                assert!(
                    cells[nn].contains(&q),
                    "({q:?}) must lie in its NN's exact cell"
                );
            }
        }
    }
}
