//! The bounded data space that clips every NN-cell.
//!
//! The paper assumes Voronoi cells are "bounded by the data space (DS)"; all
//! LPs carry the data-space box constraints so unbounded Voronoi cells (of
//! hull points) still produce finite MBRs.

use crate::mbr::Mbr;

/// A box-shaped data space, by default the unit cube `[0,1]^d`.
#[derive(Clone, Debug, PartialEq)]
pub struct DataSpace {
    bounds: Mbr,
}

impl DataSpace {
    /// The unit cube `[0,1]^d`.
    pub fn unit(dim: usize) -> Self {
        assert!(dim > 0, "data space needs at least one dimension");
        Self {
            bounds: Mbr::new(vec![0.0; dim], vec![1.0; dim]),
        }
    }

    /// A custom box-shaped data space.
    pub fn from_mbr(bounds: Mbr) -> Self {
        Self { bounds }
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.bounds.dim()
    }

    /// The bounding box.
    #[inline]
    pub fn bounds(&self) -> &Mbr {
        &self.bounds
    }

    /// Lower bound of dimension `i`.
    #[inline]
    pub fn lo(&self, i: usize) -> f64 {
        self.bounds.lo()[i]
    }

    /// Upper bound of dimension `i`.
    #[inline]
    pub fn hi(&self, i: usize) -> f64 {
        self.bounds.hi()[i]
    }

    /// Volume of the data space.
    pub fn volume(&self) -> f64 {
        self.bounds.volume()
    }

    /// Whether `p` lies in the data space (closed).
    pub fn contains(&self, p: &[f64]) -> bool {
        self.bounds.contains_point(p)
    }

    /// Clamps `p` into the data space, coordinate-wise.
    pub fn clamp(&self, p: &mut [f64]) {
        for i in 0..p.len() {
            p[i] = p[i].clamp(self.lo(i), self.hi(i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_cube_basics() {
        let ds = DataSpace::unit(3);
        assert_eq!(ds.dim(), 3);
        assert_eq!(ds.volume(), 1.0);
        assert!(ds.contains(&[0.0, 0.5, 1.0]));
        assert!(!ds.contains(&[1.1, 0.5, 0.5]));
    }

    #[test]
    fn clamp_pulls_points_inside() {
        let ds = DataSpace::unit(2);
        let mut p = [1.5, -0.3];
        ds.clamp(&mut p);
        assert_eq!(p, [1.0, 0.0]);
        assert!(ds.contains(&p));
    }

    #[test]
    fn custom_bounds() {
        let ds = DataSpace::from_mbr(Mbr::new(vec![-1.0, -1.0], vec![1.0, 1.0]));
        assert_eq!(ds.volume(), 4.0);
        assert!(ds.contains(&[-0.5, 0.9]));
        assert_eq!(ds.lo(0), -1.0);
        assert_eq!(ds.hi(1), 1.0);
    }
}
