//! Property-based tests of the geometric primitives.

use nncell_geom::{dist, dist_sq, Halfspace, Mbr, Point};
use proptest::prelude::*;

fn coord() -> impl Strategy<Value = f64> {
    (0..=1000u32).prop_map(|v| v as f64 / 1000.0)
}

fn point(d: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(coord(), d)
}

fn mbr(d: usize) -> impl Strategy<Value = Mbr> {
    (point(d), point(d)).prop_map(|(a, b)| {
        let lo: Vec<f64> = a.iter().zip(b.iter()).map(|(x, y)| x.min(*y)).collect();
        let hi: Vec<f64> = a.iter().zip(b.iter()).map(|(x, y)| x.max(*y)).collect();
        Mbr::new(lo, hi)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn union_contains_both(a in mbr(4), b in mbr(4)) {
        let u = a.union(&b);
        prop_assert!(u.contains_mbr(&a));
        prop_assert!(u.contains_mbr(&b));
        prop_assert!(u.volume() + 1e-12 >= a.volume().max(b.volume()));
    }

    #[test]
    fn overlap_bounded_by_min_volume(a in mbr(3), b in mbr(3)) {
        let ov = a.overlap_volume(&b);
        prop_assert!(ov >= 0.0);
        prop_assert!(ov <= a.volume().min(b.volume()) + 1e-12);
        // symmetry
        prop_assert!((ov - b.overlap_volume(&a)).abs() < 1e-12);
    }

    #[test]
    fn intersection_consistent_with_overlap(a in mbr(3), b in mbr(3)) {
        match a.intersection(&b) {
            Some(i) => {
                prop_assert!((i.volume() - a.overlap_volume(&b)).abs() < 1e-12);
                prop_assert!(a.contains_mbr(&i));
                prop_assert!(b.contains_mbr(&i));
            }
            None => prop_assert_eq!(a.overlap_volume(&b), 0.0),
        }
    }

    #[test]
    fn distance_ordering(m in mbr(4), q in point(4)) {
        let mind = m.min_dist_sq(&q);
        let minmax = m.minmax_dist_sq(&q);
        let maxd = m.max_dist_sq(&q);
        prop_assert!(mind >= 0.0);
        prop_assert!(mind <= minmax + 1e-12);
        prop_assert!(minmax <= maxd + 1e-12);
        if m.contains_point(&q) {
            prop_assert!(mind <= 1e-12);
        }
    }

    #[test]
    fn mindist_is_real_min_to_corner_sample(m in mbr(2), q in point(2)) {
        // Sample the box densely; every sample's distance bounds MINDIST
        // from above.
        let mind = m.min_dist_sq(&q);
        for i in 0..=10 {
            for j in 0..=10 {
                let x = m.lo()[0] + (m.hi()[0] - m.lo()[0]) * i as f64 / 10.0;
                let y = m.lo()[1] + (m.hi()[1] - m.lo()[1]) * j as f64 / 10.0;
                prop_assert!(mind <= dist_sq(&q, &[x, y]) + 1e-12);
            }
        }
    }

    #[test]
    fn from_points_is_tight(pts in prop::collection::vec(point(3), 1..20)) {
        let points: Vec<Point> = pts.iter().map(|p| Point::new(p.clone())).collect();
        let m = Mbr::from_points(&points).unwrap();
        for p in &points {
            prop_assert!(m.contains_point(p));
        }
        // Tightness: every face touches some point.
        for i in 0..3 {
            prop_assert!(points.iter().any(|p| (p[i] - m.lo()[i]).abs() < 1e-12));
            prop_assert!(points.iter().any(|p| (p[i] - m.hi()[i]).abs() < 1e-12));
        }
    }

    #[test]
    fn split_preserves_volume(m in mbr(3), t in 0.01f64..0.99) {
        let at = m.lo()[1] + (m.hi()[1] - m.lo()[1]) * t;
        if let Some((l, r)) = m.split_at(1, at) {
            prop_assert!((l.volume() + r.volume() - m.volume()).abs() < 1e-12);
            prop_assert!(m.contains_mbr(&l) && m.contains_mbr(&r));
        }
    }

    #[test]
    fn bisector_classifies_like_distances(p in point(4), q in point(4), x in point(4)) {
        prop_assume!(dist_sq(&p, &q) > 1e-9);
        let h = Halfspace::bisector(&nncell_geom::Euclidean, &p, &q);
        let closer_p = dist_sq(&x, &p) <= dist_sq(&x, &q);
        // Allow the boundary tolerance band.
        if (dist_sq(&x, &p) - dist_sq(&x, &q)).abs() > 1e-9 {
            prop_assert_eq!(h.contains(&x), closer_p);
        }
    }

    #[test]
    fn triangle_inequality(a in point(5), b in point(5), c in point(5)) {
        prop_assert!(dist(&a, &b) + dist(&b, &c) + 1e-12 >= dist(&a, &c));
    }
}
