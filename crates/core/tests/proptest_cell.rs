//! Property-based tests of the paper's two lemmas on the full index.

use nncell_core::{
    linear_scan_nn, BuildConfig, NnCellIndex, Query, QueryEngine, Strategy as BuildStrategy,
};
use nncell_geom::{dist_sq, Point};
use proptest::prelude::*;

/// NN through the typed engine, with the removed shim's `Option` shape.
fn nn(idx: &NnCellIndex, q: &[f64]) -> Option<nncell_core::QueryResult> {
    QueryEngine::sequential(idx)
        .execute(&Query::nn(q))
        .ok()
        .map(|r| r.best)
}

fn coord() -> impl Strategy<Value = f64> {
    (0..=1000u32).prop_map(|v| v as f64 / 1000.0)
}

fn point_set(d: usize, min: usize, max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(prop::collection::vec(coord(), d), min..max).prop_filter_map(
        "distinct points",
        |pts| {
            for (i, p) in pts.iter().enumerate() {
                for q in pts.iter().skip(i + 1) {
                    if dist_sq(p, q) <= 1e-9 {
                        return None;
                    }
                }
            }
            Some(pts.into_iter().map(Point::new).collect())
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn lemma2_no_false_dismissals_any_strategy(
        pts in point_set(3, 3, 30),
        queries in prop::collection::vec(prop::collection::vec(coord(), 3), 8),
        strat_pick in 0usize..4,
        decompose in prop::bool::ANY,
    ) {
        let strategy = BuildStrategy::ALL[strat_pick];
        let mut cfg = BuildConfig::builder().strategy(strategy).seed(17);
        if decompose {
            cfg = cfg.decompose_pieces(4);
        }
        let cfg = cfg.build();
        let index = NnCellIndex::build(pts.clone(), cfg).unwrap();
        for q in &queries {
            let got = nn(&index, q).unwrap();
            let want = linear_scan_nn(&pts, q).unwrap();
            prop_assert!(
                (got.dist - want.dist).abs() < 1e-9,
                "{strategy:?} decompose={decompose}: {} vs {}",
                got.dist,
                want.dist
            );
        }
    }

    #[test]
    fn lemma1_heuristics_contain_correct(
        pts in point_set(2, 3, 20),
        strat_pick in 0usize..3,
    ) {
        let heuristic = [BuildStrategy::Point, BuildStrategy::Sphere, BuildStrategy::NnDirection][strat_pick];
        let correct = NnCellIndex::build(pts.clone(), BuildConfig::builder().strategy(BuildStrategy::Correct).build()).unwrap();
        let approx = NnCellIndex::build(pts.clone(), BuildConfig::builder().strategy(heuristic).build()).unwrap();
        for i in 0..pts.len() {
            let exact = &correct.cell(i).unwrap().pieces[0];
            let loose = &approx.cell(i).unwrap().pieces[0];
            prop_assert!(
                loose.contains_mbr(exact),
                "{heuristic:?} violates Lemma 1 on cell {i}: {loose:?} !⊇ {exact:?}"
            );
        }
    }

    #[test]
    fn dynamic_insert_remove_exact(
        initial in point_set(2, 4, 20),
        extra in point_set(2, 1, 8),
        del_pick in prop::collection::vec(0usize..20, 0..6),
        queries in prop::collection::vec(prop::collection::vec(coord(), 2), 6),
    ) {
        let mut index = NnCellIndex::build(
            initial.clone(),
            BuildConfig::builder().strategy(BuildStrategy::Sphere).seed(23).build(),
        )
        .unwrap();
        let mut live: Vec<(usize, Point)> =
            initial.iter().cloned().enumerate().collect();
        // Interleave inserts and removals.
        for (step, p) in extra.iter().enumerate() {
            // Skip exact duplicates of anything live (distinctness assumption).
            if live.iter().any(|(_, q)| dist_sq(p, q) <= 1e-9) {
                continue;
            }
            let id = index.insert(p.clone()).unwrap();
            live.push((id, p.clone()));
            if let Some(&k) = del_pick.get(step) {
                if !live.is_empty() {
                    let pos = k % live.len();
                    let (victim, _) = live[pos];
                    prop_assert!(index.remove(victim));
                    live.remove(pos);
                }
            }
        }
        let reference: Vec<Point> = live.iter().map(|(_, p)| p.clone()).collect();
        for q in &queries {
            match (nn(&index, q), linear_scan_nn(&reference, q)) {
                (Some(got), Some(want)) => prop_assert!(
                    (got.dist - want.dist).abs() < 1e-9,
                    "dynamic mix inexact at {q:?}"
                ),
                (None, None) => {}
                (a, b) => prop_assert!(false, "emptiness disagreement: {a:?} vs {b:?}"),
            }
        }
    }
}
