//! Proves the engine's steady-state allocation contract with a counting
//! global allocator: once a worker's [`nncell_core::QueryScratch`] is warm,
//! `execute_with` performs **zero** heap allocations for `k = 1` queries and
//! exactly one (the response's `rest` vector) for `k > 1` — and the same
//! holds with a **live metrics registry attached**, slow-query ring armed at
//! threshold 0 (every query takes the ring's copy path). Because the query
//! path is threaded with tracing span sites, this is also the proof that
//! tracing with sampling off (the default) allocates nothing.
//!
//! The counter is gated by an `AtomicBool` so the surrounding test harness
//! (and index construction) does not pollute the count. This file contains a
//! single `#[test]` — a second test running concurrently in this binary
//! would allocate while the gate is open.

use nncell_core::{BuildConfig, NnCellIndex, Query, QueryScratch, Registry, Strategy};
use nncell_geom::Point;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Runs `f` with the counter open and returns how many allocations it made.
fn count_allocs(f: impl FnOnce()) -> u64 {
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    f();
    COUNTING.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

#[test]
fn warm_scratch_queries_do_not_allocate() {
    let pts: Vec<Point> = (0..400)
        .map(|i| {
            Point::new(vec![
                ((i * 37) % 400) as f64 / 400.0 + 0.001,
                ((i * 113) % 400) as f64 / 400.0 + 0.001,
                ((i * 59) % 400) as f64 / 400.0 + 0.001,
            ])
        })
        .collect();
    let mut index =
        NnCellIndex::build(pts, BuildConfig::builder().strategy(Strategy::CorrectPruned).seed(7).build()).unwrap();
    let nn_queries: Vec<Query> = (0..64)
        .map(|i| {
            Query::nn(vec![
                ((i * 7) % 64) as f64 / 64.0 + 0.004,
                ((i * 19) % 64) as f64 / 64.0 + 0.004,
                ((i * 31) % 64) as f64 / 64.0 + 0.004,
            ])
        })
        .collect();
    let knn_queries: Vec<Query> = nn_queries
        .iter()
        .map(|q| Query::knn(q.point().to_vec(), 5))
        .collect();

    // The engine's query path carries tracing span sites (engine.query,
    // knn growth, MINDIST rank, scan fallback). With sampling disabled —
    // the default this test runs under — every site must stay an inert
    // thread-local flag read, so the zero-alloc assertions below are
    // also the tracing-off overhead proof.
    assert_eq!(
        nncell_obs::trace::sampling(),
        0,
        "tracing must be disabled for the zero-alloc contract"
    );

    let mut scratch = QueryScratch::new();
    {
        let engine = index.engine().with_threads(1);
        // Warm-up pass: buffers grow to their high-water mark.
        for q in nn_queries.iter().chain(&knn_queries) {
            engine.execute_with(&mut scratch, q).unwrap();
            assert!(
                !engine.execute_with(&mut scratch, q).unwrap().stats.fallback,
                "fallback would scan via a fresh Vec; this test wants the hot path"
            );
        }

        // Steady state, k = 1: zero heap allocations.
        let allocs = count_allocs(|| {
            for q in &nn_queries {
                let r = engine.execute_with(&mut scratch, q).unwrap();
                assert!(r.rest.is_empty());
                std::hint::black_box(&r);
            }
        });
        assert_eq!(
            allocs, 0,
            "k=1 steady state must not allocate ({allocs} allocations over {} queries)",
            nn_queries.len()
        );

        // Steady state, k > 1: exactly the response's `rest` vector per query.
        let allocs = count_allocs(|| {
            for q in &knn_queries {
                let r = engine.execute_with(&mut scratch, q).unwrap();
                assert_eq!(r.len(), 5);
                std::hint::black_box(&r);
            }
        });
        assert!(
            allocs <= knn_queries.len() as u64,
            "k>1 steady state allocates at most the `rest` vector per query \
             ({allocs} allocations over {} queries)",
            knn_queries.len()
        );
    }

    // Same contract with a live registry: latency/candidate/page recording
    // is relaxed atomics, and the slow-query ring (armed at threshold 0 so
    // *every* query takes the capture path) copies into preallocated slots.
    let registry = Registry::new();
    index.attach_metrics(registry.clone());
    let metrics_engine = index.engine().with_threads(1);
    index
        .metrics()
        .expect("registry just attached")
        .engine()
        .slow_log()
        .set_threshold_ns(0);
    // One warm-up pass through the instrumented path (first recording of a
    // histogram bucket touches no heap either, but keep symmetry).
    for q in &nn_queries {
        metrics_engine.execute_with(&mut scratch, q).unwrap();
    }
    let allocs = count_allocs(|| {
        for q in &nn_queries {
            let r = metrics_engine.execute_with(&mut scratch, q).unwrap();
            assert!(r.rest.is_empty());
            std::hint::black_box(&r);
        }
    });
    assert_eq!(
        allocs, 0,
        "k=1 steady state with a live registry and armed slow-query ring \
         must not allocate ({allocs} allocations over {} queries)",
        nn_queries.len()
    );
    // The recording actually happened: counters saw every instrumented query.
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter("nncell_queries_total"),
        Some(2 * nn_queries.len() as u64)
    );
    let slow = index
        .metrics()
        .expect("registry attached")
        .engine()
        .slow_log();
    assert_eq!(slow.total_seen(), 2 * nn_queries.len() as u64);
    assert!(!slow.drain().is_empty());
}
