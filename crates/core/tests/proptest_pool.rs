//! Exactness of the sub-quadratic build path and the radius query.
//!
//! The approximate-neighbor constraint pool drops rivals from the LP, and
//! Lemma 1 says dropping rivals only *grows* cells — so a pool-built index
//! is still a covering and must answer every query **bit-identically** to
//! an exhaustive-built one (the answers are properties of the point set,
//! not of the cell approximations). These properties pin that down for
//! static builds, for build-then-insert with the incremental re-solve
//! rule, and for the new radius query against a linear scan.

use nncell_core::{
    linear_scan_knn, BuildConfig, ConstraintPool, NnCellIndex, Query, QueryEngine, QueryError,
    ShardedIndex, Strategy as BuildStrategy,
};
use nncell_geom::{dist_sq, Point};
use proptest::prelude::*;

fn coord() -> impl Strategy<Value = f64> {
    (0..=1000u32).prop_map(|v| v as f64 / 1000.0)
}

fn point_set(d: usize, min: usize, max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(prop::collection::vec(coord(), d), min..max).prop_filter_map(
        "distinct points",
        |pts| {
            for (i, p) in pts.iter().enumerate() {
                for q in pts.iter().skip(i + 1) {
                    if dist_sq(p, q) <= 1e-9 {
                        return None;
                    }
                }
            }
            Some(pts.into_iter().map(Point::new).collect())
        },
    )
}

fn exhaustive_cfg() -> BuildConfig {
    BuildConfig::builder()
        .strategy(BuildStrategy::NnDirection)
        .seed(11)
        .build()
}

fn pooled_cfg(k: usize) -> BuildConfig {
    BuildConfig::builder()
        .strategy(BuildStrategy::NnDirection)
        .constraint_pool(ConstraintPool::ApproxKnn { k })
        .seed(11)
        .build()
}

/// Both indexes must answer `nn` and a spread of `knn` queries with the
/// same ids and bit-equal distances.
fn assert_answer_parity(a: &NnCellIndex, b: &NnCellIndex, queries: &[Vec<f64>], tag: &str) {
    let ea = QueryEngine::sequential(a);
    let eb = QueryEngine::sequential(b);
    let n = a.len();
    for q in queries {
        for k in [1usize, 2, (n / 2).max(1), n] {
            let ra = ea.execute(&Query::knn(q.clone(), k));
            let rb = eb.execute(&Query::knn(q.clone(), k));
            let (ra, rb) = match (ra, rb) {
                (Ok(ra), Ok(rb)) => (ra, rb),
                (ra, rb) => panic!("{tag}: k={k} q={q:?}: {ra:?} vs {rb:?}"),
            };
            let ids_a: Vec<(usize, u64)> =
                ra.iter().map(|r| (r.id, r.dist.to_bits())).collect();
            let ids_b: Vec<(usize, u64)> =
                rb.iter().map(|r| (r.id, r.dist.to_bits())).collect();
            assert_eq!(ids_a, ids_b, "{tag}: k={k} q={q:?} answers diverged");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Static build, d = 2: pool-built ≡ exhaustive-built.
    #[test]
    fn pool_build_matches_exhaustive_d2(
        pts in point_set(2, 8, 40),
        queries in prop::collection::vec(prop::collection::vec(coord(), 2), 6),
        k in 2usize..12,
    ) {
        let ex = NnCellIndex::build(pts.clone(), exhaustive_cfg()).unwrap();
        let po = NnCellIndex::build(pts.clone(), pooled_cfg(k)).unwrap();
        assert_answer_parity(&ex, &po, &queries, "static d=2");
    }

    /// Static build, d = 8 (where the pool floors and the degeneracy
    /// fallback do real work).
    #[test]
    fn pool_build_matches_exhaustive_d8(
        pts in point_set(8, 20, 40),
        queries in prop::collection::vec(prop::collection::vec(coord(), 8), 4),
        k in 2usize..8,
    ) {
        let ex = NnCellIndex::build(pts.clone(), exhaustive_cfg()).unwrap();
        let po = NnCellIndex::build(pts.clone(), pooled_cfg(k)).unwrap();
        assert_answer_parity(&ex, &po, &queries, "static d=8");
    }

    /// Build half, insert the rest one by one: the pooled insert path
    /// (pooled cell compute + the bisector-cut incremental re-solve rule)
    /// must land on the same answers as the exhaustive dynamic path.
    #[test]
    fn pooled_insert_matches_exhaustive_insert(
        pts in point_set(2, 10, 30),
        queries in prop::collection::vec(prop::collection::vec(coord(), 2), 6),
    ) {
        let split = pts.len() / 2;
        let (base, rest) = pts.split_at(split);
        let mut ex = NnCellIndex::build(base.to_vec(), exhaustive_cfg()).unwrap();
        let mut po = NnCellIndex::build(base.to_vec(), pooled_cfg(4)).unwrap();
        for p in rest {
            ex.insert(p.clone()).unwrap();
            po.insert(p.clone()).unwrap();
        }
        assert_answer_parity(&ex, &po, &queries, "build-then-insert");
    }

    /// `Query::radius` against a linear scan, on pool-built unsharded and
    /// sharded surfaces: same ids, bit-equal distances, ascending
    /// `(dist, id)`; an empty ball is the typed `EmptyRadius`.
    #[test]
    fn radius_matches_linear_scan(
        pts in point_set(3, 5, 40),
        centers in prop::collection::vec(prop::collection::vec(coord(), 3), 4),
        r_milli in 0u32..900,
    ) {
        let r = r_milli as f64 / 1000.0;
        let idx = NnCellIndex::build(pts.clone(), pooled_cfg(6)).unwrap();
        let engine = QueryEngine::sequential(&idx);
        let sharded = ShardedIndex::build(pts.clone(), 3, pooled_cfg(6)).unwrap();
        for c in &centers {
            let mut want = linear_scan_knn(&pts, c, pts.len());
            want.retain(|x| x.dist <= r);
            let got = engine.execute(&Query::radius(c.clone(), r));
            let got_sharded = sharded.query(&Query::radius(c.clone(), r));
            if want.is_empty() {
                prop_assert_eq!(got.unwrap_err(), QueryError::EmptyRadius);
                prop_assert_eq!(got_sharded.unwrap_err(), QueryError::EmptyRadius);
                continue;
            }
            let want_ids: Vec<(usize, u64)> =
                want.iter().map(|x| (x.id, x.dist.to_bits())).collect();
            let got_ids: Vec<(usize, u64)> = got
                .unwrap()
                .iter()
                .map(|x| (x.id, x.dist.to_bits()))
                .collect();
            prop_assert_eq!(&want_ids, &got_ids, "unsharded ball at {:?} r={}", c, r);
            let shard_ids: Vec<(usize, u64)> = got_sharded
                .unwrap()
                .iter()
                .map(|x| (x.id, x.dist.to_bits()))
                .collect();
            prop_assert_eq!(&want_ids, &shard_ids, "sharded ball at {:?} r={}", c, r);
        }
    }
}
