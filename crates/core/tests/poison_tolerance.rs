//! Panic isolation at the serving layer: a reader thread that panics
//! mid-query must not take the index down with it. The copy-on-write
//! protocol makes this structural — readers hold the [`SnapshotCell`]
//! slot lock only for an `Arc` refcount bump, never across the query —
//! so a panicking reader cannot poison the slot, and the single writer's
//! mutex takes over poison rather than propagating it. These tests pin
//! that behaviour end-to-end through the public `ShardedIndex` API,
//! mirroring what the HTTP server's per-request `catch_unwind` relies
//! on: request N panics, requests N+1.. (reads *and* writes) still work.
//!
//! [`SnapshotCell`]: nncell_core::snapshot::SnapshotCell

use nncell_core::{BuildConfig, Query, ShardedIndex, Strategy};
use nncell_geom::Point;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

fn cfg() -> BuildConfig {
    BuildConfig::builder().strategy(Strategy::Sphere).seed(11).build()
}

fn grid(n: usize, dim: usize) -> Vec<Point> {
    (0..n)
        .map(|i| {
            Point::new(
                (0..dim)
                    .map(|j| ((i * 31 + j * 7) % 97) as f64 / 97.0)
                    .collect::<Vec<_>>(),
            )
        })
        .collect()
}

/// A reader panics after its query completes (mid-request, from the
/// server's point of view). Later reads on other threads and the single
/// writer must be completely unaffected — same answers, writes visible.
#[test]
fn reader_panic_mid_query_leaves_index_serving() {
    let idx = Arc::new(ShardedIndex::build(grid(40, 3), 3, cfg()).unwrap());
    let probe = Query::nn(vec![0.4, 0.5, 0.6]);
    let before = idx.query(&probe).unwrap().best;

    // Several readers die mid-flight, holding loaded snapshots at the
    // moment of the panic.
    for t in 0..4 {
        let idx = Arc::clone(&idx);
        let probe = probe.clone();
        let died = std::thread::spawn(move || {
            catch_unwind(AssertUnwindSafe(|| {
                let r = idx.query(&probe).unwrap();
                panic!("reader {t} dies mid-request holding result id {}", r.best.id);
            }))
        })
        .join()
        .expect("catch_unwind contains the panic");
        assert!(died.is_err(), "reader {t} was supposed to panic");
    }

    // Reads still serve the same answer bit-for-bit.
    let after = idx.query(&probe).unwrap().best;
    assert_eq!(before.id, after.id);
    assert_eq!(
        before.dist.to_bits(),
        after.dist.to_bits(),
        "answers must not drift after reader panics"
    );

    // The single writer still makes progress and its write is visible.
    let target = vec![0.4, 0.5, 0.6];
    let id = idx.insert(Point::new(target.clone())).unwrap();
    let hit = idx.query(&Query::nn(target)).unwrap().best;
    assert_eq!(hit.id, id, "post-panic insert must win an exact-match query");
    assert!(hit.dist < 1e-12);
}

/// Readers panicking *concurrently* with a writer: the writer finishes
/// every insert and the final index answers exactly.
#[test]
fn concurrent_reader_panics_do_not_block_the_writer() {
    let idx = Arc::new(ShardedIndex::build(grid(20, 2), 2, cfg()).unwrap());
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    std::thread::scope(|s| {
        for _ in 0..2 {
            let idx = Arc::clone(&idx);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let _ = catch_unwind(AssertUnwindSafe(|| {
                        let r = idx.query(&Query::nn(vec![0.3, 0.8])).unwrap();
                        panic!("die holding id {}", r.best.id);
                    }));
                }
            });
        }
        for i in 0..30 {
            let p = Point::new(vec![(i as f64) / 30.0, 0.5]);
            idx.insert(p).expect("writer must not be wedged by reader panics");
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });

    assert_eq!(idx.len(), 50);
    // Exactness survives: the nearest inserted point wins.
    let hit = idx.query(&Query::nn(vec![10.0 / 30.0, 0.5])).unwrap().best;
    assert!(hit.dist < 1e-12, "inserted point must be found exactly");
}
