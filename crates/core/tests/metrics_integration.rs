//! End-to-end observability checks: with a registry attached, every counter
//! and histogram in the snapshot agrees with the ground truth the engine and
//! index already report (`QueryResponse` stats, `BuildStats::lp`, the
//! recovery report) — the registry is a mirror, never a second opinion.

use nncell_core::{
    BuildConfig, DurableIndex, NnCellIndex, Query, QueryScratch, Registry, Strategy,
};
use nncell_geom::Point;
use std::sync::Arc;

fn grid(n: usize) -> Vec<Point> {
    (0..n)
        .map(|i| {
            Point::new(vec![
                ((i * 37) % n) as f64 / n as f64 + 0.003,
                ((i * 113) % n) as f64 / n as f64 + 0.003,
            ])
        })
        .collect()
}

fn cfg() -> BuildConfig {
    BuildConfig::builder().strategy(Strategy::Sphere).seed(11).build()
}

#[test]
fn registry_counters_agree_with_engine_and_lp_totals() {
    let mut index = NnCellIndex::build(grid(120), cfg()).unwrap();
    let registry = Registry::new();
    index.attach_metrics(registry.clone());
    // Attaching twice is a harmless no-op.
    index.attach_metrics(registry.clone());

    // Mixed workload: in-space queries, a k-NN, an out-of-space fallback,
    // and two malformed queries.
    let queries = vec![
        Query::nn([0.21, 0.34]),
        Query::nn([0.91, 0.13]),
        Query::knn(vec![0.4, 0.6], 5),
        Query::nn([2.5, 2.5]), // out of space → exact-scan fallback
        Query::nn([f64::NAN, 0.2]),
        Query::knn(vec![0.1, 0.2, 0.3], 2), // dim mismatch
    ];
    let engine = index.engine().with_threads(1);
    let mut scratch = QueryScratch::new();
    let results: Vec<_> = queries
        .iter()
        .map(|q| engine.execute_with(&mut scratch, q))
        .collect();

    let ok: Vec<_> = results.iter().filter_map(|r| r.as_ref().ok()).collect();
    let errors = results.iter().filter(|r| r.is_err()).count() as u64;
    let fallbacks = ok.iter().filter(|r| r.stats.fallback).count() as u64;
    let total_candidates: u64 = ok.iter().map(|r| r.stats.candidates as u64).sum();
    let total_pages: u64 = ok.iter().map(|r| r.stats.pages).sum();

    let snap = registry.snapshot();
    assert_eq!(
        snap.counter("nncell_queries_total"),
        Some(queries.len() as u64)
    );
    assert_eq!(snap.counter("nncell_query_errors_total"), Some(errors));
    assert_eq!(snap.counter("nncell_query_fallback_total"), Some(fallbacks));
    assert_eq!(snap.counter("nncell_query_fallback_total"), Some(engine.fallback_queries()));
    let latency = snap.histogram("nncell_query_latency_ns").unwrap();
    assert_eq!(latency.count(), ok.len() as u64);
    assert!(latency.sum > 0);
    let candidates = snap.histogram("nncell_query_candidates").unwrap();
    assert_eq!(candidates.count(), ok.len() as u64);
    assert_eq!(candidates.sum, total_candidates);
    let pages = snap.histogram("nncell_query_pages").unwrap();
    assert_eq!(pages.sum, total_pages);

    // LP counters were seeded from the build and mirror CellLpStats exactly.
    let lp = index.build_stats().lp;
    assert_eq!(
        snap.counter("nncell_lp_calls_total"),
        Some(lp.lp_calls as u64)
    );
    assert_eq!(
        snap.counter("nncell_lp_constraints_total"),
        Some(lp.constraints as u64)
    );
    assert_eq!(
        snap.counter("nncell_lp_fallback_total"),
        Some(lp.fallback_lps as u64)
    );
    assert_eq!(
        snap.counter("nncell_lp_clamped_extents_total"),
        Some(lp.clamped_extents as u64)
    );

    // Structural gauges match the accessors.
    assert_eq!(snap.gauge("nncell_live_points"), Some(index.len() as i64));
    assert_eq!(
        snap.gauge("nncell_cell_tree_pages"),
        Some(index.cell_tree_pages() as i64)
    );

    // Dynamic updates keep the mirror in sync (insert + remove both
    // recompute cells through the instrumented merge sites).
    let id = index.insert(Point::new(vec![0.511, 0.377])).unwrap();
    index.remove(id);
    let snap = registry.snapshot();
    let lp = index.build_stats().lp;
    assert_eq!(
        snap.counter("nncell_lp_calls_total"),
        Some(lp.lp_calls as u64)
    );
    assert_eq!(
        snap.counter("nncell_lp_constraints_total"),
        Some(lp.constraints as u64)
    );
    assert_eq!(snap.gauge("nncell_live_points"), Some(index.len() as i64));
    assert_eq!(
        snap.gauge("nncell_cell_tree_pages"),
        Some(index.cell_tree_pages() as i64)
    );

    // The live LP chain metrics start at attach time (the build pre-dates
    // the registry), so only the insert/remove recomputations above show up
    // — but they must show up. The tree counters mirror the cost trackers'
    // lifetime totals (reads happened during the queries above).
    assert!(snap.counter("nncell_lp_solver_attempts_total").unwrap() > 0);
    assert!(snap.counter("nncell_cell_tree_page_reads_total").unwrap() > 0);

    // Both render targets name every metric.
    let prom = snap.to_prometheus();
    let json = snap.to_json();
    for name in [
        "nncell_queries_total",
        "nncell_query_latency_ns",
        "nncell_lp_calls_total",
        "nncell_live_points",
        "nncell_cell_tree_page_reads_total",
    ] {
        assert!(prom.contains(name), "prometheus output missing {name}");
        assert!(json.contains(name), "json output missing {name}");
    }
}

#[test]
fn engine_without_metrics_records_nothing() {
    let mut index = NnCellIndex::build(grid(60), cfg()).unwrap();
    let registry = Registry::new();
    index.attach_metrics(registry.clone());
    let engine = index.engine().with_threads(1).without_metrics();
    engine.execute(&Query::nn([0.3, 0.4])).unwrap();
    assert_eq!(registry.snapshot().counter("nncell_queries_total"), Some(0));
}

#[test]
fn slow_query_ring_captures_over_threshold_queries() {
    let mut index = NnCellIndex::build(grid(60), cfg()).unwrap();
    let registry = Registry::new();
    index.attach_metrics(registry.clone());
    let slow = Arc::clone(index.metrics().unwrap().engine().slow_log());
    slow.set_threshold_ns(0); // capture everything
    let engine = index.engine().with_threads(1);
    engine.execute(&Query::knn(vec![0.42, 0.17], 3)).unwrap();
    engine.execute(&Query::nn([0.8, 0.8])).unwrap();
    assert_eq!(slow.total_seen(), 2);
    let entries = slow.drain();
    assert_eq!(entries.len(), 2);
    assert_eq!(entries[0].k, 3);
    assert_eq!(entries[0].point, vec![0.42, 0.17]);
    assert!(entries[0].candidates > 0);
    // Errors never reach the ring.
    assert!(engine.execute(&Query::nn([f64::NAN, 0.0])).is_err());
    assert_eq!(slow.total_seen(), 2);
}

#[test]
fn durable_stack_reports_wal_and_rotation_counters() {
    let dir = std::env::temp_dir().join(format!(
        "nncell-metrics-durable-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let mut d = NnCellIndex::open_durable(&dir, 2, cfg()).unwrap();
    let registry = Registry::new();
    d.attach_metrics(registry.clone());
    for i in 0..6 {
        d.insert(Point::new(vec![
            (i as f64 + 0.5) / 7.0,
            ((i * 3 % 7) as f64 + 0.5) / 7.0,
        ]))
        .unwrap();
    }
    d.remove(0).unwrap();
    let snap = registry.snapshot();
    assert_eq!(snap.counter("nncell_wal_appends_total"), Some(7));
    assert_eq!(snap.counter("nncell_wal_fsyncs_total"), Some(7));
    assert_eq!(snap.counter("nncell_wal_replayed_total"), Some(0));
    assert_eq!(snap.counter("nncell_snapshot_rotations_total"), Some(0));

    // Checkpoint rotates the WAL; the fresh writer stays instrumented.
    d.checkpoint().unwrap();
    d.insert(Point::new(vec![0.93, 0.61])).unwrap();
    let snap = registry.snapshot();
    assert_eq!(snap.counter("nncell_snapshot_rotations_total"), Some(1));
    assert_eq!(snap.counter("nncell_wal_appends_total"), Some(8));
    drop(d);

    // Reopen: the replay counters are seeded from the recovery report.
    let mut d = DurableIndex::open(&dir).unwrap();
    let registry = Registry::new();
    d.attach_metrics(registry.clone());
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter("nncell_wal_replayed_total"),
        Some(d.recovery().replayed as u64)
    );
    assert_eq!(snap.counter("nncell_wal_replay_dropped_total"), Some(0));
    assert_eq!(snap.gauge("nncell_live_points"), Some(d.len() as i64));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn build_profile_times_every_phase() {
    let index = NnCellIndex::build(
        grid(80),
        BuildConfig::builder().strategy(Strategy::Sphere)
            .seed(3)
            .threads(2).build(),
    )
    .unwrap();
    let profile = index.build_stats().profile;
    assert_eq!(profile.constraint_selection.calls, 80);
    assert_eq!(profile.lp_solve.calls, 80);
    assert!(profile.lp_solve.nanos > 0);
    assert_eq!(profile.decomposition.calls, 0); // decomposition off
    assert_eq!(profile.bulk_load.calls, 1);
    assert_eq!(profile.batches, 2);
    assert!(profile.batch_max_nanos <= profile.batch_total_nanos);
    assert!(profile.batch_max_nanos > 0);
}
