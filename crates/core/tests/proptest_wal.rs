//! Property tests of WAL replay against a purely in-memory reference.
//!
//! A random interleaving of inserts, duplicate inserts, and removes —
//! removes of the id inserted one step earlier, of long-dead ids, and of
//! ids that were never assigned — is applied simultaneously to an
//! in-memory [`NnCellIndex`] and to a [`DurableIndex`] over the
//! fault-injection file system. The durable handle is then dropped
//! *without* a checkpoint (the crash path) and recovered. Recovery must
//! reproduce the in-memory index exactly: the same id→point slots, the
//! same liveness, the same query answers, and — because replay re-runs the
//! very same cell computations from the same empty starting state — the
//! same [`CellLpStats`] counters to the last LP call.

use nncell_core::durable::DurableError;
use nncell_core::vfs::{FaultSchedule, FaultVfs, Vfs};
use nncell_core::{
    linear_scan_nn, BuildConfig, NnCellIndex, Query, QueryEngine, Strategy as BuildStrategy,
};
use nncell_geom::{Euclidean, Point};
use proptest::prelude::*;
use proptest::TestCaseError;
use std::path::Path;
use std::sync::Arc;

const DIM: usize = 2;

fn cfg() -> BuildConfig {
    BuildConfig::builder().strategy(BuildStrategy::Sphere).seed(23).build()
}

/// Distinct lattice points, so inserts never collide by accident — the
/// only duplicates are the deliberate ones the op stream re-inserts.
fn lattice_point(i: usize) -> Point {
    Point::new(vec![
        (i % 89) as f64 / 100.0 + 0.004,
        (i / 89 % 89) as f64 / 100.0 + 0.004,
    ])
}

/// One op: `(roll, pick)`. `roll` selects the action, `pick` selects a
/// target id where one is needed.
type RawOp = (u8, u8);

#[derive(Debug)]
enum Op {
    Insert,
    /// Re-insert the point of a previously assigned id — must be rejected
    /// by validation on both sides and journal nothing.
    DuplicateInsert(usize),
    /// Remove an arbitrary id: live, dead, or never assigned.
    Remove(usize),
    /// Remove the id assigned by the immediately preceding insert.
    RemoveJustInserted,
}

/// Decodes the raw stream into ops, tracking how many ids exist so that
/// targeted actions have something to target.
fn decode(raw: &[RawOp]) -> Vec<Op> {
    let mut assigned = 0usize;
    let mut ops = Vec::with_capacity(raw.len());
    for &(roll, pick) in raw {
        if roll < 110 || assigned == 0 {
            ops.push(Op::Insert);
            assigned += 1;
        } else if roll < 140 {
            ops.push(Op::DuplicateInsert(pick as usize % assigned));
        } else if roll < 225 {
            // +2 reaches ids that were never assigned.
            ops.push(Op::Remove(pick as usize % (assigned + 2)));
        } else {
            ops.push(Op::RemoveJustInserted);
        }
    }
    ops
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn recovery_reproduces_the_in_memory_index_exactly(
        raw in prop::collection::vec((0u8..=255, 0u8..=255), 1..60),
        queries in prop::collection::vec(prop::collection::vec(0u32..=100, DIM), 6),
    ) {
        let ops = decode(&raw);

        let mut reference = NnCellIndex::<Euclidean>::new(DIM, cfg());
        let vfs: Arc<dyn Vfs> = Arc::new(FaultVfs::new(FaultSchedule::none(41)));
        let dir = Path::new("/db");
        let mut durable =
            NnCellIndex::open_durable_with_vfs(Arc::clone(&vfs), dir, DIM, cfg()).unwrap();

        let mut next = 0usize; // lattice cursor == next id to assign
        let mut last_inserted: Option<usize> = None;
        for op in &ops {
            match op {
                Op::Insert => {
                    let p = lattice_point(next);
                    let got = durable.insert(p.clone());
                    let want = reference.insert(p);
                    prop_assert_eq!(got.unwrap(), want.unwrap());
                    last_inserted = Some(next);
                    next += 1;
                }
                Op::DuplicateInsert(id) => {
                    let p = lattice_point(*id);
                    let wal_before = durable.wal_records();
                    let got = durable.insert(p.clone());
                    let want = reference.insert(p);
                    // Re-inserting a *live* point is a duplicate; if `id`
                    // was removed meanwhile, both sides accept it back —
                    // either way they must agree, and a rejection must not
                    // touch the journal.
                    match (got, want) {
                        (Ok(a), Ok(b)) => {
                            prop_assert_eq!(a, b);
                            last_inserted = Some(next);
                            next += 1;
                        }
                        (Err(DurableError::Invalid(_)), Err(_)) => {
                            prop_assert_eq!(durable.wal_records(), wal_before,
                                "rejected insert reached the WAL");
                        }
                        (got, want) => {
                            return Err(TestCaseError::Fail(format!(
                                "divergent duplicate insert: {got:?} vs {want:?}"
                            )));
                        }
                    }
                }
                Op::Remove(id) => {
                    let removed = durable.remove(*id).unwrap();
                    prop_assert_eq!(removed, reference.remove(*id));
                }
                Op::RemoveJustInserted => {
                    if let Some(id) = last_inserted.take() {
                        let removed = durable.remove(id).unwrap();
                        prop_assert_eq!(removed, reference.remove(id));
                    }
                }
            }
        }

        // Crash: drop without checkpoint, recover from WAL replay alone.
        drop(durable);
        let recovered =
            NnCellIndex::open_durable_with_vfs(Arc::clone(&vfs), dir, DIM, cfg()).unwrap();

        // Slot-exact state equality.
        prop_assert_eq!(recovered.points().len(), reference.points().len());
        prop_assert_eq!(recovered.len(), reference.len());
        for i in 0..reference.points().len() {
            prop_assert_eq!(recovered.is_live(i), reference.is_live(i), "liveness of id {}", i);
            prop_assert_eq!(
                recovered.points()[i].as_slice(),
                reference.points()[i].as_slice(),
                "coords of id {}", i
            );
        }

        // Replay redid the same LP work from the same empty start: the
        // counters must agree exactly.
        prop_assert_eq!(
            recovered.build_stats().lp,
            reference.build_stats().lp,
            "replay did different LP work than the live run"
        );

        // And queries agree with both the reference and a linear scan.
        let live: Vec<Point> = (0..reference.points().len())
            .filter(|&i| reference.is_live(i))
            .map(|i| reference.points()[i].clone())
            .collect();
        for q in &queries {
            let q: Vec<f64> = q.iter().map(|&v| v as f64 / 100.0).collect();
            let got = QueryEngine::sequential(recovered.index())
                .execute(&Query::nn(q.clone()))
                .ok()
                .map(|r| r.best);
            match (got, linear_scan_nn(&live, &q)) {
                (Some(got), Some(want)) => prop_assert!(
                    (got.dist - want.dist).abs() < 1e-9,
                    "query {:?}: {} vs scan {}", q, got.dist, want.dist
                ),
                (None, None) => {}
                (got, want) => {
                    return Err(TestCaseError::Fail(format!(
                        "query {q:?} disagreement: {got:?} vs {want:?}"
                    )));
                }
            }
        }
    }
}
