//! Trace propagation through the index stack: a sampled trace started
//! above a [`ShardedIndex`] query must come out of the flight recorder
//! as one unbroken tree — the same trace id on the per-shard fan-out
//! spans, the engine spans underneath them, batch workers on other
//! threads, and the WAL append on the write path. Slow-query entries
//! must carry the trace id as an exemplar.

use nncell_core::{BuildConfig, NnCellIndex, Query, Registry, ShardedIndex, Strategy};
use nncell_geom::Point;
use nncell_obs::trace;
use nncell_obs::SpanContext;
use std::sync::Arc;

fn grid(n: usize) -> Vec<Point> {
    (0..n)
        .map(|i| {
            Point::new(vec![
                ((i * 37) % n) as f64 / n as f64 + 0.003,
                ((i * 113) % n) as f64 / n as f64 + 0.003,
            ])
        })
        .collect()
}

fn cfg() -> BuildConfig {
    BuildConfig::builder().strategy(Strategy::Sphere).seed(11).build()
}

/// Spans recorded for one trace, oldest-first.
fn spans_of(trace_id: u128) -> Vec<nncell_obs::SpanRecord> {
    trace::flight()
        .snapshot()
        .into_iter()
        .filter(|r| r.trace == trace_id)
        .collect()
}

/// A forced root: the sampled upstream context makes recording
/// unconditional, so these tests are independent of the global sampling
/// rate (and of each other — each uses its own trace id).
fn forced_root(trace_id: u128) -> nncell_obs::SpanGuard {
    trace::init();
    trace::root_from(
        "test.request",
        Some(SpanContext {
            trace: trace_id,
            span: 0x1,
            sampled: true,
        }),
    )
}

#[test]
fn sharded_fanout_carries_the_trace_id_per_shard() {
    const TRACE: u128 = 0x7e57_0001;
    let idx = ShardedIndex::build(grid(60), 3, cfg()).unwrap();

    let root_span;
    {
        let root = forced_root(TRACE);
        root_span = root.context().expect("recording").span;
        idx.query(&Query::knn(vec![0.4, 0.6], 3)).unwrap();
    }

    let spans = spans_of(TRACE);
    let root = spans
        .iter()
        .find(|r| r.name == "test.request")
        .expect("root recorded");
    assert_eq!(root.span, root_span);

    // One child span per shard consulted, all under the root interval.
    let shard_spans: Vec<_> = spans.iter().filter(|r| r.name == "shard.query").collect();
    assert_eq!(shard_spans.len(), 3, "one span per shard");
    let mut seen_shards: Vec<u64> = shard_spans
        .iter()
        .map(|s| {
            assert_eq!(s.parent, root.span, "shard span hangs off the root");
            assert!(root.start_ns <= s.start_ns && s.end_ns <= root.end_ns);
            s.live_args()
                .iter()
                .find(|(k, _)| *k == "shard")
                .map(|&(_, v)| v)
                .expect("shard arg")
        })
        .collect();
    seen_shards.sort_unstable();
    assert_eq!(seen_shards, vec![0, 1, 2]);

    // The engine spans nest under the shard spans, same trace.
    let engine_spans: Vec<_> = spans.iter().filter(|r| r.name == "engine.query").collect();
    assert_eq!(engine_spans.len(), 3);
    for e in engine_spans {
        assert!(
            shard_spans.iter().any(|s| s.span == e.parent),
            "engine span parented by a shard span"
        );
    }
}

#[test]
fn batch_workers_adopt_the_callers_trace() {
    const TRACE: u128 = 0x7e57_0002;
    let index = NnCellIndex::build(grid(60), cfg()).unwrap();
    let queries: Vec<Query> = (0..4)
        .map(|i| Query::knn(vec![0.2 + 0.1 * i as f64, 0.5], 2))
        .collect();

    {
        let _root = forced_root(TRACE);
        // Two worker threads: the engine snapshots the caller's context
        // and adopts it on each worker, so spans recorded off-thread
        // still land in this trace.
        index.engine().with_threads(2).batch(&queries);
    }

    let spans = spans_of(TRACE);
    let engine_spans = spans.iter().filter(|r| r.name == "engine.query").count();
    assert_eq!(engine_spans, 4, "every batch query traced");
}

#[test]
fn wal_append_joins_the_write_trace() {
    const TRACE: u128 = 0x7e57_0003;
    let dir = std::env::temp_dir().join(format!("nncell-trace-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut d = NnCellIndex::open_durable(&dir, 2, cfg()).unwrap();

    {
        let _root = forced_root(TRACE);
        d.insert(Point::new(vec![0.25, 0.75])).unwrap();
    }

    let spans = spans_of(TRACE);
    let wal = spans
        .iter()
        .find(|r| r.name == "wal.append")
        .expect("wal append traced");
    assert!(
        wal.live_args().iter().any(|&(k, v)| k == "bytes" && v > 0),
        "frame size recorded"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slow_log_entries_carry_the_trace_exemplar() {
    let mut index = NnCellIndex::build(grid(60), cfg()).unwrap();
    let registry = Registry::new();
    index.attach_metrics(registry.clone());
    let slow = Arc::clone(index.metrics().unwrap().engine().slow_log());
    slow.set_threshold_ns(0); // capture everything
    let engine = index.engine().with_threads(1);

    // Untraced query first: exemplar must be zero, not garbage.
    engine.execute(&Query::nn([0.8, 0.8])).unwrap();

    const TRACE: u128 = 0x7e57_0004;
    {
        let _root = forced_root(TRACE);
        engine.execute(&Query::knn(vec![0.42, 0.17], 3)).unwrap();
    }

    let entries = slow.drain();
    assert_eq!(entries.len(), 2);
    assert_eq!(entries[0].trace_id, 0, "untraced query has no exemplar");
    assert_eq!(entries[1].trace_id, TRACE, "traced query links its trace");
}
