//! Property tests for degenerate inputs: geometry that breaks naive LP
//! pipelines (collinear sites, constant coordinates, one dimension) and
//! inputs the validation layer must handle (exact duplicates). In every
//! case the index either returns a typed error or agrees with a linear
//! scan — never a panic, never a wrong answer.

use nncell_core::{
    linear_scan_nn, BuildConfig, BuildError, InputPolicy, NnCellIndex, Query, QueryEngine,
    Strategy as BuildStrategy,
};
use nncell_geom::{dist_sq, Point};
use proptest::prelude::*;

/// NN through the typed engine, with the removed shim's `Option` shape.
fn nn(idx: &NnCellIndex, q: &[f64]) -> Option<nncell_core::QueryResult> {
    QueryEngine::sequential(idx)
        .execute(&Query::nn(q))
        .ok()
        .map(|r| r.best)
}

fn coord() -> impl Strategy<Value = f64> {
    (0..=1000u32).prop_map(|v| v as f64 / 1000.0)
}

/// Distinct scalars in `[0,1]`, at least `min` of them.
fn distinct_scalars(min: usize, max: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(coord(), min..max).prop_filter_map("distinct scalars", move |mut v| {
        v.sort_by(f64::total_cmp);
        v.dedup();
        (v.len() >= min).then_some(v)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// d = 1: every bisector is a single split coordinate; cells are
    /// intervals. The smallest interesting dimensionality must work.
    #[test]
    fn one_dimensional_inputs_agree_with_scan(
        xs in distinct_scalars(2, 25),
        queries in prop::collection::vec(coord(), 8),
        strat_pick in 0usize..4,
    ) {
        let pts: Vec<Point> = xs.iter().map(|&x| Point::new(vec![x])).collect();
        let strategy = BuildStrategy::ALL[strat_pick];
        let index = NnCellIndex::build(pts.clone(), BuildConfig::builder().strategy(strategy).seed(5).build()).unwrap();
        for &q in &queries {
            let got = nn(&index, &[q]).unwrap();
            let want = linear_scan_nn(&pts, &[q]).unwrap();
            prop_assert!(
                (got.dist - want.dist).abs() < 1e-9,
                "{strategy:?} d=1 inexact at {q}"
            );
        }
    }

    /// Collinear sites: all bisectors are parallel, so every Voronoi cell
    /// is an unbounded slab that only the data-space bounds close. The LP
    /// must not report these as unbounded failures.
    #[test]
    fn collinear_points_agree_with_scan(
        ts in distinct_scalars(2, 20),
        queries in prop::collection::vec(prop::collection::vec(coord(), 3), 8),
        decompose in prop::bool::ANY,
    ) {
        // Points on the segment (0.1,0.2,0.3) → (0.9,0.8,0.6).
        let a = [0.1, 0.2, 0.3];
        let b = [0.9, 0.8, 0.6];
        let pts: Vec<Point> = ts
            .iter()
            .map(|&t| Point::new((0..3).map(|i| a[i] + t * (b[i] - a[i])).collect::<Vec<_>>()))
            .collect();
        let mut cfg = BuildConfig::builder().strategy(BuildStrategy::Sphere).seed(6);
        if decompose {
            cfg = cfg.decompose_pieces(3);
        }
        let cfg = cfg.build();
        let index = NnCellIndex::build(pts.clone(), cfg).unwrap();
        for q in &queries {
            let got = nn(&index, q).unwrap();
            let want = linear_scan_nn(&pts, q).unwrap();
            prop_assert!(
                (got.dist - want.dist).abs() < 1e-9,
                "collinear inexact at {q:?}"
            );
        }
    }

    /// A coordinate shared by every point: all bisectors are parallel to
    /// that axis, so each cell spans the full data space along it.
    #[test]
    fn constant_coordinate_agrees_with_scan(
        xy in prop::collection::vec((coord(), coord()), 3..20),
        queries in prop::collection::vec(prop::collection::vec(coord(), 3), 8),
        strat_pick in 0usize..4,
    ) {
        let mut pts: Vec<Point> = xy
            .iter()
            .map(|&(x, y)| Point::new(vec![x, 0.5, y]))
            .collect();
        pts.sort_by(|p, q| p.as_slice()[0]
            .total_cmp(&q.as_slice()[0])
            .then(p.as_slice()[2].total_cmp(&q.as_slice()[2])));
        pts.dedup_by(|p, q| dist_sq(p, q) <= 1e-12);
        prop_assume!(pts.len() >= 2);
        let strategy = BuildStrategy::ALL[strat_pick];
        let index = NnCellIndex::build(pts.clone(), BuildConfig::builder().strategy(strategy).seed(8).build()).unwrap();
        for q in &queries {
            let got = nn(&index, q).unwrap();
            let want = linear_scan_nn(&pts, q).unwrap();
            prop_assert!(
                (got.dist - want.dist).abs() < 1e-9,
                "{strategy:?} constant-coordinate inexact at {q:?}"
            );
        }
    }

    /// Exact duplicates: rejected with a typed error under the default
    /// policy, silently dropped under `Skip` — and the skipping build still
    /// answers exactly.
    #[test]
    fn duplicates_reject_or_skip_exactly(
        xy in prop::collection::vec((coord(), coord()), 3..15),
        dup_picks in prop::collection::vec(0usize..15, 1..5),
        queries in prop::collection::vec(prop::collection::vec(coord(), 2), 6),
    ) {
        let mut base: Vec<Point> = xy.iter().map(|&(x, y)| Point::new(vec![x, y])).collect();
        base.sort_by(|p, q| p.as_slice()[0]
            .total_cmp(&q.as_slice()[0])
            .then(p.as_slice()[1].total_cmp(&q.as_slice()[1])));
        base.dedup_by(|p, q| p.as_slice() == q.as_slice());
        prop_assume!(base.len() >= 2);
        let mut with_dups = base.clone();
        let mut n_dups = 0usize;
        for &k in &dup_picks {
            with_dups.push(base[k % base.len()].clone());
            n_dups += 1;
        }

        // Default policy: typed rejection naming the duplicate.
        match NnCellIndex::build(with_dups.clone(), BuildConfig::builder().strategy(BuildStrategy::Sphere).build()) {
            Err(BuildError::DuplicatePoint { id, of }) => {
                prop_assert!(id >= base.len() && of < id);
                prop_assert_eq!(
                    with_dups[id].as_slice(),
                    with_dups[of].as_slice()
                );
            }
            Err(other) => prop_assert!(false, "expected DuplicatePoint, got {other}"),
            Ok(_) => prop_assert!(false, "duplicate input accepted under Reject policy"),
        }

        // Skip policy: duplicates recorded and dropped, result exact.
        let index = NnCellIndex::build(
            with_dups,
            BuildConfig::builder().strategy(BuildStrategy::Sphere).input_policy(InputPolicy::Skip).build(),
        )
        .unwrap();
        prop_assert_eq!(index.build_stats().skipped_points, n_dups);
        prop_assert_eq!(index.len(), base.len());
        for q in &queries {
            let got = nn(&index, q).unwrap();
            let want = linear_scan_nn(&base, q).unwrap();
            prop_assert!(
                (got.dist - want.dist).abs() < 1e-9,
                "skip-policy inexact at {q:?}"
            );
        }
    }
}
