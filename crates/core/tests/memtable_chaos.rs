//! Degraded-mode chaos for the memtable write path: a folder whose every
//! fold panics (injected via [`FoldConfig::fault_fold_panic`]) must not
//! affect write acks or query exactness — the tail absorbs writes, the
//! linear-scan merge keeps answers exact, and the degradation is visible
//! through [`ShardedIndex::fold_status`], `/readyz`-facing accessors, and
//! the `nncell_fold_*` metric family. Clearing the fault must drain the
//! tail and clear the degraded flag without restarting anything.

use nncell_core::{
    linear_scan_knn, BuildConfig, DurableError, FoldConfig, Query, Registry, ShardedIndex,
    Strategy,
};
use nncell_geom::Point;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const DIM: usize = 2;
const SHARDS: usize = 2;

fn cfg() -> BuildConfig {
    BuildConfig::builder().strategy(Strategy::Sphere).seed(11).build()
}

fn pt(i: usize) -> Point {
    Point::new(vec![
        ((i * 37 + 11) % 199) as f64 / 199.0,
        ((i * 53 + 29) % 211) as f64 / 211.0,
    ])
}

/// Every query must agree with a linear scan over `live` (Lemma 1 with
/// the tail merged in).
fn assert_exact(idx: &ShardedIndex, live: &[(usize, Point)], tag: &str) {
    let points: Vec<Point> = live.iter().map(|(_, p)| p.clone()).collect();
    for probe in 0..8 {
        let q: Vec<f64> = (0..DIM)
            .map(|j| ((probe * 31 + j * 17) % 100) as f64 / 100.0)
            .collect();
        let k = 1 + probe % 4;
        let got = idx.query(&Query::knn(q.clone(), k));
        let want = linear_scan_knn(&points, &q, k);
        if want.is_empty() {
            assert!(got.is_err(), "{tag}: empty live set must not answer");
            continue;
        }
        let got = got.unwrap_or_else(|e| panic!("{tag}: query failed: {e}"));
        let got_dists: Vec<f64> = got.iter().map(|r| r.dist).collect();
        let want_dists: Vec<f64> = want.iter().map(|r| r.dist).collect();
        assert_eq!(
            got_dists.len(),
            want_dists.len(),
            "{tag}: probe {probe} returned {got_dists:?}, scan found {want_dists:?}"
        );
        for (g, w) in got_dists.iter().zip(&want_dists) {
            assert!(
                (g - w).abs() < 1e-9,
                "{tag}: probe {probe} returned {got_dists:?}, scan found {want_dists:?}"
            );
        }
    }
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The headline chaos scenario: panicking folder, live traffic, degraded
/// visibility, recovery without restart.
#[test]
fn panicking_folder_degrades_gracefully_and_recovers() {
    let chaos = Arc::new(AtomicBool::new(true));
    let idx = ShardedIndex::build((0..24).map(pt).collect(), SHARDS, cfg())
        .expect("seed build")
        .with_memtable(FoldConfig {
            tail_max: 1024,
            poll_interval: Duration::from_millis(1),
            retry_base: Duration::from_millis(1),
            retry_cap: Duration::from_millis(5),
            degrade_after: 3,
            fault_fold_panic: Some(Arc::clone(&chaos)),
        });
    let registry = Arc::new(Registry::new());
    idx.attach_metrics(Arc::clone(&registry));
    let mut live: Vec<(usize, Point)> = (0..24).map(|i| (i, pt(i))).collect();

    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        s.spawn(|| idx.run_folder(&stop));

        // Writes keep acking while every fold panics, and the acks are
        // O(1) in the structural sense: no snapshot publish happens, so
        // the published shard views keep their pre-write lengths.
        let snap_lens: Vec<usize> = (0..SHARDS).map(|i| idx.shard(i).len()).collect();
        for i in 24..60 {
            let id = idx.insert(pt(i)).expect("acks must survive a broken folder");
            live.push((id, pt(i)));
        }
        let removed_id = live.remove(3).0;
        assert!(idx.remove(removed_id).expect("remove acks too"));
        assert_eq!(
            (0..SHARDS).map(|i| idx.shard(i).len()).sum::<usize>(),
            snap_lens.iter().sum::<usize>(),
            "broken folder ⇒ no publishes ⇒ snapshots untouched (the ack \
             path did no index work)"
        );

        // Queries stay exact against a linear scan, tail included.
        assert_exact(&idx, &live, "degraded");
        assert_eq!(idx.len(), live.len(), "len() counts the tail");

        // Degradation is visible: status, accessor, and metric family.
        wait_until("degraded flag", || idx.is_degraded());
        let st = idx.fold_status();
        assert!(st.degraded);
        assert!(st.failures >= 3, "status: {st:?}");
        assert_eq!(st.folds, 0, "no fold can have succeeded: {st:?}");
        assert!(st.tail_depth >= 37, "every write is still unfolded: {st:?}");
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("nncell_fold_degraded"), Some(1));
        assert!(snap.counter("nncell_fold_failures_total").unwrap_or(0) >= 3);
        assert_eq!(snap.counter("nncell_fold_total"), Some(0));
        assert!(snap.gauge("nncell_tail_depth").unwrap_or(0) >= 37);

        // Clear the fault: the supervised loop drains the tail and the
        // degraded flag clears — no restart, no lost write.
        chaos.store(false, Ordering::Release);
        wait_until("tail drain", || idx.tail_depth() == 0 && !idx.is_degraded());
        stop.store(true, Ordering::Release);
    });

    // Everything folded into the cells; answers unchanged.
    assert_exact(&idx, &live, "recovered");
    assert_eq!(
        (0..SHARDS).map(|i| idx.shard(i).len()).sum::<usize>(),
        live.len(),
        "drained tail ⇒ snapshots now hold every live point"
    );
    let st = idx.fold_status();
    assert!(st.folds >= 1 && st.folded_records >= 37, "status: {st:?}");
    let snap = registry.snapshot();
    assert_eq!(snap.gauge("nncell_fold_degraded"), Some(0));
    assert_eq!(snap.gauge("nncell_tail_depth"), Some(0));
    assert!(snap.counter("nncell_fold_records_total").unwrap_or(0) >= 37);
    assert!(
        snap.histogram("nncell_fold_latency_ns")
            .map(|h| h.count())
            .unwrap_or(0)
            >= 1
    );
}

/// The tail high-watermark refuses writes with a typed, retryable error
/// and counts them — the index never buffers unboundedly, no matter how
/// long the folder stays broken.
#[test]
fn tail_high_watermark_sheds_writes_until_a_fold_drains_it() {
    let idx = ShardedIndex::new(DIM, SHARDS, cfg()).with_memtable(FoldConfig {
        tail_max: 4,
        ..FoldConfig::default()
    });
    let registry = Arc::new(Registry::new());
    idx.attach_metrics(Arc::clone(&registry));

    for i in 0..4 {
        idx.insert(pt(i)).expect("below the watermark");
    }
    match idx.insert(pt(4)) {
        Err(DurableError::Backpressure { tail, max }) => {
            assert_eq!((tail, max), (4, 4));
        }
        other => panic!("expected backpressure, got {other:?}"),
    }
    // Removes are journaled tail ops too — same watermark.
    assert!(matches!(
        idx.remove(0),
        Err(DurableError::Backpressure { .. })
    ));
    let snap = registry.snapshot();
    assert_eq!(snap.counter("nncell_tail_backpressure_total"), Some(2));

    // One fold drains the tail and writes flow again.
    assert_eq!(idx.fold_once().expect("no chaos"), 4);
    idx.insert(pt(4)).expect("drained tail accepts writes");
    assert_eq!(idx.len(), 5);
}

/// Interleaved writes, folds, and removes stay exact and agree with
/// `len()` — including queries answered purely from the tail (empty
/// masters) and shards emptied by tail tombstones.
#[test]
fn folds_interleaved_with_writes_keep_answers_exact() {
    let idx = ShardedIndex::new(DIM, SHARDS, cfg()).with_memtable(FoldConfig::default());
    let mut live: Vec<(usize, Point)> = Vec::new();

    // Purely-from-tail answers (nothing folded yet).
    for i in 0..5 {
        let id = idx.insert(pt(i)).expect("insert");
        live.push((id, pt(i)));
    }
    assert_exact(&idx, &live, "tail-only");

    for step in 0..30 {
        let i = 5 + step;
        let id = idx.insert(pt(i)).expect("insert");
        live.push((id, pt(i)));
        if step % 3 == 1 {
            let victim = live.remove((step * 7) % live.len()).0;
            assert!(idx.remove(victim).expect("remove"), "victim was live");
        }
        if step % 4 == 3 {
            idx.fold_once().expect("fold");
        }
        assert_eq!(idx.len(), live.len(), "step {step}");
    }
    assert_exact(&idx, &live, "interleaved");

    // Tombstone every point: queries must report an empty index even
    // though the masters still hold folded points.
    for (id, _) in live.drain(..) {
        assert!(idx.remove(id).expect("remove all"));
    }
    assert_eq!(idx.len(), 0);
    assert!(idx.query(&Query::nn(vec![0.5, 0.5])).is_err());

    // Duplicate policy survives the tail: a point folded in, removed in
    // the tail, then reinserted is not a duplicate of its dead self.
    let id = idx.insert(pt(0)).expect("reinsert after tail tombstone");
    assert!(idx.insert(pt(0)).is_err(), "live duplicate still rejected");
    assert!(idx.remove(id).expect("cleanup"));
}

/// Radius queries must merge the unindexed tail exactly like k-NN: tail
/// inserts inside the ball appear, tail tombstones disappear, and the
/// union is ranked by `(distance, id)` with no truncation.
#[test]
fn radius_queries_merge_the_unindexed_tail() {
    let idx = ShardedIndex::new(DIM, SHARDS, cfg()).with_memtable(FoldConfig {
        // No folder thread: everything stays in the tail for the whole
        // test, so every answer exercises the merge path.
        ..FoldConfig::default()
    });
    let mut live: Vec<(usize, Point)> = Vec::new();
    for i in 0..25 {
        let p = pt(i);
        let id = idx.insert(p.clone()).expect("tail ack");
        live.push((id, p));
    }
    let victim = live.remove(7).0;
    assert!(idx.remove(victim).expect("tail tombstone"));
    assert!(idx.tail_depth() > 0, "operations must still be unfolded");

    let points: Vec<Point> = live.iter().map(|(_, p)| p.clone()).collect();
    for probe in 0..6 {
        let q: Vec<f64> = (0..DIM)
            .map(|j| ((probe * 41 + j * 13) % 100) as f64 / 100.0)
            .collect();
        let r = 0.05 + 0.15 * probe as f64;
        let mut want = linear_scan_knn(&points, &q, points.len());
        want.retain(|x| x.dist <= r);
        let got = idx.query(&Query::radius(q.clone(), r));
        if want.is_empty() {
            assert!(got.is_err(), "probe {probe}: empty ball must be typed");
            continue;
        }
        let got = got.unwrap_or_else(|e| panic!("probe {probe}: {e}"));
        assert_eq!(got.len(), want.len(), "probe {probe}: ball size");
        let got_d: Vec<f64> = got.iter().map(|x| x.dist).collect();
        let want_d: Vec<f64> = want.iter().map(|x| x.dist).collect();
        for (g, w) in got_d.iter().zip(&want_d) {
            assert!((g - w).abs() < 1e-9, "probe {probe}: {got_d:?} vs {want_d:?}");
        }
        assert!(
            !got.iter().any(|x| x.id == victim),
            "probe {probe}: tombstoned id resurfaced in the ball"
        );
    }
    // Fold everything and re-check: indexed answers agree with the merge.
    idx.flush().expect("fold");
    assert_eq!(idx.tail_depth(), 0);
    let resp = idx.query(&Query::radius(vec![0.5, 0.5], 0.4)).expect("ball");
    let mut want = linear_scan_knn(&points, &[0.5, 0.5], points.len());
    want.retain(|x| x.dist <= 0.4);
    assert_eq!(resp.len(), want.len(), "post-fold ball size");
}
