//! Property tests of the MINDIST-ordered best-first traversal and the
//! early-abort kernel: every exact query path must stay **bit-identical**
//! to the linear scan — same ids, same distance bits, same order — for
//! NN, k-NN, and radius queries, across dimensionalities that exercise
//! every lane-remainder width of the 4-accumulator kernel (`d mod 4` in
//! {0, 1, 2, 3}) and on lattice data that mass-produces distance ties.
//!
//! Plus the [`nncell_core::QueryStats`] counter contract: the pruning
//! counters are sum-consistent (`examined == candidates + aborted`) and
//! the evaluation work grows monotonically with `k`.

use nncell_core::{
    linear_scan_knn, BuildConfig, NnCellIndex, Query, QueryEngine, QueryError, QueryResponse,
    Strategy as BuildStrategy,
};
use nncell_geom::{dist, dist_sq, Point};
use proptest::prelude::*;

/// Dimensionalities covering every `d % 4` remainder of the kernel's
/// 4-lane chunking, plus a multi-chunk width.
const DIMS: [usize; 5] = [1, 2, 3, 4, 8];

/// Lattice coordinate: a coarse grid, so many point pairs land at exactly
/// equal distances from a query and the `(dist, id)` tie-break is what
/// actually decides the result order.
fn lattice_coord() -> impl Strategy<Value = f64> {
    (0..=8u32).prop_map(|v| v as f64 / 8.0)
}

fn lattice_points(d: usize, min: usize, max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(prop::collection::vec(lattice_coord(), d), min..max).prop_filter_map(
        "distinct points",
        |pts| {
            for (i, p) in pts.iter().enumerate() {
                for q in pts.iter().skip(i + 1) {
                    if dist_sq(p, q) == 0.0 {
                        return None;
                    }
                }
            }
            Some(pts.into_iter().map(Point::new).collect())
        },
    )
}

fn build(pts: Vec<Point>) -> NnCellIndex {
    NnCellIndex::build(
        pts,
        BuildConfig::builder()
            .strategy(BuildStrategy::Sphere)
            .seed(7)
            .build(),
    )
    .unwrap()
}

/// Exact equality including the distance **bits** — the contract is
/// bit-identity with the scan, not approximate agreement.
fn assert_bit_identical(got: &QueryResponse, want: &[nncell_core::QueryResult]) {
    let got: Vec<_> = got.iter().collect();
    assert_eq!(got.len(), want.len(), "result count diverged from scan");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.id, w.id, "result id diverged from scan");
        assert_eq!(
            g.dist.to_bits(),
            w.dist.to_bits(),
            "distance bits diverged from scan on id {}",
            g.id
        );
    }
}

/// The counter contract every successful response must satisfy.
fn assert_counters(resp: &QueryResponse, n: usize) {
    let s = &resp.stats;
    assert_eq!(
        s.candidates + s.candidates_aborted_early,
        s.candidates_examined,
        "examined must equal completed + aborted"
    );
    assert!(
        s.candidates_examined <= n,
        "cannot examine more live points than exist"
    );
    if s.fallback {
        assert_eq!(s.candidates_aborted_early, 0, "the scan never aborts");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn knn_is_bit_identical_to_linear_scan_all_lane_widths(
        dim_pick in 0usize..DIMS.len(),
        seed_pts in prop::collection::vec(prop::collection::vec(lattice_coord(), 8), 6..40),
        queries in prop::collection::vec(prop::collection::vec(lattice_coord(), 8), 6),
        k in 1usize..7,
    ) {
        let d = DIMS[dim_pick];
        // One 8-d point pool, truncated per dimension pick (keeps the
        // strategy simple while covering every remainder width).
        let mut pts: Vec<Vec<f64>> = seed_pts.iter().map(|p| p[..d].to_vec()).collect();
        pts.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        pts.dedup();
        prop_assume!(pts.len() > 2);
        let pts: Vec<Point> = pts.into_iter().map(Point::new).collect();
        let idx = build(pts.clone());
        let engine = QueryEngine::sequential(&idx);
        for q in &queries {
            let q = &q[..d];
            let resp = engine.execute(&Query::knn(q, k)).unwrap();
            let want = linear_scan_knn(&pts, q, k);
            assert_bit_identical(&resp, &want);
            assert_counters(&resp, pts.len());
        }
    }

    #[test]
    fn nn_ties_resolve_to_lowest_id_like_the_scan(
        pts in lattice_points(2, 4, 40),
        queries in prop::collection::vec(prop::collection::vec(lattice_coord(), 2), 8),
    ) {
        // Lattice query points sitting *on* the lattice maximize exact
        // distance ties; the winner must be the scan's (lowest id).
        let idx = build(pts.clone());
        let engine = QueryEngine::sequential(&idx);
        for q in &queries {
            let resp = engine.execute(&Query::nn(q.clone())).unwrap();
            let want = linear_scan_knn(&pts, q, 1);
            assert_bit_identical(&resp, &want);
            assert_counters(&resp, pts.len());
        }
    }

    #[test]
    fn radius_is_bit_identical_to_linear_scan(
        pts in lattice_points(3, 4, 40),
        center in prop::collection::vec(lattice_coord(), 3),
        r in (0..=16u32).prop_map(|v| v as f64 / 8.0),
    ) {
        let idx = build(pts.clone());
        let engine = QueryEngine::sequential(&idx);
        // The scan's view of the ball, in (dist, id) order.
        let mut want: Vec<nncell_core::QueryResult> = pts
            .iter()
            .enumerate()
            .map(|(id, p)| nncell_core::QueryResult { id, dist: dist(&center, p) })
            .filter(|x| x.dist <= r)
            .collect();
        want.sort_unstable_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        match engine.execute(&Query::radius(center.clone(), r)) {
            Ok(resp) => {
                assert_bit_identical(&resp, &want);
                assert_counters(&resp, pts.len());
            }
            Err(QueryError::EmptyRadius) => assert!(want.is_empty(), "ball was not empty"),
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
}

/// An already-expired per-request budget surfaces as `DeadlineExceeded`
/// through the new `Query::with_deadline` builder.
#[test]
fn expired_query_deadline_rejects() {
    let pts: Vec<Point> = (0..64)
        .map(|i| Point::new(vec![(i % 8) as f64 / 8.0 + 0.06, (i / 8) as f64 / 8.0 + 0.06]))
        .collect();
    let idx = build(pts);
    let engine = QueryEngine::sequential(&idx);
    let stale = std::time::Instant::now() - std::time::Duration::from_millis(1);
    let err = engine
        .execute(&Query::knn([0.5, 0.5], 3).with_deadline(stale))
        .unwrap_err();
    assert!(matches!(err, QueryError::DeadlineExceeded));
}

/// The deprecated engine-level deadline keeps working for one release;
/// while both deadlines are set the earlier one wins.
#[test]
#[allow(deprecated)]
fn engine_level_deadline_still_honored_until_removal() {
    let pts: Vec<Point> = (0..64)
        .map(|i| Point::new(vec![(i % 8) as f64 / 8.0 + 0.06, (i / 8) as f64 / 8.0 + 0.06]))
        .collect();
    let idx = build(pts);
    let now = std::time::Instant::now();
    let stale = now - std::time::Duration::from_millis(1);
    let generous = now + std::time::Duration::from_secs(60);
    let engine = QueryEngine::sequential(&idx).with_deadline(stale);
    // Engine-level stale budget rejects even a query with a generous one.
    let err = engine
        .execute(&Query::knn([0.5, 0.5], 3).with_deadline(generous))
        .unwrap_err();
    assert!(matches!(err, QueryError::DeadlineExceeded));
    // And the generous engine budget lets an undecorated query through.
    let engine = QueryEngine::sequential(&idx).with_deadline(generous);
    assert!(engine.execute(&Query::knn([0.5, 0.5], 3)).is_ok());
}

/// Growing `k` can only weaken the abort bound, so the evaluation work
/// (`candidates_examined`) must be monotone non-decreasing in `k` — and
/// every response individually sum-consistent.
#[test]
fn counters_are_sum_consistent_and_monotone_in_k() {
    let pts: Vec<Point> = (0..400)
        .map(|i| {
            let x = (i % 20) as f64 / 20.0 + 0.013;
            let y = (i / 20) as f64 / 20.0 + 0.017;
            Point::new(vec![x, y])
        })
        .collect();
    let idx = build(pts);
    let engine = QueryEngine::sequential(&idx);
    let mut last_examined = 0usize;
    for k in [1usize, 2, 4, 8, 16, 64] {
        let resp = engine.execute(&Query::knn([0.41, 0.53], k)).unwrap();
        assert_counters(&resp, 400);
        assert!(
            resp.stats.candidates_examined >= last_examined,
            "examined work shrank from {last_examined} to {} at k={k}",
            resp.stats.candidates_examined
        );
        assert!(resp.stats.candidates >= k, "need at least k completed evals");
        last_examined = resp.stats.candidates_examined;
    }
}
