//! The query engine's core contract, property-checked:
//!
//! * `QueryEngine::batch` is **bit-identical** for 1, 2, and N worker
//!   threads, and identical to a linear scan — including
//!   duplicate-distance tie-breaking (ascending point id).
//! * Concurrent readers are safe: batches racing `reset_stats` /
//!   `enable_cache` from another thread still return exact answers.
//! * All scan-fallback paths are counted in one place.

use nncell_core::{
    linear_scan_knn, linear_scan_nn, BuildConfig, NnCellIndex, Query, QueryError,
    Strategy as BuildStrategy,
};
use nncell_geom::{dist_sq, Point};
use proptest::prelude::*;

fn coord() -> impl Strategy<Value = f64> {
    (0..=1000u32).prop_map(|v| v as f64 / 1000.0)
}

fn point_set(d: usize, min: usize, max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(prop::collection::vec(coord(), d), min..max).prop_filter_map(
        "distinct points",
        |pts| {
            for (i, p) in pts.iter().enumerate() {
                for q in pts.iter().skip(i + 1) {
                    if dist_sq(p, q) <= 1e-9 {
                        return None;
                    }
                }
            }
            Some(pts.into_iter().map(Point::new).collect())
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// One batch, three thread counts, one linear scan — all bit-identical
    /// (not approximately equal: `==` on every field).
    #[test]
    fn batch_is_bit_identical_across_thread_counts_and_to_scan(
        pts in point_set(3, 4, 40),
        queries in prop::collection::vec(prop::collection::vec(coord(), 3), 12),
        k in 1usize..6,
        strat_pick in 0usize..4,
    ) {
        let strategy = BuildStrategy::ALL[strat_pick];
        let index = NnCellIndex::build(
            pts.clone(),
            BuildConfig::builder().strategy(strategy).seed(11).build(),
        ).unwrap();
        let batch: Vec<Query> = queries
            .iter()
            .map(|q| Query::knn(q.clone(), k))
            .collect();

        let seq = index.engine().with_threads(1).batch(&batch);
        let two = index.engine().with_threads(2).batch(&batch);
        let many = index.engine().with_threads(8).batch(&batch);
        prop_assert_eq!(&seq, &two, "{:?}: 2 threads diverged", strategy);
        prop_assert_eq!(&seq, &many, "{:?}: 8 threads diverged", strategy);

        for (q, r) in queries.iter().zip(&seq) {
            let r = r.as_ref().unwrap();
            // Ground truth, including tie order (stable sort, ascending id).
            let want = linear_scan_knn(&pts, q, k);
            let got: Vec<_> = r.iter().collect();
            prop_assert_eq!(&got, &want, "{:?} k={} q={:?}", strategy, k, q);
            prop_assert_eq!(r.best, linear_scan_nn(&pts, q).unwrap());
        }
    }

    /// Ties on purpose: queries at lattice midpoints of a regular grid have
    /// 2·d equidistant neighbors; the winner must be the lowest id, and the
    /// k-NN order must be ascending `(dist, id)` — exactly the linear scan.
    #[test]
    fn duplicate_distances_break_ties_by_ascending_id(
        grid_n in 3usize..6,
        k in 2usize..7,
    ) {
        let mut pts = Vec::new();
        for i in 0..grid_n {
            for j in 0..grid_n {
                pts.push(Point::new(vec![
                    (i as f64 + 0.5) / grid_n as f64,
                    (j as f64 + 0.5) / grid_n as f64,
                ]));
            }
        }
        let index = NnCellIndex::build(
            pts.clone(),
            BuildConfig::builder().strategy(BuildStrategy::CorrectPruned).seed(5).build(),
        ).unwrap();
        let engine = index.engine().with_threads(4);
        // Cell centers (1 candidate), edge midpoints (2 equidistant),
        // vertices (4 equidistant).
        let mut queries = Vec::new();
        for i in 1..grid_n {
            let c = i as f64 / grid_n as f64;
            queries.push(Query::knn(vec![c, c], k));
            queries.push(Query::knn(vec![c, (i as f64 - 0.5) / grid_n as f64], k));
        }
        for (q, r) in queries.iter().zip(engine.batch(&queries)) {
            let r = r.unwrap();
            let got: Vec<_> = r.iter().collect();
            let want = linear_scan_knn(&pts, q.point(), k);
            prop_assert_eq!(&got, &want, "tie order diverged at {:?}", q.point());
        }
    }
}

/// Batches racing `reset_stats` and `enable_cache` from other threads stay
/// exact: those mutators are `&self` (atomics + a mutex-guarded LRU), and
/// the engine only reads index data they never touch.
#[test]
fn batch_races_reset_stats_and_enable_cache() {
    let pts: Vec<Point> = (0..300)
        .map(|i| {
            Point::new(vec![
                ((i * 37) % 300) as f64 / 300.0 + 0.001,
                ((i * 91) % 300) as f64 / 300.0 + 0.001,
            ])
        })
        .collect();
    let index =
        NnCellIndex::build(pts.clone(), BuildConfig::builder().strategy(BuildStrategy::Sphere).seed(9).build())
            .unwrap();
    let queries: Vec<Query> = (0..400)
        .map(|i| {
            Query::knn(
                vec![
                    ((i * 13) % 400) as f64 / 400.0,
                    ((i * 29) % 400) as f64 / 400.0,
                ],
                1 + i % 4,
            )
        })
        .collect();
    let expected = index.engine().with_threads(1).batch(&queries);

    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        // Two chaos threads: one flips the page cache on and off, one
        // resets the cost counters, both as fast as they can.
        s.spawn(|| {
            let mut on = false;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                index.enable_cache(if on { 64 } else { 0 });
                on = !on;
            }
        });
        s.spawn(|| {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                index.reset_stats();
            }
        });
        // Reader threads: repeated parallel batches must stay exact while
        // the chaos threads run. Join them, then stop the chaos.
        let readers: Vec<_> = (0..3)
            .map(|_| {
                s.spawn(|| {
                    for _ in 0..10 {
                        let got = index.engine().with_threads(4).batch(&queries);
                        assert_eq!(got.len(), expected.len());
                        for (g, e) in got.iter().zip(&expected) {
                            let (g, e) = (g.as_ref().unwrap(), e.as_ref().unwrap());
                            // Stats (pages) legitimately race the cache
                            // toggle; the *answers* must not.
                            assert_eq!(g.best, e.best);
                            assert_eq!(g.rest, e.rest);
                            assert_eq!(g.stats.fallback, e.stats.fallback);
                        }
                    }
                })
            })
            .collect();
        for r in readers {
            r.join().expect("reader thread panicked");
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
}

/// Every scan fallback funnels through the engine and is counted — the old
/// `knn` paths (`k ≥ len`, out-of-space) scanned without counting.
#[test]
fn all_fallback_paths_are_counted() {
    let pts: Vec<Point> = (0..20)
        .map(|i| Point::new(vec![(i as f64 + 0.5) / 20.0, ((i * 7 % 20) as f64 + 0.5) / 20.0]))
        .collect();
    let index = NnCellIndex::build(
        pts,
        BuildConfig::builder().strategy(BuildStrategy::CorrectPruned).seed(3).build(),
    )
    .unwrap();
    let engine = index.engine().with_threads(1);
    assert_eq!(engine.fallback_queries(), 0);

    // k ≥ len: previously scanned silently.
    let r = engine.execute(&Query::knn([0.4, 0.6], 25)).unwrap();
    assert!(r.stats.fallback);
    assert_eq!(r.len(), 20);
    assert_eq!(engine.fallback_queries(), 1);

    // Out-of-space NN query.
    let r = engine.execute(&Query::nn([1.7, -0.3])).unwrap();
    assert!(r.stats.fallback);
    assert_eq!(engine.fallback_queries(), 2);

    // Out-of-space k-NN query.
    let r = engine.execute(&Query::knn([1.7, -0.3], 3)).unwrap();
    assert!(r.stats.fallback);
    assert_eq!(engine.fallback_queries(), 3);

    // In-space queries of a healthy index never fall back.
    let r = engine.execute(&Query::knn([0.4, 0.6], 5)).unwrap();
    assert!(!r.stats.fallback);
    assert_eq!(engine.fallback_queries(), 3);
}

/// The typed error contract, end to end.
#[test]
fn typed_errors_replace_silent_none() {
    let pts: Vec<Point> = (0..10)
        .map(|i| Point::new(vec![(i as f64 + 0.5) / 10.0, (i as f64 + 0.5) / 10.0]))
        .collect();
    let index = NnCellIndex::build(
        pts,
        BuildConfig::builder().strategy(BuildStrategy::Sphere).seed(1).build(),
    )
    .unwrap();
    let engine = index.engine();
    assert_eq!(
        engine.execute(&Query::nn([0.5])).unwrap_err(),
        QueryError::DimMismatch {
            expected: 2,
            got: 1
        }
    );
    assert_eq!(
        engine.execute(&Query::nn([0.5, f64::INFINITY])).unwrap_err(),
        QueryError::NonFiniteQuery
    );
    assert_eq!(
        engine.execute(&Query::knn([0.5, 0.5], 0)).unwrap_err(),
        QueryError::ZeroK
    );
    let empty = NnCellIndex::new(2, BuildConfig::builder().strategy(BuildStrategy::Sphere).build());
    assert_eq!(
        empty.engine().execute(&Query::nn([0.5, 0.5])).unwrap_err(),
        QueryError::EmptyIndex
    );
}

#[test]
fn radius_query_contract() {
    let pts: Vec<Point> = (0..10)
        .map(|i| Point::new(vec![(i as f64 + 0.5) / 10.0, 0.5]))
        .collect();
    let index = NnCellIndex::build(
        pts,
        BuildConfig::builder().strategy(BuildStrategy::Sphere).seed(1).build(),
    )
    .unwrap();
    let engine = index.engine();
    // Ball around 0.45 with r = 0.11 holds exactly ids 3, 4, 5.
    let resp = engine
        .execute(&Query::radius([0.45, 0.5], 0.11))
        .unwrap();
    let ids: Vec<usize> = resp.iter().map(|r| r.id).collect();
    assert_eq!(ids, vec![4, 3, 5], "ascending (dist, id) inside the ball");
    assert!(resp.iter().all(|r| r.dist <= 0.11));
    // Boundary-inclusive: points at exactly r stay in (0.25 and 0.5 are
    // exactly representable, so both distances are exactly 0.25).
    let boundary = NnCellIndex::build(
        vec![
            Point::new(vec![0.25, 0.5]),
            Point::new(vec![0.75, 0.5]),
            Point::new(vec![0.5, 0.125]),
        ],
        BuildConfig::builder().strategy(BuildStrategy::Sphere).seed(1).build(),
    )
    .unwrap();
    let resp = boundary
        .engine()
        .execute(&Query::radius([0.5, 0.5], 0.25))
        .unwrap();
    let ids: Vec<usize> = resp.iter().map(|r| r.id).collect();
    assert_eq!(ids, vec![0, 1], "dist == r is inside the closed ball");
    // Out-of-space centers need no scan fallback on the point tree.
    let resp = engine.execute(&Query::radius([-0.4, 0.5], 0.5)).unwrap();
    assert_eq!(resp.best.id, 0);
    assert!(!resp.stats.fallback);
    // Typed failures.
    assert_eq!(
        engine
            .execute(&Query::radius([0.5, 0.5], f64::NAN))
            .unwrap_err(),
        QueryError::InvalidRadius
    );
    assert_eq!(
        engine
            .execute(&Query::radius([0.5, 0.5], -0.1))
            .unwrap_err(),
        QueryError::InvalidRadius
    );
    assert_eq!(
        engine
            .execute(&Query::radius([0.0, 0.0], 0.01))
            .unwrap_err(),
        QueryError::EmptyRadius
    );
    // r = 0 is a valid degenerate ball: only an exact hit answers.
    assert_eq!(
        engine
            .execute(&Query::radius([0.05, 0.5], 0.0))
            .unwrap()
            .best
            .id,
        0
    );
}
