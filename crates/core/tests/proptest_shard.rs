//! ShardedIndex parity: for any shard count the sharded index must be
//! bit-identical to the unsharded one — same ids, same distance bits,
//! same ranking, tie ordering included.
//!
//! Points are drawn from a deliberately coarse lattice so equidistant
//! rivals (ties) are common and the merge's `(distance, global id)`
//! ordering is actually exercised, not vacuously satisfied.

use nncell_core::{
    linear_scan_knn, BuildConfig, FoldConfig, NnCellIndex, Query, QueryEngine, QueryResponse,
    ShardedIndex, Strategy as BuildStrategy,
};
use nncell_geom::{dist, dist_sq, Point};
use proptest::prelude::*;
use proptest::TestCaseError;

/// Coarse lattice coordinate: 9 levels per axis ⇒ frequent exact ties.
fn coarse_coord() -> impl Strategy<Value = f64> {
    (0..=8u32).prop_map(|v| v as f64 / 8.0)
}

fn lattice_points(d: usize, min: usize, max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(prop::collection::vec(coarse_coord(), d), min..max).prop_filter_map(
        "distinct points",
        |pts| {
            for (i, p) in pts.iter().enumerate() {
                for q in pts.iter().skip(i + 1) {
                    if dist_sq(p, q) == 0.0 {
                        return None;
                    }
                }
            }
            Some(pts.into_iter().map(Point::new).collect())
        },
    )
}

/// Full-response equality: winner, ranking, ids, and distance *bits*.
fn assert_bit_identical(
    sharded: &QueryResponse,
    whole: &QueryResponse,
    ctx: &str,
) -> Result<(), TestCaseError> {
    let s: Vec<_> = sharded.iter().collect();
    let w: Vec<_> = whole.iter().collect();
    prop_assert_eq!(s.len(), w.len(), "result count: {}", ctx);
    for (rank, (a, b)) in s.iter().zip(&w).enumerate() {
        prop_assert_eq!(a.id, b.id, "id at rank {}: {}", rank, ctx);
        prop_assert_eq!(
            a.dist.to_bits(),
            b.dist.to_bits(),
            "distance bits at rank {}: {}",
            rank,
            ctx
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn sharded_nn_and_knn_match_unsharded(
        pts in lattice_points(2, 4, 26),
        queries in prop::collection::vec(prop::collection::vec(coarse_coord(), 2), 5),
        shards in 1usize..=4,
        k in 1usize..=6,
    ) {
        let cfg = BuildConfig::builder().strategy(BuildStrategy::Sphere).seed(7).build();
        let whole = NnCellIndex::build(pts.clone(), cfg.clone()).unwrap();
        let engine = QueryEngine::sequential(&whole);
        let sharded = ShardedIndex::build(pts.clone(), shards, cfg).unwrap();
        prop_assert_eq!(sharded.len(), pts.len());
        let k = k.min(pts.len());
        for q in &queries {
            let ctx = format!("S={shards} q={q:?}");
            let nn_q = Query::nn(q.clone());
            assert_bit_identical(
                &sharded.query(&nn_q).unwrap(),
                &engine.execute(&nn_q).unwrap(),
                &ctx,
            )?;
            let knn_q = Query::knn(q.clone(), k);
            assert_bit_identical(
                &sharded.query(&knn_q).unwrap(),
                &engine.execute(&knn_q).unwrap(),
                &ctx,
            )?;
        }
        // The batch path merges the same way.
        let batch: Vec<Query> = queries.iter().map(|q| Query::knn(q.clone(), k)).collect();
        for (sr, q) in sharded.batch(&batch).into_iter().zip(&batch) {
            assert_bit_identical(&sr.unwrap(), &engine.execute(q).unwrap(), "batch")?;
        }
    }

    #[test]
    fn sharded_then_inserted_matches_rebuilt_whole(
        pts in lattice_points(3, 6, 20),
        shards in 2usize..=4,
    ) {
        // Build from a prefix, insert the rest dynamically: global ids must
        // still equal input positions and answers must match a fresh
        // unsharded build of the full set.
        let cfg = BuildConfig::builder().strategy(BuildStrategy::Sphere).seed(11).build();
        let split = pts.len() / 2;
        let sharded =
            ShardedIndex::build(pts[..split].to_vec(), shards, cfg.clone()).unwrap();
        for (g, p) in pts.iter().enumerate().skip(split) {
            let got = sharded.query(&Query::nn(p.as_slice())).unwrap();
            prop_assert!(got.best.id < g, "pre-insert winner must be an older point");
            let assigned = sharded.insert(p.clone()).unwrap();
            prop_assert_eq!(assigned, g, "round-robin ids track input positions");
        }
        let whole = NnCellIndex::build(pts.clone(), cfg).unwrap();
        let engine = QueryEngine::sequential(&whole);
        for (g, p) in pts.iter().enumerate() {
            let q = Query::nn(p.as_slice());
            let got = sharded.query(&q).unwrap();
            prop_assert_eq!(got.best.id, g, "every point is its own nearest neighbor");
            assert_bit_identical(&got, &engine.execute(&q).unwrap(), "post-insert")?;
        }
    }
}

#[test]
fn single_shard_fallback_counts_match_unsharded() {
    // k ≥ live count forces the exact-scan fallback; with S=1 the sharded
    // counters must agree exactly with the unsharded index (for S>1 a
    // shard can fall back where the whole index would not, which is why
    // parity is asserted on results, not stats — DESIGN.md §12).
    let pts: Vec<Point> = (0..6)
        .map(|i| Point::new(vec![i as f64 / 8.0, (i * 3 % 7) as f64 / 8.0]))
        .collect();
    let cfg = BuildConfig::builder().strategy(BuildStrategy::Sphere).seed(5).build();
    let whole = NnCellIndex::build(pts.clone(), cfg.clone()).unwrap();
    let engine = QueryEngine::sequential(&whole);
    let sharded = ShardedIndex::build(pts.clone(), 1, cfg).unwrap();
    let queries = [
        Query::knn(vec![0.5, 0.5], pts.len()), // k == n → fallback
        Query::nn(vec![0.1, 0.9]),             // in-space NN → no fallback
        Query::knn(vec![0.3, 0.3], 2),
        Query::nn(vec![2.0, 2.0]), // outside the unit space → fallback
    ];
    for q in &queries {
        let a = sharded.query(q).unwrap();
        let b = engine.execute(q).unwrap();
        assert_eq!(a.stats.fallback, b.stats.fallback, "{q:?}");
        assert_eq!(a.best.id, b.best.id, "{q:?}");
    }
    assert!(whole.fallback_queries() > 0, "test must exercise the fallback");
    assert_eq!(sharded.shard_fallback_queries(), whole.fallback_queries());
    assert_eq!(sharded.fallback_queries(), whole.fallback_queries());
}

/// Distinct deterministic points on a 100×100 lattice, off the boundary.
fn grid_point(i: usize) -> Point {
    Point::new(vec![
        (i % 97) as f64 / 100.0 + 0.005,
        (i / 97 % 97) as f64 / 100.0 + 0.005,
    ])
}

#[test]
fn save_load_round_trips_through_a_manifest() {
    let pts: Vec<Point> = (0..17).map(grid_point).collect();
    let cfg = BuildConfig::builder().strategy(BuildStrategy::Sphere).seed(9).build();
    let sharded = ShardedIndex::build(pts.clone(), 3, cfg).unwrap();
    let dir = std::env::temp_dir().join(format!("nncell_shard_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    sharded.save(&dir).unwrap();
    assert_eq!(
        ShardedIndex::manifest_shards(&dir),
        Some(3),
        "the CLI's layout auto-detection reads this manifest"
    );
    let loaded = ShardedIndex::load(&dir).unwrap();
    assert_eq!(loaded.num_shards(), 3);
    assert_eq!(loaded.len(), pts.len());
    for (g, p) in pts.iter().enumerate() {
        let r = loaded.query(&Query::nn(p.as_slice())).unwrap();
        assert_eq!(r.best.id, g, "global ids survive the round trip");
    }
    // Inserts keep numbering where the save left off.
    assert_eq!(loaded.insert(grid_point(17)).unwrap(), 17);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn durable_shards_recover_acknowledged_updates() {
    use nncell_core::{FaultSchedule, FaultVfs, PersistError, Vfs};
    use std::path::PathBuf;
    use std::sync::Arc;

    let fault = FaultVfs::new(FaultSchedule::none(11));
    let vfs: Arc<dyn Vfs> = Arc::new(fault.clone());
    let dir = PathBuf::from("/db");
    let cfg = || BuildConfig::builder().strategy(BuildStrategy::Sphere).seed(13).build();

    let sharded =
        ShardedIndex::open_durable_with_vfs(Arc::clone(&vfs), &dir, 2, 3, cfg()).unwrap();
    assert!(sharded.is_durable());
    for i in 0..11 {
        assert_eq!(sharded.insert(grid_point(i)).unwrap(), i);
    }
    assert!(sharded.remove(4).unwrap());
    assert!(sharded.wal_records() > 0, "updates must be journaled");
    drop(sharded); // crash: no checkpoint, no close — WAL replay must cover it

    let recovered =
        ShardedIndex::open_durable_with_vfs(Arc::clone(&vfs), &dir, 2, 3, cfg()).unwrap();
    assert_eq!(recovered.len(), 10);
    assert_eq!(recovered.recovery().len(), 3);
    for i in 0..11 {
        if i == 4 {
            continue;
        }
        let p = grid_point(i);
        let r = recovered.query(&Query::nn(p.as_slice())).unwrap();
        assert_eq!(r.best.id, i, "acknowledged insert {i} must survive the crash");
    }
    // Numbering resumes after the recovered watermark.
    assert_eq!(recovered.insert(grid_point(11)).unwrap(), 11);
    recovered.close().unwrap();

    // A shard-count mismatch is a typed corruption, not silent resharding.
    match ShardedIndex::open_durable_with_vfs(Arc::clone(&vfs), &dir, 2, 4, cfg()) {
        Err(PersistError::Corrupt(_)) => {}
        Err(e) => panic!("expected Corrupt, got {e:?}"),
        Ok(_) => panic!("shard-count mismatch must not open"),
    }
}

#[test]
fn queries_run_concurrently_with_inserts() {
    use std::sync::atomic::{AtomicBool, Ordering};

    // Deterministic distinct points in the unit square via an LCG.
    let mut state = 0x1234_5678_9abc_def0u64;
    let mut coord = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / (u32::MAX >> 1) as f64
    };
    let pts: Vec<Point> = (0..64)
        .map(|_| Point::new(vec![coord(), coord(), coord()]))
        .collect();

    let cfg = BuildConfig::builder().strategy(BuildStrategy::Sphere).seed(3).build();
    let sharded = ShardedIndex::build(pts[..8].to_vec(), 3, cfg).unwrap();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        for reader in 0..2 {
            let sharded = &sharded;
            let stop = &stop;
            let probe = pts[reader].as_slice().to_vec();
            s.spawn(move || {
                let mut served = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    // Readers must never block, error, or observe a
                    // half-applied insert: every response is a live point.
                    let r = sharded.query(&Query::nn(probe.clone())).unwrap();
                    assert!(r.best.dist.is_finite());
                    assert!(r.best.id < 64, "id {} was never assigned", r.best.id);
                    served += 1;
                }
                assert!(served > 0, "reader never ran");
            });
        }
        for p in &pts[8..] {
            sharded.insert(p.clone()).unwrap();
        }
        // Removals publish snapshots under readers too.
        assert!(sharded.remove(10).unwrap());
        assert!(sharded.remove(33).unwrap());
        stop.store(true, Ordering::Relaxed);
    });
    assert_eq!(sharded.len(), 62);
    // Quiesced: every live point answers itself.
    for (g, p) in pts.iter().enumerate() {
        if g == 10 || g == 33 {
            continue;
        }
        let r = sharded.query(&Query::nn(p.as_slice())).unwrap();
        assert_eq!(r.best.id, g, "point {g} must be its own nearest neighbor");
    }
}

/// Deterministic distinct points in the unit cube via an LCG.
fn lcg_points(n: usize, seed: u64) -> Vec<Point> {
    let mut state = seed;
    let mut coord = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / (u32::MAX >> 1) as f64
    };
    (0..n)
        .map(|_| Point::new(vec![coord(), coord(), coord()]))
        .collect()
}

/// A remove-only writer racing parity-checking readers: every concurrent
/// answer must be explainable by some monotone prefix of the removal
/// sequence, with linear-scan agreement on distance *bits*.
///
/// The writer deletes ids `0..n_remove` ascending and publishes a
/// watermark *after* each acked remove. A reader brackets each query with
/// watermark loads `w0`/`w1`; monotone removal then pins what the query
/// could have observed:
///
/// * ids `< w0` were dead before the query started — none may appear;
/// * ids `> w1` could not have been removed during the query — any such
///   point strictly closer (by the merge's `(distance, id)` order) than
///   the worst returned result would have won, so none may exist outside
///   the response, and a short response (fewer than `k` results) must
///   contain every one of them.
fn assert_remove_during_query_parity(idx: &ShardedIndex, pts: &[Point], n_remove: usize) {
    use std::cmp::Ordering as Cmp;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    let n = pts.len();
    let watermark = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    // Memtable removes are journal-only and outrun thread startup; the
    // barrier makes sure every reader brackets at least the storm's tail.
    let start = std::sync::Barrier::new(3);
    std::thread::scope(|s| {
        if idx.memtable_enabled() {
            let (idx, stop) = (&idx, &stop);
            s.spawn(move || idx.run_folder(stop));
        }
        for reader in 0..2 {
            // Probe near a survivor so the live set is never empty.
            let probe: Vec<f64> = pts[n - 1 - reader].as_slice().to_vec();
            let (idx, watermark, stop, pts, start) = (&idx, &watermark, &stop, &pts, &start);
            s.spawn(move || {
                let strictly_closer = |d: f64, id: usize, worst_d: f64, worst_id: usize| {
                    d.total_cmp(&worst_d).then(id.cmp(&worst_id)) == Cmp::Less
                };
                let mut served = 0usize;
                start.wait();
                loop {
                    let k = 1 + served % 3;
                    let w0 = watermark.load(Ordering::Acquire);
                    let resp = idx.query(&Query::knn(probe.clone(), k)).unwrap();
                    let w1 = watermark.load(Ordering::Acquire);
                    served += 1;

                    let results: Vec<_> = resp.iter().collect();
                    assert!(
                        !results.is_empty() && results.len() <= k,
                        "k={k} returned {} results",
                        results.len()
                    );
                    for w in results.windows(2) {
                        assert!(
                            strictly_closer(w[0].dist, w[0].id, w[1].dist, w[1].id),
                            "response not strictly ordered: {:?} vs {:?}",
                            (w[0].dist, w[0].id),
                            (w[1].dist, w[1].id)
                        );
                    }
                    for r in &results {
                        assert!(r.id < n, "id {} was never assigned", r.id);
                        assert!(
                            r.id >= w0,
                            "id {} was removed before the query started (w0={w0})",
                            r.id
                        );
                        let want = dist(&probe, pts[r.id].as_slice());
                        assert_eq!(
                            r.dist.to_bits(),
                            want.to_bits(),
                            "id {}: distance {} diverged from the linear-scan metric {}",
                            r.id,
                            r.dist,
                            want
                        );
                    }
                    // Sandwich: points the writer provably never touched
                    // during the query window behave as in an offline scan.
                    let worst = results.last().expect("nonempty");
                    for pid in (w1 + 1).min(n)..n {
                        if results.iter().any(|r| r.id == pid) {
                            continue;
                        }
                        assert_eq!(
                            results.len(),
                            k,
                            "short response omitted live id {pid} (w1={w1})"
                        );
                        let d = dist(&probe, pts[pid].as_slice());
                        assert!(
                            !strictly_closer(d, pid, worst.dist, worst.id),
                            "live id {pid} at {d} beats returned worst \
                             ({}, id {}) yet was omitted (w0={w0}, w1={w1})",
                            worst.dist,
                            worst.id
                        );
                    }
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                }
                assert!(served > 0, "reader never ran");
            });
        }
        start.wait();
        for id in 0..n_remove {
            assert!(idx.remove(id).unwrap(), "id {id} was live");
            watermark.store(id + 1, Ordering::Release);
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Release);
    });

    // Quiesced: bit-exact linear-scan parity over the survivors.
    assert_eq!(idx.len(), n - n_remove);
    let survivors: Vec<Point> = pts[n_remove..].to_vec();
    let probe: Vec<f64> = vec![0.5, 0.5, 0.5];
    for k in [1, 3, 7] {
        let got = idx.query(&Query::knn(probe.clone(), k)).unwrap();
        let want = linear_scan_knn(&survivors, &probe, k);
        assert_eq!(got.iter().count(), want.len(), "k={k}");
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.id, n_remove + w.id, "k={k}: ranking diverged");
            assert_eq!(g.dist.to_bits(), w.dist.to_bits(), "k={k}: distance bits");
        }
    }
}

#[test]
fn removes_race_queries_with_linear_scan_parity() {
    let pts = lcg_points(160, 0x5eed_0007);
    let cfg = BuildConfig::builder().strategy(BuildStrategy::Sphere).seed(3).build();
    let sharded = ShardedIndex::build(pts.clone(), 3, cfg).unwrap();
    assert_remove_during_query_parity(&sharded, &pts, 150);
}

#[test]
fn removes_race_queries_through_the_memtable_tail() {
    let pts = lcg_points(160, 0x5eed_0011);
    let cfg = BuildConfig::builder().strategy(BuildStrategy::Sphere).seed(3).build();
    // Seed the cells with a prefix, push the rest through the journaled
    // tail, then race the same removal storm against a live folder: the
    // merge must stay indistinguishable from the synchronous path.
    let sharded = ShardedIndex::build(pts[..16].to_vec(), 3, cfg)
        .unwrap()
        .with_memtable(FoldConfig::default());
    for (i, p) in pts.iter().enumerate().skip(16) {
        assert_eq!(sharded.insert(p.clone()).unwrap(), i);
    }
    assert_remove_during_query_parity(&sharded, &pts, 150);
}
