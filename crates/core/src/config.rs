//! Build configuration for the NN-cell index.

use nncell_lp::{LpBudget, SolverKind};

/// The constraint-selection algorithm used when approximating a cell
/// (section 2 of the paper, figure 3's `OptAlg`).
///
/// All five are *exact* with respect to query answers (Lemma 1: dropping
/// constraints can only grow an approximation, so the true cell's
/// approximation always contains the query point); they trade approximation
/// tightness against index-construction time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// All `N−1` bisectors. The exact MBR of the cell; `O(N)` LP constraints
    /// per extent — prohibitive at database scale.
    Correct,
    /// `Correct` with the exactness-preserving constraint prefilter: a rough
    /// superset MBR from the `4·d` nearest rivals prunes every bisector that
    /// cannot touch it. Produces *identical* MBRs to `Correct`.
    CorrectPruned,
    /// All points stored in leaf pages whose page region contains the point.
    Point,
    /// All points stored in leaf pages whose page region intersects a sphere
    /// around the point (radius: [`BuildConfig::sphere_radius`]).
    Sphere,
    /// The `2·d` nearest neighbors in the axis directions plus the `2·d`
    /// points with the smallest angular deviation from each axis — a
    /// constant-size (`≤ 4·d`) constraint set, `O(d·d!)` LP cost.
    NnDirection,
}

impl Strategy {
    /// All strategies, in the order the paper's figures plot them.
    pub const ALL: [Strategy; 4] = [
        Strategy::Correct,
        Strategy::Point,
        Strategy::Sphere,
        Strategy::NnDirection,
    ];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Correct => "Correct",
            Strategy::CorrectPruned => "Correct(pruned)",
            Strategy::Point => "Point",
            Strategy::Sphere => "Sphere",
            Strategy::NnDirection => "NN-Direction",
        }
    }
}

/// Where the bisector-candidate pool for each cell comes from (the
/// tentpole of the sub-quadratic build; ROADMAP item 1).
///
/// Lemma 1 makes *any* candidate subset exact for query answers — dropping
/// constraints can only grow a cell's approximation, never shrink it below
/// the true cell. The pool therefore only trades MBR tightness (query-time
/// candidates) against build time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ConstraintPool {
    /// Candidates come from the configured [`Strategy`] over the full live
    /// point set — the pre-pool behavior, `O(N)`-ish gathering per cell.
    #[default]
    Exhaustive,
    /// Candidates are the point's `k` approximate nearest neighbors, probed
    /// from the bulk-loaded point tree (bounded best-first). Gathering is
    /// `O(log N + k)` pages per cell; the configured [`Strategy`] is only
    /// consulted when a cell falls back to the exhaustive pool (degenerate
    /// or clamped LP solve — see `BuildStats::pool_fallback_cells`).
    ApproxKnn {
        /// Pool size. `BuildConfig::effective_pool_k` clamps it to at least
        /// `2·d + 1` so every axis direction can find a rival.
        k: usize,
    },
}


impl ConstraintPool {
    /// The recommended pool size for `d`-dimensional data: `4·d`, matching
    /// the constraint count of the paper's NN-Direction strategy (whose
    /// tightness it empirically tracks) while keeping each cell's LP
    /// constant-size.
    pub fn recommended_k(d: usize) -> usize {
        (4 * d.max(1)).max(8)
    }
}

/// What a bulk build does with an invalid input point (NaN/∞ coordinate,
/// outside the data space, or an exact duplicate of an earlier point).
///
/// Dynamic [`crate::NnCellIndex::insert`] always rejects — it must return an
/// id, so there is nothing sensible to "skip" to.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum InputPolicy {
    /// Fail the build with the typed [`crate::BuildError`].
    #[default]
    Reject,
    /// Drop the offending point, count it in
    /// [`crate::BuildStats::skipped_points`], and index the rest. Ids are
    /// assigned to the *surviving* points in input order.
    Skip,
}

/// Configuration for [`crate::NnCellIndex::build`].
///
/// Construct with [`BuildConfig::builder`]:
///
/// ```
/// use nncell_core::{BuildConfig, ConstraintPool, Strategy};
/// let cfg = BuildConfig::builder()
///     .strategy(Strategy::NnDirection)
///     .constraint_pool(ConstraintPool::ApproxKnn { k: 32 })
///     .seed(7)
///     .build();
/// assert_eq!(cfg.pool, ConstraintPool::ApproxKnn { k: 32 });
/// ```
#[derive(Clone, Debug)]
pub struct BuildConfig {
    /// Constraint-selection strategy.
    pub strategy: Strategy,
    /// Where each cell's bisector-candidate pool comes from. Under
    /// [`ConstraintPool::ApproxKnn`] the strategy is bypassed for
    /// first-attempt gathering and only governs the exhaustive fallback.
    pub pool: ConstraintPool,
    /// LP backend ([`SolverKind::Auto`] picks simplex for small constraint
    /// sets, Seidel for large ones).
    pub solver: SolverKind,
    /// Decompose each cell into at most this many MBR pieces (section 3).
    /// `None` / `Some(1)` disables decomposition.
    pub decompose_pieces: Option<usize>,
    /// Sphere-strategy radius; `None` uses the heuristic
    /// `√d · (1/N)^(1/d)` (≈ 2× the expected NN distance of uniform data —
    /// the paper's printed formula is garbled, see DESIGN.md §5).
    pub sphere_radius: Option<f64>,
    /// Simulated disk block size for both internal trees.
    pub block_size: usize,
    /// RNG seed (Seidel shuffles; fully deterministic builds).
    pub seed: u64,
    /// After a dynamic insert, recompute the cells the new point affects
    /// (quality refinement; exactness holds either way).
    pub refine_on_insert: bool,
    /// Worker threads for the cell-computation phase of a bulk build (cells
    /// are independent given the shared read-only point tree). `1` =
    /// sequential; queries and dynamic updates are unaffected.
    pub threads: usize,
    /// Work budget per LP solve. The default lets each backend size its own
    /// cap; a tiny explicit cap (even 0) is safe — exhausted solves walk the
    /// fallback chain and terminally clamp to the data space, which keeps
    /// queries exact (Lemma 1) at the price of fatter MBRs.
    pub lp_budget: LpBudget,
    /// What a bulk build does with invalid input points.
    pub input_policy: InputPolicy,
}

impl Default for BuildConfig {
    /// [`BuildConfig::builder`] defaults: NN-Direction strategy, exhaustive
    /// pool, auto solver, no decomposition, 4 KB blocks, seed 0, refinement
    /// on, one thread.
    fn default() -> Self {
        Self {
            strategy: Strategy::NnDirection,
            pool: ConstraintPool::Exhaustive,
            solver: SolverKind::Auto,
            decompose_pieces: None,
            sphere_radius: None,
            block_size: 4096,
            seed: 0,
            refine_on_insert: true,
            threads: 1,
            lp_budget: LpBudget::DEFAULT,
            input_policy: InputPolicy::Reject,
        }
    }
}

impl BuildConfig {
    /// Starts a builder with the documented defaults.
    pub fn builder() -> BuildConfigBuilder {
        BuildConfigBuilder {
            cfg: BuildConfig::default(),
        }
    }

    /// The effective Sphere radius for a database of `n` points in `d`
    /// dimensions.
    ///
    /// Default: twice the expected nearest-neighbor distance of uniform
    /// data, `2·√(d/(2πe))·n^(−1/d)` (the paper's printed radius formula is
    /// garbled; this matches its stated intent — "a number of points close
    /// to the considered point").
    pub fn effective_sphere_radius(&self, n: usize, d: usize) -> f64 {
        self.sphere_radius.unwrap_or_else(|| {
            let n = n.max(2) as f64;
            let d = d as f64;
            2.0 * (d / (2.0 * std::f64::consts::PI * std::f64::consts::E)).sqrt()
                * (1.0 / n).powf(1.0 / d)
        })
    }

    /// The effective [`ConstraintPool::ApproxKnn`] pool size for
    /// `d`-dimensional data: the configured `k`, floored at `2·d + 1` so a
    /// rival can bound every axis direction, and at 2 so the pool is never
    /// empty.
    pub fn effective_pool_k(&self, d: usize) -> usize {
        match self.pool {
            ConstraintPool::Exhaustive => 0,
            ConstraintPool::ApproxKnn { k } => k.max(2 * d + 1).max(2),
        }
    }
}

/// Chainable constructor for [`BuildConfig`], obtained from
/// [`BuildConfig::builder`]. Every setter mirrors a config field; `build()`
/// returns the finished config.
#[derive(Clone, Debug, Default)]
pub struct BuildConfigBuilder {
    cfg: BuildConfig,
}

impl BuildConfigBuilder {
    /// Sets the constraint-selection strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.cfg.strategy = strategy;
        self
    }

    /// Sets where each cell's bisector-candidate pool comes from.
    pub fn constraint_pool(mut self, pool: ConstraintPool) -> Self {
        self.cfg.pool = pool;
        self
    }

    /// Sets the LP backend.
    pub fn solver(mut self, solver: SolverKind) -> Self {
        self.cfg.solver = solver;
        self
    }

    /// Enables decomposition into at most `pieces` MBRs per cell.
    ///
    /// # Panics
    /// Panics if `pieces == 0`.
    pub fn decompose_pieces(mut self, pieces: usize) -> Self {
        assert!(pieces >= 1, "decomposition needs at least one piece");
        self.cfg.decompose_pieces = Some(pieces);
        self
    }

    /// Overrides the Sphere-strategy radius.
    ///
    /// # Panics
    /// Panics if `r` is not strictly positive.
    pub fn sphere_radius(mut self, r: f64) -> Self {
        assert!(r > 0.0);
        self.cfg.sphere_radius = Some(r);
        self
    }

    /// Overrides the simulated block size.
    pub fn block_size(mut self, bytes: usize) -> Self {
        self.cfg.block_size = bytes;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Toggles refinement of affected cells on dynamic inserts.
    pub fn refine_on_insert(mut self, yes: bool) -> Self {
        self.cfg.refine_on_insert = yes;
        self
    }

    /// Sets the build-phase worker-thread count.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one thread");
        self.cfg.threads = threads;
        self
    }

    /// Caps every LP solve at `n` work units (exhausted solves walk the
    /// fallback chain and terminally clamp; exactness is unaffected).
    pub fn lp_max_iterations(mut self, n: usize) -> Self {
        self.cfg.lp_budget = LpBudget::with_max_iterations(n);
        self
    }

    /// Sets the full LP work budget.
    pub fn lp_budget(mut self, budget: LpBudget) -> Self {
        self.cfg.lp_budget = budget;
        self
    }

    /// Sets the invalid-input policy for bulk builds.
    pub fn input_policy(mut self, policy: InputPolicy) -> Self {
        self.cfg.input_policy = policy;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> BuildConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let c = BuildConfig::builder()
            .strategy(Strategy::Sphere)
            .constraint_pool(ConstraintPool::ApproxKnn { k: 48 })
            .solver(SolverKind::Seidel)
            .decompose_pieces(4)
            .sphere_radius(0.3)
            .block_size(2048)
            .seed(9)
            .refine_on_insert(false)
            .lp_max_iterations(100)
            .input_policy(InputPolicy::Skip)
            .build();
        assert_eq!(c.strategy, Strategy::Sphere);
        assert_eq!(c.pool, ConstraintPool::ApproxKnn { k: 48 });
        assert_eq!(c.solver, SolverKind::Seidel);
        assert_eq!(c.decompose_pieces, Some(4));
        assert_eq!(c.sphere_radius, Some(0.3));
        assert_eq!(c.block_size, 2048);
        assert_eq!(c.seed, 9);
        assert!(!c.refine_on_insert);
        assert_eq!(c.lp_budget.max_iterations, Some(100));
        assert_eq!(c.input_policy, InputPolicy::Skip);
    }

    #[test]
    fn builder_defaults() {
        let c = BuildConfig::builder().build();
        assert_eq!(c.strategy, Strategy::NnDirection);
        assert_eq!(c.pool, ConstraintPool::Exhaustive);
        assert_eq!(c.block_size, 4096);
        assert_eq!(c.seed, 0);
        assert!(c.refine_on_insert);
        assert_eq!(c.threads, 1);
    }

    #[test]
    fn pool_k_floors() {
        let c = BuildConfig::builder()
            .constraint_pool(ConstraintPool::ApproxKnn { k: 4 })
            .build();
        // Floored at 2·d + 1 so every axis direction can find a rival.
        assert_eq!(c.effective_pool_k(8), 17);
        assert_eq!(c.effective_pool_k(1), 4);
        assert_eq!(
            BuildConfig::builder().build().effective_pool_k(8),
            0,
            "exhaustive pool has no k"
        );
        assert_eq!(ConstraintPool::recommended_k(8), 32);
        assert_eq!(ConstraintPool::recommended_k(1), 8);
    }

    #[test]
    fn default_radius_shrinks_with_n_and_grows_with_d() {
        let c = BuildConfig::builder().strategy(Strategy::Sphere).build();
        let r_small = c.effective_sphere_radius(100, 4);
        let r_big_n = c.effective_sphere_radius(10_000, 4);
        let r_big_d = c.effective_sphere_radius(100, 16);
        assert!(r_big_n < r_small);
        assert!(r_big_d > r_small);
        // Explicit override wins.
        let c2 = BuildConfig::builder()
            .strategy(Strategy::Sphere)
            .sphere_radius(0.123)
            .build();
        assert_eq!(c2.effective_sphere_radius(100, 4), 0.123);
    }

    #[test]
    fn strategy_names() {
        assert_eq!(Strategy::NnDirection.name(), "NN-Direction");
        assert_eq!(Strategy::ALL.len(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one piece")]
    fn zero_pieces_rejected() {
        let _ = BuildConfig::builder().decompose_pieces(0);
    }
}
