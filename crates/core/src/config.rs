//! Build configuration for the NN-cell index.

use nncell_lp::{LpBudget, SolverKind};

/// The constraint-selection algorithm used when approximating a cell
/// (section 2 of the paper, figure 3's `OptAlg`).
///
/// All five are *exact* with respect to query answers (Lemma 1: dropping
/// constraints can only grow an approximation, so the true cell's
/// approximation always contains the query point); they trade approximation
/// tightness against index-construction time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// All `N−1` bisectors. The exact MBR of the cell; `O(N)` LP constraints
    /// per extent — prohibitive at database scale.
    Correct,
    /// `Correct` with the exactness-preserving constraint prefilter: a rough
    /// superset MBR from the `4·d` nearest rivals prunes every bisector that
    /// cannot touch it. Produces *identical* MBRs to `Correct`.
    CorrectPruned,
    /// All points stored in leaf pages whose page region contains the point.
    Point,
    /// All points stored in leaf pages whose page region intersects a sphere
    /// around the point (radius: [`BuildConfig::sphere_radius`]).
    Sphere,
    /// The `2·d` nearest neighbors in the axis directions plus the `2·d`
    /// points with the smallest angular deviation from each axis — a
    /// constant-size (`≤ 4·d`) constraint set, `O(d·d!)` LP cost.
    NnDirection,
}

impl Strategy {
    /// All strategies, in the order the paper's figures plot them.
    pub const ALL: [Strategy; 4] = [
        Strategy::Correct,
        Strategy::Point,
        Strategy::Sphere,
        Strategy::NnDirection,
    ];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Correct => "Correct",
            Strategy::CorrectPruned => "Correct(pruned)",
            Strategy::Point => "Point",
            Strategy::Sphere => "Sphere",
            Strategy::NnDirection => "NN-Direction",
        }
    }
}

/// What a bulk build does with an invalid input point (NaN/∞ coordinate,
/// outside the data space, or an exact duplicate of an earlier point).
///
/// Dynamic [`crate::NnCellIndex::insert`] always rejects — it must return an
/// id, so there is nothing sensible to "skip" to.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum InputPolicy {
    /// Fail the build with the typed [`crate::BuildError`].
    #[default]
    Reject,
    /// Drop the offending point, count it in
    /// [`crate::BuildStats::skipped_points`], and index the rest. Ids are
    /// assigned to the *surviving* points in input order.
    Skip,
}

/// Configuration for [`crate::NnCellIndex::build`].
#[derive(Clone, Debug)]
pub struct BuildConfig {
    /// Constraint-selection strategy.
    pub strategy: Strategy,
    /// LP backend ([`SolverKind::Auto`] picks simplex for small constraint
    /// sets, Seidel for large ones).
    pub solver: SolverKind,
    /// Decompose each cell into at most this many MBR pieces (section 3).
    /// `None` / `Some(1)` disables decomposition.
    pub decompose_pieces: Option<usize>,
    /// Sphere-strategy radius; `None` uses the heuristic
    /// `√d · (1/N)^(1/d)` (≈ 2× the expected NN distance of uniform data —
    /// the paper's printed formula is garbled, see DESIGN.md §5).
    pub sphere_radius: Option<f64>,
    /// Simulated disk block size for both internal trees.
    pub block_size: usize,
    /// RNG seed (Seidel shuffles; fully deterministic builds).
    pub seed: u64,
    /// After a dynamic insert, recompute the cells the new point affects
    /// (quality refinement; exactness holds either way).
    pub refine_on_insert: bool,
    /// Worker threads for the cell-computation phase of a bulk build (cells
    /// are independent given the shared read-only point tree). `1` =
    /// sequential; queries and dynamic updates are unaffected.
    pub threads: usize,
    /// Work budget per LP solve. The default lets each backend size its own
    /// cap; a tiny explicit cap (even 0) is safe — exhausted solves walk the
    /// fallback chain and terminally clamp to the data space, which keeps
    /// queries exact (Lemma 1) at the price of fatter MBRs.
    pub lp_budget: LpBudget,
    /// What a bulk build does with invalid input points.
    pub input_policy: InputPolicy,
}

impl BuildConfig {
    /// Defaults: auto solver, no decomposition, 4 KB blocks, seed 0,
    /// refinement on.
    pub fn new(strategy: Strategy) -> Self {
        Self {
            strategy,
            solver: SolverKind::Auto,
            decompose_pieces: None,
            sphere_radius: None,
            block_size: 4096,
            seed: 0,
            refine_on_insert: true,
            threads: 1,
            lp_budget: LpBudget::DEFAULT,
            input_policy: InputPolicy::Reject,
        }
    }

    /// Sets the LP backend.
    pub fn with_solver(mut self, solver: SolverKind) -> Self {
        self.solver = solver;
        self
    }

    /// Enables decomposition into at most `pieces` MBRs per cell.
    pub fn with_decomposition(mut self, pieces: usize) -> Self {
        assert!(pieces >= 1, "decomposition needs at least one piece");
        self.decompose_pieces = Some(pieces);
        self
    }

    /// Overrides the Sphere-strategy radius.
    pub fn with_sphere_radius(mut self, r: f64) -> Self {
        assert!(r > 0.0);
        self.sphere_radius = Some(r);
        self
    }

    /// Overrides the simulated block size.
    pub fn with_block_size(mut self, bytes: usize) -> Self {
        self.block_size = bytes;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Toggles refinement of affected cells on dynamic inserts.
    pub fn with_refine_on_insert(mut self, yes: bool) -> Self {
        self.refine_on_insert = yes;
        self
    }

    /// Sets the build-phase worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one thread");
        self.threads = threads;
        self
    }

    /// Caps every LP solve at `n` work units (pivots / basis changes /
    /// constraint insertions). Exhausted solves escalate through the
    /// fallback chain and, at worst, clamp to the data space — exactness is
    /// unaffected.
    pub fn with_lp_max_iterations(mut self, n: usize) -> Self {
        self.lp_budget = LpBudget::with_max_iterations(n);
        self
    }

    /// Sets the full LP work budget.
    pub fn with_lp_budget(mut self, budget: LpBudget) -> Self {
        self.lp_budget = budget;
        self
    }

    /// Sets the invalid-input policy for bulk builds.
    pub fn with_input_policy(mut self, policy: InputPolicy) -> Self {
        self.input_policy = policy;
        self
    }

    /// The effective Sphere radius for a database of `n` points in `d`
    /// dimensions.
    ///
    /// Default: twice the expected nearest-neighbor distance of uniform
    /// data, `2·√(d/(2πe))·n^(−1/d)` (the paper's printed radius formula is
    /// garbled; this matches its stated intent — "a number of points close
    /// to the considered point").
    pub fn effective_sphere_radius(&self, n: usize, d: usize) -> f64 {
        self.sphere_radius.unwrap_or_else(|| {
            let n = n.max(2) as f64;
            let d = d as f64;
            2.0 * (d / (2.0 * std::f64::consts::PI * std::f64::consts::E)).sqrt()
                * (1.0 / n).powf(1.0 / d)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let c = BuildConfig::new(Strategy::Sphere)
            .with_solver(SolverKind::Seidel)
            .with_decomposition(4)
            .with_sphere_radius(0.3)
            .with_block_size(2048)
            .with_seed(9)
            .with_refine_on_insert(false)
            .with_lp_max_iterations(100)
            .with_input_policy(InputPolicy::Skip);
        assert_eq!(c.strategy, Strategy::Sphere);
        assert_eq!(c.solver, SolverKind::Seidel);
        assert_eq!(c.decompose_pieces, Some(4));
        assert_eq!(c.sphere_radius, Some(0.3));
        assert_eq!(c.block_size, 2048);
        assert_eq!(c.seed, 9);
        assert!(!c.refine_on_insert);
        assert_eq!(c.lp_budget.max_iterations, Some(100));
        assert_eq!(c.input_policy, InputPolicy::Skip);
    }

    #[test]
    fn default_radius_shrinks_with_n_and_grows_with_d() {
        let c = BuildConfig::new(Strategy::Sphere);
        let r_small = c.effective_sphere_radius(100, 4);
        let r_big_n = c.effective_sphere_radius(10_000, 4);
        let r_big_d = c.effective_sphere_radius(100, 16);
        assert!(r_big_n < r_small);
        assert!(r_big_d > r_small);
        // Explicit override wins.
        let c2 = c.with_sphere_radius(0.123);
        assert_eq!(c2.effective_sphere_radius(100, 4), 0.123);
    }

    #[test]
    fn strategy_names() {
        assert_eq!(Strategy::NnDirection.name(), "NN-Direction");
        assert_eq!(Strategy::ALL.len(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one piece")]
    fn zero_pieces_rejected() {
        let _ = BuildConfig::new(Strategy::Correct).with_decomposition(0);
    }
}
