//! One error surface for the whole stack.
//!
//! Each layer keeps its own precise error type — [`BuildError`] for index
//! construction and updates, [`QueryError`] for malformed queries,
//! [`PersistError`] for storage, [`DurableError`] for the journaled
//! update path — and this module re-exports them all plus the umbrella
//! [`Error`] that any of them converts into with `?`. Code that handles
//! failure modes individually matches on the sub-errors; code that just
//! propagates uses `Result<_, nncell::Error>`.

pub use crate::durable::DurableError;
pub use crate::index::BuildError;
pub use crate::persist::PersistError;
pub use crate::query::QueryError;

/// Any failure the nncell stack can report, by domain.
///
/// [`DurableError`] deliberately has no variant of its own: it splits
/// into build-rule violations, storage failures, and transient overload,
/// so its conversion flattens into [`Error::Build`], [`Error::Persist`],
/// or [`Error::Backpressure`] and callers match one set of variants
/// regardless of which index flavor produced the failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// Constructing or mutating an index: invalid input points,
    /// dimension mismatches, duplicates, empty databases.
    Build(BuildError),
    /// Executing a query: malformed request or an empty index.
    Query(QueryError),
    /// Saving, loading, journaling, or recovering: I/O failures and
    /// corrupt on-disk state.
    Persist(PersistError),
    /// Transient write refusal: the memtable tail is at its
    /// high-watermark; retry after a backoff.
    Backpressure {
        /// Unfolded tail operations at rejection time.
        tail: usize,
        /// The configured high-watermark.
        max: usize,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Build(e) => write!(f, "build error: {e}"),
            Error::Query(e) => write!(f, "query error: {e}"),
            Error::Persist(e) => write!(f, "persistence error: {e}"),
            Error::Backpressure { tail, max } => write!(
                f,
                "write backpressure: memtable tail at {tail}/{max} unfolded operations"
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Build(e) => Some(e),
            Error::Query(e) => Some(e),
            Error::Persist(e) => Some(e),
            Error::Backpressure { .. } => None,
        }
    }
}

impl From<BuildError> for Error {
    fn from(e: BuildError) -> Self {
        Error::Build(e)
    }
}

impl From<QueryError> for Error {
    fn from(e: QueryError) -> Self {
        Error::Query(e)
    }
}

impl From<PersistError> for Error {
    fn from(e: PersistError) -> Self {
        Error::Persist(e)
    }
}

impl From<DurableError> for Error {
    fn from(e: DurableError) -> Self {
        match e {
            DurableError::Invalid(b) => Error::Build(b),
            DurableError::Persist(p) => Error::Persist(p),
            DurableError::Backpressure { tail, max } => Error::Backpressure { tail, max },
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Persist(PersistError::Io(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_sub_error_converts_with_question_mark() {
        fn build() -> Result<(), Error> {
            Err(BuildError::EmptyDatabase)?
        }
        fn query() -> Result<(), Error> {
            Err(QueryError::ZeroK)?
        }
        fn persist() -> Result<(), Error> {
            Err(PersistError::Corrupt("x".into()))?
        }
        fn durable_invalid() -> Result<(), Error> {
            Err(DurableError::Invalid(BuildError::EmptyDatabase))?
        }
        fn durable_persist() -> Result<(), Error> {
            Err(DurableError::Persist(PersistError::Corrupt("x".into())))?
        }
        assert!(matches!(build(), Err(Error::Build(_))));
        assert!(matches!(query(), Err(Error::Query(_))));
        assert!(matches!(persist(), Err(Error::Persist(_))));
        // DurableError flattens: no third layer of nesting to unwrap.
        assert!(matches!(
            durable_invalid(),
            Err(Error::Build(BuildError::EmptyDatabase))
        ));
        assert!(matches!(
            durable_persist(),
            Err(Error::Persist(PersistError::Corrupt(_)))
        ));
    }

    #[test]
    fn display_is_prefixed_by_domain_and_chains_source() {
        let e = Error::from(QueryError::ZeroK);
        let msg = e.to_string();
        assert!(msg.starts_with("query error: "), "{msg}");
        assert!(std::error::Error::source(&e).is_some());
        let e = Error::from(BuildError::EmptyDatabase);
        assert!(e.to_string().starts_with("build error: "));
        let e = Error::from(PersistError::Corrupt("bad magic".into()));
        let msg = e.to_string();
        assert!(msg.starts_with("persistence error: "), "{msg}");
        assert!(msg.contains("bad magic"), "{msg}");
    }
}
