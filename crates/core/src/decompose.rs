//! MBR decomposition of NN-cells (section 3 of the paper).
//!
//! In high dimensions the MBR of an *oblique* (slanted) cell wastes volume,
//! so approximations overlap heavily. Definition 5 decomposes each cell
//! along its `d'` most oblique dimensions into `n₁ ≥ … ≥ n_{d'}` equal slabs
//! of the MBR extent (`k = Πnᵢ` pieces, `k ≤ ~10` in practice); each piece's
//! MBR is the same extent LP with two extra slab constraints. Pieces whose
//! slab misses the cell are dropped (they cover nothing). The union of piece
//! MBRs still covers the cell, so exactness is preserved (Lemma 2).
//!
//! **Obliqueness heuristic.** The paper's "maximum of all shortest
//! diagonals" is not specified further ("many algorithms could be used"), so
//! we score each dimension by the *trial-split volume reduction on the
//! cell's face-touching vertices*: the `2·d` LP optimizers are actual points
//! of the cell touching each MBR face; splitting that vertex set at the MBR
//! midpoint of a dimension and summing the two sub-boxes' volumes measures
//! how much a real split along that dimension would gain — directly
//! optimizing the quantity Definition 4 minimizes, at zero extra LP cost.

use nncell_geom::{Halfspace, Mbr, Metric};
use nncell_lp::{CellLpStats, CellSolve, VoronoiLp};

/// Factorizes the piece budget `k` into descending slab counts
/// `n₁ ≥ n₂ ≥ …` with `Πnᵢ ≤ k` (prime factorization, largest first), as the
/// paper prescribes ("the number of partitions … is also decreasing").
///
/// ```
/// use nncell_core::decompose::plan_partitions;
/// assert!(plan_partitions(1).is_empty());   // no decomposition
/// assert_eq!(plan_partitions(8), vec![2, 2, 2]);
/// assert_eq!(plan_partitions(10), vec![5, 2]);
/// ```
pub fn plan_partitions(k: usize) -> Vec<usize> {
    let mut k = k.max(1);
    let mut factors = Vec::new();
    let mut f = 2usize;
    while f * f <= k {
        while k.is_multiple_of(f) {
            factors.push(f);
            k /= f;
        }
        f += 1;
    }
    if k > 1 {
        factors.push(k);
    }
    factors.sort_unstable_by(|a, b| b.cmp(a));
    factors
}

/// Scores every dimension's obliqueness from the cell's face-touching
/// vertices; higher = more volume saved by splitting there.
///
/// The cell is convex, so for every pair of vertices straddling a trial
/// split plane, the segment's crossing point lies in the cell too; the
/// crossing points are added to both sides before boxing. Without them a
/// long axis-aligned cell (which gains nothing from splitting) would score
/// falsely high.
pub fn obliqueness_scores(mbr: &Mbr, vertices: &[Vec<f64>]) -> Vec<f64> {
    let d = mbr.dim();
    let mut scores = vec![0.0; d];
    if vertices.is_empty() {
        return scores;
    }
    let parent_vol = vertex_box_volume(vertices.iter());
    for (dim, score) in scores.iter_mut().enumerate() {
        let mid = 0.5 * (mbr.lo()[dim] + mbr.hi()[dim]);
        let (left, right): (Vec<&Vec<f64>>, Vec<&Vec<f64>>) =
            vertices.iter().partition(|v| v[dim] <= mid);
        // Segment-plane crossings (convexity ⇒ inside the cell).
        let mut crossings: Vec<Vec<f64>> = Vec::new();
        for a in &left {
            for b in &right {
                let t = (mid - a[dim]) / (b[dim] - a[dim]);
                if t.is_finite() {
                    crossings.push((0..d).map(|i| a[i] + t * (b[i] - a[i])).collect());
                }
            }
        }
        let lv = vertex_box_volume(left.iter().copied().chain(crossings.iter()));
        let rv = vertex_box_volume(right.iter().copied().chain(crossings.iter()));
        *score = (parent_vol - (lv + rv)).max(0.0);
    }
    scores
}

/// Volume of the bounding box of an iterator of points (0 when empty).
fn vertex_box_volume<'a, I>(vertices: I) -> f64
where
    I: Iterator<Item = &'a Vec<f64>>,
{
    let mut lo: Option<Vec<f64>> = None;
    let mut hi: Option<Vec<f64>> = None;
    for v in vertices {
        match (&mut lo, &mut hi) {
            (Some(l), Some(h)) => {
                for i in 0..v.len() {
                    l[i] = l[i].min(v[i]);
                    h[i] = h[i].max(v[i]);
                }
            }
            _ => {
                lo = Some(v.clone());
                hi = Some(v.clone());
            }
        }
    }
    match (lo, hi) {
        (Some(l), Some(h)) => l.iter().zip(h.iter()).map(|(a, b)| b - a).product(),
        _ => 0.0,
    }
}

/// Decomposes a solved cell into at most `max_pieces` MBRs (Definition 5).
///
/// `constraints` are the cell's bisectors; `solve` is the plain (exact-MBR)
/// solution whose vertices drive the obliqueness scores. Returns the piece
/// MBRs and the extra LP work done. Infallible: per-piece LP trouble rides
/// the fallback chain inside [`VoronoiLp::extents`]; an infeasible slab
/// (the slab misses the cell) is simply dropped.
pub fn decompose_cell<M: Metric>(
    vlp: &VoronoiLp<M>,
    constraints: &[Halfspace],
    solve: &CellSolve,
    max_pieces: usize,
    seed: u64,
) -> (Vec<Mbr>, CellLpStats) {
    let plan = plan_partitions(max_pieces);
    let d = solve.mbr.dim();
    let mut stats = CellLpStats::default();
    if plan.is_empty() || plan.len() > d {
        return (vec![solve.mbr.clone()], stats);
    }

    // Rank dimensions by obliqueness; assign the largest slab count to the
    // most oblique dimension.
    let scores = obliqueness_scores(&solve.mbr, &solve.vertices);
    let mut order: Vec<usize> = (0..d).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    let dims: Vec<usize> = order[..plan.len()].to_vec();

    // Nothing to gain (e.g. a degenerate vertex set): keep the plain MBR.
    if scores[dims[0]] <= 0.0 {
        return (vec![solve.mbr.clone()], stats);
    }

    // Enumerate the slab grid.
    let mut pieces = Vec::new();
    let mut idx = vec![0usize; dims.len()];
    loop {
        let mut cons = constraints.to_vec();
        for (j, (&dim, &n)) in dims.iter().zip(plan.iter()).enumerate() {
            let l = solve.mbr.lo()[dim];
            let h = solve.mbr.hi()[dim];
            let step = (h - l) / n as f64;
            let a = l + idx[j] as f64 * step;
            let b = l + (idx[j] + 1) as f64 * step;
            // a ≤ x_dim (as −x ≤ −a) and x_dim ≤ b.
            let mut lo_n = vec![0.0; d];
            lo_n[dim] = -1.0;
            cons.push(Halfspace::new(lo_n, -a));
            let mut hi_n = vec![0.0; d];
            hi_n[dim] = 1.0;
            cons.push(Halfspace::new(hi_n, b));
        }
        if let Some(piece) = vlp.extents(&cons, seed ^ hash_idx(&idx)) {
            stats.merge(piece.stats);
            pieces.push(piece.mbr);
        } else {
            stats.lp_calls += 1; // infeasible probe still did work
        }
        // Advance the slab index (odometer).
        let mut j = 0;
        loop {
            if j == dims.len() {
                // Odometer wrapped: done. Keep the decomposition only when
                // it actually saves volume (the vertex proxy can be
                // optimistic; the LP pieces are the ground truth).
                let total: f64 = pieces.iter().map(Mbr::volume).sum();
                let pieces = if pieces.is_empty() || total >= 0.98 * solve.mbr.volume() {
                    vec![solve.mbr.clone()]
                } else {
                    pieces
                };
                return (pieces, stats);
            }
            idx[j] += 1;
            if idx[j] < plan[j] {
                break;
            }
            idx[j] = 0;
            j += 1;
        }
    }
}

fn hash_idx(idx: &[usize]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &i in idx {
        h ^= i as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use nncell_geom::{DataSpace, Euclidean};
    use nncell_lp::SolverKind;

    #[test]
    fn partition_plans() {
        assert!(plan_partitions(1).is_empty());
        assert_eq!(plan_partitions(2), vec![2]);
        assert_eq!(plan_partitions(4), vec![2, 2]);
        assert_eq!(plan_partitions(8), vec![2, 2, 2]);
        assert_eq!(plan_partitions(9), vec![3, 3]);
        assert_eq!(plan_partitions(10), vec![5, 2]);
        assert_eq!(plan_partitions(6), vec![3, 2]);
    }

    #[test]
    fn oblique_cell_scores_higher_in_slant_dimension() {
        // Vertices of a diagonal strip in 2-D: long in both axes but thin.
        let mbr = Mbr::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let vertices = vec![
            vec![0.0, 0.05],
            vec![0.95, 1.0],
            vec![0.05, 0.0],
            vec![1.0, 0.95],
        ];
        let s = obliqueness_scores(&mbr, &vertices);
        assert!(s[0] > 0.0 && s[1] > 0.0, "diagonal strip gains from split");
        // An axis-aligned bar gains nothing from splitting along its length.
        let bar_vertices = vec![
            vec![0.0, 0.45],
            vec![1.0, 0.45],
            vec![0.0, 0.55],
            vec![1.0, 0.55],
        ];
        let s2 = obliqueness_scores(&mbr, &bar_vertices);
        assert!(s2[0] <= 1e-12, "bar split along x saves nothing: {}", s2[0]);
    }

    #[test]
    fn decomposition_covers_cell_and_reduces_volume() {
        // Diagonal points: p's cell is the slanted half below x+y=1.
        let vlp = VoronoiLp::new(Euclidean, DataSpace::unit(2), SolverKind::Simplex);
        let p = [0.3, 0.3];
        let q = [0.7, 0.7];
        let cons = vlp.bisectors(&p, [&q[..]]);
        let solve = vlp.extents(&cons, 0).unwrap();
        let plain_vol = solve.mbr.volume();
        let (pieces, _) = decompose_cell(&vlp, &cons, &solve, 4, 0);
        assert!(pieces.len() >= 2, "diagonal cell should decompose");
        let total: f64 = pieces.iter().map(|m| m.volume()).sum();
        assert!(
            total < plain_vol - 1e-9,
            "decomposition must reduce volume: {total} vs {plain_vol}"
        );
        // Coverage: sampled points of the cell lie in some piece.
        for k in 0..100 {
            let x = k as f64 / 99.0;
            for l in 0..100 {
                let y = l as f64 / 99.0;
                let in_cell = x + y <= 1.0;
                if in_cell {
                    assert!(
                        pieces.iter().any(|m| m.contains_point(&[x, y])),
                        "({x},{y}) in cell but uncovered"
                    );
                }
            }
        }
    }

    #[test]
    fn single_piece_budget_returns_plain_mbr() {
        let vlp = VoronoiLp::new(Euclidean, DataSpace::unit(2), SolverKind::Simplex);
        let p = [0.2, 0.5];
        let cons = vlp.bisectors(&p, [&[0.8, 0.5][..]]);
        let solve = vlp.extents(&cons, 0).unwrap();
        let (pieces, stats) = decompose_cell(&vlp, &cons, &solve, 1, 0);
        assert_eq!(pieces.len(), 1);
        assert_eq!(stats.lp_calls, 0);
        assert_eq!(pieces[0], solve.mbr);
    }

    #[test]
    fn axis_aligned_cell_skips_decomposition() {
        // Two points differing only in x: the bisector is axis-aligned, the
        // MBR is exact, decomposition gains nothing and must be skipped.
        let vlp = VoronoiLp::new(Euclidean, DataSpace::unit(2), SolverKind::Simplex);
        let p = [0.25, 0.5];
        let cons = vlp.bisectors(&p, [&[0.75, 0.5][..]]);
        let solve = vlp.extents(&cons, 0).unwrap();
        let (pieces, _) = decompose_cell(&vlp, &cons, &solve, 4, 0);
        assert_eq!(pieces.len(), 1, "axis-aligned cell must not decompose");
    }
}
