//! The unindexed memtable tail of the LSM-style write path.
//!
//! With a memtable enabled ([`crate::ShardedIndex::with_memtable`]), an
//! insert or remove journals to the shard's WAL, lands in a small
//! in-memory tail of raw operations, and is acknowledged — no LP solve,
//! no cell refinement, no snapshot clone on the ack path. A supervised
//! background *folder* ([`crate::ShardedIndex::run_folder`]) later applies
//! the tail to the NN-cell index off the write path and publishes the
//! result through the copy-on-write [`crate::SnapshotCell`] swap.
//!
//! Exactness is preserved by construction (the Lemma 1 covering-superset
//! argument): a query answers from the published cell index *plus* a
//! linear scan of the tail, minus any tail tombstones. The tail is a
//! superset merge — every live point is either in the snapshot or in the
//! tail, every tombstone is applied — so the merged answer equals a
//! linear scan over the true live set.
//!
//! Durability never depends on the folder: folding performs **zero**
//! syscalls (the WAL already holds every tail record, fsynced before the
//! ack), so a crash at any point recovers by plain WAL replay and a
//! broken folder degrades service latency, never correctness.

use crate::wal::WalRecord;
use nncell_geom::Point;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

/// One journaled-but-unfolded operation. `local` is the shard-local slot
/// the operation targets; for inserts it is the slot the point will
/// occupy once folded — fixed at ack time so folding in ack order is
/// bit-identical to WAL replay.
#[derive(Clone, Debug)]
pub(crate) enum TailOp {
    Insert { local: usize, point: Point },
    Remove { local: usize },
}

/// Per-shard memtable: operations in ack order, split into the batch a
/// fold is (or was) working on (`frozen`) and everything acked since
/// (`active`). `removed` mirrors every unfolded tombstone for O(tail)
/// membership checks. All access happens under the owning shard's tail
/// mutex; holds are O(1) pushes or O(tail) clones — never an LP solve.
#[derive(Debug, Default)]
pub(crate) struct Memtable {
    frozen: Vec<TailOp>,
    active: Vec<TailOp>,
    removed: Vec<usize>,
}

impl Memtable {
    pub(crate) fn len(&self) -> usize {
        self.frozen.len() + self.active.len()
    }

    pub(crate) fn push_insert(&mut self, local: usize, point: Point) {
        self.active.push(TailOp::Insert { local, point });
    }

    pub(crate) fn push_remove(&mut self, local: usize) {
        self.active.push(TailOp::Remove { local });
        self.removed.push(local);
    }

    /// Whether an unfolded tombstone targets `local`.
    pub(crate) fn is_removed(&self, local: usize) -> bool {
        self.removed.contains(&local)
    }

    /// Whether the tail holds a live (not tombstoned) insert for `local`.
    pub(crate) fn has_live_insert(&self, local: usize) -> bool {
        !self.is_removed(local)
            && self.ops().any(|op| matches!(op, TailOp::Insert { local: l, .. } if *l == local))
    }

    /// The slot of a live tail insert with exactly these coordinates
    /// (bit-identical, mirroring the index's duplicate policy).
    pub(crate) fn find_live_duplicate(&self, p: &Point) -> Option<usize> {
        self.ops().find_map(|op| match op {
            TailOp::Insert { local, point }
                if point.as_slice() == p.as_slice() && !self.is_removed(*local) =>
            {
                Some(*local)
            }
            _ => None,
        })
    }

    fn ops(&self) -> impl Iterator<Item = &TailOp> {
        self.frozen.iter().chain(self.active.iter())
    }

    /// Count of live (not tombstoned) tail inserts.
    pub(crate) fn live_inserts(&self) -> usize {
        self.ops()
            .filter(|op| matches!(op, TailOp::Insert { local, .. } if !self.is_removed(*local)))
            .count()
    }

    /// Slots tombstoned by unfolded removes.
    pub(crate) fn removed_ids(&self) -> &[usize] {
        &self.removed
    }

    /// Moves the active ops into the frozen batch (merging with any
    /// leftovers of a failed fold) and returns a copy for the folder to
    /// apply off-lock.
    pub(crate) fn freeze(&mut self) -> Vec<TailOp> {
        self.frozen.append(&mut self.active);
        self.frozen.clone()
    }

    /// Discards the frozen batch after a successful fold published it,
    /// dropping its tombstones from the membership mirror.
    pub(crate) fn clear_frozen(&mut self) {
        // A live point is tombstoned at most once, so every id occurs at
        // most once in `removed` and a retain-by-membership is exact.
        let folded: Vec<usize> = self
            .frozen
            .iter()
            .filter_map(|op| match op {
                TailOp::Remove { local } => Some(*local),
                TailOp::Insert { .. } => None,
            })
            .collect();
        self.removed.retain(|id| !folded.contains(id));
        self.frozen.clear();
    }

    /// An owned, immutable view for query-side merging: live tail inserts
    /// in ack order plus every unfolded tombstone.
    pub(crate) fn snapshot(&self) -> TailSnapshot {
        let inserts = self
            .ops()
            .filter_map(|op| match op {
                TailOp::Insert { local, point } if !self.is_removed(*local) => {
                    Some((*local, point.clone()))
                }
                _ => None,
            })
            .collect();
        TailSnapshot::new(inserts, self.removed.clone())
    }

    /// The unfolded tail as WAL records in ack order — exactly the suffix
    /// a checkpoint must re-journal into its fresh log so replay
    /// reconstructs master + tail.
    pub(crate) fn wal_records(&self) -> Vec<WalRecord> {
        self.ops()
            .map(|op| match op {
                TailOp::Insert { point, .. } => WalRecord::Insert(point.clone()),
                TailOp::Remove { local } => WalRecord::Remove(*local as u64),
            })
            .collect()
    }
}

/// An immutable copy of one shard's memtable tail, merged into answers by
/// [`crate::QueryEngine::with_tail`]. Cheap to take (a bounded clone under
/// the tail mutex) and safe to scan off-lock: writers never wait on a
/// query holding one.
#[derive(Clone, Debug, Default)]
pub struct TailSnapshot {
    /// Live unfolded inserts as `(local slot, point)`, ack order.
    pub(crate) inserts: Vec<(usize, Point)>,
    /// Slots tombstoned by unfolded removes (targets may live in the
    /// published snapshot *or* in `inserts`' originating tail).
    pub(crate) removed: Vec<usize>,
}

impl TailSnapshot {
    /// A tail view from raw parts (primarily for tests; production views
    /// come from the memtable under its shard lock).
    pub fn new(inserts: Vec<(usize, Point)>, removed: Vec<usize>) -> Self {
        Self { inserts, removed }
    }

    /// No live inserts and no tombstones — merging this is a no-op.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.removed.is_empty()
    }

    /// Live unfolded inserts.
    pub fn live(&self) -> usize {
        self.inserts.len()
    }

    /// Unfolded tombstones.
    pub fn tombstones(&self) -> usize {
        self.removed.len()
    }
}

/// Tuning and fault knobs for the memtable tier, passed to
/// [`crate::ShardedIndex::with_memtable`].
#[derive(Clone, Debug)]
pub struct FoldConfig {
    /// High-watermark on unfolded operations across all shards; writes
    /// beyond it are refused with [`crate::durable::DurableError::Backpressure`]
    /// (surfaced as HTTP 429 + `Retry-After` by the server), bounding
    /// memory and tail-scan cost no matter how broken the folder is.
    pub tail_max: usize,
    /// How long an idle folder sleeps between checks for new tail work.
    pub poll_interval: Duration,
    /// First retry delay after a failed fold.
    pub retry_base: Duration,
    /// Cap on the exponential fold-retry backoff.
    pub retry_cap: Duration,
    /// Consecutive fold failures before the index reports itself
    /// degraded (`/readyz` body, `nncell_fold_degraded` gauge). Writes
    /// and exact queries continue either way.
    pub degrade_after: u32,
    /// Chaos hook: while the flag is `true`, every fold attempt panics
    /// inside the folder (exercising the supervision path end-to-end).
    pub fault_fold_panic: Option<Arc<AtomicBool>>,
}

impl Default for FoldConfig {
    fn default() -> Self {
        Self {
            tail_max: 4096,
            poll_interval: Duration::from_millis(20),
            retry_base: Duration::from_millis(50),
            retry_cap: Duration::from_secs(5),
            degrade_after: 3,
            fault_fold_panic: None,
        }
    }
}

/// A point-in-time view of the folder's health, from
/// [`crate::ShardedIndex::fold_status`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FoldStatus {
    /// Journaled-but-unfolded operations across all shards.
    pub tail_depth: usize,
    /// Whether `degrade_after` consecutive folds have failed.
    pub degraded: bool,
    /// Current consecutive fold-failure streak.
    pub consecutive_failures: u32,
    /// Successful folds since open.
    pub folds: u64,
    /// Operations folded into the cell index since open.
    pub folded_records: u64,
    /// Failed (panicked) folds since open.
    pub failures: u64,
}

/// Why a fold attempt did not publish.
#[derive(Debug)]
pub enum FoldError {
    /// The fold closure panicked (LP bug, poisoned data, injected chaos);
    /// the batch stays frozen in the tail and will be retried.
    Panicked {
        /// Shard whose fold panicked.
        shard: usize,
    },
}

impl std::fmt::Display for FoldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FoldError::Panicked { shard } => {
                write!(f, "fold of shard {shard} panicked; batch kept for retry")
            }
        }
    }
}

impl std::error::Error for FoldError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: f64) -> Point {
        Point::new(vec![x, 1.0 - x])
    }

    #[test]
    fn pushes_freeze_and_clear_track_membership() {
        let mut m = Memtable::default();
        m.push_insert(0, pt(0.1));
        m.push_insert(1, pt(0.2));
        m.push_remove(0);
        assert_eq!(m.len(), 3);
        assert!(m.is_removed(0));
        assert!(m.has_live_insert(1));
        assert!(!m.has_live_insert(0), "tombstoned tail insert is dead");
        assert_eq!(m.find_live_duplicate(&pt(0.2)), Some(1));
        assert_eq!(m.find_live_duplicate(&pt(0.1)), None);

        let batch = m.freeze();
        assert_eq!(batch.len(), 3);
        // Ops acked mid-fold land in the next batch but stay visible.
        m.push_remove(1);
        assert!(m.is_removed(1));
        let snap = m.snapshot();
        assert_eq!(snap.live(), 0);
        assert_eq!(snap.tombstones(), 2);

        m.clear_frozen();
        assert_eq!(m.len(), 1, "only the post-freeze remove is left");
        assert!(!m.is_removed(0), "folded tombstone left the mirror");
        assert!(m.is_removed(1), "unfolded tombstone stays");
    }

    #[test]
    fn failed_fold_batches_merge_in_ack_order() {
        let mut m = Memtable::default();
        m.push_insert(0, pt(0.1));
        let first = m.freeze();
        assert_eq!(first.len(), 1);
        // The fold fails; more ops arrive; the refreeze must replay the
        // old batch before the new ops.
        m.push_insert(1, pt(0.2));
        let second = m.freeze();
        assert_eq!(second.len(), 2);
        assert!(matches!(&second[0], TailOp::Insert { local: 0, .. }));
        assert!(matches!(&second[1], TailOp::Insert { local: 1, .. }));
    }

    #[test]
    fn wal_records_mirror_the_unfolded_suffix() {
        let mut m = Memtable::default();
        m.push_insert(3, pt(0.4));
        m.push_remove(2);
        let recs = m.wal_records();
        assert_eq!(recs.len(), 2);
        assert!(matches!(&recs[0], WalRecord::Insert(p) if p.as_slice() == pt(0.4).as_slice()));
        assert!(matches!(recs[1], WalRecord::Remove(2)));
    }
}
