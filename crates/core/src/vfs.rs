//! Virtual file system — the seam between persistence and the disk.
//!
//! Everything the persistence layer does to a disk (create, append, read,
//! fsync, rename, directory sync, unlink) goes through the [`Vfs`] trait.
//! Production code uses [`StdVfs`], a thin veneer over `std::fs`. Tests use
//! [`FaultVfs`], a deterministic in-memory file system with an explicit
//! *durability model*: it distinguishes what a live process observes from
//! what would survive a power cut, and it can inject faults — a crash at
//! any chosen syscall, torn writes (a seeded prefix of unsynced bytes
//! survives), fsync failures, and short reads — from a seeded
//! [`FaultSchedule`]. That is what lets the crash-recovery property test
//! kill the "process" at *every* syscall of a workload and prove recovery
//! at each one.
//!
//! The durability model of [`FaultVfs`] mirrors POSIX semantics the way
//! journaling databases assume them:
//!
//! * `write` lands in the page cache (the *volatile* image) — a crash may
//!   keep any prefix of the bytes written since the last `sync` (a torn
//!   write), never a suffix and never reordered bytes;
//! * `sync` on a file makes its *contents* durable, not its name;
//! * a created or renamed *name* becomes durable only when its parent
//!   directory is synced ([`Vfs::sync_dir`]);
//! * `create` over an existing name truncates destructively — the old
//!   contents are gone even on crash. This is exactly the hazard the
//!   tmp+fsync+rename discipline in [`write_atomic`] exists to avoid, and
//!   the model punishes in-place overwriting accordingly.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

/// One open file: sequential writes plus fsync.
///
/// `Send` so a [`crate::DurableIndex`] (which owns its WAL file) can sit
/// behind the single-writer mutex of a [`crate::ShardedIndex`] and be
/// driven from any thread.
pub trait VfsFile: Send {
    /// Appends `buf` at the end of the file.
    ///
    /// # Errors
    /// Underlying I/O failures, including injected ones.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;

    /// Forces the file *contents* to durable storage (`fsync`). Does not
    /// make a newly created name durable — sync the directory for that.
    ///
    /// # Errors
    /// Underlying I/O failures, including injected ones.
    fn sync(&mut self) -> io::Result<()>;
}

/// The file-system operations the persistence layer is allowed to use.
///
/// Object-safe so `Arc<dyn Vfs>` threads through [`crate::DurableIndex`].
pub trait Vfs: Send + Sync {
    /// Creates (truncating) `path` for writing.
    ///
    /// # Errors
    /// Underlying I/O failures, including injected ones.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Opens an existing `path` for appending.
    ///
    /// # Errors
    /// Missing file or underlying I/O failures.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Reads the entire file.
    ///
    /// # Errors
    /// Missing file or underlying I/O failures. A [`FaultVfs`] short read
    /// returns a *prefix* without error — callers must treat structural
    /// validation, not byte counts, as the authority on completeness.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Whether `path` currently names a file.
    fn exists(&self, path: &Path) -> bool;

    /// Atomically renames `from` to `to` (replacing `to` if present). The
    /// new name is durable only after [`Vfs::sync_dir`] on the parent.
    ///
    /// # Errors
    /// Missing source or underlying I/O failures.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Unlinks `path`.
    ///
    /// # Errors
    /// Missing file or underlying I/O failures.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Makes the name set of `dir` (creations, renames, unlinks) durable.
    ///
    /// # Errors
    /// Underlying I/O failures, including injected ones.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;

    /// Creates `dir` and its ancestors.
    ///
    /// # Errors
    /// Underlying I/O failures.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// The files directly inside `dir`.
    ///
    /// # Errors
    /// Missing directory or underlying I/O failures.
    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
}

/// The parent directory to sync for `path` (`.` for bare file names).
pub(crate) fn parent_dir(path: &Path) -> &Path {
    match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    }
}

/// Writes `bytes` to `path` crash-safely: a sibling temp file is written
/// and fsynced, renamed over `path`, and the directory is synced. A crash
/// at any step leaves either the old file or the new file — never a torn
/// mixture, and never nothing.
///
/// # Errors
/// Underlying I/O failures; on error the destination is untouched (a stale
/// `.tmp` sibling may remain and is ignored/cleaned by readers).
pub fn write_atomic(vfs: &dyn Vfs, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut f = vfs.create(&tmp)?;
        f.write_all(bytes)?;
        f.sync()?;
    }
    vfs.rename(&tmp, path)?;
    vfs.sync_dir(parent_dir(path))
}

// ----------------------------------------------------------------------
// StdVfs
// ----------------------------------------------------------------------

/// The production [`Vfs`]: real files via `std::fs`, real `fsync`.
#[derive(Clone, Copy, Debug, Default)]
pub struct StdVfs;

struct StdFile(std::fs::File);

impl VfsFile for StdFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        use std::io::Write;
        self.0.write_all(buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
}

impl Vfs for StdVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(StdFile(std::fs::File::create(path)?)))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let f = std::fs::OpenOptions::new().append(true).open(path)?;
        Ok(Box::new(StdFile(f)))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Windows cannot open directories; directory durability is
        // best-effort there. On POSIX this is the real fsync(dirfd).
        match std::fs::File::open(dir) {
            Ok(d) => d.sync_all(),
            Err(_) => Ok(()),
        }
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.path());
            }
        }
        Ok(out)
    }
}

// ----------------------------------------------------------------------
// FaultVfs
// ----------------------------------------------------------------------

/// What faults to inject, and when. All decisions derive from `seed` and
/// the explicit op lists, so a failing schedule replays exactly.
#[derive(Clone, Debug, Default)]
pub struct FaultSchedule {
    /// Seed for the torn-write and short-read length draws.
    pub seed: u64,
    /// Kill the process at this 0-based syscall index: the op fails with
    /// [`io::ErrorKind::Other`] and every later op fails too. Use
    /// [`FaultVfs::survivor`] afterwards to materialize what a reboot sees.
    pub crash_at_op: Option<u64>,
    /// Syscall indices whose `sync`/`sync_dir` call fails (the process
    /// survives, but nothing new became durable).
    pub fail_sync_ops: Vec<u64>,
    /// Syscall indices whose `read` returns a seeded *prefix* of the file.
    pub short_read_ops: Vec<u64>,
}

impl FaultSchedule {
    /// A fault-free schedule (for op counting and baseline runs).
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// A schedule that crashes at syscall `op`.
    pub fn crash_at(seed: u64, op: u64) -> Self {
        Self {
            seed,
            crash_at_op: Some(op),
            ..Self::default()
        }
    }
}

/// splitmix64 — the deterministic bit source for torn/short lengths.
/// (No `rand` dependency: nncell-core uses it only in tests otherwise.)
fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
}

fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[derive(Clone, Default)]
struct Inode {
    /// What the live process reads back (page cache included).
    current: Vec<u8>,
    /// Byte count guaranteed durable by the last successful `sync`.
    synced_len: usize,
}

#[derive(Default)]
struct FaultState {
    inodes: Vec<Inode>,
    /// Name → inode as the live process sees it.
    live: BTreeMap<PathBuf, usize>,
    /// Name → inode as a reboot would see it (committed by `sync_dir`).
    durable: BTreeMap<PathBuf, usize>,
    dirs: std::collections::BTreeSet<PathBuf>,
    ops: u64,
    dead: bool,
    schedule: FaultSchedule,
    rng: u64,
}

impl FaultState {
    /// Advances the syscall clock; injects the scheduled crash.
    fn step(&mut self) -> io::Result<u64> {
        if self.dead {
            return Err(io::Error::other("injected crash: process is dead"));
        }
        let op = self.ops;
        self.ops += 1;
        if self.schedule.crash_at_op == Some(op) {
            self.dead = true;
            return Err(io::Error::other(format!("injected crash at op {op}")));
        }
        Ok(op)
    }

    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.rng);
        mix64(self.rng)
    }

    fn resolve(&self, path: &Path) -> io::Result<usize> {
        self.live
            .get(path)
            .copied()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("{path:?} not found")))
    }
}

/// Deterministic in-memory [`Vfs`] with fault injection. See the module
/// docs for the durability model. Clones share one file system.
#[derive(Clone)]
pub struct FaultVfs {
    state: Arc<Mutex<FaultState>>,
}

fn lock(state: &Arc<Mutex<FaultState>>) -> std::sync::MutexGuard<'_, FaultState> {
    state.lock().unwrap_or_else(PoisonError::into_inner)
}

impl FaultVfs {
    /// An empty file system governed by `schedule`.
    pub fn new(schedule: FaultSchedule) -> Self {
        let rng = schedule.seed ^ 0xa076_1d64_78bd_642f;
        Self {
            state: Arc::new(Mutex::new(FaultState {
                rng,
                schedule,
                ..FaultState::default()
            })),
        }
    }

    /// Total syscalls issued so far (the crash-point space).
    pub fn ops(&self) -> u64 {
        lock(&self.state).ops
    }

    /// Whether the scheduled crash has fired.
    pub fn crashed(&self) -> bool {
        lock(&self.state).dead
    }

    /// Materializes the state a reboot would observe — durable names only,
    /// each file cut to its synced length plus a seeded torn-write prefix
    /// of the unsynced suffix — as a fresh, live [`FaultVfs`] governed by
    /// `schedule`. Deterministic for a given (seed, crash op) pair.
    pub fn survivor(&self, schedule: FaultSchedule) -> FaultVfs {
        let mut st = lock(&self.state);
        let mut inodes = Vec::new();
        let mut durable = BTreeMap::new();
        // Deterministic iteration (BTreeMap) keeps torn-length draws stable.
        let entries: Vec<(PathBuf, usize)> =
            st.durable.iter().map(|(p, &i)| (p.clone(), i)).collect();
        for (path, ino) in entries {
            let inode = st.inodes[ino].clone();
            let unsynced = inode.current.len() - inode.synced_len;
            let torn = if unsynced == 0 {
                0
            } else {
                (st.next_u64() % (unsynced as u64 + 1)) as usize
            };
            let mut current = inode.current;
            current.truncate(inode.synced_len + torn);
            let id = inodes.len();
            inodes.push(Inode {
                synced_len: current.len(),
                current,
            });
            durable.insert(path, id);
        }
        let rng = schedule.seed ^ mix64(st.ops);
        FaultVfs {
            state: Arc::new(Mutex::new(FaultState {
                live: durable.clone(),
                durable,
                inodes,
                dirs: st.dirs.clone(),
                ops: 0,
                dead: false,
                schedule,
                rng,
            })),
        }
    }
}

struct FaultFile {
    state: Arc<Mutex<FaultState>>,
    ino: usize,
}

impl VfsFile for FaultFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut st = lock(&self.state);
        st.step()?;
        st.inodes[self.ino].current.extend_from_slice(buf);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        let mut st = lock(&self.state);
        let op = st.step()?;
        if st.schedule.fail_sync_ops.contains(&op) {
            return Err(io::Error::other(format!("injected fsync failure at op {op}")));
        }
        st.inodes[self.ino].synced_len = st.inodes[self.ino].current.len();
        Ok(())
    }
}

impl Vfs for FaultVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut st = lock(&self.state);
        st.step()?;
        let ino = st.inodes.len();
        st.inodes.push(Inode::default());
        st.live.insert(path.to_path_buf(), ino);
        // O_TRUNC of an existing durable name destroys the old contents
        // immediately — the new (empty, unsynced) inode takes its place in
        // the durable namespace too. A brand-new name stays volatile until
        // the directory is synced.
        if st.durable.contains_key(path) {
            st.durable.insert(path.to_path_buf(), ino);
        }
        Ok(Box::new(FaultFile {
            state: Arc::clone(&self.state),
            ino,
        }))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut st = lock(&self.state);
        st.step()?;
        let ino = st.resolve(path)?;
        Ok(Box::new(FaultFile {
            state: Arc::clone(&self.state),
            ino,
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut st = lock(&self.state);
        let op = st.step()?;
        let ino = st.resolve(path)?;
        let mut bytes = st.inodes[ino].current.clone();
        if st.schedule.short_read_ops.contains(&op) && !bytes.is_empty() {
            let keep = (st.next_u64() % bytes.len() as u64) as usize;
            bytes.truncate(keep);
        }
        Ok(bytes)
    }

    fn exists(&self, path: &Path) -> bool {
        let st = lock(&self.state);
        !st.dead && (st.live.contains_key(path) || st.dirs.contains(path))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut st = lock(&self.state);
        st.step()?;
        let ino = st.resolve(from)?;
        st.live.remove(from);
        st.live.insert(to.to_path_buf(), ino);
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut st = lock(&self.state);
        st.step()?;
        st.resolve(path)?;
        st.live.remove(path);
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        let mut st = lock(&self.state);
        let op = st.step()?;
        if st.schedule.fail_sync_ops.contains(&op) {
            return Err(io::Error::other(format!("injected fsync failure at op {op}")));
        }
        // Commit this directory's live name set to the durable namespace:
        // creations, renames, and unlinks all become crash-visible.
        let live: Vec<(PathBuf, usize)> = st
            .live
            .iter()
            .filter(|(p, _)| parent_dir(p) == dir)
            .map(|(p, &i)| (p.clone(), i))
            .collect();
        let stale: Vec<PathBuf> = st
            .durable
            .keys()
            .filter(|p| parent_dir(p) == dir && !st.live.contains_key(*p))
            .cloned()
            .collect();
        for p in stale {
            st.durable.remove(&p);
        }
        for (p, i) in live {
            st.durable.insert(p, i);
        }
        Ok(())
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        let mut st = lock(&self.state);
        st.step()?;
        st.dirs.insert(dir.to_path_buf());
        Ok(())
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut st = lock(&self.state);
        st.step()?;
        Ok(st
            .live
            .keys()
            .filter(|p| parent_dir(p) == dir)
            .cloned()
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn unsynced_writes_may_tear_on_crash() {
        let vfs = FaultVfs::new(FaultSchedule::none(1));
        vfs.create_dir_all(&p("/db")).unwrap();
        let mut f = vfs.create(&p("/db/a")).unwrap();
        f.write_all(b"durable").unwrap();
        f.sync().unwrap();
        vfs.sync_dir(&p("/db")).unwrap();
        f.write_all(b"-volatile").unwrap();
        drop(f);
        let after = vfs.survivor(FaultSchedule::none(2));
        let bytes = after.read(&p("/db/a")).unwrap();
        // The synced prefix always survives; the unsynced suffix may tear
        // anywhere but never reorders.
        assert!(bytes.starts_with(b"durable"), "{bytes:?}");
        assert!(bytes.len() <= b"durable-volatile".len());
        assert_eq!(&bytes[..], &b"durable-volatile"[..bytes.len()]);
    }

    #[test]
    fn unsynced_directory_entries_vanish_on_crash() {
        let vfs = FaultVfs::new(FaultSchedule::none(3));
        vfs.create_dir_all(&p("/db")).unwrap();
        let mut f = vfs.create(&p("/db/new")).unwrap();
        f.write_all(b"x").unwrap();
        f.sync().unwrap(); // file contents durable, name is not
        drop(f);
        let after = vfs.survivor(FaultSchedule::none(4));
        assert!(!after.exists(&p("/db/new")), "unsynced name survived");
    }

    #[test]
    fn rename_without_dir_sync_is_volatile_with_it_durable() {
        let vfs = FaultVfs::new(FaultSchedule::none(5));
        vfs.create_dir_all(&p("/db")).unwrap();
        for (name, content) in [("CURRENT", "old"), ("CURRENT.tmp", "new")] {
            let mut f = vfs.create(&p(&format!("/db/{name}"))).unwrap();
            f.write_all(content.as_bytes()).unwrap();
            f.sync().unwrap();
        }
        vfs.sync_dir(&p("/db")).unwrap();
        vfs.rename(&p("/db/CURRENT.tmp"), &p("/db/CURRENT")).unwrap();

        // Crash before the directory sync: the old name mapping survives.
        let before = vfs.survivor(FaultSchedule::none(6));
        assert_eq!(before.read(&p("/db/CURRENT")).unwrap(), b"old");
        assert!(before.exists(&p("/db/CURRENT.tmp")));

        // After the directory sync the rename is committed.
        vfs.sync_dir(&p("/db")).unwrap();
        let after = vfs.survivor(FaultSchedule::none(7));
        assert_eq!(after.read(&p("/db/CURRENT")).unwrap(), b"new");
        assert!(!after.exists(&p("/db/CURRENT.tmp")));
    }

    #[test]
    fn in_place_truncation_destroys_old_contents() {
        let vfs = FaultVfs::new(FaultSchedule::none(8));
        vfs.create_dir_all(&p("/db")).unwrap();
        let mut f = vfs.create(&p("/db/a")).unwrap();
        f.write_all(b"precious").unwrap();
        f.sync().unwrap();
        vfs.sync_dir(&p("/db")).unwrap();
        // The hazard write_atomic avoids: re-creating the same name.
        let _clobber = vfs.create(&p("/db/a")).unwrap();
        let after = vfs.survivor(FaultSchedule::none(9));
        assert_ne!(
            after.read(&p("/db/a")).unwrap(),
            b"precious",
            "O_TRUNC must not preserve the old file"
        );
    }

    #[test]
    fn write_atomic_survives_crash_at_every_op_with_old_or_new() {
        // Count the fault-free ops first, then crash at each one.
        let count = {
            let vfs = FaultVfs::new(FaultSchedule::none(10));
            setup_old(&vfs);
            let base = vfs.ops();
            write_atomic(&vfs, &p("/db/f"), b"NEW").unwrap();
            (base, vfs.ops())
        };
        for k in count.0..count.1 {
            let vfs = FaultVfs::new(FaultSchedule::crash_at(10, k));
            setup_old(&vfs);
            let res = write_atomic(&vfs, &p("/db/f"), b"NEW");
            assert!(res.is_err(), "crash at op {k} must surface");
            let after = vfs.survivor(FaultSchedule::none(11));
            let bytes = after.read(&p("/db/f")).unwrap();
            assert!(
                bytes == b"OLD" || bytes == b"NEW",
                "crash at op {k}: torn destination {bytes:?}"
            );
        }

        fn setup_old(vfs: &FaultVfs) {
            vfs.create_dir_all(&p("/db")).unwrap();
            let mut f = vfs.create(&p("/db/f")).unwrap();
            f.write_all(b"OLD").unwrap();
            f.sync().unwrap();
            vfs.sync_dir(&p("/db")).unwrap();
        }
    }

    #[test]
    fn injected_fsync_failure_is_an_error_not_durability() {
        let vfs = FaultVfs::new(FaultSchedule::none(12));
        vfs.create_dir_all(&p("/db")).unwrap();
        let mut f = vfs.create(&p("/db/a")).unwrap();
        f.write_all(b"abc").unwrap();
        // Find the op index of the sync by counting: ops so far +1 is it.
        let sync_op = vfs.ops();
        drop(f);
        let vfs = FaultVfs::new(FaultSchedule {
            seed: 12,
            fail_sync_ops: vec![sync_op],
            ..FaultSchedule::default()
        });
        vfs.create_dir_all(&p("/db")).unwrap();
        let mut f = vfs.create(&p("/db/a")).unwrap();
        f.write_all(b"abc").unwrap();
        assert!(f.sync().is_err(), "scheduled fsync failure");
        // The process survives and can retry.
        f.sync().unwrap();
    }

    #[test]
    fn short_reads_return_a_prefix() {
        let vfs = FaultVfs::new(FaultSchedule::none(13));
        let mut f = vfs.create(&p("a")).unwrap();
        f.write_all(b"0123456789").unwrap();
        drop(f);
        let read_op = vfs.ops();
        let vfs2 = FaultVfs::new(FaultSchedule {
            seed: 13,
            short_read_ops: vec![read_op],
            ..FaultSchedule::default()
        });
        let mut f = vfs2.create(&p("a")).unwrap();
        f.write_all(b"0123456789").unwrap();
        drop(f);
        let bytes = vfs2.read(&p("a")).unwrap();
        assert!(bytes.len() < 10, "short read must truncate");
        assert_eq!(&bytes[..], &b"0123456789"[..bytes.len()]);
        // Same schedule, same result: determinism.
        let vfs3 = FaultVfs::new(FaultSchedule {
            seed: 13,
            short_read_ops: vec![read_op],
            ..FaultSchedule::default()
        });
        let mut f = vfs3.create(&p("a")).unwrap();
        f.write_all(b"0123456789").unwrap();
        drop(f);
        assert_eq!(vfs3.read(&p("a")).unwrap(), bytes);
    }

    #[test]
    fn std_vfs_atomic_write_roundtrips() {
        let dir = std::env::temp_dir().join(format!("nncell_vfs_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("file.bin");
        write_atomic(&StdVfs, &path, b"one").unwrap();
        assert_eq!(StdVfs.read(&path).unwrap(), b"one");
        write_atomic(&StdVfs, &path, b"two").unwrap();
        assert_eq!(StdVfs.read(&path).unwrap(), b"two");
        assert!(StdVfs.list_dir(&dir).unwrap().contains(&path));
        StdVfs.remove_file(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
