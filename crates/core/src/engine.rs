//! The throughput-grade query engine: parallel batch execution with
//! reusable per-thread scratch state.
//!
//! [`QueryEngine`] is a cheap, read-only session over a built
//! [`NnCellIndex`]. It owns no data — it borrows the index (including the
//! cache-friendly flat point layout the index maintains) — so constructing
//! one is free, and any number of engines can query one index concurrently.
//!
//! Execution model:
//!
//! * [`QueryEngine::execute`] answers one [`Query`] on the calling thread.
//! * [`QueryEngine::batch`] fans a query slice out across a configurable
//!   number of worker threads. Workers *steal work* at chunk granularity
//!   from a shared atomic cursor, so an expensive straggler query cannot
//!   idle the rest of the pool.
//! * Each worker carries one [`QueryScratch`] — candidate id buffer,
//!   ranked-distance buffer, tree traversal stack — reused across every
//!   query it executes. Once warm, the per-query path performs **zero heap
//!   allocations** for `k = 1` (and exactly one — the `rest` vector of the
//!   response — for `k > 1`); this is property-checked by a counting
//!   allocator in `crates/core/tests/alloc_free.rs`.
//!
//! Results are **bit-identical** regardless of thread count, and identical
//! to the deprecated sequential shims and to a linear scan: every path
//! evaluates distances with the same auto-vectorizable kernel
//! ([`nncell_geom::dist_sq`]) and breaks distance ties by ascending point
//! id.
//!
//! All exact-scan fallbacks (out-of-space query, `k ≥ len`, degenerate
//! candidate search, boundary miss) are funneled through one helper here,
//! which both sets [`QueryStats::fallback`] on the response and bumps the
//! index-wide [`NnCellIndex::fallback_queries`] counter — fixing the old
//! `knn` paths that scanned without being counted.

use crate::index::{NnCellIndex, QueryResult, PIECE_BITS};
use crate::query::{Query, QueryError, QueryKind, QueryResponse, QueryStats};
use nncell_geom::{Euclidean, Metric};
use nncell_index::{ItemId, PageId};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One worker-produced chunk of batch results, keyed by its input offset.
type BatchPart = (usize, Vec<Result<QueryResponse, QueryError>>);

/// Reusable per-thread query state. All buffers grow to a high-water mark
/// and are then reused allocation-free; one scratch must not be shared
/// between threads (each [`QueryEngine::batch`] worker owns its own).
#[derive(Default)]
pub struct QueryScratch {
    /// Raw cell-tree hits (piece-encoded item ids).
    hits: Vec<ItemId>,
    /// Tree traversal stack.
    stack: Vec<PageId>,
    /// Decoded, deduplicated live candidate ids.
    cand: Vec<usize>,
    /// Ranked `(id, dist)` buffer for k-NN.
    ranked: Vec<QueryResult>,
}

impl QueryScratch {
    /// A fresh (cold) scratch; buffers are allocated lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A read-only, thread-safe query session over a built [`NnCellIndex`].
///
/// ```
/// use nncell_core::{BuildConfig, NnCellIndex, Query, QueryEngine, Strategy};
/// use nncell_geom::Point;
/// let pts = (0..50)
///     .map(|i| Point::new(vec![(i as f64 + 0.5) / 50.0, ((i * 7 % 50) as f64 + 0.5) / 50.0]))
///     .collect();
/// let index = NnCellIndex::build(
///     pts,
///     BuildConfig::builder().strategy(Strategy::Sphere).build(),
/// )
/// .unwrap();
/// let engine = QueryEngine::new(&index);
/// let responses = engine.batch(&[Query::nn([0.2, 0.3]), Query::knn([0.8, 0.1], 5)]);
/// let nn = responses[0].as_ref().unwrap();
/// println!("#{} at {:.3} ({} candidates)", nn.best.id, nn.best.dist, nn.stats.candidates);
/// assert_eq!(responses[1].as_ref().unwrap().len(), 5);
/// ```
pub struct QueryEngine<'a, M: Metric = Euclidean> {
    index: &'a NnCellIndex<M>,
    threads: usize,
    /// When false, this engine skips metric recording even if the index has
    /// a registry attached (overhead A/B runs; see the bench).
    record_metrics: bool,
    /// Optional per-request time budget (see [`QueryEngine::with_deadline`]).
    deadline: Option<std::time::Instant>,
    /// Optional unindexed memtable tail merged into every answer (see
    /// [`QueryEngine::with_tail`]).
    tail: Option<&'a crate::memtable::TailSnapshot>,
}

impl<'a, M: Metric> QueryEngine<'a, M> {
    /// An engine using every available hardware thread for batches.
    pub fn new(index: &'a NnCellIndex<M>) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self {
            index,
            threads,
            record_metrics: true,
            deadline: None,
            tail: None,
        }
    }

    /// An engine that executes batches on the calling thread only.
    pub fn sequential(index: &'a NnCellIndex<M>) -> Self {
        Self {
            index,
            threads: 1,
            record_metrics: true,
            deadline: None,
            tail: None,
        }
    }

    /// Overrides the batch worker-thread count (≥ 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one thread");
        self.threads = threads;
        self
    }

    /// Disables metric recording for this engine even when the index has a
    /// registry attached — the control arm of overhead measurements.
    pub fn without_metrics(mut self) -> Self {
        self.record_metrics = false;
        self
    }

    /// Attaches a per-request time budget: once `deadline` passes, queries
    /// return [`QueryError::DeadlineExceeded`] instead of continuing to
    /// consume the worker. The budget is checked **between** units of
    /// bounded work — before a query starts, between the candidate-growth
    /// sphere queries of the k-NN kernel, and between the queries of a
    /// batch — so an answer already in hand is never discarded, and an
    /// expensive straggler stops at its next checkpoint rather than running
    /// to completion. With no deadline (the default) behavior is unchanged
    /// and bit-identical across thread counts.
    pub fn with_deadline(mut self, deadline: std::time::Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<std::time::Instant> {
        self.deadline
    }

    /// Merges an unindexed memtable tail into every answer: the indexed
    /// kernel is over-fetched by the tail's tombstone count, tombstoned
    /// ids are filtered out, live tail points are brought in by a
    /// deadline-aware linear scan, and the union is re-ranked by
    /// `(distance, id)`. Exactness is the Lemma 1 covering-superset
    /// argument — every live point is either in the index or in the tail —
    /// and the extra work is counted in [`QueryStats::tail`]. With an
    /// empty tail the plain (zero-allocation) path runs unchanged.
    pub fn with_tail(mut self, tail: &'a crate::memtable::TailSnapshot) -> Self {
        self.tail = Some(tail);
        self
    }

    /// Whether the configured budget (if any) has run out.
    #[inline]
    fn out_of_budget(&self) -> bool {
        self.deadline
            .is_some_and(|d| std::time::Instant::now() >= d)
    }

    /// The configured batch worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The index this engine reads.
    pub fn index(&self) -> &'a NnCellIndex<M> {
        self.index
    }

    /// Total scan-fallback queries recorded on the underlying index (all
    /// fallback paths — NN and k-NN — are counted there by this engine).
    pub fn fallback_queries(&self) -> u64 {
        self.index.fallback_queries()
    }

    // ------------------------------------------------------------------
    // execution
    // ------------------------------------------------------------------

    /// Executes one query with a private, cold scratch. For steady-state
    /// throughput prefer [`Self::batch`] or [`Self::execute_with`], which
    /// reuse warm buffers.
    pub fn execute(&self, q: &Query) -> Result<QueryResponse, QueryError> {
        self.execute_with(&mut QueryScratch::new(), q)
    }

    /// Executes one query reusing the caller's scratch buffers. Once the
    /// scratch is warm this path performs no heap allocations for `k = 1` —
    /// with or without an attached metrics registry (recording is a handful
    /// of relaxed atomics; the slow-query ring copies into preallocated
    /// slots).
    pub fn execute_with(
        &self,
        scratch: &mut QueryScratch,
        q: &Query,
    ) -> Result<QueryResponse, QueryError> {
        // Inert (one thread-local read) unless this thread is inside a
        // sampled trace; the guard closes when the function returns.
        let mut span = nncell_obs::trace::child("engine.query");
        let metrics = if self.record_metrics {
            self.index.engine_metrics()
        } else {
            None
        };
        let Some(m) = metrics else {
            let result = self.execute_inner(scratch, q);
            if let Ok(resp) = &result {
                span.arg("candidates", resp.stats.candidates as u64);
                span.arg("pages", resp.stats.pages);
            }
            return result;
        };
        let start = std::time::Instant::now();
        let result = self.execute_inner(scratch, q);
        let latency_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        m.queries.inc();
        match &result {
            Ok(resp) => {
                m.latency_ns.record(latency_ns);
                m.candidates.record(resp.stats.candidates as u64);
                m.pages.record(resp.stats.pages);
                if resp.stats.fallback {
                    m.fallbacks.inc();
                }
                span.arg("candidates", resp.stats.candidates as u64);
                span.arg("pages", resp.stats.pages);
                // The slow log's `k` column is the requested neighbor
                // count; a radius query has none, so it records 0 rather
                // than the sentinel `usize::MAX` that `Query::k` returns.
                let logged_k = match q.kind() {
                    QueryKind::Nearest { k } => k,
                    QueryKind::Radius { .. } => 0,
                };
                // Slow-query exemplar: stamp the active trace id (0 when
                // untraced) so a tripped slow-log entry links to its span
                // timeline in the flight recorder.
                m.slow.record(
                    latency_ns,
                    q.point(),
                    logged_k,
                    resp.stats.candidates,
                    resp.stats.pages as usize,
                    resp.stats.fallback,
                    nncell_obs::trace::current_trace_id(),
                );
            }
            Err(_) => m.query_errors.inc(),
        }
        result
    }

    /// The uninstrumented execution path shared by both arms.
    fn execute_inner(
        &self,
        scratch: &mut QueryScratch,
        q: &Query,
    ) -> Result<QueryResponse, QueryError> {
        let idx = self.index;
        let dim = idx.dim();
        let p = q.point();
        if p.len() != dim {
            return Err(QueryError::DimMismatch {
                expected: dim,
                got: p.len(),
            });
        }
        if p.iter().any(|c| !c.is_finite()) {
            return Err(QueryError::NonFiniteQuery);
        }
        match q.kind() {
            QueryKind::Nearest { k: 0 } => return Err(QueryError::ZeroK),
            QueryKind::Radius { radius } if !radius.is_finite() || radius < 0.0 => {
                return Err(QueryError::InvalidRadius)
            }
            _ => {}
        }
        if let Some(tail) = self.tail.filter(|t| !t.is_empty()) {
            if idx.is_empty() && tail.inserts.is_empty() {
                return Err(QueryError::EmptyIndex);
            }
            if self.out_of_budget() {
                return Err(QueryError::DeadlineExceeded);
            }
            return match q.kind() {
                QueryKind::Nearest { k } => self.run_with_tail(scratch, p, k, tail),
                QueryKind::Radius { radius } => {
                    self.run_radius_with_tail(scratch, p, radius, tail)
                }
            };
        }
        if idx.is_empty() {
            return Err(QueryError::EmptyIndex);
        }
        if self.out_of_budget() {
            return Err(QueryError::DeadlineExceeded);
        }
        match q.kind() {
            QueryKind::Nearest { k: 1 } => Ok(self.run_nn(scratch, p)),
            QueryKind::Nearest { k } => self.run_knn(scratch, p, k),
            QueryKind::Radius { radius } => self.run_radius(scratch, p, radius),
        }
    }

    /// The merged kernel for a non-empty tail. The indexed side asks for
    /// `k + tombstones` neighbors: at most that many of its top results
    /// can be knocked out by tail tombstones, so the survivors still
    /// contain the true indexed top-k (when fewer live points exist the
    /// kernel already degrades to a complete scan). Tail inserts are then
    /// scanned linearly (bounded by the configured tail high-watermark,
    /// budget-checked) and the union re-ranked. An id present on both
    /// sides — a fold published between the tail copy and the snapshot
    /// load — sorts adjacently (same point, bit-identical distance) and is
    /// deduplicated, so the race cannot double-count.
    fn run_with_tail(
        &self,
        scratch: &mut QueryScratch,
        p: &[f64],
        k: usize,
        tail: &crate::memtable::TailSnapshot,
    ) -> Result<QueryResponse, QueryError> {
        let idx = self.index;
        let mut stats = QueryStats::default();
        let mut merged: Vec<QueryResult> = Vec::new();
        if !idx.is_empty() {
            let k_eff = k + tail.removed.len();
            let resp = if k_eff == 1 {
                self.run_nn(scratch, p)
            } else {
                self.run_knn(scratch, p, k_eff)?
            };
            stats = resp.stats;
            merged = resp.into_results();
            if !tail.removed.is_empty() {
                merged.retain(|r| !tail.removed.contains(&r.id));
            }
        }
        let mut tspan = nncell_obs::trace::child("engine.tail_merge");
        tspan.arg("tail", tail.inserts.len() as u64);
        let metric = idx.metric();
        merged.reserve(tail.inserts.len());
        for (i, (id, pt)) in tail.inserts.iter().enumerate() {
            if i % 256 == 255 && self.out_of_budget() {
                return Err(QueryError::DeadlineExceeded);
            }
            merged.push(QueryResult {
                id: *id,
                dist: metric.dist(p, pt.as_slice()),
            });
        }
        stats.candidates += tail.inserts.len();
        stats.tail = tail.inserts.len();
        merged.sort_unstable_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        merged.dedup_by(|a, b| a.id == b.id);
        merged.truncate(k);
        drop(tspan);
        let mut it = merged.into_iter();
        match it.next() {
            // Every indexed point tombstoned and no tail inserts: the
            // live set is genuinely empty.
            None => Err(QueryError::EmptyIndex),
            Some(best) => Ok(QueryResponse {
                best,
                rest: it.collect(),
                stats,
            }),
        }
    }

    /// Executes a query slice across the configured thread pool, returning
    /// one result per query **in input order**. Results are bit-identical
    /// for every thread count (queries are independent; each is executed
    /// exactly once).
    ///
    /// Workers claim fixed-size chunks from an atomic cursor
    /// (work-stealing), each reusing its own warm [`QueryScratch`].
    pub fn batch(&self, queries: &[Query]) -> Vec<Result<QueryResponse, QueryError>> {
        let n = queries.len();
        let threads = self.threads.min(n.max(1));
        if threads <= 1 {
            let mut scratch = QueryScratch::new();
            return queries
                .iter()
                .map(|q| self.execute_with(&mut scratch, q))
                .collect();
        }
        // Chunks small enough that stragglers rebalance, big enough that
        // the cursor and the merge lock stay cold.
        let chunk = (n / (threads * 4)).clamp(1, 1024);
        let n_chunks = n.div_ceil(chunk);
        let cursor = AtomicUsize::new(0);
        let parts: Mutex<Vec<BatchPart>> = Mutex::new(Vec::with_capacity(n_chunks));
        // Workers inherit the spawner's trace context (if any) so their
        // per-query spans parent under the same request trace.
        let trace_ctx = nncell_obs::trace::current();
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    let _trace = nncell_obs::trace::adopt(trace_ctx);
                    let mut scratch = QueryScratch::new();
                    loop {
                        let ci = cursor.fetch_add(1, Ordering::Relaxed);
                        if ci >= n_chunks {
                            break;
                        }
                        let lo = ci * chunk;
                        let hi = (lo + chunk).min(n);
                        let part: Vec<_> = queries[lo..hi]
                            .iter()
                            .map(|q| self.execute_with(&mut scratch, q))
                            .collect();
                        parts.lock().expect("batch merge lock").push((lo, part));
                    }
                });
            }
        });
        let mut parts = parts.into_inner().expect("batch merge lock");
        parts.sort_unstable_by_key(|(lo, _)| *lo);
        let mut out = Vec::with_capacity(n);
        for (_, part) in parts {
            out.extend(part);
        }
        out
    }

    // ------------------------------------------------------------------
    // the two query kernels
    // ------------------------------------------------------------------

    /// Exact 1-NN: a cell-tree point query plus a distance check over the
    /// candidates (Lemma 2: the true NN is always a candidate).
    fn run_nn(&self, scratch: &mut QueryScratch, p: &[f64]) -> QueryResponse {
        let idx = self.index;
        if !idx.space().contains(p) {
            // Cells are clipped to the data space; outside it the cell
            // index is not a covering.
            return self.scan_nn(p);
        }
        let pages = idx
            .cell_tree()
            .point_query_with(p, &mut scratch.stack, &mut scratch.hits);
        decode_hits(&scratch.hits, &mut scratch.cand);
        let metric = idx.metric();
        let alive = idx.alive();
        let mut best: Option<(usize, f64)> = None;
        let mut candidates = 0usize;
        let mut last_pid = usize::MAX;
        for &pid in scratch.cand.iter() {
            if pid == last_pid {
                continue; // several pieces of one cell
            }
            last_pid = pid;
            if !alive[pid] {
                continue;
            }
            candidates += 1;
            let d2 = metric.dist_sq(p, idx.flat_point(pid));
            if best.is_none_or(|(_, b)| d2 < b) {
                best = Some((pid, d2));
            }
        }
        match best {
            Some((id, d2)) => QueryResponse {
                best: QueryResult {
                    id,
                    dist: d2.sqrt(),
                },
                rest: Vec::new(),
                stats: QueryStats {
                    candidates,
                    pages,
                    fallback: false,
                    tail: 0,
                },
            },
            None => {
                // Numerically a boundary query can slip between EPS-closed
                // MBRs; exactness is preserved by scanning.
                self.scan_nn(p)
            }
        }
    }

    /// Exact k-NN from the cell index (see `DESIGN.md` §3.4): grow a
    /// candidate set to ≥ k points via sphere queries, take the k-th best
    /// candidate distance as a proven upper bound, and resolve with one
    /// final sphere query at that bound. The configured budget (if any) is
    /// checked between candidate batches: each sphere query is one bounded
    /// unit of work, and a budget that runs out between them surfaces as
    /// [`QueryError::DeadlineExceeded`] instead of hogging the worker.
    fn run_knn(
        &self,
        scratch: &mut QueryScratch,
        p: &[f64],
        k: usize,
    ) -> Result<QueryResponse, QueryError> {
        let idx = self.index;
        if k >= idx.len() || !idx.space().contains(p) {
            return Ok(self.scan_knn(p, k));
        }
        let tree = idx.cell_tree();
        let mut pages;
        {
            let mut growth = nncell_obs::trace::child("engine.knn_growth");
            pages = tree.point_query_with(p, &mut scratch.stack, &mut scratch.hits);
            decode_live_hits(&scratch.hits, idx.alive(), &mut scratch.cand);
            let mut radius = {
                // Seed radius: expected k-NN scale, doubled until enough hits.
                let d = idx.dim() as f64;
                2.0 * ((k as f64) / idx.len() as f64).powf(1.0 / d)
            };
            let mut guard = 0;
            while scratch.cand.len() < k {
                if self.out_of_budget() {
                    return Err(QueryError::DeadlineExceeded);
                }
                pages += tree.sphere_query_with(p, radius, &mut scratch.stack, &mut scratch.hits);
                decode_live_hits(&scratch.hits, idx.alive(), &mut scratch.cand);
                radius *= 2.0;
                guard += 1;
                if guard > 64 {
                    return Ok(self.scan_knn(p, k)); // numerically degenerate space
                }
            }
            growth.arg("batches", guard);
            growth.arg("candidates", scratch.cand.len() as u64);
        }
        let mut rank = nncell_obs::trace::child("engine.mindist_rank");
        let metric = idx.metric();
        rank_candidates(scratch, |id| metric.dist(p, idx.flat_point(id)));
        let bound = scratch.ranked[k - 1].dist;
        if self.out_of_budget() {
            return Err(QueryError::DeadlineExceeded);
        }
        // One exact sphere query with the proven bound.
        pages += tree.sphere_query_with(p, bound + 1e-12, &mut scratch.stack, &mut scratch.hits);
        decode_live_hits(&scratch.hits, idx.alive(), &mut scratch.cand);
        if scratch.cand.is_empty() {
            // Unreachable by Lemma 2 (the bound query is a superset of the
            // growth query), but the library contract is degrade-not-panic.
            return Ok(self.scan_knn(p, k));
        }
        let candidates = scratch.cand.len();
        rank_candidates(scratch, |id| metric.dist(p, idx.flat_point(id)));
        scratch.ranked.truncate(k);
        rank.arg("candidates", candidates as u64);
        drop(rank);
        Ok(QueryResponse {
            best: scratch.ranked[0],
            rest: scratch.ranked[1..].to_vec(),
            stats: QueryStats {
                candidates,
                pages,
                fallback: false,
                tail: 0,
            },
        })
    }

    /// Exact radius query, riding the **point** tree (not the cell tree):
    /// one sphere query collects every stored point whose Euclidean
    /// distance can be within the ball, then the exact metric filter keeps
    /// `dist ≤ r`. Unlike the NN kernels this needs no covering argument
    /// and no scan fallback — the point tree holds every live point
    /// directly, and its sphere query is exact for *any* center, including
    /// centers outside the data space.
    fn run_radius(
        &self,
        scratch: &mut QueryScratch,
        p: &[f64],
        r: f64,
    ) -> Result<QueryResponse, QueryError> {
        let idx = self.index;
        let metric = idx.metric();
        // The tree prunes in Euclidean geometry; a weighted-metric ball of
        // radius r is contained in the Euclidean ball of radius
        // r / sqrt(min weight). The tiny inflation keeps boundary points
        // (dist == r exactly) from being pruned by the tree's own
        // floating-point arithmetic.
        let mut w_min = f64::INFINITY;
        for i in 0..idx.dim() {
            w_min = w_min.min(metric.weight(i));
        }
        let tree_r = (r / w_min.sqrt()) * (1.0 + 1e-9) + 1e-12;
        let pages =
            idx.point_tree()
                .sphere_query_with(p, tree_r, &mut scratch.stack, &mut scratch.hits);
        let alive = idx.alive();
        let mut out: Vec<QueryResult> = Vec::new();
        let mut candidates = 0usize;
        for &h in scratch.hits.iter() {
            // Point-tree items carry raw point ids (no piece encoding).
            let id = h as usize;
            if !alive[id] {
                continue;
            }
            candidates += 1;
            let dist = metric.dist(p, idx.flat_point(id));
            if dist <= r {
                out.push(QueryResult { id, dist });
            }
        }
        out.sort_unstable_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        let stats = QueryStats {
            candidates,
            pages,
            fallback: false,
            tail: 0,
        };
        let mut it = out.into_iter();
        match it.next() {
            None => Err(QueryError::EmptyRadius),
            Some(best) => Ok(QueryResponse {
                best,
                rest: it.collect(),
                stats,
            }),
        }
    }

    /// The radius kernel merged with a non-empty memtable tail: indexed
    /// ball results minus tombstoned ids, plus tail inserts inside the
    /// ball, re-ranked by `(distance, id)`. No truncation — a radius query
    /// returns everything the ball contains.
    fn run_radius_with_tail(
        &self,
        scratch: &mut QueryScratch,
        p: &[f64],
        r: f64,
        tail: &crate::memtable::TailSnapshot,
    ) -> Result<QueryResponse, QueryError> {
        let idx = self.index;
        let mut stats = QueryStats::default();
        let mut merged: Vec<QueryResult> = Vec::new();
        if !idx.is_empty() {
            match self.run_radius(scratch, p, r) {
                Ok(resp) => {
                    stats = resp.stats;
                    merged = resp.into_results();
                }
                // An empty indexed ball can still be filled by the tail.
                Err(QueryError::EmptyRadius) => {}
                Err(e) => return Err(e),
            }
            if !tail.removed.is_empty() {
                merged.retain(|x| !tail.removed.contains(&x.id));
            }
        }
        let metric = idx.metric();
        for (i, (id, pt)) in tail.inserts.iter().enumerate() {
            if i % 256 == 255 && self.out_of_budget() {
                return Err(QueryError::DeadlineExceeded);
            }
            let dist = metric.dist(p, pt.as_slice());
            if dist <= r {
                merged.push(QueryResult { id: *id, dist });
            }
        }
        stats.candidates += tail.inserts.len();
        stats.tail = tail.inserts.len();
        merged.sort_unstable_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        merged.dedup_by(|a, b| a.id == b.id);
        let mut it = merged.into_iter();
        match it.next() {
            None => Err(QueryError::EmptyRadius),
            Some(best) => Ok(QueryResponse {
                best,
                rest: it.collect(),
                stats,
            }),
        }
    }

    // ------------------------------------------------------------------
    // the one place every scan fallback goes through
    // ------------------------------------------------------------------

    /// Exact 1-NN by scanning the flat point layout. Counts the fallback.
    fn scan_nn(&self, p: &[f64]) -> QueryResponse {
        let idx = self.index;
        let _span = nncell_obs::trace::child("engine.scan_fallback");
        idx.count_fallback();
        let metric = idx.metric();
        let alive = idx.alive();
        let mut best: Option<(usize, f64)> = None;
        for id in 0..alive.len() {
            if !alive[id] {
                continue;
            }
            let d2 = metric.dist_sq(p, idx.flat_point(id));
            if best.is_none_or(|(_, b)| d2 < b) {
                best = Some((id, d2));
            }
        }
        // `execute_with` rejected empty indexes, so `best` is always set;
        // the guard keeps this helper total anyway.
        let (id, d2) = best.unwrap_or((0, f64::INFINITY));
        QueryResponse {
            best: QueryResult {
                id,
                dist: d2.sqrt(),
            },
            rest: Vec::new(),
            stats: QueryStats {
                candidates: idx.len(),
                pages: 0,
                fallback: true,
                tail: 0,
            },
        }
    }

    /// Exact k-NN by scanning the flat point layout. Counts the fallback.
    fn scan_knn(&self, p: &[f64], k: usize) -> QueryResponse {
        let idx = self.index;
        let _span = nncell_obs::trace::child("engine.scan_fallback");
        idx.count_fallback();
        let metric = idx.metric();
        let alive = idx.alive();
        let mut all: Vec<QueryResult> = (0..alive.len())
            .filter(|&id| alive[id])
            .map(|id| QueryResult {
                id,
                dist: metric.dist(p, idx.flat_point(id)),
            })
            .collect();
        all.sort_unstable_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        all.truncate(k);
        let best = all.first().copied().unwrap_or(QueryResult {
            id: 0,
            dist: f64::INFINITY,
        });
        QueryResponse {
            best,
            rest: if all.len() > 1 {
                all[1..].to_vec()
            } else {
                Vec::new()
            },
            stats: QueryStats {
                candidates: idx.len(),
                pages: 0,
                fallback: true,
                tail: 0,
            },
        }
    }
}

/// Decodes piece-encoded hits into sorted (possibly duplicated) point ids.
fn decode_hits(hits: &[ItemId], cand: &mut Vec<usize>) {
    cand.clear();
    cand.extend(hits.iter().map(|&h| (h >> PIECE_BITS) as usize));
    cand.sort_unstable();
}

/// Decodes hits into sorted, deduplicated, **live** point ids.
fn decode_live_hits(hits: &[ItemId], alive: &[bool], cand: &mut Vec<usize>) {
    cand.clear();
    cand.extend(
        hits.iter()
            .map(|&h| (h >> PIECE_BITS) as usize)
            .filter(|&pid| alive[pid]),
    );
    cand.sort_unstable();
    cand.dedup();
}

/// Fills `scratch.ranked` with `(id, dist)` for every candidate, ascending
/// by `(dist, id)`. The candidate ids are already ascending and unique, so
/// this tie-break reproduces a stable sort over ascending input — the exact
/// ordering of [`crate::scan::linear_scan_knn`].
fn rank_candidates(scratch: &mut QueryScratch, dist: impl Fn(usize) -> f64) {
    scratch.ranked.clear();
    scratch
        .ranked
        .extend(scratch.cand.iter().map(|&id| QueryResult {
            id,
            dist: dist(id),
        }));
    scratch
        .ranked
        .sort_unstable_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
}
