//! The throughput-grade query engine: parallel batch execution with
//! reusable per-thread scratch state.
//!
//! [`QueryEngine`] is a cheap, read-only session over a built
//! [`NnCellIndex`]. It owns no data — it borrows the index (including the
//! cache-friendly flat point layout the index maintains) — so constructing
//! one is free, and any number of engines can query one index concurrently.
//!
//! Execution model:
//!
//! * [`QueryEngine::execute`] answers one [`Query`] on the calling thread.
//! * [`QueryEngine::batch`] fans a query slice out across a configurable
//!   number of worker threads. Workers *steal work* at chunk granularity
//!   from a shared atomic cursor, so an expensive straggler query cannot
//!   idle the rest of the pool.
//! * Each worker carries one [`QueryScratch`] — candidate id buffer,
//!   ranked-distance buffer, tree traversal stack — reused across every
//!   query it executes. Once warm, the per-query path performs **zero heap
//!   allocations** for `k = 1` (and exactly one — the `rest` vector of the
//!   response — for `k > 1`); this is property-checked by a counting
//!   allocator in `crates/core/tests/alloc_free.rs`.
//!
//! Nearest-neighbor kernels (see `DESIGN.md` §17): a **MINDIST-ordered
//! best-first traversal** of the point X-tree streams candidates to this
//! engine in roughly ascending distance; the engine refines each candidate
//! with the **early-abort** distance kernel
//! ([`nncell_geom::dist_sq_early_abort`]) against its running k-th-best
//! distance and hands the shrunk bound back to the traversal, which prunes
//! every MBR whose MINDIST exceeds it before the node is ever read. The
//! pruning work is reported per query in [`QueryStats`] (`nodes_pruned`,
//! `candidates_examined`, `candidates_aborted_early`).
//!
//! Results are **bit-identical** regardless of thread count, and identical
//! to a linear scan: every completed distance evaluation uses the same
//! auto-vectorizable kernel ([`nncell_geom::dist_sq`] — the early-abort
//! variant is bit-identical whenever it completes), distance ties break by
//! ascending point id, and the abort/prune bounds carry a relative slop so
//! floating-point differences between MBR MINDIST accumulation and the
//! kernel can never skip a true answer.
//!
//! All exact-scan fallbacks (out-of-space query, `k ≥ len`, degenerate
//! candidate search) are funneled through one helper here, which both sets
//! [`QueryStats::fallback`] on the response and bumps the index-wide
//! [`NnCellIndex::fallback_queries`] counter.

use crate::index::{NnCellIndex, QueryResult};
use crate::query::{Query, QueryError, QueryKind, QueryResponse, QueryStats};
use nncell_geom::{Euclidean, Metric};
use nncell_index::{BestFirstScratch, ItemId, PageId};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Relative slop applied to squared-distance pruning/abort bounds. It
/// absorbs the rounding difference between an MBR's MINDIST accumulation
/// and the distance kernel (~1 ulp each), so a bound comparison can only
/// ever be *less* aggressive than the exact comparison it stands in for —
/// a few extra candidates survive to full evaluation, never the reverse.
const BOUND_SLOP: f64 = 1.0 + 1e-12;

/// One worker-produced chunk of batch results, keyed by its input offset.
type BatchPart = (usize, Vec<Result<QueryResponse, QueryError>>);

/// Reusable per-thread query state. All buffers grow to a high-water mark
/// and are then reused allocation-free; one scratch must not be shared
/// between threads (each [`QueryEngine::batch`] worker owns its own).
#[derive(Default)]
pub struct QueryScratch {
    /// Raw point-tree hits of the radius kernel's sphere gather.
    hits: Vec<ItemId>,
    /// Tree traversal stack (radius kernel).
    stack: Vec<PageId>,
    /// Running k-best `(id, dist)` buffer, ascending by `(dist, id)`.
    ranked: Vec<QueryResult>,
    /// Priority-queue scratch of the MINDIST-ordered best-first traversal.
    bf: BestFirstScratch,
}

impl QueryScratch {
    /// A fresh (cold) scratch; buffers are allocated lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A read-only, thread-safe query session over a built [`NnCellIndex`].
///
/// ```
/// use nncell_core::{BuildConfig, NnCellIndex, Query, QueryEngine, Strategy};
/// use nncell_geom::Point;
/// let pts = (0..50)
///     .map(|i| Point::new(vec![(i as f64 + 0.5) / 50.0, ((i * 7 % 50) as f64 + 0.5) / 50.0]))
///     .collect();
/// let index = NnCellIndex::build(
///     pts,
///     BuildConfig::builder().strategy(Strategy::Sphere).build(),
/// )
/// .unwrap();
/// let engine = QueryEngine::new(&index);
/// let responses = engine.batch(&[Query::nn([0.2, 0.3]), Query::knn([0.8, 0.1], 5)]);
/// let nn = responses[0].as_ref().unwrap();
/// println!("#{} at {:.3} ({} candidates)", nn.best.id, nn.best.dist, nn.stats.candidates);
/// assert_eq!(responses[1].as_ref().unwrap().len(), 5);
/// ```
pub struct QueryEngine<'a, M: Metric = Euclidean> {
    index: &'a NnCellIndex<M>,
    threads: usize,
    /// When false, this engine skips metric recording even if the index has
    /// a registry attached (overhead A/B runs; see the bench).
    record_metrics: bool,
    /// Optional per-request time budget (see [`QueryEngine::with_deadline`]).
    deadline: Option<std::time::Instant>,
    /// Optional unindexed memtable tail merged into every answer (see
    /// [`QueryEngine::with_tail`]).
    tail: Option<&'a crate::memtable::TailSnapshot>,
}

impl<'a, M: Metric> QueryEngine<'a, M> {
    /// An engine using every available hardware thread for batches.
    pub fn new(index: &'a NnCellIndex<M>) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self {
            index,
            threads,
            record_metrics: true,
            deadline: None,
            tail: None,
        }
    }

    /// An engine that executes batches on the calling thread only.
    pub fn sequential(index: &'a NnCellIndex<M>) -> Self {
        Self {
            index,
            threads: 1,
            record_metrics: true,
            deadline: None,
            tail: None,
        }
    }

    /// Overrides the batch worker-thread count (≥ 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one thread");
        self.threads = threads;
        self
    }

    /// Disables metric recording for this engine even when the index has a
    /// registry attached — the control arm of overhead measurements.
    pub fn without_metrics(mut self) -> Self {
        self.record_metrics = false;
        self
    }

    /// Attaches an engine-level time budget applied to **every** query this
    /// engine executes.
    ///
    /// Deprecated: per-request options now ride on the query itself —
    /// `Query::knn(q, k).with_deadline(d)` — so one engine can serve
    /// requests with different budgets concurrently. This engine-level
    /// variant remains for one release; while both are set the *earlier*
    /// deadline wins.
    #[deprecated(
        since = "0.1.0",
        note = "set the budget per request via `Query::with_deadline`; \
                the engine-level deadline will be removed after one release"
    )]
    pub fn with_deadline(mut self, deadline: std::time::Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// [`Self::with_deadline`] with an `Option`, for internal threading
    /// (shard fan-out applies one admission deadline to a whole batch
    /// without cloning every query).
    pub(crate) fn with_deadline_opt(mut self, deadline: Option<std::time::Instant>) -> Self {
        self.deadline = deadline;
        self
    }

    /// The configured engine-level deadline, if any (does not see
    /// per-request [`Query::with_deadline`] budgets).
    pub fn deadline(&self) -> Option<std::time::Instant> {
        self.deadline
    }

    /// The deadline that governs `q` on this engine: the earlier of the
    /// per-request budget and the deprecated engine-level one.
    fn effective_deadline(&self, q: &Query) -> Option<std::time::Instant> {
        match (self.deadline, q.deadline()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Merges an unindexed memtable tail into every answer: the indexed
    /// kernel is over-fetched by the tail's tombstone count, tombstoned
    /// ids are filtered out, live tail points are brought in by a
    /// deadline-aware linear scan, and the union is re-ranked by
    /// `(distance, id)`. Exactness is the Lemma 1 covering-superset
    /// argument — every live point is either in the index or in the tail —
    /// and the extra work is counted in [`QueryStats::tail`]. With an
    /// empty tail the plain (zero-allocation) path runs unchanged.
    pub fn with_tail(mut self, tail: &'a crate::memtable::TailSnapshot) -> Self {
        self.tail = Some(tail);
        self
    }

    /// The configured batch worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The index this engine reads.
    pub fn index(&self) -> &'a NnCellIndex<M> {
        self.index
    }

    /// Total scan-fallback queries recorded on the underlying index (all
    /// fallback paths — NN and k-NN — are counted there by this engine).
    pub fn fallback_queries(&self) -> u64 {
        self.index.fallback_queries()
    }

    // ------------------------------------------------------------------
    // execution
    // ------------------------------------------------------------------

    /// Executes one query with a private, cold scratch. For steady-state
    /// throughput prefer [`Self::batch`] or [`Self::execute_with`], which
    /// reuse warm buffers.
    pub fn execute(&self, q: &Query) -> Result<QueryResponse, QueryError> {
        self.execute_with(&mut QueryScratch::new(), q)
    }

    /// Executes one query reusing the caller's scratch buffers. Once the
    /// scratch is warm this path performs no heap allocations for `k = 1` —
    /// with or without an attached metrics registry (recording is a handful
    /// of relaxed atomics; the slow-query ring copies into preallocated
    /// slots).
    pub fn execute_with(
        &self,
        scratch: &mut QueryScratch,
        q: &Query,
    ) -> Result<QueryResponse, QueryError> {
        // Inert (one thread-local read) unless this thread is inside a
        // sampled trace; the guard closes when the function returns.
        let mut span = nncell_obs::trace::child("engine.query");
        let metrics = if self.record_metrics {
            self.index.engine_metrics()
        } else {
            None
        };
        let Some(m) = metrics else {
            let result = self.execute_inner(scratch, q);
            if let Ok(resp) = &result {
                span.arg("candidates", resp.stats.candidates as u64);
                span.arg("pages", resp.stats.pages);
                span.arg("nodes_pruned", resp.stats.nodes_pruned);
                span.arg("examined", resp.stats.candidates_examined as u64);
                span.arg("aborted_early", resp.stats.candidates_aborted_early as u64);
            }
            return result;
        };
        let start = std::time::Instant::now();
        let result = self.execute_inner(scratch, q);
        let latency_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        m.queries.inc();
        match &result {
            Ok(resp) => {
                m.latency_ns.record(latency_ns);
                m.candidates.record(resp.stats.candidates as u64);
                m.pages.record(resp.stats.pages);
                m.nodes_pruned.record(resp.stats.nodes_pruned);
                m.candidates_examined
                    .record(resp.stats.candidates_examined as u64);
                m.aborted_early
                    .record(resp.stats.candidates_aborted_early as u64);
                if resp.stats.fallback {
                    m.fallbacks.inc();
                }
                span.arg("candidates", resp.stats.candidates as u64);
                span.arg("pages", resp.stats.pages);
                span.arg("nodes_pruned", resp.stats.nodes_pruned);
                span.arg("examined", resp.stats.candidates_examined as u64);
                span.arg("aborted_early", resp.stats.candidates_aborted_early as u64);
                // The slow log's `k` column is the requested neighbor
                // count; a radius query has none, so it records 0 rather
                // than the sentinel `usize::MAX` that `Query::k` returns.
                let logged_k = match q.kind() {
                    QueryKind::Nearest { k } => k,
                    QueryKind::Radius { .. } => 0,
                };
                // Slow-query exemplar: stamp the active trace id (0 when
                // untraced) so a tripped slow-log entry links to its span
                // timeline in the flight recorder.
                m.slow.record(
                    latency_ns,
                    q.point(),
                    logged_k,
                    resp.stats.candidates,
                    resp.stats.pages as usize,
                    resp.stats.fallback,
                    nncell_obs::trace::current_trace_id(),
                );
            }
            Err(_) => m.query_errors.inc(),
        }
        result
    }

    /// The uninstrumented execution path shared by both arms.
    fn execute_inner(
        &self,
        scratch: &mut QueryScratch,
        q: &Query,
    ) -> Result<QueryResponse, QueryError> {
        let idx = self.index;
        let dim = idx.dim();
        let p = q.point();
        if p.len() != dim {
            return Err(QueryError::DimMismatch {
                expected: dim,
                got: p.len(),
            });
        }
        if p.iter().any(|c| !c.is_finite()) {
            return Err(QueryError::NonFiniteQuery);
        }
        match q.kind() {
            QueryKind::Nearest { k: 0 } => return Err(QueryError::ZeroK),
            QueryKind::Radius { radius } if !radius.is_finite() || radius < 0.0 => {
                return Err(QueryError::InvalidRadius)
            }
            _ => {}
        }
        let deadline = self.effective_deadline(q);
        if let Some(tail) = self.tail.filter(|t| !t.is_empty()) {
            if idx.is_empty() && tail.inserts.is_empty() {
                return Err(QueryError::EmptyIndex);
            }
            if out_of_budget(deadline) {
                return Err(QueryError::DeadlineExceeded);
            }
            return match q.kind() {
                QueryKind::Nearest { k } => self.run_with_tail(scratch, p, k, tail, deadline),
                QueryKind::Radius { radius } => {
                    self.run_radius_with_tail(scratch, p, radius, tail, deadline)
                }
            };
        }
        if idx.is_empty() {
            return Err(QueryError::EmptyIndex);
        }
        if out_of_budget(deadline) {
            return Err(QueryError::DeadlineExceeded);
        }
        match q.kind() {
            QueryKind::Nearest { k } => self.run_knn(scratch, p, k, deadline),
            QueryKind::Radius { radius } => self.run_radius(scratch, p, radius),
        }
    }

    /// The merged kernel for a non-empty tail. The indexed side asks for
    /// `k + tombstones` neighbors: at most that many of its top results
    /// can be knocked out by tail tombstones, so the survivors still
    /// contain the true indexed top-k (when fewer live points exist the
    /// kernel already degrades to a complete scan). Tail inserts are then
    /// scanned linearly (bounded by the configured tail high-watermark,
    /// budget-checked) and the union re-ranked. An id present on both
    /// sides — a fold published between the tail copy and the snapshot
    /// load — sorts adjacently (same point, bit-identical distance) and is
    /// deduplicated, so the race cannot double-count.
    fn run_with_tail(
        &self,
        scratch: &mut QueryScratch,
        p: &[f64],
        k: usize,
        tail: &crate::memtable::TailSnapshot,
        deadline: Option<std::time::Instant>,
    ) -> Result<QueryResponse, QueryError> {
        let idx = self.index;
        let mut stats = QueryStats::default();
        let mut merged: Vec<QueryResult> = Vec::new();
        if !idx.is_empty() {
            let k_eff = k + tail.removed.len();
            let resp = self.run_knn(scratch, p, k_eff, deadline)?;
            stats = resp.stats;
            merged = resp.into_results();
            if !tail.removed.is_empty() {
                merged.retain(|r| !tail.removed.contains(&r.id));
            }
        }
        let mut tspan = nncell_obs::trace::child("engine.tail_merge");
        tspan.arg("tail", tail.inserts.len() as u64);
        let metric = idx.metric();
        merged.reserve(tail.inserts.len());
        for (i, (id, pt)) in tail.inserts.iter().enumerate() {
            if i % 256 == 255 && out_of_budget(deadline) {
                return Err(QueryError::DeadlineExceeded);
            }
            merged.push(QueryResult {
                id: *id,
                dist: metric.dist(p, pt.as_slice()),
            });
        }
        stats.candidates += tail.inserts.len();
        stats.tail = tail.inserts.len();
        merged.sort_unstable_by(cmp_results);
        merged.dedup_by(|a, b| a.id == b.id);
        merged.truncate(k);
        drop(tspan);
        let mut it = merged.into_iter();
        match it.next() {
            // Every indexed point tombstoned and no tail inserts: the
            // live set is genuinely empty.
            None => Err(QueryError::EmptyIndex),
            Some(best) => Ok(QueryResponse {
                best,
                rest: it.collect(),
                stats,
            }),
        }
    }

    /// Executes a query slice across the configured thread pool, returning
    /// one result per query **in input order**. Results are bit-identical
    /// for every thread count (queries are independent; each is executed
    /// exactly once).
    ///
    /// Workers claim fixed-size chunks from an atomic cursor
    /// (work-stealing), each reusing its own warm [`QueryScratch`].
    pub fn batch(&self, queries: &[Query]) -> Vec<Result<QueryResponse, QueryError>> {
        let n = queries.len();
        let threads = self.threads.min(n.max(1));
        if threads <= 1 {
            let mut scratch = QueryScratch::new();
            return queries
                .iter()
                .map(|q| self.execute_with(&mut scratch, q))
                .collect();
        }
        // Chunks small enough that stragglers rebalance, big enough that
        // the cursor and the merge lock stay cold.
        let chunk = (n / (threads * 4)).clamp(1, 1024);
        let n_chunks = n.div_ceil(chunk);
        let cursor = AtomicUsize::new(0);
        let parts: Mutex<Vec<BatchPart>> = Mutex::new(Vec::with_capacity(n_chunks));
        // Workers inherit the spawner's trace context (if any) so their
        // per-query spans parent under the same request trace.
        let trace_ctx = nncell_obs::trace::current();
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    let _trace = nncell_obs::trace::adopt(trace_ctx);
                    let mut scratch = QueryScratch::new();
                    loop {
                        let ci = cursor.fetch_add(1, Ordering::Relaxed);
                        if ci >= n_chunks {
                            break;
                        }
                        let lo = ci * chunk;
                        let hi = (lo + chunk).min(n);
                        let part: Vec<_> = queries[lo..hi]
                            .iter()
                            .map(|q| self.execute_with(&mut scratch, q))
                            .collect();
                        parts.lock().expect("batch merge lock").push((lo, part));
                    }
                });
            }
        });
        let mut parts = parts.into_inner().expect("batch merge lock");
        parts.sort_unstable_by_key(|(lo, _)| *lo);
        let mut out = Vec::with_capacity(n);
        for (_, part) in parts {
            out.extend(part);
        }
        out
    }

    // ------------------------------------------------------------------
    // the two query kernels
    // ------------------------------------------------------------------

    /// Exact k-NN (including `k = 1`) by MINDIST-ordered best-first
    /// traversal of the **point** X-tree with early-abort refinement.
    ///
    /// The traversal ([`nncell_index::Tree::best_first_stream_with`])
    /// expands directory pages in ascending MINDIST order and streams leaf
    /// items to the closure below, which evaluates each live candidate with
    /// the early-abort kernel against the current k-th-best distance and
    /// hands the shrunk bound back for page pruning. Exactness: a page is
    /// pruned only when its MINDIST **strictly** exceeds the slopped bound
    /// `(kth_dist)² · BOUND_SLOP / w_min` (the `w_min` division converts a
    /// weighted-metric bound into the tree's Euclidean geometry, since
    /// `d²_w(q, x) ≥ w_min · ‖q − x‖²`), so every point that could tie or
    /// beat the k-th result is evaluated exactly — with the same kernel,
    /// in the same `(dist, id)` order, as the linear scan.
    ///
    /// The configured budget (if any) is checked every 128 streamed items;
    /// an expired budget aborts the traversal and surfaces as
    /// [`QueryError::DeadlineExceeded`] instead of hogging the worker.
    fn run_knn(
        &self,
        scratch: &mut QueryScratch,
        p: &[f64],
        k: usize,
        deadline: Option<std::time::Instant>,
    ) -> Result<QueryResponse, QueryError> {
        let idx = self.index;
        if k >= idx.len() || !idx.space().contains(p) {
            // k ≥ len needs every live point anyway; outside the data
            // space the index makes no covering promise.
            return Ok(if k == 1 {
                self.scan_nn(p)
            } else {
                self.scan_knn(p, k)
            });
        }
        let metric = idx.metric();
        let alive = idx.alive();
        let mut w_min = f64::INFINITY;
        for i in 0..idx.dim() {
            w_min = w_min.min(metric.weight(i));
        }
        let QueryScratch { ranked, bf, .. } = scratch;
        ranked.clear();
        let mut examined = 0usize;
        let mut aborted = 0usize;
        let mut visits = 0u32;
        let mut deadline_hit = false;
        // Squared-distance bounds: `abort_bound` cuts kernel evaluations
        // short, `tree_bound` (its Euclidean relaxation) prunes pages.
        let mut abort_bound = f64::INFINITY;
        let mut tree_bound = f64::INFINITY;
        let tstats = idx.point_tree().best_first_stream_with(p, bf, |item| {
            visits += 1;
            if visits.is_multiple_of(128) && out_of_budget(deadline) {
                deadline_hit = true;
                return f64::NEG_INFINITY; // abort the whole traversal
            }
            // Point-tree items carry raw point ids (no piece encoding).
            let id = item as usize;
            if !alive[id] {
                return tree_bound;
            }
            examined += 1;
            match metric.dist_sq_early_abort(p, idx.flat_point(id), abort_bound) {
                None => aborted += 1, // provably beyond the k-th best
                Some(d2) => {
                    let r = QueryResult { id, dist: d2.sqrt() };
                    let full = ranked.len() == k;
                    if !full || cmp_results(&r, &ranked[k - 1]) == std::cmp::Ordering::Less {
                        let pos =
                            ranked.partition_point(|x| cmp_results(x, &r) == std::cmp::Ordering::Less);
                        if full {
                            ranked.pop();
                        }
                        ranked.insert(pos, r);
                        if ranked.len() == k {
                            let b = ranked[k - 1].dist;
                            abort_bound = (b * b) * BOUND_SLOP;
                            tree_bound = abort_bound / w_min;
                        }
                    }
                }
            }
            tree_bound
        });
        if deadline_hit {
            return Err(QueryError::DeadlineExceeded);
        }
        if ranked.is_empty() {
            // Unreachable while the tree and alive-mask agree (k < len
            // guarantees live points exist), but the library contract is
            // degrade-not-panic.
            return Ok(self.scan_knn(p, k));
        }
        Ok(QueryResponse {
            best: ranked[0],
            rest: ranked[1..].to_vec(),
            stats: QueryStats {
                candidates: examined - aborted,
                pages: tstats.pages,
                fallback: false,
                tail: 0,
                nodes_pruned: tstats.nodes_pruned,
                candidates_examined: examined,
                candidates_aborted_early: aborted,
            },
        })
    }

    /// Exact radius query, riding the **point** tree (not the cell tree):
    /// one sphere query collects every stored point whose Euclidean
    /// distance can be within the ball, then the exact metric filter keeps
    /// `dist ≤ r`. Unlike the NN kernels this needs no covering argument
    /// and no scan fallback — the point tree holds every live point
    /// directly, and its sphere query is exact for *any* center, including
    /// centers outside the data space.
    fn run_radius(
        &self,
        scratch: &mut QueryScratch,
        p: &[f64],
        r: f64,
    ) -> Result<QueryResponse, QueryError> {
        let idx = self.index;
        let metric = idx.metric();
        // The tree prunes in Euclidean geometry; a weighted-metric ball of
        // radius r is contained in the Euclidean ball of radius
        // r / sqrt(min weight). The tiny inflation keeps boundary points
        // (dist == r exactly) from being pruned by the tree's own
        // floating-point arithmetic.
        let mut w_min = f64::INFINITY;
        for i in 0..idx.dim() {
            w_min = w_min.min(metric.weight(i));
        }
        let tree_r = (r / w_min.sqrt()) * (1.0 + 1e-9) + 1e-12;
        let pages =
            idx.point_tree()
                .sphere_query_with(p, tree_r, &mut scratch.stack, &mut scratch.hits);
        let alive = idx.alive();
        let mut out: Vec<QueryResult> = Vec::new();
        let mut examined = 0usize;
        let mut aborted = 0usize;
        // Squared abort bound for the ball: a partial sum already beyond
        // `r²` (plus slop, so an exact-boundary point is never cut) proves
        // the point is outside and the kernel can stop early.
        let abort_bound = (r * r) * BOUND_SLOP;
        for &h in scratch.hits.iter() {
            // Point-tree items carry raw point ids (no piece encoding).
            let id = h as usize;
            if !alive[id] {
                continue;
            }
            examined += 1;
            match metric.dist_sq_early_abort(p, idx.flat_point(id), abort_bound) {
                None => aborted += 1, // provably outside the ball
                Some(d2) => {
                    let dist = d2.sqrt();
                    if dist <= r {
                        out.push(QueryResult { id, dist });
                    }
                }
            }
        }
        out.sort_unstable_by(cmp_results);
        let stats = QueryStats {
            candidates: examined - aborted,
            pages,
            fallback: false,
            tail: 0,
            nodes_pruned: 0,
            candidates_examined: examined,
            candidates_aborted_early: aborted,
        };
        let mut it = out.into_iter();
        match it.next() {
            None => Err(QueryError::EmptyRadius),
            Some(best) => Ok(QueryResponse {
                best,
                rest: it.collect(),
                stats,
            }),
        }
    }

    /// The radius kernel merged with a non-empty memtable tail: indexed
    /// ball results minus tombstoned ids, plus tail inserts inside the
    /// ball, re-ranked by `(distance, id)`. No truncation — a radius query
    /// returns everything the ball contains.
    fn run_radius_with_tail(
        &self,
        scratch: &mut QueryScratch,
        p: &[f64],
        r: f64,
        tail: &crate::memtable::TailSnapshot,
        deadline: Option<std::time::Instant>,
    ) -> Result<QueryResponse, QueryError> {
        let idx = self.index;
        let mut stats = QueryStats::default();
        let mut merged: Vec<QueryResult> = Vec::new();
        if !idx.is_empty() {
            match self.run_radius(scratch, p, r) {
                Ok(resp) => {
                    stats = resp.stats;
                    merged = resp.into_results();
                }
                // An empty indexed ball can still be filled by the tail.
                Err(QueryError::EmptyRadius) => {}
                Err(e) => return Err(e),
            }
            if !tail.removed.is_empty() {
                merged.retain(|x| !tail.removed.contains(&x.id));
            }
        }
        let metric = idx.metric();
        for (i, (id, pt)) in tail.inserts.iter().enumerate() {
            if i % 256 == 255 && out_of_budget(deadline) {
                return Err(QueryError::DeadlineExceeded);
            }
            let dist = metric.dist(p, pt.as_slice());
            if dist <= r {
                merged.push(QueryResult { id: *id, dist });
            }
        }
        stats.candidates += tail.inserts.len();
        stats.tail = tail.inserts.len();
        merged.sort_unstable_by(cmp_results);
        merged.dedup_by(|a, b| a.id == b.id);
        let mut it = merged.into_iter();
        match it.next() {
            None => Err(QueryError::EmptyRadius),
            Some(best) => Ok(QueryResponse {
                best,
                rest: it.collect(),
                stats,
            }),
        }
    }

    // ------------------------------------------------------------------
    // the one place every scan fallback goes through
    // ------------------------------------------------------------------

    /// Exact 1-NN by scanning the flat point layout. Counts the fallback.
    fn scan_nn(&self, p: &[f64]) -> QueryResponse {
        let idx = self.index;
        let _span = nncell_obs::trace::child("engine.scan_fallback");
        idx.count_fallback();
        let metric = idx.metric();
        let alive = idx.alive();
        let mut best: Option<(usize, f64)> = None;
        for id in 0..alive.len() {
            if !alive[id] {
                continue;
            }
            let d2 = metric.dist_sq(p, idx.flat_point(id));
            if best.is_none_or(|(_, b)| d2 < b) {
                best = Some((id, d2));
            }
        }
        // `execute_with` rejected empty indexes, so `best` is always set;
        // the guard keeps this helper total anyway.
        let (id, d2) = best.unwrap_or((0, f64::INFINITY));
        QueryResponse {
            best: QueryResult {
                id,
                dist: d2.sqrt(),
            },
            rest: Vec::new(),
            stats: QueryStats {
                candidates: idx.len(),
                pages: 0,
                fallback: true,
                tail: 0,
                nodes_pruned: 0,
                candidates_examined: idx.len(),
                candidates_aborted_early: 0,
            },
        }
    }

    /// Exact k-NN by scanning the flat point layout. Counts the fallback.
    fn scan_knn(&self, p: &[f64], k: usize) -> QueryResponse {
        let idx = self.index;
        let _span = nncell_obs::trace::child("engine.scan_fallback");
        idx.count_fallback();
        let metric = idx.metric();
        let alive = idx.alive();
        let mut all: Vec<QueryResult> = (0..alive.len())
            .filter(|&id| alive[id])
            .map(|id| QueryResult {
                id,
                dist: metric.dist(p, idx.flat_point(id)),
            })
            .collect();
        all.sort_unstable_by(cmp_results);
        all.truncate(k);
        let best = all.first().copied().unwrap_or(QueryResult {
            id: 0,
            dist: f64::INFINITY,
        });
        QueryResponse {
            best,
            rest: if all.len() > 1 {
                all[1..].to_vec()
            } else {
                Vec::new()
            },
            stats: QueryStats {
                candidates: idx.len(),
                pages: 0,
                fallback: true,
                tail: 0,
                nodes_pruned: 0,
                candidates_examined: idx.len(),
                candidates_aborted_early: 0,
            },
        }
    }
}

/// Whether the (optional) deadline has passed.
fn out_of_budget(deadline: Option<std::time::Instant>) -> bool {
    deadline.is_some_and(|d| std::time::Instant::now() >= d)
}

/// The one result ordering every exact path uses: ascending `(dist, id)`
/// with [`f64::total_cmp`] — the exact ordering of
/// [`crate::scan::linear_scan_knn`], which makes results bit-identical to
/// the linear scan and independent of candidate arrival order.
fn cmp_results(a: &QueryResult, b: &QueryResult) -> std::cmp::Ordering {
    a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id))
}
