//! Approximation-quality metrics (figures 4b, 5 and 13 of the paper).
//!
//! The paper measures an approximation set by its **overlap**, "which
//! directly corresponds to the query performance": how many extra candidate
//! cells a point query returns on average. For a uniformly random query
//! point, the expected number of candidate approximations is — by linearity
//! of expectation — `Σᵢ vol(Apprᵢ) / vol(DS)`, so we define
//!
//! ```text
//! overlap = Σᵢ vol(Apprᵢ) / vol(DS) − 1
//! ```
//!
//! which is `0` for the perfect (regular-grid) case where approximations
//! tile the space, and grows as approximations inflate. The
//! quality-to-performance ratio of figure 5 divides quality
//! (`1 / (1 + overlap)`) by the approximation time.

use crate::index::{CellApprox, NnCellIndex, PIECE_BITS};
use nncell_geom::Metric;

/// Expected number of candidate approximations a uniformly random point
/// query returns: `Σ vol(pieces) / vol(DS)` (unit data space ⇒ the plain
/// volume sum).
pub fn expected_candidates(cells: &[CellApprox]) -> f64 {
    cells.iter().map(CellApprox::volume).sum()
}

/// The paper's overlap measure: expected *extra* candidates per query,
/// `expected_candidates − 1`, clamped at zero.
pub fn average_overlap(cells: &[CellApprox]) -> f64 {
    (expected_candidates(cells) - 1.0).max(0.0)
}

/// Figure 5's quality-to-performance ratio: quality `1/(1+overlap)` per
/// second of approximation time. Higher is better.
pub fn quality_to_performance(overlap: f64, seconds: f64) -> f64 {
    assert!(seconds > 0.0, "time must be positive");
    1.0 / ((1.0 + overlap) * seconds)
}

/// Empirical candidate count: the mean number of **live candidate cells**
/// a point query of the cell tree returns over `queries`. This measures
/// the approximation quality itself (the quantity `expected_candidates`
/// predicts — it converges there for uniform queries), independent of the
/// query engine: since the engine moved to the MINDIST-ordered point-tree
/// traversal, its `candidates` stat reports evaluation work, not cell
/// overlap, so this metric queries the cell tree directly.
pub fn measured_candidates<M: Metric>(index: &NnCellIndex<M>, queries: &[Vec<f64>]) -> f64 {
    if queries.is_empty() {
        return 0.0;
    }
    let tree = index.cell_tree();
    let alive = index.alive();
    let mut stack = Vec::new();
    let mut hits = Vec::new();
    let mut total = 0usize;
    for q in queries {
        tree.point_query_with(q, &mut stack, &mut hits);
        // Several pieces of one decomposed cell count once.
        let mut pids: Vec<usize> = hits.iter().map(|&h| (h >> PIECE_BITS) as usize).collect();
        pids.sort_unstable();
        pids.dedup();
        total += pids.iter().filter(|&&pid| alive[pid]).count();
    }
    total as f64 / queries.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use nncell_geom::Mbr;

    fn cell(vol_per_dim: f64, d: usize) -> CellApprox {
        CellApprox {
            pieces: vec![Mbr::new(vec![0.0; d], vec![vol_per_dim; d])],
        }
    }

    #[test]
    fn perfect_tiling_has_zero_overlap() {
        // Four quarter cells tile the unit square.
        let cells: Vec<CellApprox> = (0..4).map(|_| cell(0.5, 2)).collect();
        assert!((expected_candidates(&cells) - 1.0).abs() < 1e-12);
        assert_eq!(average_overlap(&cells), 0.0);
    }

    #[test]
    fn inflated_cells_overlap() {
        // Four cells each covering the whole space: every query hits all 4.
        let cells: Vec<CellApprox> = (0..4).map(|_| cell(1.0, 2)).collect();
        assert!((expected_candidates(&cells) - 4.0).abs() < 1e-12);
        assert!((average_overlap(&cells) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn qpr_orders_algorithms_sensibly() {
        // Same quality, faster build → better ratio.
        assert!(quality_to_performance(1.0, 1.0) > quality_to_performance(1.0, 2.0));
        // Same time, less overlap → better ratio.
        assert!(quality_to_performance(0.5, 1.0) > quality_to_performance(2.0, 1.0));
    }

    #[test]
    fn decomposed_pieces_counted_by_total_volume() {
        let c = CellApprox {
            pieces: vec![
                Mbr::new(vec![0.0, 0.0], vec![0.5, 0.5]),
                Mbr::new(vec![0.5, 0.0], vec![1.0, 0.5]),
            ],
        };
        assert!((c.volume() - 0.5).abs() < 1e-12);
        assert!((expected_candidates(&[c]) - 0.5).abs() < 1e-12);
    }
}
