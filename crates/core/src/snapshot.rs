//! Copy-on-write snapshot handle — a hand-rolled `Arc`-swap.
//!
//! The sharded serving layer ([`crate::ShardedIndex`]) needs readers to
//! proceed concurrently with writers without ever observing a
//! half-mutated index. The protocol is copy-on-write publication: a
//! writer clones the authoritative index, applies its mutation, and
//! *publishes* the new version by swapping an `Arc`; readers grab the
//! current `Arc` once and run the whole query on that immutable version.
//!
//! With no external dependencies available, the swap is built from a
//! `Mutex<Arc<T>>` held only for the duration of an `Arc` clone or
//! store — a handful of nanoseconds, never across a query or a build.
//! Readers therefore never block on index mutation work, only on the
//! pointer exchange itself (the same guarantee a lock-free `ArcSwap`
//! gives, minus the last few nanoseconds of the load — irrelevant next
//! to a millisecond-scale LP-backed query).

use std::sync::{Arc, Mutex};

/// A shared slot holding the current published version of a value.
///
/// [`SnapshotCell::load`] returns the version current at the call
/// instant; a concurrent [`SnapshotCell::store`] affects only later
/// loads. Loaded `Arc`s keep their version alive for as long as the
/// reader holds them, so a publish never invalidates an in-flight read.
#[derive(Debug)]
pub struct SnapshotCell<T> {
    slot: Mutex<Arc<T>>,
}

impl<T> SnapshotCell<T> {
    /// A cell publishing `value` as the initial version.
    pub fn new(value: T) -> Self {
        Self {
            slot: Mutex::new(Arc::new(value)),
        }
    }

    /// The currently published version. Lock-clone-unlock: the mutex is
    /// held only for the `Arc` refcount bump.
    pub fn load(&self) -> Arc<T> {
        let guard = match self.slot.lock() {
            Ok(g) => g,
            // A poisoned slot still holds a valid Arc (stores are a single
            // assignment); serving reads beats propagating the panic.
            Err(p) => p.into_inner(),
        };
        Arc::clone(&guard)
    }

    /// Publishes `next` as the new current version. Readers holding a
    /// previously loaded `Arc` are unaffected.
    pub fn store(&self, next: Arc<T>) {
        let mut guard = match self.slot.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        *guard = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn load_returns_last_store() {
        let cell = SnapshotCell::new(1u64);
        assert_eq!(*cell.load(), 1);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load(), 2);
    }

    #[test]
    fn readers_keep_their_version_across_a_publish() {
        let cell = SnapshotCell::new(String::from("v0"));
        let held = cell.load();
        cell.store(Arc::new(String::from("v1")));
        assert_eq!(*held, "v0", "an in-flight read survives the publish");
        assert_eq!(*cell.load(), "v1");
    }

    /// The one way the slot mutex can actually poison: `store` drops the
    /// *previous* version while holding the guard, and a panicking `Drop`
    /// unwinds through the lock. The cell must keep serving: the slot
    /// still holds a valid `Arc` (the store's single assignment completed
    /// or never started), so `load` and later `store`s take over the
    /// poisoned lock instead of propagating the panic.
    #[test]
    fn poisoned_cell_still_loads_and_stores() {
        struct Grenade {
            armed: bool,
            version: u64,
        }
        impl Drop for Grenade {
            fn drop(&mut self) {
                if self.armed && !std::thread::panicking() {
                    panic!("drop of displaced version panics under the slot lock");
                }
            }
        }

        let cell = SnapshotCell::new(Grenade {
            armed: true,
            version: 0,
        });
        // No reader holds v0, so publishing v1 drops v0 inside `store`,
        // panicking while the guard is held and poisoning the mutex.
        let publish = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cell.store(Arc::new(Grenade {
                armed: false,
                version: 1,
            }));
        }));
        assert!(publish.is_err(), "the displaced version's drop must panic");

        // Reads after the poisoning panic still serve the published value.
        let held = cell.load();
        assert_eq!(held.version, 1, "poisoned cell serves the last publish");

        // The single writer also recovers: a later publish succeeds and
        // becomes visible, with the earlier reader unaffected.
        cell.store(Arc::new(Grenade {
            armed: false,
            version: 2,
        }));
        assert_eq!(cell.load().version, 2);
        assert_eq!(held.version, 1, "in-flight read survives the publish");
    }

    #[test]
    fn concurrent_loads_and_stores_only_see_published_versions() {
        // Versions are monotonically numbered; a reader must never see a
        // number going backwards relative to its own previous load.
        let cell = Arc::new(SnapshotCell::new(0u64));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..3 {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let v = *cell.load();
                        assert!(v >= last, "version went backwards: {v} < {last}");
                        last = v;
                    }
                });
            }
            for v in 1..=2_000u64 {
                cell.store(Arc::new(v));
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(*cell.load(), 2_000);
    }
}
