//! Registry bindings for the core layer: engine-side query metrics and
//! index-side gauges and LP aggregates.
//!
//! Everything here is opt-in: an index built without
//! [`crate::NnCellIndex::attach_metrics`] carries no registry, every
//! recording site is a no-op, and the steady-state query path is untouched.
//! With a registry attached, recording is a handful of relaxed atomic
//! operations — no locks, no allocation (covered by the counting-allocator
//! test).
//!
//! The LP counters mirrored from [`CellLpStats`] are deliberately driven by
//! *this* layer, not by `nncell-lp`: they are seeded from
//! [`crate::BuildStats::lp`] when the registry is attached and advanced with
//! the exact per-cell deltas the index merges into its own stats, so the
//! registry totals agree with `build_stats().lp` by construction. The lp
//! crate's own live metrics ([`nncell_lp::LpMetrics`]) cover only what
//! `CellLpStats` cannot see (per-attempt counts, fallback depth, clamp
//! events).

use nncell_lp::CellLpStats;
use nncell_obs::{Counter, Gauge, Histogram, Registry, SlowQueryLog};
use std::sync::Arc;

/// Slow-query ring capacity. Fixed and small: the ring is a debugging
/// aid (drained via `nncell stats --slow`), not a log.
pub const SLOW_QUERY_CAPACITY: usize = 64;

/// Query-path metric handles, resolved once at attach time so the hot path
/// never touches the registry's name map.
#[derive(Clone)]
pub struct EngineMetrics {
    /// `nncell_queries_total` — queries executed (including failed ones).
    pub(crate) queries: Arc<Counter>,
    /// `nncell_query_errors_total` — queries rejected with a typed error.
    pub(crate) query_errors: Arc<Counter>,
    /// `nncell_query_fallback_total` — queries answered by the exact
    /// linear-scan fallback.
    pub(crate) fallbacks: Arc<Counter>,
    /// `nncell_query_latency_ns` — end-to-end latency histogram.
    pub(crate) latency_ns: Arc<Histogram>,
    /// `nncell_query_candidates` — candidate set size histogram.
    pub(crate) candidates: Arc<Histogram>,
    /// `nncell_query_pages` — index pages touched per query.
    pub(crate) pages: Arc<Histogram>,
    /// `nncell_query_nodes_pruned` — subtrees the MINDIST traversal cut.
    pub(crate) nodes_pruned: Arc<Histogram>,
    /// `nncell_query_candidates_examined` — distance evaluations started.
    pub(crate) candidates_examined: Arc<Histogram>,
    /// `nncell_query_candidates_aborted` — evaluations the early-abort
    /// kernel cut short.
    pub(crate) aborted_early: Arc<Histogram>,
    /// Fixed-size ring of queries slower than the configured threshold.
    pub(crate) slow: Arc<SlowQueryLog>,
}

impl EngineMetrics {
    /// Resolves (or creates) the query metrics in `registry`. `dim` sizes
    /// the slow-ring point slots so recording a slow query never allocates.
    pub fn register(registry: &Registry, dim: usize) -> Self {
        Self::register_labeled(registry, dim, &[])
    }

    /// Like [`EngineMetrics::register`] but every series carries the given
    /// label set (rendered via [`nncell_obs::format_labels`]); a sharded
    /// index registers one bundle per shard under `shard="<i>"`.
    pub fn register_labeled(registry: &Registry, dim: usize, labels: &[(&str, &str)]) -> Self {
        let l = nncell_obs::format_labels(labels);
        Self {
            queries: registry.counter(&format!("nncell_queries_total{l}")),
            query_errors: registry.counter(&format!("nncell_query_errors_total{l}")),
            fallbacks: registry.counter(&format!("nncell_query_fallback_total{l}")),
            latency_ns: registry.histogram(&format!("nncell_query_latency_ns{l}")),
            candidates: registry.histogram(&format!("nncell_query_candidates{l}")),
            pages: registry.histogram(&format!("nncell_query_pages{l}")),
            nodes_pruned: registry.histogram(&format!("nncell_query_nodes_pruned{l}")),
            candidates_examined: registry
                .histogram(&format!("nncell_query_candidates_examined{l}")),
            aborted_early: registry.histogram(&format!("nncell_query_candidates_aborted{l}")),
            slow: Arc::new(SlowQueryLog::new(SLOW_QUERY_CAPACITY, dim)),
        }
    }

    /// The slow-query ring (threshold-configurable, disabled by default).
    pub fn slow_log(&self) -> &Arc<SlowQueryLog> {
        &self.slow
    }
}

/// Index-wide metric handles: the engine bundle plus structural gauges and
/// the [`CellLpStats`]-mirrored LP aggregates.
///
/// Cloning shares every handle (all are `Arc`s into the registry); the
/// copy-on-write shard snapshots rely on this so a published snapshot
/// keeps recording into the same series as its master.
#[derive(Clone)]
pub struct IndexMetrics {
    registry: Arc<Registry>,
    pub(crate) engine: EngineMetrics,
    /// `nncell_live_points` — live points currently indexed.
    pub(crate) live_points: Arc<Gauge>,
    /// `nncell_cell_tree_pages` — simulated pages of the cell X-tree.
    pub(crate) cell_tree_pages: Arc<Gauge>,
    /// `nncell_lp_calls_total` — mirrors `CellLpStats::lp_calls`.
    pub(crate) lp_calls: Arc<Counter>,
    /// `nncell_lp_constraints_total` — mirrors `CellLpStats::constraints`.
    pub(crate) lp_constraints: Arc<Counter>,
    /// `nncell_lp_fallback_total` — mirrors `CellLpStats::fallback_lps`.
    pub(crate) lp_fallback: Arc<Counter>,
    /// `nncell_lp_clamped_extents_total` — mirrors
    /// `CellLpStats::clamped_extents`.
    pub(crate) lp_clamped: Arc<Counter>,
}

/// Registry handles for the memtable fold pipeline (`nncell_fold_*`,
/// `nncell_tail_*`), registered when a memtable-enabled
/// [`crate::ShardedIndex`] attaches a registry. One unlabeled family per
/// index: the folder is a single supervised loop over all shards, so
/// per-shard labels would only split its health signal.
#[derive(Clone)]
pub(crate) struct FoldMetrics {
    /// `nncell_tail_depth` — journaled-but-unfolded operations.
    pub(crate) tail_depth: Arc<Gauge>,
    /// `nncell_fold_total` — successful folds.
    pub(crate) folds: Arc<Counter>,
    /// `nncell_fold_records_total` — operations folded into NN-cells.
    pub(crate) folded_records: Arc<Counter>,
    /// `nncell_fold_failures_total` — folds that panicked and were kept
    /// for retry.
    pub(crate) failures: Arc<Counter>,
    /// `nncell_fold_latency_ns` — wall time of successful folds.
    pub(crate) latency_ns: Arc<Histogram>,
    /// `nncell_fold_degraded` — 1 while `degrade_after` consecutive folds
    /// have failed (tail still absorbs writes, queries stay exact).
    pub(crate) degraded: Arc<Gauge>,
    /// `nncell_tail_backpressure_total` — writes refused at the tail
    /// high-watermark.
    pub(crate) backpressure: Arc<Counter>,
}

impl FoldMetrics {
    /// Resolves (or creates) the fold family in `registry`, with HELP text.
    pub(crate) fn register(registry: &Registry) -> Self {
        registry.describe(
            "nncell_tail_depth",
            "Journaled-but-unfolded memtable operations across all shards.",
        );
        registry.describe("nncell_fold_total", "Successful memtable folds.");
        registry.describe(
            "nncell_fold_records_total",
            "Operations folded from the memtable tail into NN-cells.",
        );
        registry.describe(
            "nncell_fold_failures_total",
            "Fold attempts that panicked; the batch is kept and retried.",
        );
        registry.describe(
            "nncell_fold_latency_ns",
            "Wall-clock nanoseconds per successful fold.",
        );
        registry.describe(
            "nncell_fold_degraded",
            "1 while consecutive fold failures exceed the degrade threshold.",
        );
        registry.describe(
            "nncell_tail_backpressure_total",
            "Writes refused because the memtable tail hit its high-watermark.",
        );
        Self {
            tail_depth: registry.gauge("nncell_tail_depth"),
            folds: registry.counter("nncell_fold_total"),
            folded_records: registry.counter("nncell_fold_records_total"),
            failures: registry.counter("nncell_fold_failures_total"),
            latency_ns: registry.histogram("nncell_fold_latency_ns"),
            degraded: registry.gauge("nncell_fold_degraded"),
            backpressure: registry.counter("nncell_tail_backpressure_total"),
        }
    }
}

impl IndexMetrics {
    /// Resolves (or creates) the index metrics in `registry`.
    pub fn register(registry: Arc<Registry>, dim: usize) -> Self {
        Self::register_labeled(registry, dim, &[])
    }

    /// Like [`IndexMetrics::register`] but every series carries the given
    /// label set (e.g. `shard="<i>"`). The LP mirror counters stay
    /// **unlabeled** on purpose: they mirror `build_stats().lp`, and the
    /// per-shard builds sum into exactly the unsharded totals, so one
    /// shared family keeps the registry == stats invariant.
    pub fn register_labeled(
        registry: Arc<Registry>,
        dim: usize,
        labels: &[(&str, &str)],
    ) -> Self {
        let engine = EngineMetrics::register_labeled(&registry, dim, labels);
        let l = nncell_obs::format_labels(labels);
        Self {
            engine,
            live_points: registry.gauge(&format!("nncell_live_points{l}")),
            cell_tree_pages: registry.gauge(&format!("nncell_cell_tree_pages{l}")),
            lp_calls: registry.counter("nncell_lp_calls_total"),
            lp_constraints: registry.counter("nncell_lp_constraints_total"),
            lp_fallback: registry.counter("nncell_lp_fallback_total"),
            lp_clamped: registry.counter("nncell_lp_clamped_extents_total"),
            registry,
        }
    }

    /// The registry this bundle records into.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The query-path handles.
    pub fn engine(&self) -> &EngineMetrics {
        &self.engine
    }

    /// Advances the mirrored LP counters by one per-cell delta — called at
    /// exactly the sites that merge into [`crate::BuildStats::lp`], so the
    /// registry stays equal to the stats totals.
    pub(crate) fn record_lp_stats(&self, delta: &CellLpStats) {
        self.lp_calls.add(delta.lp_calls as u64);
        self.lp_constraints.add(delta.constraints as u64);
        self.lp_fallback.add(delta.fallback_lps as u64);
        self.lp_clamped.add(delta.clamped_extents as u64);
    }

    /// Seeds the mirrored LP counters with the pre-attach totals (the build
    /// already happened when the registry arrives).
    pub(crate) fn seed_lp_totals(&self, totals: &CellLpStats) {
        self.record_lp_stats(totals);
    }
}
