//! The typed query API: [`Query`] in, [`QueryResponse`] or [`QueryError`]
//! out.
//!
//! This replaces the original trio of `Option`-returning methods
//! (`nearest_neighbor`, `nearest_neighbor_with_candidates`, `knn`), which
//! conflated "the index is empty", "the query is malformed", and "you asked
//! for nothing" into one silent `None`/`[]`. Every response now carries
//! per-query execution statistics ([`QueryStats`]), and every failure is a
//! typed [`QueryError`]. Execution happens in [`crate::QueryEngine`] (or
//! fans out across shards in [`crate::ShardedIndex`]); the deprecated
//! shims have been removed.

use crate::index::QueryResult;

/// One nearest-neighbor request: a query point plus how many neighbors to
/// return.
///
/// Construct with [`Query::nn`] (one neighbor) or [`Query::knn`]:
///
/// ```
/// use nncell_core::Query;
/// let one = Query::nn([0.2, 0.7]);
/// let ten = Query::knn(vec![0.2, 0.7], 10);
/// assert_eq!(one.k(), 1);
/// assert_eq!(ten.point(), &[0.2, 0.7]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    point: Vec<f64>,
    k: usize,
}

impl Query {
    /// A single-nearest-neighbor query.
    pub fn nn(point: impl Into<Vec<f64>>) -> Self {
        Self {
            point: point.into(),
            k: 1,
        }
    }

    /// A k-nearest-neighbors query. `k` larger than the index is allowed
    /// (the response simply holds every live point, by scan fallback).
    pub fn knn(point: impl Into<Vec<f64>>, k: usize) -> Self {
        Self {
            point: point.into(),
            k,
        }
    }

    /// The query point.
    pub fn point(&self) -> &[f64] {
        &self.point
    }

    /// Number of neighbors requested.
    pub fn k(&self) -> usize {
        self.k
    }
}

/// Per-query execution counters, folded into every [`QueryResponse`].
///
/// Subsumes the old `nearest_neighbor_with_candidates` side channel: the
/// candidate count now rides along on every answer, together with the page
/// cost and whether the query was answered by the exact scan fallback.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Distinct live candidate points whose distance was evaluated (the
    /// paper's page-access driver). For a scan fallback this is the number
    /// of live points.
    pub candidates: usize,
    /// Simulated cell-tree pages touched while collecting candidates
    /// (before any LRU cache; 0 for a scan fallback, which reads no index
    /// pages).
    pub pages: u64,
    /// Whether the answer came from the exact linear-scan fallback
    /// (out-of-space query, `k ≥ len`, a numerically degenerate candidate
    /// search, or a boundary query slipping between EPS-closed MBRs). All
    /// fallback paths are counted here — and nowhere else.
    pub fallback: bool,
    /// Unindexed memtable-tail points merged into this answer by linear
    /// scan (0 whenever the write path is synchronous or the tail was
    /// empty). Tail points are also counted in `candidates`; this field
    /// isolates how much of the work the un-folded tail caused.
    pub tail: usize,
}

/// An exact answer: the nearest neighbor, any further requested neighbors,
/// and the per-query statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryResponse {
    /// The nearest neighbor (rank 1).
    pub best: QueryResult,
    /// Neighbors of rank `2..=k`, ascending by `(distance, id)`. Empty for
    /// a plain NN query — which keeps the steady-state `k = 1` path free of
    /// heap allocations (an empty `Vec` does not allocate).
    pub rest: Vec<QueryResult>,
    /// Execution counters for this query.
    pub stats: QueryStats,
}

impl QueryResponse {
    /// Number of neighbors returned (`1 + rest.len()`). Can be less than
    /// the requested `k` when the index holds fewer live points.
    pub fn len(&self) -> usize {
        1 + self.rest.len()
    }

    /// Never empty: an empty index is a typed [`QueryError::EmptyIndex`].
    pub fn is_empty(&self) -> bool {
        false
    }

    /// All returned neighbors in rank order.
    pub fn iter(&self) -> impl Iterator<Item = QueryResult> + '_ {
        std::iter::once(self.best).chain(self.rest.iter().copied())
    }

    /// All returned neighbors in rank order, as an owned vector.
    pub fn into_results(self) -> Vec<QueryResult> {
        let mut v = Vec::with_capacity(1 + self.rest.len());
        v.push(self.best);
        v.extend(self.rest);
        v
    }
}

/// Why a query could not be answered.
///
/// The same variants are returned by every surface — [`crate::QueryEngine`],
/// the deprecated index shims (mapped to `None`/`[]`), [`crate::DurableIndex`],
/// and the CLI — so malformed input behaves identically everywhere.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum QueryError {
    /// The query point's dimensionality disagrees with the index.
    DimMismatch {
        /// The index's dimensionality.
        expected: usize,
        /// The query's dimensionality.
        got: usize,
    },
    /// The query point has a NaN or infinite coordinate; no nearest
    /// neighbor is well-defined.
    NonFiniteQuery,
    /// The index holds no live points.
    EmptyIndex,
    /// `k == 0` asks for nothing.
    ZeroK,
    /// The query's time budget ran out before an answer was proven (see
    /// [`crate::QueryEngine::with_deadline`]). The serving layer maps this
    /// to `503 deadline_exceeded`; retrying with a fresh budget is safe —
    /// queries have no side effects.
    DeadlineExceeded,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::DimMismatch { expected, got } => write!(
                f,
                "query has {got} coordinate(s), index is {expected}-dimensional"
            ),
            QueryError::NonFiniteQuery => {
                write!(f, "query point has a NaN or infinite coordinate")
            }
            QueryError::EmptyIndex => write!(f, "index holds no live points"),
            QueryError::ZeroK => write!(f, "k must be at least 1"),
            QueryError::DeadlineExceeded => {
                write!(f, "query deadline exceeded before an answer was proven")
            }
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_constructors() {
        let q = Query::nn(vec![0.1, 0.2]);
        assert_eq!(q.k(), 1);
        assert_eq!(q.point(), &[0.1, 0.2]);
        let q = Query::knn([0.5; 3], 7);
        assert_eq!(q.k(), 7);
        assert_eq!(q.point().len(), 3);
    }

    #[test]
    fn response_accessors() {
        let r = QueryResponse {
            best: QueryResult { id: 3, dist: 0.5 },
            rest: vec![QueryResult { id: 1, dist: 0.7 }],
            stats: QueryStats::default(),
        };
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        let ids: Vec<usize> = r.iter().map(|x| x.id).collect();
        assert_eq!(ids, vec![3, 1]);
        assert_eq!(r.into_results().len(), 2);
    }

    #[test]
    fn error_display() {
        assert!(QueryError::DimMismatch {
            expected: 4,
            got: 2
        }
        .to_string()
        .contains("4-dimensional"));
        assert!(QueryError::NonFiniteQuery.to_string().contains("NaN"));
        assert!(QueryError::EmptyIndex.to_string().contains("no live"));
        assert!(QueryError::ZeroK.to_string().contains("at least 1"));
        assert!(QueryError::DeadlineExceeded.to_string().contains("deadline"));
    }
}
