//! The typed query API: [`Query`] in, [`QueryResponse`] or [`QueryError`]
//! out.
//!
//! This replaces the original trio of `Option`-returning methods
//! (`nearest_neighbor`, `nearest_neighbor_with_candidates`, `knn`), which
//! conflated "the index is empty", "the query is malformed", and "you asked
//! for nothing" into one silent `None`/`[]`. Every response now carries
//! per-query execution statistics ([`QueryStats`]), and every failure is a
//! typed [`QueryError`]. Execution happens in [`crate::QueryEngine`] (or
//! fans out across shards in [`crate::ShardedIndex`]); the deprecated
//! shims have been removed.

use crate::index::QueryResult;

/// What a [`Query`] asks for: the `k` nearest neighbors, or every live
/// point within a fixed radius.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QueryKind {
    /// The `k` nearest neighbors of the query point, ascending by
    /// `(distance, id)`.
    Nearest {
        /// How many neighbors to return.
        k: usize,
    },
    /// Every live point within metric distance `radius` of the query point
    /// (inclusive: `dist ≤ radius`), ascending by `(distance, id)`.
    Radius {
        /// The search radius.
        radius: f64,
    },
}

/// One query: a point, what to retrieve around it, and per-request options.
///
/// Construct with [`Query::nn`] (one neighbor), [`Query::knn`], or
/// [`Query::radius`], then chain builder-style options:
///
/// ```
/// use nncell_core::{Query, QueryKind};
/// use std::time::{Duration, Instant};
/// let one = Query::nn([0.2, 0.7]);
/// let ten = Query::knn(vec![0.2, 0.7], 10)
///     .with_deadline(Instant::now() + Duration::from_millis(50));
/// let ball = Query::radius([0.2, 0.7], 0.25);
/// assert_eq!(one.k(), 1);
/// assert_eq!(ten.point(), &[0.2, 0.7]);
/// assert!(ten.deadline().is_some());
/// assert_eq!(ball.kind(), QueryKind::Radius { radius: 0.25 });
/// ```
///
/// Per-request options ride on the query itself, so one engine can serve
/// requests with different budgets concurrently. The engine-level
/// [`crate::QueryEngine::with_deadline`] is deprecated in favor of
/// [`Query::with_deadline`]; while both exist the *earlier* of the two
/// deadlines wins.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    point: Vec<f64>,
    kind: QueryKind,
    deadline: Option<std::time::Instant>,
}

impl Query {
    /// A single-nearest-neighbor query.
    pub fn nn(point: impl Into<Vec<f64>>) -> Self {
        Self {
            point: point.into(),
            kind: QueryKind::Nearest { k: 1 },
            deadline: None,
        }
    }

    /// A k-nearest-neighbors query. `k` larger than the index is allowed
    /// (the response simply holds every live point, by scan fallback).
    pub fn knn(point: impl Into<Vec<f64>>, k: usize) -> Self {
        Self {
            point: point.into(),
            kind: QueryKind::Nearest { k },
            deadline: None,
        }
    }

    /// A radius (range) query: every live point with `dist ≤ r`, nearest
    /// first. A radius that covers no live point is the typed
    /// [`QueryError::EmptyRadius`], not an empty response; a non-finite or
    /// negative radius is [`QueryError::InvalidRadius`].
    pub fn radius(center: impl Into<Vec<f64>>, r: f64) -> Self {
        Self {
            point: center.into(),
            kind: QueryKind::Radius { radius: r },
            deadline: None,
        }
    }

    /// Attaches a per-request time budget: once `deadline` passes, the
    /// query returns [`QueryError::DeadlineExceeded`] instead of continuing
    /// to consume its worker. The budget is checked between units of
    /// bounded work (before the query starts, periodically inside the
    /// best-first traversal and tail merge, and between the queries of a
    /// batch), so an answer already in hand is never discarded. Without a
    /// deadline behavior is unchanged and bit-identical across thread
    /// counts.
    #[must_use]
    pub fn with_deadline(mut self, deadline: std::time::Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The per-request deadline, if any.
    pub fn deadline(&self) -> Option<std::time::Instant> {
        self.deadline
    }

    /// The query point.
    pub fn point(&self) -> &[f64] {
        &self.point
    }

    /// What this query retrieves.
    pub fn kind(&self) -> QueryKind {
        self.kind
    }

    /// Number of neighbors requested. For a radius query this is
    /// `usize::MAX` — "as many as the ball contains" — which keeps
    /// result-count-bounded merge loops correct without a special case.
    pub fn k(&self) -> usize {
        match self.kind {
            QueryKind::Nearest { k } => k,
            QueryKind::Radius { .. } => usize::MAX,
        }
    }
}

/// Per-query execution counters, folded into every [`QueryResponse`].
///
/// Subsumes the old `nearest_neighbor_with_candidates` side channel: the
/// candidate count now rides along on every answer, together with the page
/// cost, the pruning telemetry of the MINDIST-ordered traversal, and
/// whether the query was answered by the exact scan fallback.
///
/// Counter consistency (pinned by a unit test): for every response,
/// `candidates_examined == candidates + candidates_aborted_early` — every
/// evaluation that starts either completes (and counts as a candidate) or
/// is cut short by the early-abort kernel.
///
/// The struct is `#[non_exhaustive]`: construct it via `Default` and read
/// fields directly; future telemetry can then be added without a breaking
/// release.
#[non_exhaustive]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Distinct live candidate points whose distance was **fully**
    /// evaluated (the paper's page-access driver). With the early-abort
    /// kernel this is `candidates_examined − candidates_aborted_early`;
    /// for a scan fallback it is the number of live points.
    pub candidates: usize,
    /// Simulated index pages touched while gathering candidates (before
    /// any LRU cache; 0 for a scan fallback, which reads no index pages).
    pub pages: u64,
    /// Whether the answer came from the exact linear-scan fallback
    /// (out-of-space query, `k ≥ len`, a numerically degenerate candidate
    /// search). All fallback paths are counted here — and nowhere else.
    pub fallback: bool,
    /// Unindexed memtable-tail points merged into this answer by linear
    /// scan (0 whenever the write path is synchronous or the tail was
    /// empty). Tail points are also counted in `candidates`; this field
    /// isolates how much of the work the un-folded tail caused.
    pub tail: usize,
    /// Subtrees the MINDIST-ordered traversal pruned **before their node
    /// was ever read**: directory entries whose MINDIST exceeded the
    /// running best distance, plus queued pages discarded after the bound
    /// shrank past them. 0 for scan fallbacks and plain sphere gathering.
    pub nodes_pruned: u64,
    /// Live candidate points whose distance evaluation *started* (streamed
    /// out of the traversal and past the tombstone filter).
    pub candidates_examined: usize,
    /// Evaluations the early-abort kernel cut short because a partial
    /// lane-block sum already exceeded the running best distance. Each
    /// abort proves the point cannot be in the answer set.
    pub candidates_aborted_early: usize,
}

/// An exact answer: the nearest neighbor, any further requested neighbors,
/// and the per-query statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryResponse {
    /// The nearest neighbor (rank 1).
    pub best: QueryResult,
    /// Neighbors of rank `2..=k`, ascending by `(distance, id)`. Empty for
    /// a plain NN query — which keeps the steady-state `k = 1` path free of
    /// heap allocations (an empty `Vec` does not allocate).
    pub rest: Vec<QueryResult>,
    /// Execution counters for this query.
    pub stats: QueryStats,
}

impl QueryResponse {
    /// Number of neighbors returned (`1 + rest.len()`). Can be less than
    /// the requested `k` when the index holds fewer live points.
    pub fn len(&self) -> usize {
        1 + self.rest.len()
    }

    /// Never empty: an empty index is a typed [`QueryError::EmptyIndex`].
    pub fn is_empty(&self) -> bool {
        false
    }

    /// All returned neighbors in rank order.
    pub fn iter(&self) -> impl Iterator<Item = QueryResult> + '_ {
        std::iter::once(self.best).chain(self.rest.iter().copied())
    }

    /// All returned neighbors in rank order, as an owned vector.
    pub fn into_results(self) -> Vec<QueryResult> {
        let mut v = Vec::with_capacity(1 + self.rest.len());
        v.push(self.best);
        v.extend(self.rest);
        v
    }
}

/// Why a query could not be answered.
///
/// The same variants are returned by every surface — [`crate::QueryEngine`],
/// the deprecated index shims (mapped to `None`/`[]`), [`crate::DurableIndex`],
/// and the CLI — so malformed input behaves identically everywhere.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum QueryError {
    /// The query point's dimensionality disagrees with the index.
    DimMismatch {
        /// The index's dimensionality.
        expected: usize,
        /// The query's dimensionality.
        got: usize,
    },
    /// The query point has a NaN or infinite coordinate; no nearest
    /// neighbor is well-defined.
    NonFiniteQuery,
    /// The index holds no live points.
    EmptyIndex,
    /// `k == 0` asks for nothing.
    ZeroK,
    /// The query's time budget ran out before an answer was proven (see
    /// [`Query::with_deadline`]). The serving layer maps this to
    /// `503 deadline_exceeded`; retrying with a fresh budget is safe —
    /// queries have no side effects.
    DeadlineExceeded,
    /// A radius query's radius is NaN, infinite, or negative; the ball is
    /// not well-defined.
    InvalidRadius,
    /// A radius query's ball contains no live point. Typed (rather than an
    /// empty response) because [`QueryResponse::best`] is mandatory — the
    /// "never empty" invariant of the response carries over unchanged.
    EmptyRadius,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::DimMismatch { expected, got } => write!(
                f,
                "query has {got} coordinate(s), index is {expected}-dimensional"
            ),
            QueryError::NonFiniteQuery => {
                write!(f, "query point has a NaN or infinite coordinate")
            }
            QueryError::EmptyIndex => write!(f, "index holds no live points"),
            QueryError::ZeroK => write!(f, "k must be at least 1"),
            QueryError::DeadlineExceeded => {
                write!(f, "query deadline exceeded before an answer was proven")
            }
            QueryError::InvalidRadius => {
                write!(f, "radius must be finite and non-negative")
            }
            QueryError::EmptyRadius => {
                write!(f, "no live point within the query radius")
            }
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_constructors() {
        let q = Query::nn(vec![0.1, 0.2]);
        assert_eq!(q.k(), 1);
        assert_eq!(q.kind(), QueryKind::Nearest { k: 1 });
        assert_eq!(q.point(), &[0.1, 0.2]);
        let q = Query::knn([0.5; 3], 7);
        assert_eq!(q.k(), 7);
        assert_eq!(q.point().len(), 3);
        let q = Query::radius([0.5; 3], 0.4);
        assert_eq!(q.kind(), QueryKind::Radius { radius: 0.4 });
        assert_eq!(q.k(), usize::MAX, "radius queries are unbounded in count");
    }

    #[test]
    fn deadline_rides_on_the_query() {
        let q = Query::nn(vec![0.1, 0.2]);
        assert_eq!(q.deadline(), None, "no budget by default");
        let d = std::time::Instant::now() + std::time::Duration::from_millis(5);
        let q = Query::knn([0.5; 2], 3).with_deadline(d);
        assert_eq!(q.deadline(), Some(d));
        // The builder keeps point and kind untouched.
        assert_eq!(q.k(), 3);
        assert_eq!(q.point(), &[0.5, 0.5]);
    }

    #[test]
    fn response_accessors() {
        let r = QueryResponse {
            best: QueryResult { id: 3, dist: 0.5 },
            rest: vec![QueryResult { id: 1, dist: 0.7 }],
            stats: QueryStats::default(),
        };
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        let ids: Vec<usize> = r.iter().map(|x| x.id).collect();
        assert_eq!(ids, vec![3, 1]);
        assert_eq!(r.into_results().len(), 2);
    }

    #[test]
    fn error_display() {
        assert!(QueryError::DimMismatch {
            expected: 4,
            got: 2
        }
        .to_string()
        .contains("4-dimensional"));
        assert!(QueryError::NonFiniteQuery.to_string().contains("NaN"));
        assert!(QueryError::EmptyIndex.to_string().contains("no live"));
        assert!(QueryError::ZeroK.to_string().contains("at least 1"));
        assert!(QueryError::DeadlineExceeded.to_string().contains("deadline"));
        assert!(QueryError::InvalidRadius.to_string().contains("finite"));
        assert!(QueryError::EmptyRadius.to_string().contains("radius"));
    }
}
