//! Index persistence.
//!
//! The whole point of the NN-cell approach is that the expensive work — the
//! `2·d` linear programs per point — happens once, at build time. This
//! module saves the computed approximations in a small versioned binary
//! format and reloads them without rerunning a single LP (the X-trees are
//! rebuilt by insertion, which is cheap and deterministic).
//!
//! Only the Euclidean index is persistable: a weighted metric would change
//! the meaning of the stored cells, so it is deliberately not serialized.

use crate::config::{BuildConfig, Strategy};
use crate::index::NnCellIndex;
use nncell_geom::{Mbr, Point};
use nncell_lp::SolverKind;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"NNCELL01";

/// Failures of [`NnCellIndex::save`] / [`NnCellIndex::load`].
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a (compatible) NN-cell index dump.
    Corrupt(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O error: {e}"),
            PersistError::Corrupt(msg) => write!(f, "corrupt index file: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn corrupt(msg: impl Into<String>) -> PersistError {
    PersistError::Corrupt(msg.into())
}

impl NnCellIndex<nncell_geom::Euclidean> {
    /// Writes the index (points, liveness, cell pieces, configuration) to
    /// `path`.
    ///
    /// # Errors
    /// I/O failures only; the format always fits the data.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(MAGIC)?;
        let cfg = self.config();
        write_u32(&mut w, self.dim() as u32)?;
        write_u8(&mut w, strategy_tag(cfg.strategy))?;
        write_u8(&mut w, solver_tag(cfg.solver))?;
        write_u8(&mut w, cfg.refine_on_insert as u8)?;
        write_u8(&mut w, 0)?; // reserved
        write_u32(&mut w, cfg.decompose_pieces.unwrap_or(0) as u32)?;
        write_f64(&mut w, cfg.sphere_radius.unwrap_or(f64::NAN))?;
        write_u64(&mut w, cfg.seed)?;
        write_u32(&mut w, cfg.block_size as u32)?;

        let points = self.points();
        write_u64(&mut w, points.len() as u64)?;
        for (id, p) in points.iter().enumerate() {
            write_u8(&mut w, self.is_live(id) as u8)?;
            for &c in p.as_slice() {
                write_f64(&mut w, c)?;
            }
        }
        for id in 0..points.len() {
            let pieces: &[Mbr] = self.cell(id).map(|c| c.pieces.as_slice()).unwrap_or(&[]);
            write_u32(&mut w, pieces.len() as u32)?;
            for m in pieces {
                for &c in m.lo() {
                    write_f64(&mut w, c)?;
                }
                for &c in m.hi() {
                    write_f64(&mut w, c)?;
                }
            }
        }
        w.flush()?;
        Ok(())
    }

    /// Reads an index previously written by [`Self::save`]. No LP is rerun:
    /// the stored approximations are reinserted into fresh X-trees.
    ///
    /// # Errors
    /// I/O failures, a bad magic/version, or structural corruption.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        let mut r = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)
            .map_err(|_| corrupt("file too short for header"))?;
        if &magic != MAGIC {
            return Err(corrupt(format!(
                "bad magic {:?} (expected {:?})",
                magic, MAGIC
            )));
        }
        let dim = read_u32(&mut r)? as usize;
        if dim == 0 || dim > 1 << 16 {
            return Err(corrupt(format!("implausible dimensionality {dim}")));
        }
        let strategy = strategy_from_tag(read_u8(&mut r)?)?;
        let solver = solver_from_tag(read_u8(&mut r)?)?;
        let refine = read_u8(&mut r)? != 0;
        let _reserved = read_u8(&mut r)?;
        let pieces_budget = read_u32(&mut r)? as usize;
        let radius = read_f64(&mut r)?;
        let seed = read_u64(&mut r)?;
        let block_size = read_u32(&mut r)? as usize;
        if !(128..=1 << 26).contains(&block_size) {
            return Err(corrupt(format!("implausible block size {block_size}")));
        }

        let mut cfg = BuildConfig::new(strategy)
            .with_solver(solver)
            .with_seed(seed)
            .with_block_size(block_size)
            .with_refine_on_insert(refine);
        if pieces_budget > 0 {
            cfg = cfg.with_decomposition(pieces_budget);
        }
        if radius.is_finite() {
            cfg = cfg.with_sphere_radius(radius);
        }

        let n = read_u64(&mut r)? as usize;
        if n > 1 << 40 {
            return Err(corrupt(format!("implausible point count {n}")));
        }
        let mut alive = Vec::with_capacity(n);
        let mut points = Vec::with_capacity(n);
        for _ in 0..n {
            alive.push(read_u8(&mut r)? != 0);
            let mut coords = Vec::with_capacity(dim);
            for _ in 0..dim {
                let c = read_f64(&mut r)?;
                if !c.is_finite() {
                    return Err(corrupt("non-finite coordinate"));
                }
                coords.push(c);
            }
            points.push(Point::new(coords));
        }
        let mut all_pieces = Vec::with_capacity(n);
        for id in 0..n {
            let k = read_u32(&mut r)? as usize;
            if k > 1 << 12 {
                return Err(corrupt(format!("implausible piece count {k}")));
            }
            if alive[id] && k == 0 {
                return Err(corrupt(format!("live point {id} without cell pieces")));
            }
            let mut pieces = Vec::with_capacity(k);
            for _ in 0..k {
                let mut lo = Vec::with_capacity(dim);
                let mut hi = Vec::with_capacity(dim);
                for _ in 0..dim {
                    lo.push(read_f64(&mut r)?);
                }
                for _ in 0..dim {
                    hi.push(read_f64(&mut r)?);
                }
                for i in 0..dim {
                    if !(lo[i].is_finite() && hi[i].is_finite()) || hi[i] < lo[i] - 1e-9 {
                        return Err(corrupt(format!("invalid piece bounds for point {id}")));
                    }
                }
                pieces.push(Mbr::new(lo, hi));
            }
            all_pieces.push(pieces);
        }
        // Trailing garbage means the file is not what it claims to be.
        let mut probe = [0u8; 1];
        if r.read(&mut probe)? != 0 {
            return Err(corrupt("trailing bytes after index payload"));
        }

        let mut idx = NnCellIndex::new(dim, cfg);
        for (id, p) in points.iter().enumerate() {
            if alive[id] {
                idx.point_tree_insert(p, id);
            }
        }
        idx.install_cells(points, alive, all_pieces);
        Ok(idx)
    }
}

fn strategy_tag(s: Strategy) -> u8 {
    match s {
        Strategy::Correct => 0,
        Strategy::CorrectPruned => 1,
        Strategy::Point => 2,
        Strategy::Sphere => 3,
        Strategy::NnDirection => 4,
    }
}

fn strategy_from_tag(t: u8) -> Result<Strategy, PersistError> {
    Ok(match t {
        0 => Strategy::Correct,
        1 => Strategy::CorrectPruned,
        2 => Strategy::Point,
        3 => Strategy::Sphere,
        4 => Strategy::NnDirection,
        _ => return Err(corrupt(format!("unknown strategy tag {t}"))),
    })
}

fn solver_tag(s: SolverKind) -> u8 {
    match s {
        SolverKind::Simplex => 0,
        SolverKind::Seidel => 1,
        SolverKind::Auto => 2,
        SolverKind::DualSimplex => 3,
        SolverKind::ActiveSet => 4,
    }
}

fn solver_from_tag(t: u8) -> Result<SolverKind, PersistError> {
    Ok(match t {
        0 => SolverKind::Simplex,
        1 => SolverKind::Seidel,
        2 => SolverKind::Auto,
        3 => SolverKind::DualSimplex,
        4 => SolverKind::ActiveSet,
        _ => return Err(corrupt(format!("unknown solver tag {t}"))),
    })
}

fn write_u8(w: &mut impl Write, v: u8) -> io::Result<()> {
    w.write_all(&[v])
}

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f64(w: &mut impl Write, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u8(r: &mut impl Read) -> Result<u8, PersistError> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)
        .map_err(|_| corrupt("truncated file"))?;
    Ok(b[0])
}

fn read_u32(r: &mut impl Read) -> Result<u32, PersistError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)
        .map_err(|_| corrupt("truncated file"))?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> Result<u64, PersistError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)
        .map_err(|_| corrupt("truncated file"))?;
    Ok(u64::from_le_bytes(b))
}

fn read_f64(r: &mut impl Read) -> Result<f64, PersistError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)
        .map_err(|_| corrupt("truncated file"))?;
    Ok(f64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::linear_scan_nn;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn uniform(n: usize, d: usize, seed: u64) -> Vec<Point> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new((0..d).map(|_| rng.gen_range(0.0..1.0)).collect::<Vec<_>>()))
            .collect()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("nncell_persist_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_cells_and_answers() {
        let pts = uniform(60, 3, 1);
        let idx = NnCellIndex::build(
            pts.clone(),
            BuildConfig::new(Strategy::Sphere)
                .with_decomposition(4)
                .with_seed(7),
        )
        .unwrap();
        let path = tmp("roundtrip");
        idx.save(&path).unwrap();
        let loaded = NnCellIndex::load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(loaded.len(), idx.len());
        assert_eq!(loaded.dim(), idx.dim());
        assert_eq!(loaded.config().strategy, Strategy::Sphere);
        assert_eq!(loaded.config().decompose_pieces, Some(4));
        for id in 0..pts.len() {
            let a = &idx.cell(id).unwrap().pieces;
            let b = &loaded.cell(id).unwrap().pieces;
            assert_eq!(a.len(), b.len());
            for (ma, mb) in a.iter().zip(b.iter()) {
                assert_eq!(ma, mb, "cell {id} differs after reload");
            }
        }
        // No LP ran on load; queries still exact.
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..40 {
            let q: Vec<f64> = (0..3).map(|_| rng.gen_range(0.0..1.0)).collect();
            let got = loaded.nearest_neighbor(&q).unwrap();
            let want = linear_scan_nn(&pts, &q).unwrap();
            assert_eq!(got.id, want.id);
        }
    }

    #[test]
    fn roundtrip_with_dead_slots() {
        let pts = uniform(40, 2, 2);
        let mut idx =
            NnCellIndex::build(pts.clone(), BuildConfig::new(Strategy::NnDirection)).unwrap();
        idx.remove(5).unwrap();
        idx.remove(17).unwrap();
        let path = tmp("dead");
        idx.save(&path).unwrap();
        let loaded = NnCellIndex::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.len(), 38);
        assert!(!loaded.is_live(5));
        assert!(!loaded.is_live(17));
        assert!(loaded.is_live(6));
        // Removed points never returned.
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..30 {
            let q: Vec<f64> = (0..2).map(|_| rng.gen_range(0.0..1.0)).collect();
            let got = loaded.nearest_neighbor(&q).unwrap();
            assert!(got.id != 5 && got.id != 17);
        }
    }

    #[test]
    fn loaded_index_supports_updates() {
        let pts = uniform(30, 2, 4);
        let idx = NnCellIndex::build(pts.clone(), BuildConfig::new(Strategy::Sphere)).unwrap();
        let path = tmp("updates");
        idx.save(&path).unwrap();
        let mut loaded = NnCellIndex::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let new_id = loaded.insert(Point::new(vec![0.123, 0.456])).unwrap();
        assert_eq!(new_id, 30);
        let got = loaded.nearest_neighbor(&[0.123, 0.456]).unwrap();
        assert_eq!(got.id, new_id);
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        let path = tmp("garbage");
        std::fs::write(&path, b"definitely not an index").unwrap();
        assert!(matches!(
            NnCellIndex::load(&path),
            Err(PersistError::Corrupt(_))
        ));

        // Valid prefix, truncated payload.
        let pts = uniform(20, 2, 5);
        let idx = NnCellIndex::build(pts, BuildConfig::new(Strategy::Point)).unwrap();
        idx.save(&path).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(matches!(
            NnCellIndex::load(&path),
            Err(PersistError::Corrupt(_))
        ));

        // Trailing garbage.
        let mut extended = full.clone();
        extended.extend_from_slice(b"xx");
        std::fs::write(&path, &extended).unwrap();
        assert!(matches!(
            NnCellIndex::load(&path),
            Err(PersistError::Corrupt(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            NnCellIndex::load("/nonexistent/nncell.idx"),
            Err(PersistError::Io(_))
        ));
    }
}
