//! Index persistence.
//!
//! The whole point of the NN-cell approach is that the expensive work — the
//! `2·d` linear programs per point — happens once, at build time. This
//! module saves the computed approximations in a small versioned binary
//! format and reloads them without rerunning a single LP (the X-trees are
//! rebuilt by insertion, which is cheap and deterministic).
//!
//! **Format `NNCELL02`** (current): an 8-byte magic, the payload, and a
//! CRC32 (IEEE) trailer over everything before it. [`NnCellIndex::load`]
//! verifies the checksum before parsing, so a bit flip anywhere in the file
//! is a typed [`PersistError::Corrupt`] — never a panic, and never a
//! silently wrong index. **Format `NNCELL01`** (legacy, no checksum) is
//! still readable; structural validation alone guards those files.
//!
//! Every size field read from disk is validated against the actual number
//! of bytes present *before* any allocation, so a corrupted count cannot
//! trigger an out-of-memory abort either.
//!
//! Only the Euclidean index is persistable: a weighted metric would change
//! the meaning of the stored cells, so it is deliberately not serialized.

use crate::config::{BuildConfig, Strategy};
use crate::index::{NnCellIndex, MAX_PIECES};
use crate::vfs::{write_atomic, StdVfs, Vfs};
use nncell_geom::{Mbr, Point};
use nncell_lp::SolverKind;
use std::io;
use std::path::Path;

const MAGIC_V2: &[u8; 8] = b"NNCELL02";
const MAGIC_V1: &[u8; 8] = b"NNCELL01";

/// Failures of [`NnCellIndex::save`] / [`NnCellIndex::load`].
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a (compatible) NN-cell index dump.
    Corrupt(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O error: {e}"),
            PersistError::Corrupt(msg) => write!(f, "corrupt index file: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn corrupt(msg: impl Into<String>) -> PersistError {
    PersistError::Corrupt(msg.into())
}

// ----------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320)
// ----------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC32 of `bytes` (IEEE; matches zlib's `crc32(0, ...)`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ----------------------------------------------------------------------
// bounded slice reader
// ----------------------------------------------------------------------

/// Cursor over the in-memory payload; every read is bounds-checked and a
/// short read is a typed corruption error, never a panic.
struct SliceReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SliceReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(corrupt("truncated file"));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.u64()?))
    }
}

impl NnCellIndex<nncell_geom::Euclidean> {
    /// Writes the index (points, liveness, cell pieces, configuration) to
    /// `path` in the checksummed `NNCELL02` format.
    ///
    /// The write is **crash-safe**: the bytes go to a fsynced sibling
    /// `.tmp` file that is renamed over `path` (then the directory is
    /// synced). A crash at any instant leaves either the previous file or
    /// the complete new one — a plain `save` can no longer destroy the
    /// last good snapshot.
    ///
    /// # Errors
    /// I/O failures only; the format always fits the data.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        self.save_with_vfs(&StdVfs, path.as_ref())
    }

    /// [`Self::save`] through an explicit [`Vfs`] (fault injection, tests).
    ///
    /// # Errors
    /// I/O failures only.
    pub fn save_with_vfs(&self, vfs: &dyn Vfs, path: &Path) -> Result<(), PersistError> {
        let mut bytes = Vec::with_capacity(64 + self.points().len() * (self.dim() * 8 + 8));
        bytes.extend_from_slice(MAGIC_V2);
        self.write_payload(&mut bytes);
        let crc = crc32(&bytes[..]);
        bytes.extend_from_slice(&crc.to_le_bytes());
        write_atomic(vfs, path, &bytes)?;
        Ok(())
    }

    /// Serializes everything after the magic into `out` (infallible: the
    /// sink is a `Vec`).
    fn write_payload(&self, out: &mut Vec<u8>) {
        let cfg = self.config();
        put_u32(out, self.dim() as u32);
        out.push(strategy_tag(cfg.strategy));
        out.push(solver_tag(cfg.solver));
        out.push(cfg.refine_on_insert as u8);
        out.push(0); // reserved
        put_u32(out, cfg.decompose_pieces.unwrap_or(0) as u32);
        put_f64(out, cfg.sphere_radius.unwrap_or(f64::NAN));
        put_u64(out, cfg.seed);
        put_u32(out, cfg.block_size as u32);

        let points = self.points();
        put_u64(out, points.len() as u64);
        for (id, p) in points.iter().enumerate() {
            out.push(self.is_live(id) as u8);
            for &c in p.as_slice() {
                put_f64(out, c);
            }
        }
        for id in 0..points.len() {
            let pieces: &[Mbr] = self.cell(id).map(|c| c.pieces.as_slice()).unwrap_or(&[]);
            put_u32(out, pieces.len() as u32);
            for m in pieces {
                for &c in m.lo() {
                    put_f64(out, c);
                }
                for &c in m.hi() {
                    put_f64(out, c);
                }
            }
        }
    }

    /// Reads an index previously written by [`Self::save`] (`NNCELL02`,
    /// checksum-verified) or by older releases (`NNCELL01`, structural
    /// validation only). No LP is rerun: the stored approximations are
    /// reinserted into fresh X-trees.
    ///
    /// # Errors
    /// I/O failures, a bad magic/version, a checksum mismatch, or
    /// structural corruption. Never panics on hostile input.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        Self::load_with_vfs(&StdVfs, path.as_ref())
    }

    /// [`Self::load`] through an explicit [`Vfs`] (fault injection, tests).
    ///
    /// # Errors
    /// See [`Self::load`].
    pub fn load_with_vfs(vfs: &dyn Vfs, path: &Path) -> Result<Self, PersistError> {
        let bytes = vfs.read(path)?;
        if bytes.len() < 8 {
            return Err(corrupt("file too short for header"));
        }
        let magic = &bytes[..8];
        let payload = if magic == MAGIC_V2 {
            if bytes.len() < 12 {
                return Err(corrupt("file too short for checksum trailer"));
            }
            let body = &bytes[..bytes.len() - 4];
            let stored = u32::from_le_bytes([
                bytes[bytes.len() - 4],
                bytes[bytes.len() - 3],
                bytes[bytes.len() - 2],
                bytes[bytes.len() - 1],
            ]);
            let actual = crc32(body);
            if stored != actual {
                return Err(corrupt(format!(
                    "checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
                )));
            }
            &body[8..]
        } else if magic == MAGIC_V1 {
            &bytes[8..]
        } else {
            return Err(corrupt(format!(
                "bad magic {magic:?} (expected {MAGIC_V2:?} or {MAGIC_V1:?})"
            )));
        };
        let mut r = SliceReader::new(payload);
        let idx = parse_payload(&mut r)?;
        if r.remaining() != 0 {
            return Err(corrupt("trailing bytes after index payload"));
        }
        Ok(idx)
    }
}

/// Parses the version-independent payload with full structural validation:
/// every count is checked against the bytes actually present before any
/// allocation, every float invariant is checked before any constructor that
/// would assert.
fn parse_payload(
    r: &mut SliceReader<'_>,
) -> Result<NnCellIndex<nncell_geom::Euclidean>, PersistError> {
    let dim = r.u32()? as usize;
    if dim == 0 || dim > 1 << 16 {
        return Err(corrupt(format!("implausible dimensionality {dim}")));
    }
    let strategy = strategy_from_tag(r.u8()?)?;
    let solver = solver_from_tag(r.u8()?)?;
    let refine = r.u8()? != 0;
    let _reserved = r.u8()?;
    let pieces_budget = r.u32()? as usize;
    if pieces_budget > MAX_PIECES {
        return Err(corrupt(format!(
            "decomposition budget {pieces_budget} exceeds the format limit {MAX_PIECES}"
        )));
    }
    let radius = r.f64()?;
    if radius.is_finite() && radius <= 0.0 {
        return Err(corrupt(format!("non-positive sphere radius {radius}")));
    }
    let seed = r.u64()?;
    let block_size = r.u32()? as usize;
    if !(128..=1 << 26).contains(&block_size) {
        return Err(corrupt(format!("implausible block size {block_size}")));
    }

    // The constraint pool is a build/refine-time concern and is not
    // persisted; recovered indexes refine with the exhaustive pool.
    let mut builder = BuildConfig::builder()
        .strategy(strategy)
        .solver(solver)
        .seed(seed)
        .block_size(block_size)
        .refine_on_insert(refine);
    if pieces_budget > 0 {
        builder = builder.decompose_pieces(pieces_budget);
    }
    if radius.is_finite() {
        builder = builder.sphere_radius(radius);
    }
    let cfg = builder.build();

    let n = r.u64()? as usize;
    // Each point occupies 1 + 8·dim bytes; a count the remaining bytes
    // cannot hold is corruption, caught *before* any `with_capacity`.
    let point_bytes = 1 + 8 * dim;
    if n > r.remaining() / point_bytes {
        return Err(corrupt(format!("point count {n} exceeds the bytes present")));
    }
    let mut alive = Vec::with_capacity(n);
    let mut points = Vec::with_capacity(n);
    for _ in 0..n {
        alive.push(r.u8()? != 0);
        let mut coords = Vec::with_capacity(dim);
        for _ in 0..dim {
            let c = r.f64()?;
            if !c.is_finite() {
                return Err(corrupt("non-finite coordinate"));
            }
            coords.push(c);
        }
        points.push(Point::new(coords));
    }
    let mut all_pieces = Vec::with_capacity(n);
    for id in 0..n {
        let k = r.u32()? as usize;
        if k > MAX_PIECES {
            return Err(corrupt(format!("implausible piece count {k}")));
        }
        if alive[id] && k == 0 {
            return Err(corrupt(format!("live point {id} without cell pieces")));
        }
        if k > r.remaining() / (16 * dim) {
            return Err(corrupt(format!("piece count {k} exceeds the bytes present")));
        }
        let mut pieces = Vec::with_capacity(k);
        for _ in 0..k {
            let mut lo = Vec::with_capacity(dim);
            let mut hi = Vec::with_capacity(dim);
            for _ in 0..dim {
                lo.push(r.f64()?);
            }
            for _ in 0..dim {
                hi.push(r.f64()?);
            }
            for i in 0..dim {
                // `Mbr::new` snaps sub-EPS inversions but panics beyond
                // them; saved boxes are always normalized (`hi ≥ lo`), so
                // anything inverted at all is corruption.
                if !(lo[i].is_finite() && hi[i].is_finite()) || hi[i] < lo[i] {
                    return Err(corrupt(format!("invalid piece bounds for point {id}")));
                }
            }
            pieces.push(Mbr::new(lo, hi));
        }
        all_pieces.push(pieces);
    }

    let mut idx = NnCellIndex::new(dim, cfg);
    for (id, p) in points.iter().enumerate() {
        if alive[id] {
            idx.point_tree_insert(p, id);
        }
    }
    idx.install_cells(points, alive, all_pieces);
    Ok(idx)
}

fn strategy_tag(s: Strategy) -> u8 {
    match s {
        Strategy::Correct => 0,
        Strategy::CorrectPruned => 1,
        Strategy::Point => 2,
        Strategy::Sphere => 3,
        Strategy::NnDirection => 4,
    }
}

fn strategy_from_tag(t: u8) -> Result<Strategy, PersistError> {
    Ok(match t {
        0 => Strategy::Correct,
        1 => Strategy::CorrectPruned,
        2 => Strategy::Point,
        3 => Strategy::Sphere,
        4 => Strategy::NnDirection,
        _ => return Err(corrupt(format!("unknown strategy tag {t}"))),
    })
}

fn solver_tag(s: SolverKind) -> u8 {
    match s {
        SolverKind::Simplex => 0,
        SolverKind::Seidel => 1,
        SolverKind::Auto => 2,
        SolverKind::DualSimplex => 3,
        SolverKind::ActiveSet => 4,
    }
}

fn solver_from_tag(t: u8) -> Result<SolverKind, PersistError> {
    Ok(match t {
        0 => SolverKind::Simplex,
        1 => SolverKind::Seidel,
        2 => SolverKind::Auto,
        3 => SolverKind::DualSimplex,
        4 => SolverKind::ActiveSet,
        _ => return Err(corrupt(format!("unknown solver tag {t}"))),
    })
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::QueryEngine;
    use crate::query::Query;
    use crate::scan::linear_scan_nn;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// NN through the typed engine, with the old shim's `Option` shape.
    fn nn(idx: &NnCellIndex, q: &[f64]) -> Option<crate::index::QueryResult> {
        QueryEngine::sequential(idx)
            .execute(&Query::nn(q))
            .ok()
            .map(|r| r.best)
    }

    fn uniform(n: usize, d: usize, seed: u64) -> Vec<Point> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new((0..d).map(|_| rng.gen_range(0.0..1.0)).collect::<Vec<_>>()))
            .collect()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("nncell_persist_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_preserves_cells_and_answers() {
        let pts = uniform(60, 3, 1);
        let idx = NnCellIndex::build(
            pts.clone(),
            BuildConfig::builder().strategy(Strategy::Sphere)
                .decompose_pieces(4)
                .seed(7).build(),
        )
        .unwrap();
        let path = tmp("roundtrip");
        idx.save(&path).unwrap();
        let loaded = NnCellIndex::load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(loaded.len(), idx.len());
        assert_eq!(loaded.dim(), idx.dim());
        assert_eq!(loaded.config().strategy, Strategy::Sphere);
        assert_eq!(loaded.config().decompose_pieces, Some(4));
        for id in 0..pts.len() {
            let a = &idx.cell(id).unwrap().pieces;
            let b = &loaded.cell(id).unwrap().pieces;
            assert_eq!(a.len(), b.len());
            for (ma, mb) in a.iter().zip(b.iter()) {
                assert_eq!(ma, mb, "cell {id} differs after reload");
            }
        }
        assert!(loaded.verify_integrity().is_ok());
        // No LP ran on load; queries still exact.
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..40 {
            let q: Vec<f64> = (0..3).map(|_| rng.gen_range(0.0..1.0)).collect();
            let got = nn(&loaded, &q).unwrap();
            let want = linear_scan_nn(&pts, &q).unwrap();
            assert_eq!(got.id, want.id);
        }
    }

    #[test]
    fn legacy_nncell01_files_still_load() {
        let pts = uniform(30, 2, 11);
        let idx = NnCellIndex::build(pts.clone(), BuildConfig::builder().strategy(Strategy::Point).build()).unwrap();
        let path = tmp("legacy");
        idx.save(&path).unwrap();
        // Transform the v2 file into its v1 equivalent: same payload, v1
        // magic, no checksum trailer.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 4);
        bytes[..8].copy_from_slice(MAGIC_V1);
        std::fs::write(&path, &bytes).unwrap();
        let loaded = NnCellIndex::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.len(), idx.len());
        for id in 0..pts.len() {
            assert_eq!(
                idx.cell(id).unwrap().pieces,
                loaded.cell(id).unwrap().pieces
            );
        }
    }

    #[test]
    fn bit_flips_anywhere_are_detected() {
        let pts = uniform(20, 2, 12);
        let idx = NnCellIndex::build(pts, BuildConfig::builder().strategy(Strategy::Point).build()).unwrap();
        let path = tmp("bitflip");
        idx.save(&path).unwrap();
        let original = std::fs::read(&path).unwrap();
        // Flip one bit at a stride of positions covering header, points,
        // pieces, and the trailer itself.
        for pos in (0..original.len()).step_by(7) {
            let mut mutated = original.clone();
            mutated[pos] ^= 0x10;
            std::fs::write(&path, &mutated).unwrap();
            match NnCellIndex::load(&path) {
                Err(PersistError::Corrupt(_)) => {}
                Err(PersistError::Io(e)) => panic!("unexpected I/O error: {e}"),
                Ok(_) => panic!("bit flip at byte {pos} went undetected"),
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn roundtrip_with_dead_slots() {
        let pts = uniform(40, 2, 2);
        let mut idx =
            NnCellIndex::build(pts.clone(), BuildConfig::builder().strategy(Strategy::NnDirection).build()).unwrap();
        assert!(idx.remove(5));
        assert!(idx.remove(17));
        let path = tmp("dead");
        idx.save(&path).unwrap();
        let loaded = NnCellIndex::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.len(), 38);
        assert!(!loaded.is_live(5));
        assert!(!loaded.is_live(17));
        assert!(loaded.is_live(6));
        // Removed points never returned.
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..30 {
            let q: Vec<f64> = (0..2).map(|_| rng.gen_range(0.0..1.0)).collect();
            let got = nn(&loaded, &q).unwrap();
            assert!(got.id != 5 && got.id != 17);
        }
    }

    #[test]
    fn loaded_index_supports_updates() {
        let pts = uniform(30, 2, 4);
        let idx = NnCellIndex::build(pts.clone(), BuildConfig::builder().strategy(Strategy::Sphere).build()).unwrap();
        let path = tmp("updates");
        idx.save(&path).unwrap();
        let mut loaded = NnCellIndex::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let new_id = loaded.insert(Point::new(vec![0.123, 0.456])).unwrap();
        assert_eq!(new_id, 30);
        let got = nn(&loaded, &[0.123, 0.456]).unwrap();
        assert_eq!(got.id, new_id);
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        let path = tmp("garbage");
        std::fs::write(&path, b"definitely not an index").unwrap();
        assert!(matches!(
            NnCellIndex::load(&path),
            Err(PersistError::Corrupt(_))
        ));

        // Valid prefix, truncated payload.
        let pts = uniform(20, 2, 5);
        let idx = NnCellIndex::build(pts, BuildConfig::builder().strategy(Strategy::Point).build()).unwrap();
        idx.save(&path).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(matches!(
            NnCellIndex::load(&path),
            Err(PersistError::Corrupt(_))
        ));

        // Trailing garbage.
        let mut extended = full.clone();
        extended.extend_from_slice(b"xx");
        std::fs::write(&path, &extended).unwrap();
        assert!(matches!(
            NnCellIndex::load(&path),
            Err(PersistError::Corrupt(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            NnCellIndex::load("/nonexistent/nncell.idx"),
            Err(PersistError::Io(_))
        ));
    }

    #[test]
    fn verify_detects_and_repair_fixes_a_bad_cell() {
        // Forge a legacy (un-checksummed) file whose one stored piece does
        // not contain its generating point — structurally plausible, so
        // `load` accepts it, but `verify_integrity` must flag it and
        // `repair` must restore exactness.
        let pts = uniform(25, 2, 13);
        let idx = NnCellIndex::build(pts.clone(), BuildConfig::builder().strategy(Strategy::Correct).build()).unwrap();
        let path = tmp("verify");
        idx.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 4); // drop checksum
        bytes[..8].copy_from_slice(MAGIC_V1); // legacy magic
        // Payload layout after the 8-byte magic: 4 (dim) + 4 (tags) +
        // 4 (pieces) + 8 (radius) + 8 (seed) + 4 (block) = 32 bytes of
        // config, then 8 (count) + 25 points × (1 + 16) bytes, then cell 0:
        // 4 (piece count) + its first piece's lo/hi.
        let cell0 = 8 + 32 + 8 + 25 * 17 + 4;
        // Shrink piece 0 of cell 0 to a sliver far from the point.
        for (off, val) in [
            (0usize, 0.90f64),
            (8, 0.90), // lo = (0.90, 0.90)
            (16, 0.91),
            (24, 0.91), // hi = (0.91, 0.91)
        ] {
            bytes[cell0 + off..cell0 + off + 8].copy_from_slice(&val.to_le_bytes());
        }
        std::fs::write(&path, &bytes).unwrap();
        let mut loaded = NnCellIndex::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        // Point 0 of this seed is nowhere near (0.90, 0.91)², so its cell
        // no longer covers it.
        let report = loaded.verify_integrity();
        assert_eq!(report.checked_cells, 25);
        assert_eq!(report.bad_cells, vec![0]);
        let repaired = loaded.repair();
        assert_eq!(repaired, 1);
        assert!(loaded.verify_integrity().is_ok());
        // Exactness restored.
        let mut rng = SmallRng::seed_from_u64(14);
        for _ in 0..40 {
            let q: Vec<f64> = (0..2).map(|_| rng.gen_range(0.0..1.0)).collect();
            let got = nn(&loaded, &q).unwrap();
            let want = linear_scan_nn(&pts, &q).unwrap();
            assert_eq!(got.id, want.id, "q={q:?}");
        }
    }
}
