//! Linear-scan reference answers (ground truth for tests and benches).

use crate::index::QueryResult;
use nncell_geom::{dist_sq, Point};

/// Exact nearest neighbor by scanning `points`. `None` when empty.
pub fn linear_scan_nn(points: &[Point], q: &[f64]) -> Option<QueryResult> {
    let mut best_i = None;
    let mut best_d2 = f64::INFINITY;
    for (i, p) in points.iter().enumerate() {
        let d2 = dist_sq(q, p);
        if d2 < best_d2 {
            best_d2 = d2;
            best_i = Some(i);
        }
    }
    best_i.map(|id| QueryResult {
        id,
        dist: best_d2.sqrt(),
    })
}

/// Exact k-nearest neighbors by scanning, ascending by distance.
pub fn linear_scan_knn(points: &[Point], q: &[f64], k: usize) -> Vec<QueryResult> {
    let mut all: Vec<QueryResult> = points
        .iter()
        .enumerate()
        .map(|(i, p)| QueryResult {
            id: i,
            dist: dist_sq(q, p).sqrt(),
        })
        .collect();
    all.sort_by(|a, b| a.dist.total_cmp(&b.dist));
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_nn_picks_closest() {
        let pts = vec![
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![0.5, 0.5]),
            Point::new(vec![1.0, 1.0]),
        ];
        let r = linear_scan_nn(&pts, &[0.6, 0.6]).unwrap();
        assert_eq!(r.id, 1);
        assert!((r.dist - (0.02f64).sqrt()).abs() < 1e-12);
        assert!(linear_scan_nn(&[], &[0.0]).is_none());
    }

    #[test]
    fn scan_knn_sorted() {
        let pts: Vec<Point> = (0..5).map(|i| Point::new(vec![i as f64])).collect();
        let r = linear_scan_knn(&pts, &[2.2], 3);
        let ids: Vec<usize> = r.iter().map(|x| x.id).collect();
        assert_eq!(ids, vec![2, 3, 1]);
    }
}
