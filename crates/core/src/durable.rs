//! Crash-consistent dynamic index: WAL + atomic snapshot rotation.
//!
//! A [`DurableIndex`] lives in a directory and is, at every instant, fully
//! described by three kinds of file:
//!
//! ```text
//! dir/CURRENT            — ASCII generation number G; the commit pointer
//! dir/snapshot.G.nncell  — checksummed NNCELL02 snapshot of generation G
//! dir/wal.G.log          — WAL of updates applied on top of snapshot G
//! ```
//!
//! **Update protocol** (`insert` / `remove`): validate → journal the record
//! to `wal.G.log` and fsync → apply to the in-memory index → acknowledge.
//! An acknowledged update is therefore always durable; an unacknowledged
//! one may or may not survive a crash (both outcomes are consistent).
//!
//! **Checkpoint protocol** ([`DurableIndex::checkpoint`]): write
//! `snapshot.G+1` (tmp + fsync + rename + dir sync), create an empty
//! `wal.G+1` (fsynced, dir synced), then *commit* by atomically rewriting
//! `CURRENT` to `G+1`, and finally delete the generation-`G` files. The
//! `CURRENT` rename is the single commit point: a crash strictly before it
//! recovers generation `G` (whose snapshot and WAL are untouched — nothing
//! is deleted until after the commit), a crash after it recovers `G+1`.
//! There is no interleaving in which a removed point can be resurrected or
//! an acknowledged update lost — the crash-recovery property test in
//! `tests/crash_recovery.rs` kills the process at every syscall of a
//! randomized workload and checks exactly that, plus Lemma 1 exactness of
//! every query against a linear scan over the recovered point set.
//!
//! **Recovery** ([`NnCellIndex::open_durable`] / [`DurableIndex::open`]):
//! read `CURRENT`, load the snapshot it names, replay the WAL prefix (a
//! torn or corrupt tail is dropped — it can only hold unacknowledged
//! bytes), and, if the tail was dirty, immediately rotate to a fresh
//! generation so new appends never land after damaged bytes. Stale files
//! from older generations or interrupted checkpoints are swept up.

use crate::config::BuildConfig;
use crate::index::{BuildError, NnCellIndex};
use crate::persist::PersistError;
use crate::vfs::{write_atomic, StdVfs, Vfs};
use crate::wal::{read_wal, WalRecord, WalTail, WalWriter};
use nncell_geom::{Euclidean, Point};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Failures of durable updates: either the update itself is invalid, or
/// the journal could not be made durable.
#[derive(Debug)]
pub enum DurableError {
    /// The point failed [`NnCellIndex::validate_insert`]-style validation;
    /// nothing was journaled and nothing changed.
    Invalid(BuildError),
    /// Journaling failed (I/O or a poisoned WAL); the in-memory index was
    /// **not** mutated — the update is not acknowledged.
    Persist(PersistError),
    /// The memtable tail is at its high-watermark (the background folder
    /// is behind or degraded). Nothing was journaled; the write is safe to
    /// retry after a backoff. Only memtable-enabled indexes
    /// ([`crate::ShardedIndex::with_memtable`]) return this; the serving
    /// layer maps it to HTTP 429 + `Retry-After`.
    Backpressure {
        /// Unfolded tail operations at rejection time.
        tail: usize,
        /// The configured high-watermark ([`crate::FoldConfig::tail_max`]).
        max: usize,
    },
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Invalid(e) => write!(f, "invalid update: {e}"),
            DurableError::Persist(e) => write!(f, "journaling failed: {e}"),
            DurableError::Backpressure { tail, max } => write!(
                f,
                "write backpressure: memtable tail at {tail}/{max} unfolded operations; \
                 retry after a backoff"
            ),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<BuildError> for DurableError {
    fn from(e: BuildError) -> Self {
        DurableError::Invalid(e)
    }
}

impl From<PersistError> for DurableError {
    fn from(e: PersistError) -> Self {
        DurableError::Persist(e)
    }
}

/// What recovery found when the directory was opened.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// Generation the index recovered *from* (what `CURRENT` named).
    pub generation: u64,
    /// WAL records replayed successfully.
    pub replayed: usize,
    /// Records whose replay was a no-op (e.g. a remove of an id that a
    /// deterministically failing insert never produced). Always 0 for WALs
    /// written by this crate.
    pub skipped: usize,
    /// Condition of the WAL tail.
    pub wal_tail: WalTail,
    /// Whether recovery rotated to a fresh generation because the tail was
    /// dirty (new appends must never follow damaged bytes).
    pub rotated: bool,
    /// Whether the directory was empty and a fresh generation 0 was
    /// initialized.
    pub initialized: bool,
}

/// A crash-consistent [`NnCellIndex`]: queries via `Deref`, updates
/// journaled through the WAL, durability advanced by
/// [`Self::checkpoint`]. See the module docs for the protocol.
pub struct DurableIndex {
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    index: NnCellIndex<Euclidean>,
    wal: WalWriter,
    generation: u64,
    recovery: RecoveryReport,
    metrics: Option<DurableMetrics>,
}

/// Registry handles kept by the durability layer itself. The WAL handles
/// are retained so every rotation's fresh [`WalWriter`] can be re-bound.
struct DurableMetrics {
    wal: crate::wal::WalMetrics,
    /// `nncell_snapshot_rotations_total` — checkpoints plus the dirty-tail
    /// rotation recovery may perform at open.
    snapshot_rotations: Arc<nncell_obs::Counter>,
}

impl std::ops::Deref for DurableIndex {
    type Target = NnCellIndex<Euclidean>;

    /// Read-only access to the underlying index (queries, stats). Updates
    /// must go through [`Self::insert`] / [`Self::remove`] so they hit the
    /// journal first — which is why there is no `DerefMut`.
    fn deref(&self) -> &Self::Target {
        &self.index
    }
}

fn current_path(dir: &Path) -> PathBuf {
    dir.join("CURRENT")
}

fn snapshot_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snapshot.{generation}.nncell"))
}

fn wal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("wal.{generation}.log"))
}

/// The generation a file name belongs to, if it is a generation file.
fn file_generation(name: &str) -> Option<u64> {
    if let Some(rest) = name.strip_prefix("snapshot.") {
        return rest.strip_suffix(".nncell")?.parse().ok();
    }
    if let Some(rest) = name.strip_prefix("wal.") {
        return rest.strip_suffix(".log")?.parse().ok();
    }
    None
}

/// Writes the complete on-disk state of `generation` (snapshot + empty
/// WAL) and commits it by atomically rewriting `CURRENT`. Returns the open
/// WAL writer. The `CURRENT` rewrite is the commit point; a crash anywhere
/// earlier leaves the previous generation fully intact.
fn commit_generation(
    vfs: &Arc<dyn Vfs>,
    dir: &Path,
    index: &NnCellIndex<Euclidean>,
    generation: u64,
) -> Result<WalWriter, PersistError> {
    commit_generation_with_tail(vfs, dir, index, generation, &[])
}

/// [`commit_generation`] with a journaled-but-unapplied suffix: `tail`
/// records are re-journaled (one batched fsync) into the fresh WAL
/// *before* the `CURRENT` flip, so replay of the committed generation
/// reconstructs snapshot + tail. The memtable checkpoint path uses this
/// to rotate generations without synchronously folding the tail — an
/// acked write stays durable even while the folder is broken.
fn commit_generation_with_tail(
    vfs: &Arc<dyn Vfs>,
    dir: &Path,
    index: &NnCellIndex<Euclidean>,
    generation: u64,
    tail: &[WalRecord],
) -> Result<WalWriter, PersistError> {
    index.save_with_vfs(vfs.as_ref(), &snapshot_path(dir, generation))?;
    let mut wal = WalWriter::create(vfs.as_ref(), &wal_path(dir, generation))?;
    wal.append_batch(tail)?;
    vfs.sync_dir(dir)?;
    write_atomic(
        vfs.as_ref(),
        &current_path(dir),
        format!("{generation}\n").as_bytes(),
    )?;
    Ok(wal)
}

/// Best-effort sweep of files no generation references: older snapshots
/// and WALs, and `.tmp` leftovers of interrupted atomic writes. Failures
/// are ignored — stale files are harmless and retried next open.
fn sweep_stale(vfs: &Arc<dyn Vfs>, dir: &Path, keep: u64) {
    let Ok(entries) = vfs.list_dir(dir) else {
        return;
    };
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let stale = name.ends_with(".tmp") || file_generation(name).is_some_and(|g| g != keep);
        if stale {
            let _ = vfs.remove_file(&path);
        }
    }
}

impl NnCellIndex<Euclidean> {
    /// Opens (or initializes) a crash-consistent index in `dir` with the
    /// production file system. When the directory holds no committed
    /// generation, an empty index of dimensionality `dim` configured by
    /// `cfg` is created; otherwise the committed snapshot is loaded, the
    /// WAL replayed, and `dim`/`cfg` must agree with what is stored.
    ///
    /// # Errors
    /// I/O failures, a corrupt snapshot or `CURRENT`, or a dimensionality
    /// mismatch between `dim` and an existing directory.
    pub fn open_durable(
        dir: impl AsRef<Path>,
        dim: usize,
        cfg: BuildConfig,
    ) -> Result<DurableIndex, PersistError> {
        Self::open_durable_with_vfs(Arc::new(StdVfs), dir.as_ref(), dim, cfg)
    }

    /// [`Self::open_durable`] through an explicit [`Vfs`] — the entry
    /// point the fault-injection tests drive.
    ///
    /// # Errors
    /// See [`Self::open_durable`].
    pub fn open_durable_with_vfs(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        dim: usize,
        cfg: BuildConfig,
    ) -> Result<DurableIndex, PersistError> {
        vfs.create_dir_all(dir)?;
        if vfs.exists(&current_path(dir)) {
            let opened = DurableIndex::open_with_vfs(vfs, dir)?;
            if opened.index.dim() != dim {
                return Err(PersistError::Corrupt(format!(
                    "durable index at {dir:?} is {}-dimensional, caller expected {dim}",
                    opened.index.dim()
                )));
            }
            Ok(opened)
        } else {
            DurableIndex::create_with_vfs(vfs, dir, NnCellIndex::new(dim, cfg))
        }
    }
}

impl DurableIndex {
    /// Initializes `dir` with `index` as the generation-0 snapshot (empty
    /// WAL) using the production file system. Fails if the directory
    /// already holds a committed index.
    ///
    /// # Errors
    /// I/O failures, or an already-initialized directory.
    pub fn create(dir: impl AsRef<Path>, index: NnCellIndex<Euclidean>) -> Result<Self, PersistError> {
        Self::create_with_vfs(Arc::new(StdVfs), dir.as_ref(), index)
    }

    /// [`Self::create`] through an explicit [`Vfs`].
    ///
    /// # Errors
    /// See [`Self::create`].
    pub fn create_with_vfs(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        index: NnCellIndex<Euclidean>,
    ) -> Result<Self, PersistError> {
        vfs.create_dir_all(dir)?;
        if vfs.exists(&current_path(dir)) {
            return Err(PersistError::Corrupt(format!(
                "directory {dir:?} already holds a durable index"
            )));
        }
        let generation = 0;
        let wal = commit_generation(&vfs, dir, &index, generation)?;
        sweep_stale(&vfs, dir, generation);
        Ok(DurableIndex {
            vfs,
            dir: dir.to_path_buf(),
            index,
            wal,
            generation,
            recovery: RecoveryReport {
                generation,
                replayed: 0,
                skipped: 0,
                wal_tail: WalTail::Clean,
                rotated: false,
                initialized: true,
            },
            metrics: None,
        })
    }

    /// Opens an existing durable index (the committed generation is the
    /// sole authority on dimensionality and configuration) with the
    /// production file system.
    ///
    /// # Errors
    /// I/O failures, no committed generation, or a corrupt snapshot.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, PersistError> {
        Self::open_with_vfs(Arc::new(StdVfs), dir.as_ref())
    }

    /// [`Self::open`] through an explicit [`Vfs`].
    ///
    /// # Errors
    /// See [`Self::open`].
    pub fn open_with_vfs(vfs: Arc<dyn Vfs>, dir: &Path) -> Result<Self, PersistError> {
        let bytes = vfs.read(&current_path(dir))?;
        let text = std::str::from_utf8(&bytes)
            .map_err(|_| PersistError::Corrupt("CURRENT is not UTF-8".into()))?;
        let generation: u64 = text
            .trim()
            .parse()
            .map_err(|_| PersistError::Corrupt(format!("CURRENT holds {text:?}, not a generation")))?;

        let mut index =
            NnCellIndex::load_with_vfs(vfs.as_ref(), &snapshot_path(dir, generation))?;
        let replay = read_wal(vfs.as_ref(), &wal_path(dir, generation))?;
        let mut replayed = 0usize;
        let mut skipped = 0usize;
        for rec in &replay.records {
            let applied = match rec {
                WalRecord::Insert(p) => index.insert(p.clone()).is_ok(),
                WalRecord::Remove(id) => index.remove(*id as usize),
            };
            if applied {
                replayed += 1;
            } else {
                // Deterministic no-op: replay reproduces exactly what the
                // original (failed) application did, keeping states equal.
                skipped += 1;
            }
        }

        let (wal, active_generation, rotated) = if replay.tail == WalTail::Clean {
            let wal = WalWriter::open_append(
                vfs.as_ref(),
                &wal_path(dir, generation),
                replay.records.len() as u64,
            )?;
            (wal, generation, false)
        } else {
            // Damaged tail: never append after it. Rotate to a fresh
            // generation built from the recovered in-memory state.
            let next = generation + 1;
            let wal = commit_generation(&vfs, dir, &index, next)?;
            (wal, next, true)
        };
        sweep_stale(&vfs, dir, active_generation);
        Ok(DurableIndex {
            vfs,
            dir: dir.to_path_buf(),
            index,
            wal,
            generation: active_generation,
            recovery: RecoveryReport {
                generation,
                replayed,
                skipped,
                wal_tail: replay.tail,
                rotated,
                initialized: false,
            },
            metrics: None,
        })
    }

    /// Attaches a metrics registry to the whole durable stack: the index
    /// and engine metrics (see [`NnCellIndex::attach_metrics`]) plus WAL
    /// append/fsync counters, replay counters seeded from this handle's
    /// [`RecoveryReport`], and a snapshot-rotation counter. Idempotent.
    pub fn attach_metrics(&mut self, registry: Arc<nncell_obs::Registry>) {
        self.attach_metrics_labeled(registry, &[]);
    }

    /// Like [`Self::attach_metrics`] but the index/engine/tree series carry
    /// the given label set (e.g. `shard="1"`). The WAL and rotation
    /// counters stay unlabeled — shards of one sharded index share them as
    /// whole-stack totals.
    pub fn attach_metrics_labeled(
        &mut self,
        registry: Arc<nncell_obs::Registry>,
        labels: &[(&str, &str)],
    ) {
        if self.metrics.is_some() {
            return;
        }
        self.index
            .attach_metrics_labeled(Arc::clone(&registry), labels);
        let wal_metrics = crate::wal::WalMetrics::register(&registry);
        self.wal.set_metrics(wal_metrics.clone());
        // Recovery already happened; publish what it found.
        registry
            .counter("nncell_wal_replayed_total")
            .add(self.recovery.replayed as u64);
        let dropped = self.recovery.skipped as u64
            + u64::from(self.recovery.wal_tail != WalTail::Clean);
        registry
            .counter("nncell_wal_replay_dropped_total")
            .add(dropped);
        let snapshot_rotations = registry.counter("nncell_snapshot_rotations_total");
        snapshot_rotations.add(u64::from(self.recovery.rotated));
        self.metrics = Some(DurableMetrics {
            wal: wal_metrics,
            snapshot_rotations,
        });
    }

    /// What recovery found when this handle was opened.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// The committed generation this handle currently appends to.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Records sitting in the active WAL (replayed + appended since the
    /// last checkpoint) — the replay debt a crash right now would incur.
    pub fn wal_records(&self) -> u64 {
        self.wal.records()
    }

    /// Read-only access to the in-memory index (also available through
    /// `Deref`).
    pub fn index(&self) -> &NnCellIndex<Euclidean> {
        &self.index
    }

    /// Executes one typed query against the in-memory index, with the same
    /// [`QueryError`] contract as [`crate::QueryEngine::execute`] — a
    /// durable handle rejects malformed input identically to a plain one.
    ///
    /// # Errors
    /// The [`QueryError`] variants of [`crate::QueryEngine::execute`].
    pub fn query(&self, q: &crate::Query) -> Result<crate::QueryResponse, crate::QueryError> {
        self.index.engine().execute(q)
    }

    /// Executes a batch of typed queries across the engine's thread pool
    /// (see [`crate::QueryEngine::batch`]). Durability is orthogonal:
    /// queries never touch the WAL.
    pub fn batch(
        &self,
        queries: &[crate::Query],
    ) -> Vec<Result<crate::QueryResponse, crate::QueryError>> {
        self.index.engine().batch(queries)
    }

    /// Journals and applies a point insertion. On `Ok`, the update is on
    /// stable storage (WAL fsynced) — a crash at any later instant
    /// recovers it. Returns the new point's id.
    ///
    /// # Errors
    /// [`DurableError::Invalid`] for points [`NnCellIndex::insert`] would
    /// reject (nothing journaled, nothing changed);
    /// [`DurableError::Persist`] when the journal write fails (in-memory
    /// index untouched; the update is not acknowledged).
    pub fn insert(&mut self, p: Point) -> Result<usize, DurableError> {
        self.index.validate_insert(&p)?;
        self.wal.append(&WalRecord::Insert(p.clone()))?;
        Ok(self.index.insert(p)?)
    }

    /// Journals and applies a removal. `Ok(false)` (id not live) journals
    /// nothing. On `Ok(true)`, the removal is on stable storage.
    ///
    /// # Errors
    /// Journal I/O failures; the in-memory index is untouched on error.
    pub fn remove(&mut self, id: usize) -> Result<bool, PersistError> {
        if !self.index.is_live(id) {
            return Ok(false);
        }
        self.wal.append(&WalRecord::Remove(id as u64))?;
        Ok(self.index.remove(id))
    }

    /// Rotates to a fresh generation: snapshot the in-memory index, start
    /// an empty WAL, commit via `CURRENT`, sweep the old files. Shrinks
    /// recovery replay to zero; also the only way out of a poisoned WAL.
    ///
    /// # Errors
    /// I/O failures. On error the previous generation remains committed
    /// and intact; the handle stays usable (checkpoint can be retried).
    pub fn checkpoint(&mut self) -> Result<(), PersistError> {
        self.checkpoint_with_tail(&[])
    }

    /// [`Self::checkpoint`] carrying a journaled-but-unapplied memtable
    /// tail: the fresh generation's snapshot is the in-memory index as-is
    /// and `tail` is re-journaled into the fresh WAL before the commit
    /// flip, so the rotation preserves every acked-but-unfolded write
    /// without doing any folding itself. Replay debt after the rotation
    /// is exactly `tail.len()` records.
    ///
    /// # Errors
    /// See [`Self::checkpoint`].
    pub fn checkpoint_with_tail(&mut self, tail: &[WalRecord]) -> Result<(), PersistError> {
        let next = self.generation + 1;
        let wal = commit_generation_with_tail(&self.vfs, &self.dir, &self.index, next, tail)?;
        self.wal = wal;
        if let Some(m) = &self.metrics {
            self.wal.set_metrics(m.wal.clone());
            m.snapshot_rotations.inc();
        }
        self.generation = next;
        sweep_stale(&self.vfs, &self.dir, next);
        Ok(())
    }

    /// Journals one record durably **without applying it** — the
    /// memtable write path: the record lands in the WAL (fsynced) and in
    /// the in-memory tail; the background folder applies it to the index
    /// later. Callers own the invariant that the journaled suffix and the
    /// tail stay in lockstep.
    ///
    /// # Errors
    /// Journal I/O failures; nothing is acknowledged.
    pub(crate) fn journal(&mut self, rec: &WalRecord) -> Result<(), PersistError> {
        self.wal.append(rec)
    }

    /// Replaces the in-memory index with a folded version (same logical
    /// state as replaying the journaled suffix on top of the old one).
    /// Purely in-memory: the disk state is untouched, so crash recovery
    /// is unaffected by when — or whether — folds happen.
    pub(crate) fn replace_index(&mut self, index: NnCellIndex<Euclidean>) {
        self.index = index;
    }

    /// Checkpoints and consumes the handle — the clean-shutdown path that
    /// leaves zero replay debt. (Dropping without `close` is the *crash*
    /// path: safe, but recovery will replay the WAL.)
    ///
    /// # Errors
    /// See [`Self::checkpoint`].
    pub fn close(mut self) -> Result<(), PersistError> {
        self.checkpoint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Strategy;
    use crate::scan::linear_scan_nn;
    use crate::vfs::{FaultSchedule, FaultVfs};

    fn cfg() -> BuildConfig {
        BuildConfig::builder().strategy(Strategy::Sphere).seed(3).build()
    }

    fn grid_point(i: usize) -> Point {
        // Distinct points on a 100×100 lattice, away from the boundary.
        Point::new(vec![
            (i % 97) as f64 / 100.0 + 0.005,
            (i / 97 % 97) as f64 / 100.0 + 0.005,
        ])
    }

    fn mem_vfs() -> (Arc<dyn Vfs>, FaultVfs, PathBuf) {
        let fault = FaultVfs::new(FaultSchedule::none(11));
        (Arc::new(fault.clone()), fault, PathBuf::from("/db"))
    }

    /// Queries of the recovered index agree with a scan over its points.
    fn assert_self_consistent(idx: &NnCellIndex<Euclidean>) {
        let live: Vec<Point> = (0..idx.points().len())
            .filter(|&i| idx.is_live(i))
            .map(|i| idx.points()[i].clone())
            .collect();
        for k in 0..30 {
            let q = vec![(k as f64 * 7.3) % 1.0, (k as f64 * 3.7) % 1.0];
            let got = crate::engine::QueryEngine::sequential(idx)
                .execute(&crate::query::Query::nn(q.clone()))
                .ok()
                .map(|r| r.best);
            match (got, linear_scan_nn(&live, &q)) {
                (Some(got), Some(want)) => {
                    assert!((got.dist - want.dist).abs() < 1e-9, "q={q:?}")
                }
                (None, None) => {}
                (got, want) => panic!("q={q:?}: {got:?} vs {want:?}"),
            }
        }
    }

    #[test]
    fn typed_queries_behave_like_a_plain_engine() {
        use crate::query::{Query, QueryError};
        let (vfs, _fault, dir) = mem_vfs();
        let mut d = NnCellIndex::open_durable_with_vfs(Arc::clone(&vfs), &dir, 2, cfg()).unwrap();
        // Empty index: typed, not silent.
        assert_eq!(
            d.query(&Query::nn([0.5, 0.5])).unwrap_err(),
            QueryError::EmptyIndex
        );
        for i in 0..12 {
            d.insert(grid_point(i)).unwrap();
        }
        // Malformed input gets the same variants as QueryEngine::execute.
        assert_eq!(
            d.query(&Query::nn([0.5])).unwrap_err(),
            QueryError::DimMismatch {
                expected: 2,
                got: 1
            }
        );
        assert_eq!(
            d.query(&Query::nn([f64::NAN, 0.5])).unwrap_err(),
            QueryError::NonFiniteQuery
        );
        assert_eq!(
            d.query(&Query::knn([0.5, 0.5], 0)).unwrap_err(),
            QueryError::ZeroK
        );
        // Well-formed queries agree with the engine over the same index.
        let want = d.index().engine().execute(&Query::knn([0.31, 0.22], 3)).unwrap();
        let got = d.query(&Query::knn([0.31, 0.22], 3)).unwrap();
        assert_eq!(got, want);
        let batch = d.batch(&[Query::nn([0.31, 0.22]), Query::nn([0.9, 0.1])]);
        assert_eq!(batch.len(), 2);
        for r in batch {
            r.unwrap();
        }
    }

    #[test]
    fn drop_without_checkpoint_recovers_every_acknowledged_update() {
        let (vfs, _fault, dir) = mem_vfs();
        let mut d =
            NnCellIndex::open_durable_with_vfs(Arc::clone(&vfs), &dir, 2, cfg()).unwrap();
        assert!(d.recovery().initialized);
        for i in 0..20 {
            d.insert(grid_point(i)).unwrap();
        }
        assert!(d.remove(3).unwrap());
        assert!(d.remove(11).unwrap());
        assert!(!d.remove(3).unwrap(), "double remove journals nothing");
        assert_eq!(d.wal_records(), 22);
        drop(d); // crash: no checkpoint, no close

        let d = NnCellIndex::open_durable_with_vfs(Arc::clone(&vfs), &dir, 2, cfg()).unwrap();
        let rec = d.recovery();
        assert!(!rec.initialized);
        assert_eq!(rec.replayed, 22);
        assert_eq!(rec.skipped, 0);
        assert_eq!(rec.wal_tail, WalTail::Clean);
        assert_eq!(d.len(), 18);
        assert!(!d.is_live(3) && !d.is_live(11));
        assert_self_consistent(&d);
    }

    #[test]
    fn checkpoint_rotates_generation_and_clears_replay_debt() {
        let (vfs, _fault, dir) = mem_vfs();
        let mut d =
            NnCellIndex::open_durable_with_vfs(Arc::clone(&vfs), &dir, 2, cfg()).unwrap();
        for i in 0..10 {
            d.insert(grid_point(i)).unwrap();
        }
        d.checkpoint().unwrap();
        assert_eq!(d.generation(), 1);
        assert_eq!(d.wal_records(), 0);
        // Generation-0 files were swept; generation-1 files exist.
        assert!(!vfs.exists(&snapshot_path(&dir, 0)));
        assert!(!vfs.exists(&wal_path(&dir, 0)));
        assert!(vfs.exists(&snapshot_path(&dir, 1)));

        d.insert(grid_point(10)).unwrap();
        drop(d);
        let d = NnCellIndex::open_durable_with_vfs(Arc::clone(&vfs), &dir, 2, cfg()).unwrap();
        assert_eq!(d.recovery().generation, 1);
        assert_eq!(d.recovery().replayed, 1, "only post-checkpoint records replay");
        assert_eq!(d.len(), 11);
        assert_self_consistent(&d);
    }

    #[test]
    fn close_leaves_zero_replay_debt() {
        let (vfs, _fault, dir) = mem_vfs();
        let mut d =
            NnCellIndex::open_durable_with_vfs(Arc::clone(&vfs), &dir, 2, cfg()).unwrap();
        for i in 0..8 {
            d.insert(grid_point(i)).unwrap();
        }
        d.close().unwrap();
        let d = NnCellIndex::open_durable_with_vfs(Arc::clone(&vfs), &dir, 2, cfg()).unwrap();
        assert_eq!(d.recovery().replayed, 0);
        assert_eq!(d.len(), 8);
    }

    #[test]
    fn damaged_wal_tail_is_dropped_and_generation_rotated() {
        let (vfs, _fault, dir) = mem_vfs();
        let mut d =
            NnCellIndex::open_durable_with_vfs(Arc::clone(&vfs), &dir, 2, cfg()).unwrap();
        for i in 0..6 {
            d.insert(grid_point(i)).unwrap();
        }
        let generation = d.generation();
        drop(d);
        // Stomp garbage after the acknowledged records — a torn in-flight
        // append a crash left behind.
        let wal_file = wal_path(&dir, generation);
        let mut f = vfs.open_append(&wal_file).unwrap();
        f.write_all(&[0xAB, 0xCD, 0xEF]).unwrap();
        f.sync().unwrap();
        drop(f);

        let d = NnCellIndex::open_durable_with_vfs(Arc::clone(&vfs), &dir, 2, cfg()).unwrap();
        assert_eq!(d.recovery().replayed, 6);
        assert!(matches!(d.recovery().wal_tail, WalTail::Truncated { .. }));
        assert!(d.recovery().rotated);
        assert_eq!(d.generation(), generation + 1);
        assert_eq!(d.len(), 6);
        // The rotated state is clean: reopening replays nothing.
        drop(d);
        let d = NnCellIndex::open_durable_with_vfs(Arc::clone(&vfs), &dir, 2, cfg()).unwrap();
        assert_eq!(d.recovery().wal_tail, WalTail::Clean);
        assert_eq!(d.recovery().replayed, 0);
        assert_eq!(d.len(), 6);
    }

    #[test]
    fn invalid_inserts_journal_nothing() {
        let (vfs, _fault, dir) = mem_vfs();
        let mut d =
            NnCellIndex::open_durable_with_vfs(Arc::clone(&vfs), &dir, 2, cfg()).unwrap();
        d.insert(grid_point(0)).unwrap();
        let before = d.wal_records();
        assert!(matches!(
            d.insert(grid_point(0)),
            Err(DurableError::Invalid(BuildError::DuplicatePoint { .. }))
        ));
        assert!(matches!(
            d.insert(Point::new(vec![f64::NAN, 0.5])),
            Err(DurableError::Invalid(BuildError::NonFinitePoint { .. }))
        ));
        assert!(matches!(
            d.insert(Point::new(vec![0.5])),
            Err(DurableError::Invalid(BuildError::DimensionMismatch { .. }))
        ));
        assert_eq!(d.wal_records(), before, "rejected updates must not reach the WAL");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn create_from_built_index_and_reopen() {
        let (vfs, _fault, dir) = mem_vfs();
        let pts: Vec<Point> = (0..25).map(grid_point).collect();
        let built = NnCellIndex::build(pts, cfg()).unwrap();
        let d = DurableIndex::create_with_vfs(Arc::clone(&vfs), &dir, built).unwrap();
        assert_eq!(d.len(), 25);
        drop(d);
        // A second create on the same directory must refuse.
        let again = NnCellIndex::build(vec![grid_point(0)], cfg());
        assert!(matches!(
            DurableIndex::create_with_vfs(Arc::clone(&vfs), &dir, again.unwrap()),
            Err(PersistError::Corrupt(_))
        ));
        let d = DurableIndex::open_with_vfs(Arc::clone(&vfs), &dir).unwrap();
        assert_eq!(d.len(), 25);
        assert_self_consistent(&d);
    }

    #[test]
    fn dimension_mismatch_on_open_is_typed() {
        let (vfs, _fault, dir) = mem_vfs();
        let d = NnCellIndex::open_durable_with_vfs(Arc::clone(&vfs), &dir, 2, cfg()).unwrap();
        drop(d);
        assert!(matches!(
            NnCellIndex::open_durable_with_vfs(Arc::clone(&vfs), &dir, 3, cfg()),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn std_vfs_full_cycle_on_real_files() {
        let dir = std::env::temp_dir().join(format!("nncell_durable_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut d = NnCellIndex::open_durable(&dir, 2, cfg()).unwrap();
        for i in 0..12 {
            d.insert(grid_point(i)).unwrap();
        }
        assert!(d.remove(5).unwrap());
        d.checkpoint().unwrap();
        d.insert(grid_point(12)).unwrap();
        drop(d); // crash after one post-checkpoint insert

        let d = NnCellIndex::open_durable(&dir, 2, cfg()).unwrap();
        assert_eq!(d.len(), 12);
        assert!(!d.is_live(5));
        assert_eq!(d.recovery().replayed, 1);
        assert_self_consistent(&d);
        d.close().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
