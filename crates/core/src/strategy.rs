//! Constraint-selection strategies (the paper's figure 3).
//!
//! Determining a cell's MBR needs a linear program per extent; the cost is
//! driven by how many bisector constraints enter it. Each strategy picks the
//! rival points whose bisectors are used. By Lemma 1, *any* subset yields a
//! superset approximation, so every strategy preserves exact query answers.

use crate::config::{BuildConfig, Strategy};
use nncell_geom::Point;
use nncell_index::XTree;

/// Collects the rival point ids whose bisectors constrain the cell of point
/// `id` under the configured strategy.
///
/// `tree` is the data-point X-tree (ids are point indices); dead points are
/// absent from it. `live_count` sizes the Sphere radius heuristic.
pub(crate) fn gather_rival_ids(
    cfg: &BuildConfig,
    id: usize,
    points: &[Point],
    alive: &[bool],
    tree: &XTree,
    live_count: usize,
) -> Vec<usize> {
    let p = &points[id];
    let d = p.dim();
    let mut ids: Vec<usize> = match cfg.strategy {
        Strategy::Correct | Strategy::CorrectPruned => {
            (0..points.len()).filter(|&j| j != id && alive[j]).collect()
        }
        Strategy::Point => tree
            .page_point_query(p)
            .into_iter()
            .map(|x| x as usize)
            .collect(),
        Strategy::Sphere => {
            let r = cfg.effective_sphere_radius(live_count, d);
            tree.page_sphere_query(p, r)
                .into_iter()
                .map(|x| x as usize)
                .collect()
        }
        Strategy::NnDirection => nn_direction_candidates(p, id, points, tree),
    };
    ids.sort_unstable();
    ids.dedup();
    ids.retain(|&j| j != id && alive[j]);
    ids
}

/// The `4·d` NN-Direction candidates: per axis direction the nearest point
/// in that halfspace, plus (from the `8·d` nearest neighbors) the point with
/// the smallest angular deviation from that axis direction.
fn nn_direction_candidates(p: &Point, id: usize, points: &[Point], tree: &XTree) -> Vec<usize> {
    let d = p.dim();
    let mut out = Vec::with_capacity(4 * d);
    for dim in 0..d {
        for positive in [true, false] {
            if let Some(n) = tree.nn_in_halfspace(p, dim, positive) {
                out.push(n.id as usize);
            }
        }
    }
    // Axis-deviation candidates among the 8·d nearest neighbors: for each
    // signed axis, the neighbor whose offset vector has the largest cosine
    // with that axis.
    let knn = tree.knn_best_first(p, 8 * d + 1);
    for dim in 0..d {
        for sign in [1.0f64, -1.0] {
            let mut best: Option<(usize, f64)> = None;
            for n in &knn {
                let j = n.id as usize;
                if j == id {
                    continue;
                }
                let q = &points[j];
                let len = nncell_geom::dist(p, q);
                if len <= 0.0 {
                    continue;
                }
                let cos = sign * (q[dim] - p[dim]) / len;
                if cos > 0.0 && best.is_none_or(|(_, c)| cos > c) {
                    best = Some((j, cos));
                }
            }
            if let Some((j, _)) = best {
                out.push(j);
            }
        }
    }
    out
}

/// The `4·d + 1` nearest rivals, used to seed the CorrectPruned rough MBR.
pub(crate) fn nearest_rivals(p: &Point, id: usize, tree: &XTree, k: usize) -> Vec<usize> {
    tree.knn_best_first(p, k + 1)
        .into_iter()
        .map(|n| n.id as usize)
        .filter(|&j| j != id)
        .take(k)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BuildConfig;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn setup(n: usize, d: usize, seed: u64) -> (Vec<Point>, Vec<bool>, XTree) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let points: Vec<Point> = (0..n)
            .map(|_| Point::new((0..d).map(|_| rng.gen_range(0.0..1.0)).collect::<Vec<_>>()))
            .collect();
        let mut tree = XTree::for_points(d);
        for (i, p) in points.iter().enumerate() {
            tree.insert_point(p, i as u64);
        }
        let alive = vec![true; n];
        (points, alive, tree)
    }

    #[test]
    fn correct_returns_everyone_else() {
        let (points, alive, tree) = setup(50, 3, 1);
        let cfg = BuildConfig::builder().strategy(Strategy::Correct).build();
        let ids = gather_rival_ids(&cfg, 7, &points, &alive, &tree, 50);
        assert_eq!(ids.len(), 49);
        assert!(!ids.contains(&7));
    }

    #[test]
    fn correct_skips_dead_points() {
        let (points, mut alive, tree) = setup(20, 2, 2);
        alive[3] = false;
        alive[4] = false;
        let cfg = BuildConfig::builder().strategy(Strategy::Correct).build();
        let ids = gather_rival_ids(&cfg, 0, &points, &alive, &tree, 18);
        assert_eq!(ids.len(), 17);
        assert!(!ids.contains(&3) && !ids.contains(&4));
    }

    #[test]
    fn point_strategy_returns_page_mates() {
        let (points, alive, tree) = setup(200, 4, 3);
        let cfg = BuildConfig::builder().strategy(Strategy::Point).build();
        let ids = gather_rival_ids(&cfg, 11, &points, &alive, &tree, 200);
        // At minimum the other points of 11's own leaf page qualify; the set
        // must never contain the point itself.
        assert!(!ids.contains(&11));
        assert!(!ids.is_empty(), "a 200-point page region holds neighbors");
    }

    #[test]
    fn sphere_candidates_grow_with_radius() {
        let (points, alive, tree) = setup(300, 3, 4);
        let small = BuildConfig::builder().strategy(Strategy::Sphere).sphere_radius(0.05).build();
        let large = BuildConfig::builder().strategy(Strategy::Sphere).sphere_radius(0.5).build();
        let a = gather_rival_ids(&small, 5, &points, &alive, &tree, 300).len();
        let b = gather_rival_ids(&large, 5, &points, &alive, &tree, 300).len();
        assert!(a <= b, "sphere candidates must be monotone in radius");
        assert!(b > 0);
    }

    #[test]
    fn nn_direction_is_small_and_directional() {
        let d = 4;
        let (points, alive, tree) = setup(400, d, 5);
        let cfg = BuildConfig::builder().strategy(Strategy::NnDirection).build();
        let ids = gather_rival_ids(&cfg, 42, &points, &alive, &tree, 400);
        assert!(!ids.is_empty());
        assert!(
            ids.len() <= 4 * d,
            "NN-Direction is a constant-size set: {} > {}",
            ids.len(),
            4 * d
        );
        // Every axis direction with a point on that side is represented.
        let p = &points[42];
        for dim in 0..d {
            for sign in [1.0f64, -1.0] {
                let side_exists = points
                    .iter()
                    .enumerate()
                    .any(|(j, q)| j != 42 && sign * (q[dim] - p[dim]) > 0.0);
                if side_exists {
                    assert!(
                        ids.iter().any(|&j| {
                            let q = &points[j];
                            sign * (q[dim] - p[dim]) > 0.0
                        }),
                        "no candidate on side ({dim}, {sign})"
                    );
                }
            }
        }
    }

    #[test]
    fn nearest_rivals_excludes_self_and_is_sorted_by_distance() {
        let (points, _, tree) = setup(100, 3, 6);
        let ids = nearest_rivals(&points[10], 10, &tree, 12);
        assert_eq!(ids.len(), 12);
        assert!(!ids.contains(&10));
        let d0 = nncell_geom::dist(&points[10], &points[ids[0]]);
        let dl = nncell_geom::dist(&points[10], &points[ids[11]]);
        assert!(d0 <= dl);
    }
}
