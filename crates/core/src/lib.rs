//! The NN-cell index — the contribution of Berchtold, Ertl, Keim, Kriegel &
//! Seidl, *"Fast Nearest Neighbor Search in High-dimensional Space"*,
//! ICDE 1998.
//!
//! Instead of searching a point index at query time, the approach
//! **precomputes the solution space**: every database point's first-order
//! Voronoi cell (*NN-cell*) is approximated by its minimum bounding
//! rectangle (computed by `2·d` linear programs over bisector halfspaces)
//! and the rectangles are stored in an X-tree. A nearest-neighbor query is
//! then a **point query** on that index plus a distance check over the
//! returned candidates — and because every approximation is a *superset* of
//! the true cell, the result is **exact** (no false dismissals; Lemmas 1 and
//! 2 of the paper, enforced here by property tests).
//!
//! * [`Strategy`] — the four constraint-selection algorithms (*Correct*,
//!   *Point*, *Sphere*, *NN-Direction*) plus the exactness-preserving
//!   *CorrectPruned* optimization,
//! * [`decompose`] — the MBR decomposition of section 3 (splitting each cell
//!   along its most oblique dimensions to cut approximation overlap),
//! * [`NnCellIndex`] — build / query / dynamic insert & remove,
//! * [`quality`] — the paper's overlap and quality-to-performance metrics.

// Indexed loops over parallel coordinate arrays are the house style in this
// numeric code; iterator-zip rewrites obscure the math.
#![allow(clippy::needless_range_loop)]
// Library code must degrade, not panic (LP fallback chain, typed errors);
// tests may unwrap freely.
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod config;
pub mod decompose;
pub mod durable;
pub mod engine;
pub mod error;
pub mod index;
pub mod memtable;
pub mod metrics;
pub mod persist;
pub mod query;
pub mod quality;
pub mod scan;
pub mod shard;
pub mod snapshot;
pub mod strategy;
pub mod vfs;
pub mod wal;

pub use config::{BuildConfig, BuildConfigBuilder, ConstraintPool, InputPolicy, Strategy};
pub use durable::{DurableError, DurableIndex, RecoveryReport};
pub use engine::{QueryEngine, QueryScratch};
pub use error::Error;
pub use index::{
    BuildError, BuildProfile, BuildStats, CellApprox, IntegrityReport, NnCellIndex, PhaseTiming,
    QueryResult,
};
pub use memtable::{FoldConfig, FoldError, FoldStatus, TailSnapshot};
pub use metrics::{EngineMetrics, IndexMetrics, SLOW_QUERY_CAPACITY};
pub use nncell_obs::{Registry, SlowQueryEntry, SlowQueryLog, Snapshot};
pub use query::{Query, QueryError, QueryKind, QueryResponse, QueryStats};
pub use shard::ShardedIndex;
pub use snapshot::SnapshotCell;
pub use nncell_lp::SolverKind;
pub use persist::PersistError;
pub use vfs::{FaultSchedule, FaultVfs, StdVfs, Vfs, VfsFile};
pub use wal::{read_wal, WalMetrics, WalRecord, WalReplay, WalTail, WalWriter};
pub use quality::{
    average_overlap, expected_candidates, measured_candidates, quality_to_performance,
};
pub use scan::{linear_scan_knn, linear_scan_nn};
