//! The NN-cell index: build, exact queries, dynamic updates.

use crate::config::{BuildConfig, ConstraintPool, InputPolicy, Strategy};
use crate::decompose::decompose_cell;
use crate::engine::QueryEngine;
use crate::metrics::{EngineMetrics, IndexMetrics};
use crate::strategy::{gather_rival_ids, nearest_rivals};
use nncell_geom::{DataSpace, Euclidean, Mbr, Metric, Point};
use nncell_index::{IoStats, TreeConfig, TreeMetrics, XTree};
use nncell_lp::{CellLpStats, LpMetrics, VoronoiLp};
use nncell_obs::Registry;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

/// Bits of the cell-tree item id reserved for the piece index; the rest is
/// the point id. Decomposition budgets are tiny (≤ ~10 pieces), so 10 bits
/// is generous.
pub(crate) const PIECE_BITS: u32 = 10;
pub(crate) const MAX_PIECES: usize = 1 << PIECE_BITS;

/// STR bulk-load fill fraction for the build's point tree: nearly packed
/// (reads dominate a built index), with a little slack so early dynamic
/// inserts don't split every touched leaf.
const STR_FILL: f64 = 0.9;

/// Page budget for the approximate-kNN constraint-pool probe. Generous —
/// the probe is exact whenever the best-first search finishes within it —
/// yet a constant, which is the point: gathering stays O(log N + k) pages
/// instead of the strategies' O(N)-ish scans.
fn pool_page_budget(k: usize) -> usize {
    64 + 4 * k
}

/// One computed cell: pieces, LP counters, candidate count, phase timings.
type CellComputation = (Vec<Mbr>, CellLpStats, usize, CellTimings);

/// An exact nearest-neighbor answer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueryResult {
    /// Index of the winning database point.
    pub id: usize,
    /// Its distance to the query.
    pub dist: f64,
}

/// One point's stored approximation: the MBR pieces of its NN-cell.
#[derive(Clone, Debug, Default)]
pub struct CellApprox {
    /// Piece MBRs (one element when decomposition is off). Empty for
    /// removed points.
    pub pieces: Vec<Mbr>,
}

impl CellApprox {
    /// Total volume of the pieces (the paper's quality measure counts this
    /// against the data-space volume).
    pub fn volume(&self) -> f64 {
        self.pieces.iter().map(Mbr::volume).sum()
    }
}

/// Counters describing one index construction.
#[derive(Clone, Copy, Debug, Default)]
pub struct BuildStats {
    /// Aggregate LP work.
    pub lp: CellLpStats,
    /// Total rival candidates fed into bisector construction.
    pub candidates: usize,
    /// Wall-clock build time in seconds.
    pub seconds: f64,
    /// Invalid input points dropped under [`InputPolicy::Skip`].
    pub skipped_points: usize,
    /// Cells whose first-attempt pooled solve
    /// ([`crate::ConstraintPool::ApproxKnn`]) came back degenerate —
    /// infeasible or clamped — and was redone against the exhaustive pool.
    /// Always 0 under [`crate::ConstraintPool::Exhaustive`].
    pub pool_fallback_cells: usize,
    /// Cells re-solved after a dynamic insert because the new point's
    /// bisector provably cut their stored approximation.
    pub insert_refreshes: usize,
    /// Sphere-prefilter candidates the exact bisector-cut test dismissed on
    /// insert (their approximation lies strictly on their own side of the
    /// new bisector, so a re-solve could not change it).
    pub insert_refreshes_skipped: usize,
    /// Per-phase wall-clock profile (constraint selection, LP solves,
    /// decomposition, bulk load) with per-batch timings.
    pub profile: BuildProfile,
}

/// Wall-clock accumulator for one build phase.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTiming {
    /// Total nanoseconds spent in the phase.
    pub nanos: u64,
    /// Times the phase ran (once per cell for the per-cell phases; once per
    /// build for bulk load).
    pub calls: u64,
}

impl PhaseTiming {
    fn add(&mut self, nanos: u64) {
        self.nanos += nanos;
        self.calls += 1;
    }

    /// Total time in seconds.
    pub fn seconds(&self) -> f64 {
        self.nanos as f64 / 1e9
    }
}

/// Per-phase build profile, exposed via [`BuildStats::profile`] and reported
/// by the CLI `build` and `stats` subcommands.
///
/// Dynamic updates keep accruing into the per-cell phases (insert and
/// refresh recompute cells through the same path), so the profile describes
/// the index's lifetime LP effort, not just the initial build. Batch
/// counters describe the initial build's worker chunks only.
#[derive(Clone, Copy, Debug, Default)]
pub struct BuildProfile {
    /// Rival gathering and bisector assembly (for *CorrectPruned*, includes
    /// the rough pre-solve that bounds the candidate set).
    pub constraint_selection: PhaseTiming,
    /// The `2·d` extent LPs per cell.
    pub lp_solve: PhaseTiming,
    /// MBR decomposition (zero calls when decomposition is off).
    pub decomposition: PhaseTiming,
    /// Tree population: point-tree inserts plus cell-piece stores.
    pub bulk_load: PhaseTiming,
    /// Cell-computation batches (worker chunks; 1 for a sequential build).
    pub batches: u64,
    /// Total nanoseconds across batches (≈ sum of worker wall-clocks).
    pub batch_total_nanos: u64,
    /// Slowest single batch in nanoseconds (the build's critical path).
    pub batch_max_nanos: u64,
}

impl BuildProfile {
    fn absorb_cell(&mut self, t: CellTimings) {
        self.constraint_selection.add(t.constraint_ns);
        self.lp_solve.add(t.lp_ns);
        if t.decomposed {
            self.decomposition.add(t.decomp_ns);
        }
    }

    fn record_batch(&mut self, nanos: u64) {
        self.batches += 1;
        self.batch_total_nanos += nanos;
        self.batch_max_nanos = self.batch_max_nanos.max(nanos);
    }
}

/// Phase timings of one cell computation (build-profiler plumbing), plus
/// whether the pooled first attempt had to be redone exhaustively.
#[derive(Clone, Copy, Debug, Default)]
struct CellTimings {
    constraint_ns: u64,
    lp_ns: u64,
    decomp_ns: u64,
    decomposed: bool,
    pool_fellback: bool,
}

/// Outcome of [`NnCellIndex::verify_integrity`].
#[derive(Clone, Debug, Default)]
pub struct IntegrityReport {
    /// Live cells examined.
    pub checked_cells: usize,
    /// Ids whose stored approximation fails an invariant: no pieces, a
    /// non-finite or wrong-dimension piece, no piece containing the
    /// generating point, or a piece entirely outside the data space.
    pub bad_cells: Vec<usize>,
}

impl IntegrityReport {
    /// Whether every checked cell passed.
    pub fn is_ok(&self) -> bool {
        self.bad_cells.is_empty()
    }
}

/// Failures of index construction or dynamic updates.
#[derive(Debug)]
pub enum BuildError {
    /// `build` was called with no points (use [`NnCellIndex::new`] +
    /// [`NnCellIndex::insert`] to grow from empty).
    EmptyDatabase,
    /// A point's dimensionality disagrees with the index.
    DimensionMismatch {
        /// Expected dimensionality.
        expected: usize,
        /// Offending dimensionality.
        got: usize,
    },
    /// A point has a NaN or infinite coordinate.
    NonFinitePoint {
        /// Input position of the offending point.
        id: usize,
    },
    /// A point lies outside the data space (cells are clipped to it, so an
    /// outside point could not be represented faithfully).
    OutOfDataSpace {
        /// Input position of the offending point.
        id: usize,
    },
    /// A point is a bit-exact duplicate of an earlier point. Duplicates
    /// share one Voronoi cell, making "the" nearest neighbor ambiguous and
    /// their bisector degenerate (zero normal).
    DuplicatePoint {
        /// Input position of the offending point.
        id: usize,
        /// Input position of the earlier identical point.
        of: usize,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::EmptyDatabase => write!(f, "cannot build from an empty point set"),
            BuildError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            BuildError::NonFinitePoint { id } => {
                write!(f, "point {id} has a NaN or infinite coordinate")
            }
            BuildError::OutOfDataSpace { id } => {
                write!(f, "point {id} lies outside the data space")
            }
            BuildError::DuplicatePoint { id, of } => {
                write!(f, "point {id} is an exact duplicate of point {of}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// The NN-cell index over a (weighted) Euclidean metric.
///
/// See the crate docs for the approach; in short: `2·d` LPs per point
/// approximate its Voronoi cell by an MBR (optionally decomposed), the MBRs
/// live in an X-tree, and a nearest-neighbor query
/// ([`Self::engine`] + [`crate::Query::nn`]) is a point query plus a
/// distance check — exact by construction.
pub struct NnCellIndex<M: Metric = Euclidean> {
    cfg: BuildConfig,
    points: Vec<Point>,
    /// Row-major copy of `points` (`n × d`), kept in sync by every mutation.
    /// Queries read this layout: candidate distance evaluations walk
    /// contiguous memory instead of chasing one `Box<[f64]>` per point,
    /// and all query threads share the one read-only buffer.
    points_flat: Vec<f64>,
    alive: Vec<bool>,
    live_count: usize,
    cells: Vec<CellApprox>,
    point_tree: XTree,
    cell_tree: XTree,
    vlp: VoronoiLp<M>,
    build_stats: BuildStats,
    fallback_queries: std::sync::atomic::AtomicU64,
    /// Registry bindings; `None` until [`Self::attach_metrics`] — every
    /// recording site is a no-op without them.
    metrics: Option<IndexMetrics>,
}

impl NnCellIndex<Euclidean> {
    /// Builds the index over `points` with the Euclidean metric.
    ///
    /// # Errors
    /// [`BuildError::EmptyDatabase`] for an empty input,
    /// [`BuildError::DimensionMismatch`] on ragged input, or an LP failure.
    pub fn build(points: Vec<Point>, cfg: BuildConfig) -> Result<Self, BuildError> {
        Self::build_with_metric(points, cfg, Euclidean)
    }

    /// An empty Euclidean index of dimensionality `dim`, grown via
    /// [`Self::insert`].
    pub fn new(dim: usize, cfg: BuildConfig) -> Self {
        Self::new_with_metric(dim, cfg, Euclidean)
    }
}

impl<M: Metric> NnCellIndex<M> {
    /// An empty index with an explicit metric.
    pub fn new_with_metric(dim: usize, cfg: BuildConfig, metric: M) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        assert!(
            cfg.decompose_pieces.unwrap_or(1) <= MAX_PIECES,
            "decomposition budget exceeds {MAX_PIECES}"
        );
        let space = DataSpace::unit(dim);
        let vlp = VoronoiLp::new(metric, space, cfg.solver).with_budget(cfg.lp_budget);
        let point_tree = XTree::with_config(
            TreeConfig::xtree(dim)
                .with_block_size(cfg.block_size)
                .with_point_leaves(true),
        );
        let cell_tree = XTree::with_config(TreeConfig::xtree(dim).with_block_size(cfg.block_size));
        Self {
            cfg,
            points: Vec::new(),
            points_flat: Vec::new(),
            alive: Vec::new(),
            live_count: 0,
            cells: Vec::new(),
            point_tree,
            cell_tree,
            vlp,
            build_stats: BuildStats::default(),
            fallback_queries: std::sync::atomic::AtomicU64::new(0),
            metrics: None,
        }
    }

    /// Builds the index over `points` with an explicit metric.
    ///
    /// # Errors
    /// See [`NnCellIndex::build`].
    pub fn build_with_metric(
        points: Vec<Point>,
        cfg: BuildConfig,
        metric: M,
    ) -> Result<Self, BuildError> {
        let Some(first) = points.first() else {
            return Err(BuildError::EmptyDatabase);
        };
        let dim = first.dim();
        let start = Instant::now();
        let (accepted, skipped) = validate_build_inputs(points, dim, cfg.input_policy)?;
        let mut idx = Self::new_with_metric(dim, cfg, metric);
        idx.build_stats.skipped_points = skipped;
        // Phase 1: the data-point tree (the strategies and the pooled
        // probe query it). STR bulk loading replaces the old per-point
        // insert loop: O(N log N) sorts instead of O(N log N) page touches
        // with splits, and the packed, near-overlap-free leaves make every
        // later probe cheaper. Later dynamic inserts still go through the
        // X-tree overflow cascade.
        let load_start = Instant::now();
        if !accepted.is_empty() {
            let items: Vec<(Mbr, u64)> = accepted
                .iter()
                .enumerate()
                .map(|(i, p)| (Mbr::from_point(p.as_slice()), i as u64))
                .collect();
            idx.point_tree = XTree::bulk_load(
                TreeConfig::xtree(dim)
                    .with_block_size(idx.cfg.block_size)
                    .with_point_leaves(true),
                items,
                STR_FILL,
            );
        }
        let mut load_nanos = elapsed_nanos(load_start);
        idx.points = accepted;
        idx.rebuild_flat();
        idx.alive = vec![true; idx.points.len()];
        idx.live_count = idx.points.len();
        idx.cells = vec![CellApprox::default(); idx.points.len()];
        // Phase 2: one cell approximation per point. Cells are independent
        // given the (now read-only) point tree, so this fans out across
        // `cfg.threads` workers; results are stored sequentially afterwards.
        let n = idx.points.len();
        let threads = idx.cfg.threads.clamp(1, n.max(1));
        let results: Vec<CellComputation> = if threads == 1 {
            let batch_start = Instant::now();
            let r = (0..n).map(|id| idx.compute_cell_pieces(id)).collect();
            idx.build_stats
                .profile
                .record_batch(elapsed_nanos(batch_start));
            r
        } else {
            let idx_ref = &idx;
            let chunk = n.div_ceil(threads);
            let partials: Vec<(Vec<(usize, CellComputation)>, u64)> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..threads)
                    .map(|w| {
                        s.spawn(move || {
                            let batch_start = Instant::now();
                            let lo = w * chunk;
                            let hi = ((w + 1) * chunk).min(n);
                            let part: Vec<(usize, CellComputation)> = (lo..hi)
                                .map(|id| (id, idx_ref.compute_cell_pieces(id)))
                                .collect();
                            (part, elapsed_nanos(batch_start))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("cell worker panicked"))
                    .collect()
            });
            let mut collected: Vec<Option<CellComputation>> = (0..n).map(|_| None).collect();
            for (part, batch_nanos) in partials {
                if !part.is_empty() {
                    idx.build_stats.profile.record_batch(batch_nanos);
                }
                for (id, r) in part {
                    collected[id] = Some(r);
                }
            }
            collected
                .into_iter()
                .map(|r| r.expect("every id covered by exactly one worker"))
                .collect()
        };
        // STR bulk load for the cell tree as well: per-piece inserts into
        // an X-tree of heavily overlapping high-d cell MBRs degrade
        // super-linearly (supernodes grow, and every insert walks them),
        // which measurably dominated large builds. Packing the finished
        // pieces once is O(N log N) and the query path is tree-shape
        // agnostic, so answers are unchanged.
        let store_start = Instant::now();
        let mut cell_items: Vec<(Mbr, u64)> = Vec::with_capacity(results.len());
        for (id, (pieces, stats, cands, timings)) in results.into_iter().enumerate() {
            idx.build_stats.lp.merge(stats);
            idx.build_stats.candidates += cands;
            idx.build_stats.pool_fallback_cells += timings.pool_fellback as usize;
            idx.build_stats.profile.absorb_cell(timings);
            debug_assert!(pieces.len() <= MAX_PIECES);
            for (piece_idx, mbr) in pieces.iter().enumerate() {
                let key = ((id as u64) << PIECE_BITS) | piece_idx as u64;
                cell_items.push((mbr.clone(), key));
            }
            idx.cells[id] = CellApprox { pieces };
        }
        if !cell_items.is_empty() {
            idx.cell_tree = XTree::bulk_load(
                TreeConfig::xtree(dim).with_block_size(idx.cfg.block_size),
                cell_items,
                STR_FILL,
            );
        }
        load_nanos += elapsed_nanos(store_start);
        idx.build_stats.profile.bulk_load.add(load_nanos);
        idx.build_stats.seconds = start.elapsed().as_secs_f64();
        Ok(idx)
    }

    // ------------------------------------------------------------------
    // accessors
    // ------------------------------------------------------------------

    /// Number of live points.
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// Whether the index holds no live points.
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.vlp.space().dim()
    }

    /// The build configuration.
    pub fn config(&self) -> &BuildConfig {
        &self.cfg
    }

    /// All stored points (including removed slots; check [`Self::is_live`]).
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Whether point `id` is live.
    pub fn is_live(&self, id: usize) -> bool {
        self.alive.get(id).copied().unwrap_or(false)
    }

    /// The stored approximation of point `id`'s NN-cell.
    pub fn cell(&self, id: usize) -> Option<&CellApprox> {
        if self.is_live(id) {
            self.cells.get(id)
        } else {
            None
        }
    }

    /// Construction counters.
    pub fn build_stats(&self) -> &BuildStats {
        &self.build_stats
    }

    /// Cost counters of the cell X-tree (what queries pay).
    pub fn cell_tree_stats(&self) -> IoStats {
        self.cell_tree.stats()
    }

    /// Cost counters of the data-point X-tree (what builds/updates pay).
    pub fn point_tree_stats(&self) -> IoStats {
        self.point_tree.stats()
    }

    /// Number of queries that fell back to a scan (queries outside the unit
    /// data space; always exact, never expected for in-space queries).
    pub fn fallback_queries(&self) -> u64 {
        self.fallback_queries
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    pub(crate) fn count_fallback(&self) {
        self.fallback_queries
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Resets both trees' cost counters.
    pub fn reset_stats(&self) {
        self.cell_tree.reset_stats();
        self.point_tree.reset_stats();
    }

    // ------------------------------------------------------------------
    // observability
    // ------------------------------------------------------------------

    /// Attaches a metrics registry to this index: query latency, candidate
    /// and page histograms, the slow-query ring, tree I/O counters, and the
    /// LP aggregates all start recording into `registry`. Idempotent — a
    /// second call is a no-op (the first registry wins).
    ///
    /// The [`CellLpStats`]-mirrored counters (`nncell_lp_calls_total` & co.)
    /// are seeded with the build totals, so the registry agrees with
    /// [`Self::build_stats`] from the first snapshot on; the tree counters
    /// are seeded the same way inside `nncell_index::CostTracker`.
    pub fn attach_metrics(&mut self, registry: Arc<Registry>) {
        self.attach_metrics_labeled(registry, &[]);
    }

    /// Like [`Self::attach_metrics`] but the engine, gauge, and tree series
    /// carry the given label set (e.g. `shard="2"` — see
    /// [`nncell_obs::format_labels`]). The LP solver-chain and
    /// [`CellLpStats`] mirror counters stay unlabeled: per-shard builds sum
    /// into exactly the unsharded totals, so one shared family preserves
    /// the registry == `build_stats().lp` invariant.
    pub fn attach_metrics_labeled(&mut self, registry: Arc<Registry>, labels: &[(&str, &str)]) {
        if self.metrics.is_some() {
            return;
        }
        let m = IndexMetrics::register_labeled(registry.clone(), self.dim(), labels);
        m.seed_lp_totals(&self.build_stats.lp);
        self.cell_tree
            .bind_metrics(TreeMetrics::register_labeled(&registry, "cell_tree", labels));
        self.point_tree
            .bind_metrics(TreeMetrics::register_labeled(&registry, "point_tree", labels));
        self.vlp.set_metrics(LpMetrics::register(&registry));
        self.metrics = Some(m);
        self.refresh_gauges();
    }

    /// The attached metrics bundle, if any.
    pub fn metrics(&self) -> Option<&IndexMetrics> {
        self.metrics.as_ref()
    }

    /// Query-path handles for the engine (`None` without a registry).
    pub(crate) fn engine_metrics(&self) -> Option<&EngineMetrics> {
        self.metrics.as_ref().map(IndexMetrics::engine)
    }

    /// Re-publishes the structural gauges after a mutation.
    fn refresh_gauges(&self) {
        if let Some(m) = &self.metrics {
            m.live_points.set(self.live_count as i64);
            m.cell_tree_pages.set(self.cell_tree.total_pages() as i64);
        }
    }

    /// Mirrors one per-cell LP delta into the registry (no-op without one).
    fn record_lp_delta(&self, delta: &CellLpStats) {
        if let Some(m) = &self.metrics {
            m.record_lp_stats(delta);
        }
    }

    /// Enables a simulated LRU page cache of `pages` pages on the cell tree
    /// (0 disables) — the structure queries actually read.
    pub fn enable_cache(&self, pages: usize) {
        self.cell_tree.enable_cache(pages);
    }

    /// Total simulated pages occupied by the cell X-tree.
    pub fn cell_tree_pages(&self) -> u64 {
        self.cell_tree.total_pages()
    }

    /// Total pieces stored in the cell tree.
    pub fn total_pieces(&self) -> usize {
        self.cells.iter().map(|c| c.pieces.len()).sum()
    }

    // ------------------------------------------------------------------
    // queries (execution lives in the QueryEngine)
    // ------------------------------------------------------------------

    /// A parallel [`QueryEngine`] session over this index — the query API.
    /// Engines are free to construct (they borrow the index) and any number
    /// may run concurrently.
    pub fn engine(&self) -> QueryEngine<'_, M> {
        QueryEngine::new(self)
    }

    // ------------------------------------------------------------------
    // engine plumbing (read-only views shared by all query threads)
    // ------------------------------------------------------------------

    /// The cell X-tree (read-only view for query execution).
    pub(crate) fn cell_tree(&self) -> &XTree {
        &self.cell_tree
    }

    /// The liveness mask, indexed by point id.
    /// The data-point tree (radius queries ride its sphere path).
    pub(crate) fn point_tree(&self) -> &XTree {
        &self.point_tree
    }

    pub(crate) fn alive(&self) -> &[bool] {
        &self.alive
    }

    /// The metric in use.
    pub(crate) fn metric(&self) -> &M {
        self.vlp.metric()
    }

    /// The data space cells are clipped to.
    pub(crate) fn space(&self) -> &nncell_geom::DataSpace {
        self.vlp.space()
    }

    /// Row `id` of the flat point layout.
    #[inline]
    pub(crate) fn flat_point(&self, id: usize) -> &[f64] {
        let d = self.vlp.space().dim();
        &self.points_flat[id * d..(id + 1) * d]
    }

    /// Rebuilds the flat layout from `points` (bulk build / load).
    fn rebuild_flat(&mut self) {
        self.points_flat.clear();
        self.points_flat
            .reserve(self.points.len() * self.vlp.space().dim());
        for p in &self.points {
            self.points_flat.extend_from_slice(p.as_slice());
        }
    }

    // ------------------------------------------------------------------
    // integrity
    // ------------------------------------------------------------------

    /// Checks the structural invariants of every live cell approximation:
    /// each must have at least one piece, every piece must be finite, of the
    /// right dimensionality, and overlap the data space, and at least one
    /// piece must contain the generating point (the point lies in its own
    /// cell, and the pieces cover the cell — Lemma 2's covering property).
    ///
    /// A cell that fails any of these could cause a false dismissal, which
    /// is exactly what the NN-cell guarantee forbids. [`Self::repair`]
    /// recomputes offending cells from the stored points.
    pub fn verify_integrity(&self) -> IntegrityReport {
        const TOL: f64 = 1e-9;
        let d = self.dim();
        let space = self.vlp.space();
        let mut report = IntegrityReport::default();
        for id in 0..self.points.len() {
            if !self.is_live(id) {
                continue;
            }
            report.checked_cells += 1;
            let p = &self.points[id];
            let pieces = &self.cells[id].pieces;
            let structurally_sound = !pieces.is_empty()
                && pieces.iter().all(|m| {
                    m.dim() == d
                        && (0..d).all(|i| {
                            m.lo()[i].is_finite()
                                && m.hi()[i].is_finite()
                                // Overlaps the data space (cells are clipped
                                // to it, so a disjoint piece is garbage).
                                && m.lo()[i] <= space.hi(i) + TOL
                                && m.hi()[i] >= space.lo(i) - TOL
                        })
                });
            let covers_point = structurally_sound
                && pieces.iter().any(|m| {
                    (0..d).all(|i| p[i] >= m.lo()[i] - TOL && p[i] <= m.hi()[i] + TOL)
                });
            if !covers_point {
                report.bad_cells.push(id);
            }
        }
        report
    }

    /// Recomputes every cell [`Self::verify_integrity`] flags, restoring the
    /// superset invariant from the stored points. Returns the number of
    /// cells repaired.
    pub fn repair(&mut self) -> usize {
        let bad = self.verify_integrity().bad_cells;
        for &id in &bad {
            self.refresh_cell(id);
        }
        bad.len()
    }

    // ------------------------------------------------------------------
    // dynamic updates
    // ------------------------------------------------------------------

    /// Inserts a new point, computing its cell and (when
    /// [`BuildConfig::refine_on_insert`] is set) re-tightening the affected
    /// neighbor cells. Exactness holds either way: existing approximations
    /// stay supersets of their (shrunken) true cells.
    ///
    /// Returns the new point's id.
    ///
    /// # Errors
    /// Rejects invalid points with the matching [`BuildError`] variant —
    /// wrong dimensionality, NaN/∞ coordinates, outside the data space, or a
    /// bit-exact duplicate of a live point (regardless of
    /// [`InputPolicy`]: an insert must return an id, so there is nothing to
    /// skip to). LP trouble never fails an insert; it degrades to the
    /// data-space clamp.
    pub fn insert(&mut self, p: Point) -> Result<usize, BuildError> {
        self.validate_insert(&p)?;
        let id = self.points.len();
        self.point_tree.insert_point(&p, id as u64);
        self.points_flat.extend_from_slice(p.as_slice());
        self.points.push(p);
        self.alive.push(true);
        self.cells.push(CellApprox::default());
        self.live_count += 1;

        let (pieces, stats, cands, timings) = self.compute_cell_pieces(id);
        self.build_stats.lp.merge(stats);
        self.build_stats.candidates += cands;
        self.build_stats.pool_fallback_cells += timings.pool_fellback as usize;
        self.build_stats.profile.absorb_cell(timings);
        self.record_lp_delta(&stats);
        self.store_cell(id, pieces);

        if self.cfg.refine_on_insert && self.live_count > 1 {
            // The cells that must shrink are those the new point's bisectors
            // cut; all of them lie within twice the new point's NN distance
            // sphere (conservative, and refinement is a quality matter only).
            let nn = self
                .point_tree
                .knn_best_first(&self.points[id], 2)
                .into_iter()
                .find(|n| n.id != id as u64);
            if let Some(nn) = nn {
                let r = 2.0 * nn.dist;
                let mut affected: Vec<usize> = self
                    .cell_tree
                    .sphere_query(&self.points[id], r)
                    .into_iter()
                    .map(|h| (h >> PIECE_BITS) as usize)
                    .filter(|&pid| pid != id && self.alive[pid])
                    .collect();
                affected.sort_unstable();
                affected.dedup();
                // Incremental re-solve: of the sphere-prefilter candidates,
                // only cells whose stored approximation the new bisector
                // actually cuts are dirty. The cut test is exact and O(d)
                // per piece — the difference of squared distances is linear
                // in x, so its minimum over a box is attained corner-wise —
                // and a clean (uncut) approximation cannot change under a
                // re-solve: the polytope is inside the box, so the new
                // constraint is inactive over all of it.
                let q = self.points[id].clone();
                for pid in affected {
                    let cut = self.cells[pid].pieces.iter().any(|m| {
                        bisector_cuts_mbr(
                            self.vlp.metric(),
                            q.as_slice(),
                            self.points[pid].as_slice(),
                            m,
                        )
                    });
                    if cut {
                        self.build_stats.insert_refreshes += 1;
                        self.refresh_cell(pid);
                    } else {
                        self.build_stats.insert_refreshes_skipped += 1;
                    }
                }
            }
        }
        self.refresh_gauges();
        Ok(id)
    }

    /// The checks [`Self::insert`] would apply to `p`, without mutating
    /// anything: dimensionality, finiteness, data-space membership, and the
    /// exact-duplicate check against the nearest live point. The WAL layer
    /// calls this *before* journaling so invalid points never reach the log.
    ///
    /// # Errors
    /// The same [`BuildError`] variants `insert` would return.
    pub fn validate_insert(&self, p: &Point) -> Result<(), BuildError> {
        let id = self.points.len();
        validate_point(p, id, self.dim(), self.vlp.space())?;
        if let Some(of) = self.find_live_duplicate(p) {
            return Err(BuildError::DuplicatePoint { id, of });
        }
        Ok(())
    }

    /// The id of a live point bit-identical to `p`, if one exists. A
    /// bit-identical point is at metric distance zero from its twin, so the
    /// nearest live point suffices as the only candidate. Shared by
    /// [`Self::validate_insert`] and the cross-shard duplicate check of
    /// [`crate::ShardedIndex`].
    pub(crate) fn find_live_duplicate(&self, p: &Point) -> Option<usize> {
        if self.live_count == 0 {
            return None;
        }
        let nn = self
            .point_tree
            .knn_best_first(p, 1)
            .into_iter()
            .find(|n| self.alive[n.id as usize])?;
        let of = nn.id as usize;
        (self.points[of].as_slice() == p.as_slice()).then_some(of)
    }

    /// Removes point `id`. The cells that bordered it are recomputed — when
    /// a rival disappears, neighbor cells *grow*, so skipping this step
    /// would break exactness (unlike on insert).
    ///
    /// Returns `false` when `id` was not live. Infallible: recomputation
    /// rides the LP fallback chain, which terminally clamps rather than
    /// fails.
    pub fn remove(&mut self, id: usize) -> bool {
        if !self.is_live(id) {
            return false;
        }
        self.alive[id] = false;
        self.live_count -= 1;
        let removed = self
            .point_tree
            .delete(&Mbr::from_point(&self.points[id]), id as u64);
        debug_assert!(removed, "point tree out of sync");
        let old = std::mem::take(&mut self.cells[id]);
        for (piece_idx, mbr) in old.pieces.iter().enumerate() {
            let key = ((id as u64) << PIECE_BITS) | piece_idx as u64;
            let removed = self.cell_tree.delete(mbr, key);
            debug_assert!(removed, "cell tree out of sync");
        }
        if self.live_count == 0 {
            self.refresh_gauges();
            return true;
        }
        // Every cell that could gain region intersects the removed cell's
        // approximation (Voronoi neighbors share a face; approximations are
        // supersets).
        if let Some(union) = Mbr::union_all(old.pieces.iter()) {
            let mut affected: Vec<usize> = self
                .cell_tree
                .window_query(&union)
                .into_iter()
                .map(|h| (h >> PIECE_BITS) as usize)
                .filter(|&pid| self.alive[pid])
                .collect();
            affected.sort_unstable();
            affected.dedup();
            for pid in affected {
                self.refresh_cell(pid);
            }
        }
        self.refresh_gauges();
        true
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    /// Computes the (possibly decomposed) approximation of `id`'s cell.
    /// Infallible: LP breakdowns degrade to the data-space clamp inside
    /// [`VoronoiLp`], which keeps the approximation a superset (Lemma 1).
    ///
    /// Under [`ConstraintPool::ApproxKnn`] the first attempt runs the
    /// `2·d` LPs against the point's approximate k-nearest neighbors only
    /// (probed from the point tree); a degenerate outcome — infeasible or
    /// clamped, the "pool too tight" signal — falls back to the exhaustive
    /// strategy gathering below and is counted in
    /// [`BuildStats::pool_fallback_cells`].
    fn compute_cell_pieces(&self, id: usize) -> CellComputation {
        let p = &self.points[id];
        let d = self.dim();
        let seed = self.cfg.seed ^ ((id as u64).wrapping_mul(0x9e3779b97f4a7c15));
        let mut stats = CellLpStats::default();
        let mut timings = CellTimings::default();

        if let ConstraintPool::ApproxKnn { .. } = self.cfg.pool {
            let k = self.cfg.effective_pool_k(d);
            if self.live_count > k + 1 {
                let phase_start = Instant::now();
                // k+1 because the probe finds the point itself first.
                let (near, _proven) = self.point_tree.approx_knn(p, k + 1, pool_page_budget(k));
                let rivals: Vec<usize> = near
                    .iter()
                    .map(|n| n.id as usize)
                    .filter(|&j| j != id && self.alive[j])
                    .collect();
                let cons = self
                    .vlp
                    .bisectors(p, rivals.iter().map(|&j| self.points[j].as_slice()));
                let n_cands = cons.len();
                timings.constraint_ns = elapsed_nanos(phase_start);

                let phase_start = Instant::now();
                let (solve, degenerate) =
                    self.vlp.extents_pooled(&cons, p, self.cfg.solver, seed);
                stats.merge(solve.stats);
                timings.lp_ns = elapsed_nanos(phase_start);
                if !degenerate {
                    let pieces = self.finish_pieces(&cons, &solve, seed, &mut stats, &mut timings);
                    return (pieces, stats, n_cands, timings);
                }
                // Pool too tight: keep the failed attempt's LP accounting
                // and redo the cell with exhaustive gathering.
                timings.pool_fellback = true;
            }
        }

        let phase_start = Instant::now();
        let cons = if self.cfg.strategy == Strategy::CorrectPruned && self.live_count > 4 * d + 1 {
            // Exactness-preserving two-step prune (see nncell-lp docs):
            // 1. rough superset MBR from the 4·d nearest rivals;
            // 2. only rivals within twice the rough box's max corner
            //    distance can have a bisector cutting that box, so a tree
            //    sphere query bounds the candidate set without scanning N;
            // 3. the per-bisector prune drops the rest.
            let near = nearest_rivals(p, id, &self.point_tree, 4 * d);
            let near_cons = self
                .vlp
                .bisectors(p, near.iter().map(|&j| self.points[j].as_slice()));
            // A data point is strictly inside its own cell, so the LPs are
            // feasible; a numerically contradictory outcome falls back to
            // the warm-started solve (still a superset).
            let rough = self
                .vlp
                .extents(&near_cons, seed ^ ROUGH_SALT)
                .unwrap_or_else(|| self.vlp.extents_from(&near_cons, p, seed ^ ROUGH_SALT));
            stats.merge(rough.stats);
            // Max metric distance from p to the rough box (corner-wise),
            // then converted conservatively to a Euclidean tree-query radius
            // via the smallest metric weight.
            let mut max_d2 = 0.0;
            let mut w_min = f64::INFINITY;
            for i in 0..d {
                let dd = (p[i] - rough.mbr.lo()[i])
                    .abs()
                    .max((p[i] - rough.mbr.hi()[i]).abs());
                let w = self.vlp.metric().weight(i);
                max_d2 += w * dd * dd;
                w_min = w_min.min(w);
            }
            let r_cut = 2.0 * max_d2.sqrt() / w_min.sqrt();
            let mut rivals: Vec<usize> = self
                .point_tree
                .sphere_query(p, r_cut)
                .into_iter()
                .map(|x| x as usize)
                .filter(|&j| j != id && self.alive[j])
                .collect();
            rivals.sort_unstable();
            rivals.dedup();
            let all = self
                .vlp
                .bisectors(p, rivals.iter().map(|&j| self.points[j].as_slice()));
            VoronoiLp::<M>::prune_constraints(all, &rough.mbr)
        } else {
            let rivals = gather_rival_ids(
                &self.cfg,
                id,
                &self.points,
                &self.alive,
                &self.point_tree,
                self.live_count,
            );
            self.vlp
                .bisectors(p, rivals.iter().map(|&j| self.points[j].as_slice()))
        };
        let n_cands = cons.len();
        timings.constraint_ns += elapsed_nanos(phase_start);

        // The Best–Ritter active-set backend wants a feasible start; the
        // data point is one (it lies strictly inside its own cell).
        let phase_start = Instant::now();
        let solve = if self.cfg.solver == nncell_lp::SolverKind::ActiveSet {
            self.vlp.extents_from(&cons, p, seed)
        } else {
            // A data point's cell cannot be empty; `None` only on numerical
            // contradiction, where the warm-started path still yields a
            // valid superset.
            self.vlp
                .extents(&cons, seed)
                .unwrap_or_else(|| self.vlp.extents_from(&cons, p, seed))
        };
        stats.merge(solve.stats);
        timings.lp_ns += elapsed_nanos(phase_start);

        let pieces = self.finish_pieces(&cons, &solve, seed, &mut stats, &mut timings);
        (pieces, stats, n_cands, timings)
    }

    /// Shared tail of both gathering paths: optional decomposition of a
    /// solved cell into its piece MBRs.
    fn finish_pieces(
        &self,
        cons: &[nncell_geom::Halfspace],
        solve: &nncell_lp::CellSolve,
        seed: u64,
        stats: &mut CellLpStats,
        timings: &mut CellTimings,
    ) -> Vec<Mbr> {
        match self.cfg.decompose_pieces {
            Some(k) if k > 1 => {
                let phase_start = Instant::now();
                let (pieces, dstats) = decompose_cell(&self.vlp, cons, solve, k, seed);
                stats.merge(dstats);
                timings.decomp_ns += elapsed_nanos(phase_start);
                timings.decomposed = true;
                pieces
            }
            _ => vec![solve.mbr.clone()],
        }
    }

    /// Replaces `id`'s stored pieces in the cell tree.
    fn store_cell(&mut self, id: usize, pieces: Vec<Mbr>) {
        debug_assert!(pieces.len() <= MAX_PIECES);
        for (piece_idx, mbr) in pieces.iter().enumerate() {
            let key = ((id as u64) << PIECE_BITS) | piece_idx as u64;
            self.cell_tree.insert(mbr.clone(), key);
        }
        self.cells[id] = CellApprox { pieces };
    }

    /// Loader plumbing: registers a persisted point in the point tree.
    pub(crate) fn point_tree_insert(&mut self, p: &Point, id: usize) {
        self.point_tree.insert_point(p, id as u64);
    }

    /// Loader plumbing: installs persisted points and cell pieces without
    /// running any LP.
    pub(crate) fn install_cells(
        &mut self,
        points: Vec<Point>,
        alive: Vec<bool>,
        all_pieces: Vec<Vec<Mbr>>,
    ) {
        debug_assert_eq!(points.len(), alive.len());
        debug_assert_eq!(points.len(), all_pieces.len());
        self.live_count = alive.iter().filter(|a| **a).count();
        self.points = points;
        self.rebuild_flat();
        self.alive = alive;
        self.cells = vec![CellApprox::default(); self.points.len()];
        // Same STR bulk load as the build path: loading reruns zero LPs,
        // so tree packing is all this costs — and per-piece inserts into
        // the overlap-heavy cell tree are the super-linear part.
        let dim = self.dim();
        let mut cell_items: Vec<(Mbr, u64)> = Vec::with_capacity(all_pieces.len());
        for (id, pieces) in all_pieces.into_iter().enumerate() {
            if self.alive[id] {
                debug_assert!(pieces.len() <= MAX_PIECES);
                for (piece_idx, mbr) in pieces.iter().enumerate() {
                    let key = ((id as u64) << PIECE_BITS) | piece_idx as u64;
                    cell_items.push((mbr.clone(), key));
                }
                self.cells[id] = CellApprox { pieces };
            }
        }
        if !cell_items.is_empty() {
            self.cell_tree = XTree::bulk_load(
                TreeConfig::xtree(dim).with_block_size(self.cfg.block_size),
                cell_items,
                STR_FILL,
            );
        }
    }

    fn refresh_cell(&mut self, id: usize) {
        let (pieces, stats, cands, timings) = self.compute_cell_pieces(id);
        self.build_stats.lp.merge(stats);
        self.build_stats.candidates += cands;
        self.build_stats.pool_fallback_cells += timings.pool_fellback as usize;
        self.build_stats.profile.absorb_cell(timings);
        self.record_lp_delta(&stats);
        let old = std::mem::take(&mut self.cells[id]);
        for (piece_idx, mbr) in old.pieces.iter().enumerate() {
            let key = ((id as u64) << PIECE_BITS) | piece_idx as u64;
            let removed = self.cell_tree.delete(mbr, key);
            debug_assert!(removed, "cell tree out of sync during refresh");
        }
        self.store_cell(id, pieces);
    }
}

/// Deep copy used by the copy-on-write shard snapshots
/// ([`crate::ShardedIndex`]): point storage and both tree arenas are
/// cloned, the fallback counter's value is carried over, and an attached
/// metrics bundle keeps recording into the same registry series (every
/// handle is an `Arc`; cloning never re-seeds a counter).
impl<M: Metric> Clone for NnCellIndex<M> {
    fn clone(&self) -> Self {
        Self {
            cfg: self.cfg.clone(),
            points: self.points.clone(),
            points_flat: self.points_flat.clone(),
            alive: self.alive.clone(),
            live_count: self.live_count,
            cells: self.cells.clone(),
            point_tree: self.point_tree.clone(),
            cell_tree: self.cell_tree.clone(),
            vlp: self.vlp.clone(),
            build_stats: self.build_stats,
            fallback_queries: std::sync::atomic::AtomicU64::new(
                self.fallback_queries
                    .load(std::sync::atomic::Ordering::Relaxed),
            ),
            metrics: self.metrics.clone(),
        }
    }
}

/// Seed salt distinguishing the CorrectPruned rough solve from the final
/// solve ("rough" in ASCII).
const ROUGH_SALT: u64 = 0x726f756768;

/// Elapsed nanoseconds since `start`, saturating into `u64` (≈ 584 years).
fn elapsed_nanos(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Whether the bisector between a newly inserted point `q` and a cell
/// owner `p` can cut the box `mbr` — i.e. some x in the box is at least as
/// close to `q` as to `p`.
///
/// The (weighted) difference of squared distances
/// `f(x) = Σᵢ wᵢ·[(xᵢ−qᵢ)² − (xᵢ−pᵢ)²] = Σᵢ wᵢ·[2xᵢ(pᵢ−qᵢ) + qᵢ²−pᵢ²]`
/// is *linear* in x, so its minimum over an axis-aligned box is attained
/// corner-wise per dimension: O(d), exact, no LP. If that minimum is
/// positive, the whole box — and therefore the cell polytope inside it —
/// lies strictly on `p`'s side of the bisector, so re-solving the cell
/// with `q`'s constraint added cannot change it (the constraint is
/// inactive over the entire feasible region). The epsilon keeps the test
/// conservative: near-tangent boxes refresh rather than skip.
pub(crate) fn bisector_cuts_mbr<M: Metric>(metric: &M, q: &[f64], p: &[f64], mbr: &Mbr) -> bool {
    let mut min_f = 0.0;
    for i in 0..q.len() {
        let w = metric.weight(i);
        let a = 2.0 * w * (p[i] - q[i]);
        let x = if a > 0.0 { mbr.lo()[i] } else { mbr.hi()[i] };
        min_f += a * x + w * (q[i] * q[i] - p[i] * p[i]);
    }
    min_f <= 1e-9
}

/// Input validation shared by the unsharded and sharded builds: NaN/∞,
/// dimensionality, data-space membership, bit-exact duplicates. Under
/// [`InputPolicy::Skip`] offenders are dropped and counted; ids are assigned
/// to the survivors in input order. Returns `(accepted, skipped)`.
pub(crate) fn validate_build_inputs(
    points: Vec<Point>,
    dim: usize,
    policy: InputPolicy,
) -> Result<(Vec<Point>, usize), BuildError> {
    let space = DataSpace::unit(dim);
    let mut accepted: Vec<Point> = Vec::with_capacity(points.len());
    let mut seen: HashSet<Vec<u64>> = HashSet::with_capacity(points.len());
    let mut first_seen: Vec<usize> = Vec::with_capacity(points.len());
    let mut skipped = 0usize;
    for (id, p) in points.into_iter().enumerate() {
        let verdict = validate_point(&p, id, dim, &space).and_then(|()| {
            let bits: Vec<u64> = p.as_slice().iter().map(|c| c.to_bits()).collect();
            if seen.insert(bits) {
                Ok(())
            } else {
                let of = accepted
                    .iter()
                    .position(|q| q.as_slice() == p.as_slice())
                    .map(|i| first_seen[i])
                    .unwrap_or(id);
                Err(BuildError::DuplicatePoint { id, of })
            }
        });
        match (verdict, policy) {
            (Ok(()), _) => {
                accepted.push(p);
                first_seen.push(id);
            }
            (Err(e), InputPolicy::Reject) => return Err(e),
            (Err(_), InputPolicy::Skip) => skipped += 1,
        }
    }
    if accepted.is_empty() {
        return Err(BuildError::EmptyDatabase);
    }
    Ok((accepted, skipped))
}

/// Validates one input point (dimensionality, finiteness, data-space
/// membership). Duplicate detection happens at the call sites, which have
/// the surrounding point set.
pub(crate) fn validate_point(
    p: &Point,
    id: usize,
    dim: usize,
    space: &DataSpace,
) -> Result<(), BuildError> {
    if p.dim() != dim {
        return Err(BuildError::DimensionMismatch {
            expected: dim,
            got: p.dim(),
        });
    }
    if p.as_slice().iter().any(|c| !c.is_finite()) {
        return Err(BuildError::NonFinitePoint { id });
    }
    if !space.contains(p.as_slice()) {
        return Err(BuildError::OutOfDataSpace { id });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::QueryEngine;
    use crate::query::Query;
    use crate::scan::linear_scan_nn;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// NN through the typed engine, with the old shim's `Option` shape.
    fn nn<M: Metric>(idx: &NnCellIndex<M>, q: &[f64]) -> Option<QueryResult> {
        QueryEngine::sequential(idx)
            .execute(&Query::nn(q))
            .ok()
            .map(|r| r.best)
    }

    /// k-NN through the typed engine; empty on any query error.
    fn knn<M: Metric>(idx: &NnCellIndex<M>, q: &[f64], k: usize) -> Vec<QueryResult> {
        QueryEngine::sequential(idx)
            .execute(&Query::knn(q, k))
            .map(crate::query::QueryResponse::into_results)
            .unwrap_or_default()
    }

    fn uniform(n: usize, d: usize, seed: u64) -> Vec<Point> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new((0..d).map(|_| rng.gen_range(0.0..1.0)).collect::<Vec<_>>()))
            .collect()
    }

    fn queries(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect()
    }

    fn assert_exact<M: Metric>(idx: &NnCellIndex<M>, pts: &[Point], qs: &[Vec<f64>]) {
        for q in qs {
            let got = nn(idx, q).expect("non-empty");
            let want = linear_scan_nn(pts, q).unwrap();
            // Distances must agree exactly (ids may differ only on perfect
            // ties, which have probability zero for random data).
            assert!(
                (got.dist - want.dist).abs() < 1e-9,
                "q={q:?}: got ({}, {}), want ({}, {})",
                got.id,
                got.dist,
                want.id,
                want.dist
            );
            assert_eq!(got.id, want.id, "q={q:?}");
        }
    }

    #[test]
    fn every_strategy_is_exact_lemma2() {
        let pts = uniform(120, 3, 1);
        let qs = queries(60, 3, 2);
        for strategy in [
            Strategy::Correct,
            Strategy::CorrectPruned,
            Strategy::Point,
            Strategy::Sphere,
            Strategy::NnDirection,
        ] {
            let idx = NnCellIndex::build(pts.clone(), BuildConfig::builder().strategy(strategy).build()).unwrap();
            assert_exact(&idx, &pts, &qs);
            assert_eq!(
                idx.fallback_queries(),
                0,
                "{strategy:?}: in-space queries must not fall back"
            );
        }
    }

    #[test]
    fn decomposition_preserves_exactness() {
        let pts = uniform(100, 4, 3);
        let qs = queries(50, 4, 4);
        for pieces in [2usize, 4, 8] {
            let cfg = BuildConfig::builder().strategy(Strategy::CorrectPruned).decompose_pieces(pieces).build();
            let idx = NnCellIndex::build(pts.clone(), cfg).unwrap();
            assert_exact(&idx, &pts, &qs);
        }
    }

    #[test]
    fn correct_pruned_matches_correct_mbrs_lemma1_tightness() {
        let pts = uniform(80, 3, 5);
        let a = NnCellIndex::build(pts.clone(), BuildConfig::builder().strategy(Strategy::Correct).build()).unwrap();
        let b = NnCellIndex::build(pts.clone(), BuildConfig::builder().strategy(Strategy::CorrectPruned).build()).unwrap();
        for id in 0..pts.len() {
            let ma = &a.cell(id).unwrap().pieces[0];
            let mb = &b.cell(id).unwrap().pieces[0];
            for i in 0..3 {
                assert!(
                    (ma.lo()[i] - mb.lo()[i]).abs() < 1e-7
                        && (ma.hi()[i] - mb.hi()[i]).abs() < 1e-7,
                    "cell {id} dim {i}: pruned {mb:?} != correct {ma:?}"
                );
            }
        }
    }

    #[test]
    fn heuristic_cells_contain_correct_cells_lemma1() {
        let pts = uniform(90, 2, 6);
        let correct = NnCellIndex::build(pts.clone(), BuildConfig::builder().strategy(Strategy::Correct).build()).unwrap();
        for strategy in [Strategy::Point, Strategy::Sphere, Strategy::NnDirection] {
            let idx = NnCellIndex::build(pts.clone(), BuildConfig::builder().strategy(strategy).build()).unwrap();
            for id in 0..pts.len() {
                let exact = &correct.cell(id).unwrap().pieces[0];
                let appr = &idx.cell(id).unwrap().pieces[0];
                assert!(
                    appr.contains_mbr(exact),
                    "{strategy:?}: cell {id} approx {appr:?} !⊇ exact {exact:?}"
                );
            }
        }
    }

    #[test]
    fn dynamic_inserts_stay_exact() {
        let mut pts = uniform(60, 3, 7);
        let extra = uniform(30, 3, 8);
        let cfg = BuildConfig::builder().strategy(Strategy::Sphere).build();
        let mut idx = NnCellIndex::build(pts.clone(), cfg).unwrap();
        for p in extra {
            idx.insert(p.clone()).unwrap();
            pts.push(p);
        }
        assert_eq!(idx.len(), 90);
        assert_exact(&idx, &pts, &queries(40, 3, 9));
    }

    #[test]
    fn inserts_without_refinement_stay_exact() {
        let mut pts = uniform(50, 2, 10);
        let cfg = BuildConfig::builder().strategy(Strategy::NnDirection).refine_on_insert(false).build();
        let mut idx = NnCellIndex::build(pts.clone(), cfg).unwrap();
        for p in uniform(25, 2, 11) {
            idx.insert(p.clone()).unwrap();
            pts.push(p);
        }
        assert_exact(&idx, &pts, &queries(40, 2, 12));
    }

    #[test]
    fn removals_recompute_neighbors_and_stay_exact() {
        let pts = uniform(80, 2, 13);
        let cfg = BuildConfig::builder().strategy(Strategy::CorrectPruned).build();
        let mut idx = NnCellIndex::build(pts.clone(), cfg).unwrap();
        let mut live: Vec<Point> = pts.clone();
        let mut removed = std::collections::HashSet::new();
        for id in [3usize, 17, 42, 55, 7, 0] {
            assert!(idx.remove(id));
            removed.insert(id);
        }
        assert!(!idx.remove(3), "double remove is a no-op");
        live = live
            .into_iter()
            .enumerate()
            .filter(|(i, _)| !removed.contains(i))
            .map(|(_, p)| p)
            .collect();
        assert_eq!(idx.len(), live.len());
        // Compare distances against a scan of the survivors.
        for q in queries(50, 2, 14) {
            let got = nn(&idx, &q).unwrap();
            let want = linear_scan_nn(&live, &q).unwrap();
            assert!((got.dist - want.dist).abs() < 1e-9, "q={q:?}");
            assert!(!removed.contains(&got.id), "returned a removed point");
        }
    }

    #[test]
    fn grow_from_empty() {
        let cfg = BuildConfig::builder().strategy(Strategy::Sphere).build();
        let mut idx = NnCellIndex::new(3, cfg);
        assert!(idx.is_empty());
        assert!(nn(&idx, &[0.5; 3]).is_none());
        let pts = uniform(40, 3, 15);
        for p in &pts {
            idx.insert(p.clone()).unwrap();
        }
        assert_exact(&idx, &pts, &queries(30, 3, 16));
    }

    #[test]
    fn remove_everything() {
        let pts = uniform(20, 2, 17);
        let mut idx = NnCellIndex::build(pts, BuildConfig::builder().strategy(Strategy::Correct).build()).unwrap();
        for id in 0..20 {
            assert!(idx.remove(id));
        }
        assert!(idx.is_empty());
        assert!(nn(&idx, &[0.5, 0.5]).is_none());
    }

    #[test]
    fn out_of_space_queries_fall_back_but_stay_exact() {
        let pts = uniform(50, 2, 18);
        let idx = NnCellIndex::build(pts.clone(), BuildConfig::builder().strategy(Strategy::Sphere).build()).unwrap();
        let q = [1.5, -0.2];
        let got = nn(&idx, &q).unwrap();
        let want = linear_scan_nn(&pts, &q).unwrap();
        assert_eq!(got.id, want.id);
        assert_eq!(idx.fallback_queries(), 1);
    }

    #[test]
    fn build_errors() {
        assert!(matches!(
            NnCellIndex::build(vec![], BuildConfig::builder().strategy(Strategy::Correct).build()),
            Err(BuildError::EmptyDatabase)
        ));
        let ragged = vec![Point::new(vec![0.1, 0.2]), Point::new(vec![0.1, 0.2, 0.3])];
        assert!(matches!(
            NnCellIndex::build(ragged, BuildConfig::builder().strategy(Strategy::Correct).build()),
            Err(BuildError::DimensionMismatch {
                expected: 2,
                got: 3
            })
        ));
        let mut idx = NnCellIndex::new(2, BuildConfig::builder().strategy(Strategy::Correct).build());
        assert!(matches!(
            idx.insert(Point::new(vec![0.1; 5])),
            Err(BuildError::DimensionMismatch {
                expected: 2,
                got: 5
            })
        ));
    }

    #[test]
    fn invalid_points_are_typed_errors() {
        let cfg = || BuildConfig::builder().strategy(Strategy::Correct).build();
        // One NaN point.
        let mut pts = uniform(10, 2, 40);
        pts.push(Point::new(vec![f64::NAN, 0.5]));
        assert!(matches!(
            NnCellIndex::build(pts, cfg()),
            Err(BuildError::NonFinitePoint { id: 10 })
        ));
        // One out-of-space point.
        let mut pts = uniform(10, 2, 41);
        pts.push(Point::new(vec![1.5, 0.5]));
        assert!(matches!(
            NnCellIndex::build(pts, cfg()),
            Err(BuildError::OutOfDataSpace { id: 10 })
        ));
        // One bit-exact duplicate.
        let mut pts = uniform(10, 2, 42);
        pts.push(pts[3].clone());
        assert!(matches!(
            NnCellIndex::build(pts, cfg()),
            Err(BuildError::DuplicatePoint { id: 10, of: 3 })
        ));
        // Dynamic insert rejects the same classes.
        let mut idx = NnCellIndex::build(uniform(10, 2, 43), cfg()).unwrap();
        assert!(matches!(
            idx.insert(Point::new(vec![f64::INFINITY, 0.1])),
            Err(BuildError::NonFinitePoint { .. })
        ));
        assert!(matches!(
            idx.insert(Point::new(vec![-0.1, 0.1])),
            Err(BuildError::OutOfDataSpace { .. })
        ));
        let twin = idx.points()[4].clone();
        assert!(matches!(
            idx.insert(twin),
            Err(BuildError::DuplicatePoint { of: 4, .. })
        ));
        assert_eq!(idx.len(), 10, "rejected inserts must not grow the index");
    }

    #[test]
    fn skip_policy_drops_invalid_points_and_stays_exact() {
        use crate::config::InputPolicy;
        let mut pts = uniform(40, 2, 44);
        pts.insert(7, Point::new(vec![f64::NAN, 0.5]));
        pts.insert(19, pts[0].clone());
        pts.push(Point::new(vec![2.0, 2.0]));
        let idx = NnCellIndex::build(
            pts.clone(),
            BuildConfig::builder().strategy(Strategy::Sphere).input_policy(InputPolicy::Skip).build(),
        )
        .unwrap();
        assert_eq!(idx.len(), 40);
        assert_eq!(idx.build_stats().skipped_points, 3);
        let survivors: Vec<Point> = pts
            .into_iter()
            .filter(|p| {
                p.as_slice().iter().all(|c| c.is_finite())
                    && p.as_slice().iter().all(|c| (0.0..=1.0).contains(c))
            })
            .collect();
        // Duplicate of pts[0] survived the coordinate filters but not the
        // build; dedup the reference set the same way.
        let mut seen = std::collections::HashSet::new();
        let survivors: Vec<Point> = survivors
            .into_iter()
            .filter(|p| {
                seen.insert(
                    p.as_slice()
                        .iter()
                        .map(|c| c.to_bits())
                        .collect::<Vec<u64>>(),
                )
            })
            .collect();
        assert_exact(&idx, &survivors, &queries(30, 2, 45));
    }

    #[test]
    fn malformed_queries_return_empty_not_panic() {
        let pts = uniform(30, 2, 46);
        let idx = NnCellIndex::build(pts, BuildConfig::builder().strategy(Strategy::Sphere).build()).unwrap();
        assert!(nn(&idx, &[0.5]).is_none(), "wrong dimension");
        assert!(nn(&idx, &[0.5, 0.5, 0.5]).is_none());
        assert!(nn(&idx, &[f64::NAN, 0.5]).is_none());
        assert!(nn(&idx, &[0.5, f64::INFINITY]).is_none());
        assert!(knn(&idx, &[0.5], 3).is_empty());
        assert!(knn(&idx, &[f64::NAN, 0.5], 3).is_empty());
        // Sane queries still work afterwards.
        assert!(nn(&idx, &[0.5, 0.5]).is_some());
    }

    #[test]
    fn forced_lp_failure_build_stays_exact_via_clamp() {
        // Iteration budget 1 starves every backend on every LP, so every
        // extent terminally clamps to the data space. The cells are then the
        // fattest possible supersets — still supersets (Lemma 1), so 100
        // random queries must agree with the linear scan exactly.
        let pts = uniform(80, 3, 47);
        let cfg = BuildConfig::builder().strategy(Strategy::Sphere).lp_max_iterations(1).build();
        let idx = NnCellIndex::build(pts.clone(), cfg).unwrap();
        let st = idx.build_stats();
        assert!(
            st.lp.clamped_extents > 0,
            "budget 1 must clamp: {:?}",
            st.lp
        );
        assert_exact(&idx, &pts, &queries(100, 3, 48));
    }

    #[test]
    fn knn_exact_from_cell_index() {
        let pts = uniform(100, 3, 19);
        let idx = NnCellIndex::build(pts.clone(), BuildConfig::builder().strategy(Strategy::Sphere).build()).unwrap();
        let q = [0.3, 0.7, 0.5];
        let top5 = knn(&idx, &q, 5);
        assert_eq!(top5.len(), 5);
        assert_eq!(top5[0].id, nn(&idx, &q).unwrap().id);
        for w in top5.windows(2) {
            assert!(w[0].dist <= w[1].dist + 1e-12);
        }
        // Exactness against a scan, for several k and queries.
        let qs = queries(20, 3, 77);
        for q in &qs {
            for k in [2usize, 5, 20, 99, 150] {
                let got = knn(&idx, q, k);
                let want = crate::scan::linear_scan_knn(idx.points(), q, k.min(idx.len()));
                assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(want.iter()) {
                    assert!((g.dist - w.dist).abs() < 1e-9, "k={k} q={q:?}");
                }
            }
        }
    }

    #[test]
    fn weighted_metric_supported() {
        use nncell_geom::WeightedEuclidean;
        let pts = uniform(70, 3, 20);
        let metric = WeightedEuclidean::new(vec![4.0, 1.0, 0.25]);
        let idx = NnCellIndex::build_with_metric(
            pts.clone(),
            BuildConfig::builder().strategy(Strategy::CorrectPruned).build(),
            metric.clone(),
        )
        .unwrap();
        for q in queries(40, 3, 21) {
            let got = nn(&idx, &q).unwrap();
            let want = pts
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    metric
                        .dist_sq(&q, a)
                        .partial_cmp(&metric.dist_sq(&q, b))
                        .unwrap()
                })
                .map(|(i, _)| i)
                .unwrap();
            assert_eq!(got.id, want, "weighted NN mismatch at q={q:?}");
        }
    }

    #[test]
    fn build_stats_populated() {
        let pts = uniform(40, 2, 22);
        let idx = NnCellIndex::build(pts, BuildConfig::builder().strategy(Strategy::Correct).build()).unwrap();
        let st = idx.build_stats();
        assert_eq!(st.lp.lp_calls, 40 * 4, "2d LPs per point");
        assert_eq!(st.candidates, 40 * 39);
        assert!(st.seconds > 0.0);
        assert_eq!(idx.total_pieces(), 40);
    }

    #[test]
    fn active_set_backend_matches_other_solvers() {
        use nncell_lp::SolverKind;
        let pts = uniform(60, 3, 29);
        let a = NnCellIndex::build(
            pts.clone(),
            BuildConfig::builder().strategy(Strategy::Correct).solver(SolverKind::ActiveSet).build(),
        )
        .unwrap();
        let b = NnCellIndex::build(
            pts.clone(),
            BuildConfig::builder().strategy(Strategy::Correct).solver(SolverKind::DualSimplex).build(),
        )
        .unwrap();
        for id in 0..pts.len() {
            let ma = &a.cell(id).unwrap().pieces[0];
            let mb = &b.cell(id).unwrap().pieces[0];
            for k in 0..3 {
                assert!(
                    (ma.lo()[k] - mb.lo()[k]).abs() < 1e-6
                        && (ma.hi()[k] - mb.hi()[k]).abs() < 1e-6,
                    "active-set vs dual disagree on cell {id}"
                );
            }
        }
        assert_exact(&a, &pts, &queries(30, 3, 30));
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let pts = uniform(80, 3, 23);
        let seq = NnCellIndex::build(pts.clone(), BuildConfig::builder().strategy(Strategy::Sphere).seed(3).build())
            .unwrap();
        let par = NnCellIndex::build(
            pts.clone(),
            BuildConfig::builder().strategy(Strategy::Sphere)
                .seed(3)
                .threads(4).build(),
        )
        .unwrap();
        for id in 0..pts.len() {
            let a = &seq.cell(id).unwrap().pieces;
            let b = &par.cell(id).unwrap().pieces;
            assert_eq!(a.len(), b.len(), "cell {id} piece count");
            for (ma, mb) in a.iter().zip(b.iter()) {
                for k in 0..3 {
                    assert!(
                        (ma.lo()[k] - mb.lo()[k]).abs() < 1e-12
                            && (ma.hi()[k] - mb.hi()[k]).abs() < 1e-12,
                        "parallel build must be bit-identical (seeded)"
                    );
                }
            }
        }
        assert_exact(&par, &pts, &queries(30, 3, 24));
    }

    #[test]
    fn grid_data_produces_tiling_cells() {
        // 4x4 exact grid: cells tile the space, zero overlap, one candidate
        // per query.
        let mut pts = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                pts.push(Point::new(vec![
                    (2 * i + 1) as f64 / 8.0,
                    (2 * j + 1) as f64 / 8.0,
                ]));
            }
        }
        let idx = NnCellIndex::build(pts, BuildConfig::builder().strategy(Strategy::Correct).build()).unwrap();
        let cells: Vec<CellApprox> = (0..16).map(|i| idx.cell(i).unwrap().clone()).collect();
        let total: f64 = cells.iter().map(CellApprox::volume).sum();
        assert!((total - 1.0).abs() < 1e-6, "grid cells must tile: {total}");
        // Cell overlap (the paper's quality measure) is reported by the
        // quality module, independent of the engine's traversal stats.
        let m = crate::quality::measured_candidates(&idx, &[vec![0.3, 0.6]]);
        assert_eq!(m, 1.0, "grid point query returns exactly one cell");
        // The engine still answers exactly, with consistent work counters.
        let resp = QueryEngine::sequential(&idx)
            .execute(&Query::nn(vec![0.3, 0.6]))
            .unwrap();
        assert_eq!(
            resp.stats.candidates + resp.stats.candidates_aborted_early,
            resp.stats.candidates_examined,
            "work counters must be sum-consistent"
        );
    }

    #[test]
    fn pooled_build_cuts_constraint_candidates() {
        let pts = uniform(400, 4, 21);
        // The all-pairs strategy is what the pool replaces: n-1 bisector
        // candidates per cell versus ~k from the approximate-neighbor
        // probe. (NnDirection already gathers few candidates — its cost
        // is the O(n) scan per cell, which the pool also removes.)
        let cfg_ex = BuildConfig::builder().strategy(Strategy::CorrectPruned).seed(3);
        let ex = NnCellIndex::build(pts.clone(), cfg_ex.build()).unwrap();
        let po = NnCellIndex::build(
            pts.clone(),
            BuildConfig::builder()
                .strategy(Strategy::CorrectPruned)
                .constraint_pool(ConstraintPool::ApproxKnn { k: 16 })
                .seed(3)
                .build(),
        )
        .unwrap();
        assert!(
            po.build_stats().candidates < ex.build_stats().candidates / 10,
            "pooled candidates {} not well below exhaustive {}",
            po.build_stats().candidates,
            ex.build_stats().candidates
        );
        // Fallbacks are the exception, not the rule, on benign data.
        assert!(
            po.build_stats().pool_fallback_cells <= pts.len() / 4,
            "{} of {} cells fell back to the exhaustive pool",
            po.build_stats().pool_fallback_cells,
            pts.len()
        );
        assert_exact(&po, &pts, &queries(20, 4, 5));
    }

    #[test]
    fn incremental_insert_skips_uncut_cells() {
        let mut pts = uniform(300, 2, 9);
        let idx_cfg = BuildConfig::builder()
            .strategy(Strategy::NnDirection)
            .constraint_pool(ConstraintPool::ApproxKnn { k: 8 })
            .seed(4)
            .build();
        let extra = pts.split_off(280);
        let mut idx = NnCellIndex::build(pts.clone(), idx_cfg).unwrap();
        for p in extra {
            pts.push(p.clone());
            idx.insert(p).unwrap();
        }
        let s = idx.build_stats();
        // The bisector-cut test must prune at least part of the sphere
        // prefilter's affected set; both counters see traffic.
        assert!(s.insert_refreshes > 0, "no refreshes recorded");
        assert!(
            s.insert_refreshes_skipped > 0,
            "the O(d) bisector-cut test never skipped a cell \
             ({} refreshes)",
            s.insert_refreshes
        );
        assert_exact(&idx, &pts, &queries(20, 2, 6));
    }
}
