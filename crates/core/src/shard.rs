//! Sharded concurrent serving layer: S independent [`NnCellIndex`] shards
//! behind one exact query surface.
//!
//! # Partitioning and exactness
//!
//! Points are partitioned **round-robin** by global id: global id `g`
//! lives in shard `g % S` at local id `g / S` (so `global = local·S +
//! shard`, a bijection). The NN-cell method is exact under partitioning:
//! each shard's cell approximations are supersets of that shard's true
//! Voronoi cells (Lemma 1 holds per shard — dropping rivals only *grows*
//! cells), so each shard returns its exact local k nearest neighbors, and
//! the k smallest of the union — merged by `(distance, global id)` — are
//! exactly the unsharded answer, tie ordering included. The id mapping
//! preserves order: within a shard, ascending local id means ascending
//! global id, so per-shard `(dist, local id)` ordering merges into the
//! global `(dist, global id)` ordering without re-sorting.
//!
//! # Concurrency: copy-on-write snapshots, single-writer log
//!
//! Each shard is wrapped in a [`SnapshotCell`]: readers
//! ([`ShardedIndex::query`] / [`ShardedIndex::batch`], `&self`) load the
//! current immutable snapshot `Arc` and run entirely on it. Writers
//! ([`ShardedIndex::insert`] / [`ShardedIndex::remove`], also `&self`)
//! serialize on one writer mutex, apply the mutation to the shard's
//! authoritative *master* index (journaling through the shard's WAL
//! first in durable mode), then **publish** a fresh clone. Readers never
//! block on a write and never observe a half-applied mutation; a query
//! overlapping a publish simply answers from the version it loaded.
//!
//! # Durable layout
//!
//! ```text
//! dir/CURRENT        "sharded <S>"      (atomically written manifest)
//! dir/shard-0/       a full PR-2 durable directory (CURRENT, snapshot.G, wal.G)
//! dir/shard-1/       …
//! ```
//!
//! The top-level `CURRENT` only records the shard count (written once at
//! initialization via the same `write_atomic` tmp+fsync+rename path);
//! each shard directory keeps its own generation machinery, so crash
//! recovery is per-shard WAL replay. Round-robin assignment makes the
//! global id watermark recoverable: acknowledged inserts are a prefix of
//! the global id sequence, so `next_global` is the sum of per-shard slot
//! counts.

use crate::config::BuildConfig;
use crate::durable::{DurableError, RecoveryReport};
use crate::index::{
    validate_build_inputs, validate_point, BuildError, BuildStats, NnCellIndex, QueryResult,
};
use crate::memtable::{FoldConfig, FoldError, FoldStatus, Memtable, TailOp, TailSnapshot};
use crate::metrics::FoldMetrics;
use crate::persist::PersistError;
use crate::query::{Query, QueryError, QueryKind, QueryResponse, QueryStats};
use crate::snapshot::SnapshotCell;
use crate::vfs::{write_atomic, StdVfs, Vfs};
use crate::wal::WalRecord;
use nncell_geom::{DataSpace, Euclidean, Point};
use nncell_obs::Registry;
use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// File name of the plain (non-durable) sharded directory manifest.
const PLAIN_MANIFEST: &str = "MANIFEST";
/// Magic of the plain manifest: `nncell-sharded <S>`.
const PLAIN_MAGIC: &str = "nncell-sharded";
/// Magic of the durable `CURRENT` manifest: `sharded <S>`. Deliberately
/// not a number, so a plain [`crate::DurableIndex::open`] on a sharded
/// directory fails with a typed corrupt-manifest error instead of
/// misreading it as a generation.
const DURABLE_MAGIC: &str = "sharded";

/// The authoritative (writer-side) copy of one shard.
enum ShardWriter {
    /// In-memory shard.
    Mem(NnCellIndex<Euclidean>),
    /// Crash-consistent shard: journal-before-apply through its own WAL.
    Durable(crate::durable::DurableIndex),
}

impl ShardWriter {
    fn index(&self) -> &NnCellIndex<Euclidean> {
        match self {
            ShardWriter::Mem(idx) => idx,
            ShardWriter::Durable(d) => d.index(),
        }
    }
}

/// Writer-side state, guarded by the single writer mutex.
struct Writer {
    shards: Vec<ShardWriter>,
    /// The next unassigned global id. Round-robin: acknowledged ids are
    /// exactly `0..next_global`.
    next_global: usize,
}

/// Memtable-tier state ([`ShardedIndex::with_memtable`]): per-shard
/// unindexed tails plus folder supervision bookkeeping.
///
/// Lock order everywhere: `fold_lock` → writer mutex → tail mutexes.
/// Queries take only tail mutexes (for a bounded snapshot clone), writers
/// take writer → tail with O(1)/O(tail) holds, and the folder's heavy LP
/// work happens with **no** lock held — only its freeze and publish steps
/// touch the mutexes, both O(tail) at worst.
struct TailState {
    cfg: FoldConfig,
    tails: Vec<Mutex<Memtable>>,
    /// Serializes folds, flushes, checkpoints, and metric attachment so a
    /// snapshot publish can never interleave with a generation rotation
    /// or another fold.
    fold_lock: Mutex<()>,
    /// Unfolded operations across all shards (the backpressure input).
    depth: AtomicUsize,
    degraded: AtomicBool,
    consecutive_failures: AtomicU32,
    folds: AtomicU64,
    folded_records: AtomicU64,
    failures: AtomicU64,
    metrics: Mutex<Option<FoldMetrics>>,
}

impl TailState {
    fn new(cfg: FoldConfig, shards: usize) -> Self {
        Self {
            cfg,
            tails: (0..shards).map(|_| Mutex::new(Memtable::default())).collect(),
            fold_lock: Mutex::new(()),
            depth: AtomicUsize::new(0),
            degraded: AtomicBool::new(false),
            consecutive_failures: AtomicU32::new(0),
            folds: AtomicU64::new(0),
            folded_records: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            metrics: Mutex::new(None),
        }
    }

    fn with_metrics(&self, f: impl FnOnce(&FoldMetrics)) {
        let guard = match self.metrics.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        if let Some(m) = guard.as_ref() {
            f(m);
        }
    }

    fn add_depth(&self, n: usize) {
        let now = self.depth.fetch_add(n, Ordering::AcqRel) + n;
        self.with_metrics(|m| m.tail_depth.set(now as i64));
    }

    fn sub_depth(&self, n: usize) {
        let now = self.depth.fetch_sub(n, Ordering::AcqRel).saturating_sub(n);
        self.with_metrics(|m| m.tail_depth.set(now as i64));
    }

    fn count_backpressure(&self) {
        self.with_metrics(|m| m.backpressure.inc());
    }

    fn record_failure(&self) {
        self.failures.fetch_add(1, Ordering::AcqRel);
        let streak = self.consecutive_failures.fetch_add(1, Ordering::AcqRel) + 1;
        self.with_metrics(|m| m.failures.inc());
        if streak >= self.cfg.degrade_after && !self.degraded.swap(true, Ordering::AcqRel) {
            self.with_metrics(|m| m.degraded.set(1));
        }
    }

    fn record_success(&self, records: usize, elapsed: Duration) {
        self.consecutive_failures.store(0, Ordering::Release);
        if self.degraded.swap(false, Ordering::AcqRel) {
            self.with_metrics(|m| m.degraded.set(0));
        }
        self.folds.fetch_add(1, Ordering::AcqRel);
        self.folded_records.fetch_add(records as u64, Ordering::AcqRel);
        self.with_metrics(|m| {
            m.folds.inc();
            m.folded_records.add(records as u64);
            m.latency_ns.record_duration(elapsed);
        });
    }
}

/// Poison-tolerant lock on a shard's memtable. Every critical section is
/// a handful of `Vec` pushes or a bounded clone — state stays consistent
/// even if a recording site panicked while holding the guard.
fn lock_mem(m: &Mutex<Memtable>) -> MutexGuard<'_, Memtable> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Poison-tolerant lock on the (state-free) fold serialization mutex.
fn lock_fold(m: &Mutex<()>) -> MutexGuard<'_, ()> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Sleeps for `dur` in small slices, returning early once `stop` is set —
/// keeps folder backoffs (up to the configured cap) from delaying
/// shutdown.
fn sleep_interruptible(stop: &AtomicBool, dur: Duration) {
    let mut left = dur;
    while !stop.load(Ordering::Acquire) && !left.is_zero() {
        let nap = left.min(Duration::from_millis(10));
        std::thread::sleep(nap);
        left = left.saturating_sub(nap);
    }
}

/// S independent NN-cell shards behind one exact, concurrently servable
/// query API. See the module docs for the partitioning and snapshot
/// protocol. Built over the Euclidean metric (the durable layer's
/// contract).
///
/// All methods take `&self`: queries run on copy-on-write snapshots,
/// updates serialize on an internal single-writer lock — share a
/// `ShardedIndex` (or an `Arc` of one) across threads freely.
pub struct ShardedIndex {
    dim: usize,
    cfg: BuildConfig,
    /// Published read snapshots, one cell per shard.
    snaps: Vec<SnapshotCell<NnCellIndex<Euclidean>>>,
    writer: Mutex<Writer>,
    /// Wall-clock seconds of the initial sharded build (0 for loads).
    build_seconds: f64,
    /// Points dropped by the global input validation under
    /// [`crate::InputPolicy::Skip`].
    skipped_points: usize,
    /// Merged queries answered (in any shard) by the exact scan fallback.
    fallback_queries: AtomicU64,
    /// Per-shard recovery reports from a durable open (empty otherwise).
    recovery: Vec<RecoveryReport>,
    durable: bool,
    /// Memtable tier ([`Self::with_memtable`]); `None` keeps the original
    /// synchronous apply-then-publish write path.
    tail: Option<TailState>,
}

impl ShardedIndex {
    // ------------------------------------------------------------------
    // construction
    // ------------------------------------------------------------------

    /// Builds a sharded index over `points`: global input validation
    /// (identical to [`NnCellIndex::build`], including
    /// [`crate::InputPolicy`] handling and error ids), round-robin
    /// partitioning, then one [`NnCellIndex::build`] per shard — each
    /// running in its own thread, each reusing the per-worker build
    /// batching configured by [`BuildConfig::with_threads`].
    ///
    /// # Errors
    /// The same [`BuildError`] contract as the unsharded build, with ids
    /// referring to positions in the global input.
    pub fn build(points: Vec<Point>, shards: usize, cfg: BuildConfig) -> Result<Self, BuildError> {
        assert!(shards >= 1, "need at least one shard");
        let Some(first) = points.first() else {
            return Err(BuildError::EmptyDatabase);
        };
        let dim = first.dim();
        let start = Instant::now();
        let (accepted, skipped) = validate_build_inputs(points, dim, cfg.input_policy)?;
        let next_global = accepted.len();
        let mut parts: Vec<Vec<Point>> = (0..shards)
            .map(|_| Vec::with_capacity(accepted.len() / shards + 1))
            .collect();
        for (g, p) in accepted.into_iter().enumerate() {
            parts[g % shards].push(p);
        }
        let built: Vec<Result<NnCellIndex<Euclidean>, BuildError>> = std::thread::scope(|s| {
            let handles: Vec<_> = parts
                .into_iter()
                .map(|part| {
                    let cfg = cfg.clone();
                    s.spawn(move || {
                        if part.is_empty() {
                            Ok(NnCellIndex::new(dim, cfg))
                        } else {
                            NnCellIndex::build(part, cfg)
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard build worker panicked"))
                .collect()
        });
        let mut masters = Vec::with_capacity(shards);
        for r in built {
            masters.push(ShardWriter::Mem(r?));
        }
        Ok(Self::assemble(
            dim,
            cfg,
            masters,
            next_global,
            start.elapsed().as_secs_f64(),
            skipped,
            Vec::new(),
            false,
        ))
    }

    /// An empty sharded index of dimensionality `dim`, grown via
    /// [`Self::insert`].
    pub fn new(dim: usize, shards: usize, cfg: BuildConfig) -> Self {
        assert!(shards >= 1, "need at least one shard");
        let masters = (0..shards)
            .map(|_| ShardWriter::Mem(NnCellIndex::new(dim, cfg.clone())))
            .collect();
        Self::assemble(dim, cfg, masters, 0, 0.0, 0, Vec::new(), false)
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        dim: usize,
        cfg: BuildConfig,
        masters: Vec<ShardWriter>,
        next_global: usize,
        build_seconds: f64,
        skipped_points: usize,
        recovery: Vec<RecoveryReport>,
        durable: bool,
    ) -> Self {
        let snaps = masters
            .iter()
            .map(|m| SnapshotCell::new(m.index().clone()))
            .collect();
        Self {
            dim,
            cfg,
            snaps,
            writer: Mutex::new(Writer {
                shards: masters,
                next_global,
            }),
            build_seconds,
            skipped_points,
            fallback_queries: AtomicU64::new(0),
            recovery,
            durable,
            tail: None,
        }
    }

    /// Enables the LSM-style memtable write path: inserts and removes
    /// journal (in durable mode), land in a small unindexed per-shard
    /// tail, and acknowledge in O(1) — no LP solve, no snapshot clone on
    /// the ack path. Queries stay exact by merging the tail via linear
    /// scan; a supervised folder ([`Self::run_folder`] or explicit
    /// [`Self::fold_once`] / [`Self::flush`] calls) applies the tail to
    /// the NN-cells off the write path.
    ///
    /// Call at construction time, before the index is shared.
    ///
    /// # Panics
    /// Panics if a memtable is already enabled.
    #[must_use]
    pub fn with_memtable(mut self, cfg: FoldConfig) -> Self {
        assert!(self.tail.is_none(), "memtable already enabled");
        let shards = self.num_shards();
        self.tail = Some(TailState::new(cfg, shards));
        self
    }

    /// Whether the memtable write path is enabled.
    pub fn memtable_enabled(&self) -> bool {
        self.tail.is_some()
    }

    /// Journaled-but-unfolded operations across all shards (0 without a
    /// memtable).
    pub fn tail_depth(&self) -> usize {
        self.tail
            .as_ref()
            .map_or(0, |t| t.depth.load(Ordering::Acquire))
    }

    /// Whether the folder has failed [`FoldConfig::degrade_after`]
    /// consecutive times. Writes keep landing in the tail (up to the
    /// high-watermark) and queries stay exact while degraded.
    pub fn is_degraded(&self) -> bool {
        self.tail
            .as_ref()
            .is_some_and(|t| t.degraded.load(Ordering::Acquire))
    }

    /// A point-in-time view of the folder's health (all zeros without a
    /// memtable).
    pub fn fold_status(&self) -> FoldStatus {
        let Some(ts) = &self.tail else {
            return FoldStatus::default();
        };
        FoldStatus {
            tail_depth: ts.depth.load(Ordering::Acquire),
            degraded: ts.degraded.load(Ordering::Acquire),
            consecutive_failures: ts.consecutive_failures.load(Ordering::Acquire),
            folds: ts.folds.load(Ordering::Acquire),
            folded_records: ts.folded_records.load(Ordering::Acquire),
            failures: ts.failures.load(Ordering::Acquire),
        }
    }

    /// The memtable configuration, when enabled.
    pub fn fold_config(&self) -> Option<&FoldConfig> {
        self.tail.as_ref().map(|t| &t.cfg)
    }

    /// The writer lock. A poisoned lock is taken over: masters are only
    /// mutated through `insert`/`remove`, whose underlying operations
    /// keep the index consistent on failure.
    fn lock_writer(&self) -> MutexGuard<'_, Writer> {
        match self.writer.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    // ------------------------------------------------------------------
    // accessors
    // ------------------------------------------------------------------

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.snaps.len()
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The build configuration shards were built with.
    pub fn config(&self) -> &BuildConfig {
        &self.cfg
    }

    /// Total live points across all shards. Without a memtable this reads
    /// the current snapshots; with one it counts against the masters plus
    /// the unfolded tails (under the writer lock, so acked writes are
    /// always reflected even before they fold).
    pub fn len(&self) -> usize {
        let Some(ts) = &self.tail else {
            return self.snaps.iter().map(|c| c.load().len()).sum();
        };
        let w = self.lock_writer();
        let mut total = 0usize;
        for (i, sw) in w.shards.iter().enumerate() {
            let master = sw.index();
            let m = lock_mem(&ts.tails[i]);
            let master_dead = m
                .removed_ids()
                .iter()
                .filter(|&&local| master.is_live(local))
                .count();
            total += master.len() + m.live_inserts() - master_dead;
        }
        total
    }

    /// Whether no shard holds a live point.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether updates are journaled through per-shard WALs.
    pub fn is_durable(&self) -> bool {
        self.durable
    }

    /// The current published snapshot of shard `i` (a stable read-only
    /// view; concurrent writes publish new versions without affecting it).
    ///
    /// # Panics
    /// Panics if `i >= num_shards()`.
    pub fn shard(&self, i: usize) -> Arc<NnCellIndex<Euclidean>> {
        self.snaps[i].load()
    }

    /// Aggregated construction counters: LP work, candidates, and phase
    /// profiles summed over the shard masters' lifetimes (dynamic updates
    /// included), with `seconds` the wall clock of the initial sharded
    /// build and `skipped_points` from the global input validation.
    pub fn build_stats(&self) -> BuildStats {
        let mut agg = BuildStats {
            seconds: self.build_seconds,
            skipped_points: self.skipped_points,
            ..BuildStats::default()
        };
        for cell in &self.snaps {
            let snap = cell.load();
            let s = snap.build_stats();
            agg.lp.merge(s.lp);
            agg.candidates += s.candidates;
            agg.skipped_points += s.skipped_points;
            let p = &s.profile;
            agg.profile.constraint_selection.nanos += p.constraint_selection.nanos;
            agg.profile.constraint_selection.calls += p.constraint_selection.calls;
            agg.profile.lp_solve.nanos += p.lp_solve.nanos;
            agg.profile.lp_solve.calls += p.lp_solve.calls;
            agg.profile.decomposition.nanos += p.decomposition.nanos;
            agg.profile.decomposition.calls += p.decomposition.calls;
            agg.profile.bulk_load.nanos += p.bulk_load.nanos;
            agg.profile.bulk_load.calls += p.bulk_load.calls;
            agg.profile.batches += p.batches;
            agg.profile.batch_total_nanos += p.batch_total_nanos;
            agg.profile.batch_max_nanos = agg.profile.batch_max_nanos.max(p.batch_max_nanos);
        }
        agg
    }

    /// Merged queries (via [`Self::query`] / [`Self::batch`]) in which any
    /// shard answered by the exact scan fallback. Note that a shard can
    /// legitimately fall back where the unsharded index would not — e.g.
    /// `k ≥` that shard's live count — so this is an upper bound on what
    /// the equivalent unsharded index would report.
    pub fn fallback_queries(&self) -> u64 {
        self.fallback_queries.load(Ordering::Relaxed)
    }

    /// Per-shard scan-fallback counters summed across the current
    /// snapshots (each shard counts exactly like an unsharded index).
    pub fn shard_fallback_queries(&self) -> u64 {
        self.snaps.iter().map(|c| c.load().fallback_queries()).sum()
    }

    /// Per-shard recovery reports from a durable open; empty for
    /// in-memory indexes.
    pub fn recovery(&self) -> &[RecoveryReport] {
        &self.recovery
    }

    /// Records sitting in the shards' active WALs (0 when not durable).
    pub fn wal_records(&self) -> u64 {
        let w = self.lock_writer();
        w.shards
            .iter()
            .map(|s| match s {
                ShardWriter::Mem(_) => 0,
                ShardWriter::Durable(d) => d.wal_records(),
            })
            .sum()
    }

    /// Attaches a metrics registry: every shard's engine, gauge, and tree
    /// series is registered under a `shard="<i>"` label (the LP and WAL
    /// families stay unlabeled, shared as whole-index totals — see
    /// [`NnCellIndex::attach_metrics_labeled`]). New snapshots are
    /// published so concurrent readers start recording immediately.
    /// Idempotent per shard.
    pub fn attach_metrics(&self, registry: Arc<Registry>) {
        // Fold lock first (the global lock order): a fold publishing
        // between our store and its own would otherwise clobber the
        // metrics-attached snapshots with pre-attach clones.
        let _fold = self.tail.as_ref().map(|ts| lock_fold(&ts.fold_lock));
        let mut w = self.lock_writer();
        for (i, sw) in w.shards.iter_mut().enumerate() {
            let tag = i.to_string();
            let labels: [(&str, &str); 1] = [("shard", tag.as_str())];
            match sw {
                ShardWriter::Mem(idx) => {
                    idx.attach_metrics_labeled(Arc::clone(&registry), &labels);
                }
                ShardWriter::Durable(d) => {
                    d.attach_metrics_labeled(Arc::clone(&registry), &labels);
                }
            }
            self.snaps[i].store(Arc::new(sw.index().clone()));
        }
        if let Some(ts) = &self.tail {
            let mut slot = match ts.metrics.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            if slot.is_none() {
                let fm = FoldMetrics::register(&registry);
                // Seed with the pre-attach totals so registry values are
                // correct even when the registry arrives late.
                fm.tail_depth.set(ts.depth.load(Ordering::Acquire) as i64);
                fm.degraded
                    .set(i64::from(ts.degraded.load(Ordering::Acquire)));
                fm.folds.add(ts.folds.load(Ordering::Acquire));
                fm.folded_records.add(ts.folded_records.load(Ordering::Acquire));
                fm.failures.add(ts.failures.load(Ordering::Acquire));
                *slot = Some(fm);
            }
        }
    }

    // ------------------------------------------------------------------
    // id mapping
    // ------------------------------------------------------------------

    /// `(shard, local id)` of a global id.
    fn locate(&self, global: usize) -> (usize, usize) {
        let s = self.num_shards();
        (global % s, global / s)
    }

    /// Global id of `(shard, local id)`.
    fn global_of(&self, shard: usize, local: usize) -> usize {
        local * self.num_shards() + shard
    }

    // ------------------------------------------------------------------
    // queries
    // ------------------------------------------------------------------

    /// The same validation [`crate::QueryEngine::execute`] applies, in the
    /// same precedence order, so a sharded index rejects malformed input
    /// identically to an unsharded one.
    fn validate_query(&self, q: &Query) -> Result<(), QueryError> {
        let p = q.point();
        if p.len() != self.dim {
            return Err(QueryError::DimMismatch {
                expected: self.dim,
                got: p.len(),
            });
        }
        if p.iter().any(|c| !c.is_finite()) {
            return Err(QueryError::NonFiniteQuery);
        }
        match q.kind() {
            QueryKind::Nearest { k: 0 } => Err(QueryError::ZeroK),
            QueryKind::Radius { radius } if !radius.is_finite() || radius < 0.0 => {
                Err(QueryError::InvalidRadius)
            }
            _ => Ok(()),
        }
    }

    /// Executes one typed query: fan out to every non-empty shard on its
    /// current snapshot, merge the per-shard answers by
    /// `(distance, global id)`. Exact, including tie ordering (see the
    /// module docs). Candidate and page counts are summed across shards;
    /// `fallback` is set if any shard fell back to its exact scan.
    ///
    /// # Errors
    /// The [`QueryError`] contract of [`crate::QueryEngine::execute`].
    pub fn query(&self, q: &Query) -> Result<QueryResponse, QueryError> {
        self.query_with_deadline(q, None)
    }

    /// [`Self::query`] under an optional time budget: the deadline is
    /// threaded into every per-shard engine (equivalent to stamping
    /// [`Query::with_deadline`] on the request, without cloning it per
    /// shard), so a budget that runs out mid-fan-out surfaces as
    /// [`QueryError::DeadlineExceeded`] instead of finishing the
    /// remaining shards.
    ///
    /// # Errors
    /// The [`QueryError`] contract of [`Self::query`], plus
    /// [`QueryError::DeadlineExceeded`].
    pub fn query_with_deadline(
        &self,
        q: &Query,
        deadline: Option<Instant>,
    ) -> Result<QueryResponse, QueryError> {
        self.validate_query(q)?;
        // Tails first, snapshots second: an operation folded between the
        // two reads then appears in *both* views and is deduplicated by id
        // at merge time; reading in the other order could miss it in both.
        let tails = self.tail_snapshots();
        let snaps: Vec<Arc<NnCellIndex<Euclidean>>> =
            self.snaps.iter().map(SnapshotCell::load).collect();
        let mut per: Vec<(usize, QueryResponse)> = Vec::with_capacity(snaps.len());
        let mut radius_empty = false;
        for (i, snap) in snaps.iter().enumerate() {
            let tail_i = tails.as_ref().map(|t| &t[i]).filter(|t| !t.is_empty());
            if snap.is_empty() && tail_i.is_none() {
                continue;
            }
            // Sequential per shard: one query has no intra-shard
            // parallelism to exploit, and the fan-out itself is the
            // concurrency story (batch() adds the thread pool).
            let mut engine =
                crate::engine::QueryEngine::sequential(snap).with_deadline_opt(deadline);
            if let Some(t) = tail_i {
                engine = engine.with_tail(t);
            }
            // One child span per shard consulted; the engine's own spans
            // nest underneath it, so a trace shows the full fan-out.
            let mut span = nncell_obs::trace::child("shard.query");
            span.arg("shard", i as u64);
            match engine.execute(q) {
                Ok(r) => per.push((i, r)),
                // Every point of this shard is tombstoned in the tail:
                // the shard contributes nothing, which is not a failure
                // of the fan-out.
                Err(QueryError::EmptyIndex) => continue,
                // This shard's slice of the ball is empty; others may
                // still contribute.
                Err(QueryError::EmptyRadius) => {
                    radius_empty = true;
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
        if per.is_empty() {
            // Shards were consulted but every ball slice came back empty:
            // the radius error, not the empty-index one.
            return Err(if radius_empty {
                QueryError::EmptyRadius
            } else {
                QueryError::EmptyIndex
            });
        }
        Ok(self.merge(q.k(), per))
    }

    /// Bounded-clone views of every shard's unfolded tail (`None` without
    /// a memtable). Each clone is taken under its shard's tail mutex; the
    /// combined view may straddle a concurrent ack, which is fine — a
    /// query is only promised the writes acked before it started.
    fn tail_snapshots(&self) -> Option<Vec<TailSnapshot>> {
        self.tail
            .as_ref()
            .map(|ts| ts.tails.iter().map(|m| lock_mem(m).snapshot()).collect())
    }

    /// Executes a batch of typed queries: each non-empty shard runs the
    /// whole batch through its own [`crate::QueryEngine::batch`] thread
    /// pool on its current snapshot, then per-query answers are merged as
    /// in [`Self::query`]. Results come back in input order with the
    /// engine's per-query error contract.
    pub fn batch(&self, queries: &[Query]) -> Vec<Result<QueryResponse, QueryError>> {
        self.batch_with_deadline(queries, None)
    }

    /// [`Self::batch`] under an optional time budget: every shard engine
    /// checks the deadline between the queries of the batch (and inside the
    /// k-NN candidate loop), so queries past the budget come back as
    /// per-query [`QueryError::DeadlineExceeded`] results while answers
    /// already computed are kept.
    pub fn batch_with_deadline(
        &self,
        queries: &[Query],
        deadline: Option<Instant>,
    ) -> Vec<Result<QueryResponse, QueryError>> {
        // Tails before snapshots — same dedup-by-id rationale as
        // query_with_deadline.
        let tails = self.tail_snapshots();
        let snaps: Vec<Arc<NnCellIndex<Euclidean>>> =
            self.snaps.iter().map(SnapshotCell::load).collect();
        let shard_results: Vec<(usize, Vec<Result<QueryResponse, QueryError>>)> = snaps
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                let tail_i = tails.as_ref().map(|t| &t[i]).filter(|t| !t.is_empty());
                if s.is_empty() && tail_i.is_none() {
                    return None;
                }
                let mut engine = s.engine().with_deadline_opt(deadline);
                if let Some(t) = tail_i {
                    engine = engine.with_tail(t);
                }
                Some((i, engine.batch(queries)))
            })
            .collect();
        queries
            .iter()
            .enumerate()
            .map(|(qi, q)| {
                self.validate_query(q)?;
                let mut per: Vec<(usize, QueryResponse)> =
                    Vec::with_capacity(shard_results.len());
                let mut radius_empty = false;
                for (shard, results) in &shard_results {
                    match &results[qi] {
                        Ok(r) => per.push((*shard, r.clone())),
                        // A shard whose live set the tail has fully
                        // tombstoned contributes nothing — not a failure.
                        Err(QueryError::EmptyIndex) => continue,
                        // An empty ball slice in one shard; others may
                        // still contribute.
                        Err(QueryError::EmptyRadius) => {
                            radius_empty = true;
                            continue;
                        }
                        Err(e) => return Err(*e),
                    }
                }
                if per.is_empty() {
                    return Err(if radius_empty {
                        QueryError::EmptyRadius
                    } else {
                        QueryError::EmptyIndex
                    });
                }
                Ok(self.merge(q.k(), per))
            })
            .collect()
    }

    /// k-way merge of per-shard answers via a small binary heap keyed by
    /// `(distance, global id)` — each shard's list is already sorted, so
    /// the heap holds one head per shard and pops `k` times.
    fn merge(&self, k: usize, per: Vec<(usize, QueryResponse)>) -> QueryResponse {
        debug_assert!(!per.is_empty(), "merge of zero non-empty shards");
        let mut stats = QueryStats::default();
        let mut lists: Vec<(usize, Vec<QueryResult>)> = Vec::with_capacity(per.len());
        for (shard, resp) in per {
            stats.candidates += resp.stats.candidates;
            stats.pages += resp.stats.pages;
            stats.tail += resp.stats.tail;
            stats.fallback |= resp.stats.fallback;
            stats.nodes_pruned += resp.stats.nodes_pruned;
            stats.candidates_examined += resp.stats.candidates_examined;
            stats.candidates_aborted_early += resp.stats.candidates_aborted_early;
            lists.push((shard, resp.into_results()));
        }
        if stats.fallback {
            self.fallback_queries.fetch_add(1, Ordering::Relaxed);
        }

        /// Heap entry: the current head of one shard's sorted list.
        struct Head {
            dist: f64,
            gid: usize,
            slot: usize,
            pos: usize,
        }
        impl PartialEq for Head {
            fn eq(&self, other: &Self) -> bool {
                self.cmp(other) == CmpOrdering::Equal
            }
        }
        impl Eq for Head {}
        impl Ord for Head {
            fn cmp(&self, other: &Self) -> CmpOrdering {
                // Min-heap via Reverse at the push sites; ascending
                // (dist, global id) — the unsharded ranking order.
                self.dist
                    .total_cmp(&other.dist)
                    .then_with(|| self.gid.cmp(&other.gid))
            }
        }
        impl PartialOrd for Head {
            fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
                Some(self.cmp(other))
            }
        }

        let mut heap: BinaryHeap<std::cmp::Reverse<Head>> =
            BinaryHeap::with_capacity(lists.len());
        for (slot, (shard, list)) in lists.iter().enumerate() {
            if let Some(r) = list.first() {
                heap.push(std::cmp::Reverse(Head {
                    dist: r.dist,
                    gid: self.global_of(*shard, r.id),
                    slot,
                    pos: 0,
                }));
            }
        }
        let mut merged: Vec<QueryResult> = Vec::with_capacity(k.min(64));
        while merged.len() < k {
            let Some(std::cmp::Reverse(head)) = heap.pop() else {
                break;
            };
            merged.push(QueryResult {
                id: head.gid,
                dist: head.dist,
            });
            let (shard, list) = &lists[head.slot];
            if let Some(r) = list.get(head.pos + 1) {
                heap.push(std::cmp::Reverse(Head {
                    dist: r.dist,
                    gid: self.global_of(*shard, r.id),
                    slot: head.slot,
                    pos: head.pos + 1,
                }));
            }
        }
        let best = merged[0];
        let rest = merged[1..].to_vec();
        QueryResponse { best, rest, stats }
    }

    // ------------------------------------------------------------------
    // updates (single writer, copy-on-write publish)
    // ------------------------------------------------------------------

    /// Inserts a point: assign the next global id, validate (including a
    /// cross-shard exact-duplicate check), then either apply to the owning
    /// shard's master and publish a fresh snapshot (synchronous mode), or
    /// journal and land in the shard's memtable tail (memtable mode —
    /// O(1) ack, the folder indexes it later). Returns the global id.
    /// Readers are never blocked; queries started before the publish
    /// answer from the previous version (plus, in memtable mode, the
    /// tail merge).
    ///
    /// # Errors
    /// [`DurableError::Invalid`] with the same [`BuildError`] variants an
    /// unsharded insert rejects (ids are global);
    /// [`DurableError::Persist`] when a durable shard's journal write
    /// fails; [`DurableError::Backpressure`] when the memtable tail is at
    /// its high-watermark — nothing is applied or published in any case.
    pub fn insert(&self, p: Point) -> Result<usize, DurableError> {
        let mut w = self.lock_writer();
        let g = w.next_global;
        validate_point(&p, g, self.dim, &DataSpace::unit(self.dim))
            .map_err(DurableError::Invalid)?;
        if let Some(ts) = &self.tail {
            return self.insert_memtable(ts, &mut w, g, p);
        }
        // Cross-shard duplicate check against the masters (the
        // authoritative state — snapshots may trail by the publish gap).
        for (si, sw) in w.shards.iter().enumerate() {
            if let Some(local) = sw.index().find_live_duplicate(&p) {
                return Err(DurableError::Invalid(BuildError::DuplicatePoint {
                    id: g,
                    of: self.global_of(si, local),
                }));
            }
        }
        let (shard, expected_local) = self.locate(g);
        let local = match &mut w.shards[shard] {
            ShardWriter::Mem(idx) => idx.insert(p).map_err(DurableError::Invalid)?,
            ShardWriter::Durable(d) => d.insert(p)?,
        };
        debug_assert_eq!(local, expected_local, "round-robin id mapping out of sync");
        self.snaps[shard].store(Arc::new(w.shards[shard].index().clone()));
        w.next_global += 1;
        Ok(self.global_of(shard, local))
    }

    /// The memtable ack path: duplicate check against masters *and* tails,
    /// backpressure check, journal, tail push. No LP work, no snapshot
    /// clone — the writer-lock hold is O(log n) (the duplicate probe)
    /// plus an O(1) push, so ack latency is independent of index size.
    fn insert_memtable(
        &self,
        ts: &TailState,
        w: &mut Writer,
        g: usize,
        p: Point,
    ) -> Result<usize, DurableError> {
        for (si, sw) in w.shards.iter().enumerate() {
            let m = lock_mem(&ts.tails[si]);
            if let Some(local) = sw.index().find_live_duplicate(&p) {
                // A master duplicate tombstoned in the tail is dead.
                if !m.is_removed(local) {
                    return Err(DurableError::Invalid(BuildError::DuplicatePoint {
                        id: g,
                        of: self.global_of(si, local),
                    }));
                }
            }
            if let Some(local) = m.find_live_duplicate(&p) {
                return Err(DurableError::Invalid(BuildError::DuplicatePoint {
                    id: g,
                    of: self.global_of(si, local),
                }));
            }
        }
        let depth = ts.depth.load(Ordering::Acquire);
        if depth >= ts.cfg.tail_max {
            ts.count_backpressure();
            return Err(DurableError::Backpressure {
                tail: depth,
                max: ts.cfg.tail_max,
            });
        }
        let (shard, local) = self.locate(g);
        if let ShardWriter::Durable(d) = &mut w.shards[shard] {
            // Journal-first: the fsync happens here, before the ack. A
            // failure leaves the tail untouched.
            d.journal(&WalRecord::Insert(p.clone()))?;
        }
        lock_mem(&ts.tails[shard]).push_insert(local, p);
        ts.add_depth(1);
        w.next_global += 1;
        Ok(self.global_of(shard, local))
    }

    /// Removes the point with global id `global`. Returns `false` when no
    /// such point is live (never-assigned ids included). On `true`, in
    /// synchronous mode the owning shard republished its snapshot
    /// (journal-first in durable mode); in memtable mode a tombstone
    /// landed in the shard's tail (journal-first) and queries stop
    /// returning the point immediately.
    ///
    /// # Errors
    /// Journal I/O failures in durable mode, or
    /// [`DurableError::Backpressure`] at the memtable high-watermark;
    /// nothing applied on error.
    pub fn remove(&self, global: usize) -> Result<bool, DurableError> {
        let mut w = self.lock_writer();
        if global >= w.next_global {
            return Ok(false);
        }
        let (shard, local) = self.locate(global);
        if let Some(ts) = &self.tail {
            let live = {
                let m = lock_mem(&ts.tails[shard]);
                (w.shards[shard].index().is_live(local) && !m.is_removed(local))
                    || m.has_live_insert(local)
            };
            if !live {
                return Ok(false);
            }
            let depth = ts.depth.load(Ordering::Acquire);
            if depth >= ts.cfg.tail_max {
                ts.count_backpressure();
                return Err(DurableError::Backpressure {
                    tail: depth,
                    max: ts.cfg.tail_max,
                });
            }
            if let ShardWriter::Durable(d) = &mut w.shards[shard] {
                d.journal(&WalRecord::Remove(local as u64))?;
            }
            lock_mem(&ts.tails[shard]).push_remove(local);
            ts.add_depth(1);
            return Ok(true);
        }
        let removed = match &mut w.shards[shard] {
            ShardWriter::Mem(idx) => idx.remove(local),
            ShardWriter::Durable(d) => d.remove(local).map_err(DurableError::Persist)?,
        };
        if removed {
            self.snaps[shard].store(Arc::new(w.shards[shard].index().clone()));
        }
        Ok(removed)
    }

    // ------------------------------------------------------------------
    // folding (memtable → NN-cells, off the write path)
    // ------------------------------------------------------------------

    /// Folds every shard's frozen-plus-active tail into its NN-cell index
    /// and publishes the results. Returns the number of operations folded
    /// (0 without a memtable or with empty tails). Heavy LP work runs with
    /// no lock held; only the freeze and publish steps touch the mutexes.
    ///
    /// # Errors
    /// [`FoldError::Panicked`] when a shard's fold panicked (the batch
    /// stays frozen and merges into the next attempt; shards folded
    /// before the failing one stay folded).
    pub fn fold_once(&self) -> Result<usize, FoldError> {
        let Some(ts) = &self.tail else {
            return Ok(0);
        };
        let _fold = lock_fold(&ts.fold_lock);
        let mut total = 0usize;
        for shard in 0..self.num_shards() {
            total += self.fold_shard(ts, shard)?;
        }
        Ok(total)
    }

    /// Folds one shard's tail: freeze the batch, deep-clone the published
    /// snapshot, re-apply the batch in ack order off-lock (under
    /// `catch_unwind` — a panicking fold, injected or organic, keeps the
    /// batch for retry and never corrupts the index), then publish master
    /// and snapshot under the writer lock. Folding performs **zero**
    /// syscalls: the WAL already holds every record, so crash recovery
    /// never depends on fold progress and a fold can never double-apply
    /// into durable state.
    fn fold_shard(&self, ts: &TailState, shard: usize) -> Result<usize, FoldError> {
        let batch = lock_mem(&ts.tails[shard]).freeze();
        if batch.is_empty() {
            return Ok(0);
        }
        // Root span on the folder thread (head-sampled like any other
        // root); manual folds under a traced request nest as children.
        let mut span = nncell_obs::trace::root("fold.shard");
        span.arg("shard", shard as u64);
        span.arg("records", batch.len() as u64);
        let start = Instant::now();
        // Invariant (memtable mode): the published snapshot equals the
        // master — both only change under fold_lock + writer lock, which
        // we hold / will take. Cloning the snapshot instead of the master
        // keeps the writer lock free during the expensive apply.
        let base = self.snaps[shard].load();
        let chaos = ts.cfg.fault_fold_panic.clone();
        let folded = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            assert!(
                !chaos.as_ref().is_some_and(|f| f.load(Ordering::Acquire)),
                "injected fold fault"
            );
            let mut idx = (*base).clone();
            for op in &batch {
                match op {
                    TailOp::Insert { local, point } => {
                        // Re-applying a journaled op in ack order against
                        // exactly the state it was validated on must
                        // succeed; a failure here is a logic bug, and
                        // surfacing it as a caught panic degrades service
                        // instead of corrupting the index.
                        let got = idx.insert(point.clone()).unwrap_or_else(|e| {
                            panic!("fold re-apply of acked insert failed: {e}")
                        });
                        assert_eq!(got, *local, "fold slot diverged from ack-time slot");
                    }
                    TailOp::Remove { local } => {
                        idx.remove(*local);
                    }
                }
            }
            idx
        }));
        let folded = match folded {
            Ok(idx) => idx,
            Err(_) => {
                ts.record_failure();
                return Err(FoldError::Panicked { shard });
            }
        };
        let records = batch.len();
        let master_copy = folded.clone();
        {
            let mut w = self.lock_writer();
            match &mut w.shards[shard] {
                ShardWriter::Mem(idx) => *idx = master_copy,
                ShardWriter::Durable(d) => d.replace_index(master_copy),
            }
            self.snaps[shard].store(Arc::new(folded));
            lock_mem(&ts.tails[shard]).clear_frozen();
            ts.sub_depth(records);
        }
        ts.record_success(records, start.elapsed());
        Ok(records)
    }

    /// Folds until the tail is empty (used by clean shutdown and the CLI
    /// `flush` subcommand). Returns the total operations folded.
    ///
    /// # Errors
    /// [`FoldError`] from the first failing fold.
    pub fn flush(&self) -> Result<usize, FoldError> {
        let mut total = 0usize;
        loop {
            if self.tail_depth() == 0 {
                return Ok(total);
            }
            total += self.fold_once()?;
        }
    }

    /// The supervised folder loop: fold whenever the tail is non-empty,
    /// sleep [`FoldConfig::poll_interval`] when idle, back off
    /// exponentially (capped at [`FoldConfig::retry_cap`]) after a failed
    /// fold. Returns promptly once `stop` is set. Run it from a dedicated
    /// thread with a shared `Arc<ShardedIndex>`; a no-op without a
    /// memtable. All failure accounting (consecutive-failure streaks, the
    /// degraded flag, `nncell_fold_*` metrics) happens inside
    /// [`Self::fold_once`], so manual folds and the loop agree.
    pub fn run_folder(&self, stop: &AtomicBool) {
        let Some(ts) = &self.tail else {
            return;
        };
        let mut backoff = ts.cfg.retry_base;
        while !stop.load(Ordering::Acquire) {
            if ts.depth.load(Ordering::Acquire) == 0 {
                sleep_interruptible(stop, ts.cfg.poll_interval);
                continue;
            }
            match self.fold_once() {
                Ok(_) => backoff = ts.cfg.retry_base,
                Err(_) => {
                    sleep_interruptible(stop, backoff);
                    backoff = (backoff * 2).min(ts.cfg.retry_cap);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // persistence
    // ------------------------------------------------------------------

    /// Saves every shard master plus a manifest into `dir`
    /// (`MANIFEST` + `shard-<i>.nncell`, all through the atomic write
    /// path). Point-in-time consistent: the writer lock is held across
    /// the save.
    ///
    /// # Errors
    /// I/O failures of the underlying writes.
    pub fn save(&self, dir: impl AsRef<Path>) -> Result<(), PersistError> {
        self.save_with_vfs(&StdVfs, dir.as_ref())
    }

    /// [`Self::save`] through an explicit [`Vfs`].
    ///
    /// # Errors
    /// See [`Self::save`].
    pub fn save_with_vfs(&self, vfs: &dyn Vfs, dir: &Path) -> Result<(), PersistError> {
        // With a memtable the masters trail the acked state by the tail;
        // fold everything in first so the saved files hold every ack.
        // Fold lock before writer lock (the global order); the tail-empty
        // check happens *under* the writer lock, so no write can sneak in
        // between the final fold and the save.
        let _fold = self.tail.as_ref().map(|ts| lock_fold(&ts.fold_lock));
        let w = loop {
            let w = self.lock_writer();
            // Authoritative emptiness check under the writer lock (reads
            // the tails themselves, not the depth counter).
            let drained = self.tail.as_ref().is_none_or(|ts| {
                ts.tails.iter().all(|m| lock_mem(m).len() == 0)
            });
            if drained {
                break w;
            }
            drop(w);
            if let Some(ts) = &self.tail {
                for shard in 0..self.num_shards() {
                    self.fold_shard(ts, shard).map_err(|e| {
                        PersistError::Corrupt(format!("memtable flush before save failed: {e}"))
                    })?;
                }
            }
        };
        vfs.create_dir_all(dir)?;
        for (i, sw) in w.shards.iter().enumerate() {
            sw.index()
                .save_with_vfs(vfs, &dir.join(format!("shard-{i}.nncell")))?;
        }
        // Manifest last: a crash mid-save leaves either the old manifest
        // (old index intact) or no manifest (load fails typed), never a
        // manifest pointing at missing shard files.
        write_atomic(
            vfs,
            &dir.join(PLAIN_MANIFEST),
            format!("{PLAIN_MAGIC} {}\n", w.shards.len()).as_bytes(),
        )?;
        Ok(())
    }

    /// Loads a directory written by [`Self::save`].
    ///
    /// # Errors
    /// I/O failures, a missing or corrupt manifest, or shard files that
    /// disagree on dimensionality.
    pub fn load(dir: impl AsRef<Path>) -> Result<Self, PersistError> {
        Self::load_with_vfs(&StdVfs, dir.as_ref())
    }

    /// [`Self::load`] through an explicit [`Vfs`].
    ///
    /// # Errors
    /// See [`Self::load`].
    pub fn load_with_vfs(vfs: &dyn Vfs, dir: &Path) -> Result<Self, PersistError> {
        let text = manifest_text(vfs.read(&dir.join(PLAIN_MANIFEST))?)?;
        let shards = parse_manifest(&text, PLAIN_MAGIC).ok_or_else(|| {
            PersistError::Corrupt(format!("sharded manifest holds {text:?}"))
        })?;
        let mut masters = Vec::with_capacity(shards);
        let mut next_global = 0usize;
        for i in 0..shards {
            let idx =
                NnCellIndex::load_with_vfs(vfs, &dir.join(format!("shard-{i}.nncell")))?;
            next_global += idx.points().len();
            masters.push(ShardWriter::Mem(idx));
        }
        let (dim, cfg) = check_shard_agreement(&masters)?;
        Ok(Self::assemble(
            dim,
            cfg,
            masters,
            next_global,
            0.0,
            0,
            Vec::new(),
            false,
        ))
    }

    /// Opens (or initializes) a crash-consistent sharded index: a
    /// top-level `CURRENT` manifest recording the shard count, one full
    /// durable directory (`shard-<i>/`) per shard. On open, each shard
    /// recovers independently (snapshot load + WAL replay; see
    /// [`Self::recovery`]); `shards` must match the manifest.
    ///
    /// # Errors
    /// I/O failures, a corrupt manifest, or a shard-count/dimensionality
    /// mismatch with an existing directory.
    pub fn open_durable(
        dir: impl AsRef<Path>,
        dim: usize,
        shards: usize,
        cfg: BuildConfig,
    ) -> Result<Self, PersistError> {
        Self::open_durable_with_vfs(Arc::new(StdVfs), dir.as_ref(), dim, shards, cfg)
    }

    /// [`Self::open_durable`] through an explicit [`Vfs`].
    ///
    /// # Errors
    /// See [`Self::open_durable`].
    pub fn open_durable_with_vfs(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        dim: usize,
        shards: usize,
        cfg: BuildConfig,
    ) -> Result<Self, PersistError> {
        assert!(shards >= 1, "need at least one shard");
        vfs.create_dir_all(dir)?;
        let manifest = dir.join("CURRENT");
        let shard_count = if vfs.exists(&manifest) {
            let text = manifest_text(vfs.read(&manifest)?)?;
            let stored = parse_manifest(&text, DURABLE_MAGIC).ok_or_else(|| {
                PersistError::Corrupt(format!(
                    "sharded CURRENT holds {text:?} (expected `{DURABLE_MAGIC} <count>`)"
                ))
            })?;
            if stored != shards {
                return Err(PersistError::Corrupt(format!(
                    "directory {dir:?} is sharded {stored} ways, caller expected {shards}"
                )));
            }
            stored
        } else {
            write_atomic(
                vfs.as_ref(),
                &manifest,
                format!("{DURABLE_MAGIC} {shards}\n").as_bytes(),
            )?;
            shards
        };
        let mut masters = Vec::with_capacity(shard_count);
        let mut recovery = Vec::with_capacity(shard_count);
        let mut next_global = 0usize;
        for i in 0..shard_count {
            let d = NnCellIndex::open_durable_with_vfs(
                Arc::clone(&vfs),
                &dir.join(format!("shard-{i}")),
                dim,
                cfg.clone(),
            )?;
            recovery.push(d.recovery().clone());
            next_global += d.index().points().len();
            masters.push(ShardWriter::Durable(d));
        }
        let (dim, cfg) = check_shard_agreement(&masters)?;
        Ok(Self::assemble(
            dim,
            cfg,
            masters,
            next_global,
            0.0,
            0,
            recovery,
            true,
        ))
    }

    /// Opens an **existing** durable sharded directory, taking the shard
    /// count from the top-level `CURRENT` manifest and dimensionality and
    /// configuration from the shards' committed generations — the
    /// counterpart of [`crate::DurableIndex::open`] for directories the
    /// CLI auto-detects via [`Self::manifest_shards`].
    ///
    /// # Errors
    /// I/O failures, a missing or corrupt manifest, no committed shard
    /// generations, or shards that disagree on dimensionality.
    pub fn open_durable_existing(dir: impl AsRef<Path>) -> Result<Self, PersistError> {
        Self::open_durable_existing_with_vfs(Arc::new(StdVfs), dir.as_ref())
    }

    /// [`Self::open_durable_existing`] through an explicit [`Vfs`].
    ///
    /// # Errors
    /// See [`Self::open_durable_existing`].
    pub fn open_durable_existing_with_vfs(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
    ) -> Result<Self, PersistError> {
        let text = manifest_text(vfs.read(&dir.join("CURRENT"))?)?;
        let shards = parse_manifest(&text, DURABLE_MAGIC).ok_or_else(|| {
            PersistError::Corrupt(format!(
                "sharded CURRENT holds {text:?} (expected `{DURABLE_MAGIC} <count>`)"
            ))
        })?;
        let mut masters = Vec::with_capacity(shards);
        let mut recovery = Vec::with_capacity(shards);
        let mut next_global = 0usize;
        for i in 0..shards {
            let d = crate::durable::DurableIndex::open_with_vfs(
                Arc::clone(&vfs),
                &dir.join(format!("shard-{i}")),
            )?;
            recovery.push(d.recovery().clone());
            next_global += d.index().points().len();
            masters.push(ShardWriter::Durable(d));
        }
        let (dim, cfg) = check_shard_agreement(&masters)?;
        Ok(Self::assemble(
            dim,
            cfg,
            masters,
            next_global,
            0.0,
            0,
            recovery,
            true,
        ))
    }

    /// Converts an in-memory sharded index into a crash-consistent one:
    /// each shard master becomes the generation-0 snapshot of its own
    /// durable directory (`dir/shard-<i>/`) and the top-level `CURRENT`
    /// records the shard count. Build stats carry over; subsequent
    /// updates journal through the per-shard WALs.
    ///
    /// # Errors
    /// I/O failures, an already-initialized target directory, or calling
    /// this on an index that is already durable.
    pub fn into_durable(self, dir: impl AsRef<Path>) -> Result<Self, PersistError> {
        self.into_durable_with_vfs(Arc::new(StdVfs), dir.as_ref())
    }

    /// [`Self::into_durable`] through an explicit [`Vfs`].
    ///
    /// # Errors
    /// See [`Self::into_durable`].
    pub fn into_durable_with_vfs(
        self,
        vfs: Arc<dyn Vfs>,
        dir: &Path,
    ) -> Result<Self, PersistError> {
        if self.durable {
            return Err(PersistError::Corrupt(
                "index is already durable; open it in place instead".into(),
            ));
        }
        // Fold any unindexed tail into the masters first: we own `self`
        // exclusively here, so the tail is quiescent after the flush. The
        // memtable (with its configuration) carries over to the durable
        // index.
        if self.tail.is_some() {
            self.flush().map_err(|e| {
                PersistError::Corrupt(format!("memtable flush before conversion failed: {e}"))
            })?;
        }
        let tail_cfg = self.tail.as_ref().map(|t| t.cfg.clone());
        let w = match self.writer.into_inner() {
            Ok(w) => w,
            Err(p) => p.into_inner(),
        };
        vfs.create_dir_all(dir)?;
        let shards = w.shards.len();
        let mut masters = Vec::with_capacity(shards);
        for (i, sw) in w.shards.into_iter().enumerate() {
            let ShardWriter::Mem(idx) = sw else {
                unreachable!("non-durable index holds only Mem shards");
            };
            masters.push(ShardWriter::Durable(crate::durable::DurableIndex::create_with_vfs(
                Arc::clone(&vfs),
                &dir.join(format!("shard-{i}")),
                idx,
            )?));
        }
        // Manifest last, as in save(): a crash mid-conversion leaves no
        // CURRENT, so the half-written directory fails typed on open.
        write_atomic(
            vfs.as_ref(),
            &dir.join("CURRENT"),
            format!("{DURABLE_MAGIC} {shards}\n").as_bytes(),
        )?;
        let out = Self::assemble(
            self.dim,
            self.cfg,
            masters,
            w.next_global,
            self.build_seconds,
            self.skipped_points,
            Vec::new(),
            true,
        );
        Ok(match tail_cfg {
            Some(cfg) => out.with_memtable(cfg),
            None => out,
        })
    }

    /// The shard count recorded in a sharded directory's manifest — plain
    /// ([`Self::save`]) or durable ([`Self::open_durable`]) — or `None`
    /// when `dir` holds neither. How the CLI auto-detects sharded layouts.
    pub fn manifest_shards(dir: impl AsRef<Path>) -> Option<usize> {
        let dir = dir.as_ref();
        let try_file = |name: &str, magic: &str| -> Option<usize> {
            let text = String::from_utf8(std::fs::read(dir.join(name)).ok()?).ok()?;
            parse_manifest(&text, magic)
        };
        try_file("CURRENT", DURABLE_MAGIC).or_else(|| try_file(PLAIN_MANIFEST, PLAIN_MAGIC))
    }

    /// Checkpoints every durable shard (snapshot + fresh WAL + `CURRENT`
    /// flip, per shard). A no-op for in-memory indexes.
    ///
    /// In memtable mode the fresh WAL is seeded with the shard's unfolded
    /// tail (one batched fsync) before the `CURRENT` flip, preserving the
    /// invariant *disk snapshot + disk WAL ≡ master + tail*: a checkpoint
    /// taken while the folder is behind (or broken) still recovers every
    /// acked write, and because folding performs no syscalls, nothing can
    /// double-apply.
    ///
    /// # Errors
    /// I/O failures; already-checkpointed shards stay checkpointed, the
    /// failing shard keeps its previous generation intact.
    pub fn checkpoint(&self) -> Result<(), PersistError> {
        // Fold lock first: a checkpoint interleaved with an in-flight
        // fold could otherwise snapshot a master missing the frozen batch
        // while seeding the WAL without it either.
        let _fold = self.tail.as_ref().map(|ts| lock_fold(&ts.fold_lock));
        let mut w = self.lock_writer();
        for (i, sw) in w.shards.iter_mut().enumerate() {
            if let ShardWriter::Durable(d) = sw {
                let tail_recs = match &self.tail {
                    Some(ts) => lock_mem(&ts.tails[i]).wal_records(),
                    None => Vec::new(),
                };
                d.checkpoint_with_tail(&tail_recs)?;
            }
        }
        Ok(())
    }

    /// Checkpoints every durable shard and consumes the handle — the
    /// clean-shutdown path leaving zero replay debt (in memtable mode:
    /// zero debt when the final flush folds everything; a tail stranded
    /// by a broken folder is re-journaled by the tail-aware checkpoint
    /// and replayed on the next open).
    ///
    /// # Errors
    /// See [`Self::checkpoint`].
    pub fn close(self) -> Result<(), PersistError> {
        if self.tail.is_some() {
            // Best-effort fold: a degraded folder must not block
            // shutdown, and the tail-aware checkpoint below preserves
            // whatever stays unfolded.
            let _ = self.flush();
            self.checkpoint()?;
            // Not d.close(): that would checkpoint again with an empty
            // tail, discarding any unfolded acked writes.
            return Ok(());
        }
        let w = match self.writer.into_inner() {
            Ok(w) => w,
            Err(p) => p.into_inner(),
        };
        for sw in w.shards {
            if let ShardWriter::Durable(d) = sw {
                d.close()?;
            }
        }
        Ok(())
    }
}

/// UTF-8-decodes a manifest file.
fn manifest_text(bytes: Vec<u8>) -> Result<String, PersistError> {
    String::from_utf8(bytes)
        .map_err(|_| PersistError::Corrupt("sharded manifest is not UTF-8".into()))
}

/// Parses `"<magic> <count>"`, requiring `count >= 1`.
fn parse_manifest(text: &str, magic: &str) -> Option<usize> {
    let rest = text.trim().strip_prefix(magic)?;
    let count: usize = rest.trim().parse().ok()?;
    (count >= 1).then_some(count)
}

/// Every shard must agree on dimensionality and configuration; returns
/// the common `(dim, cfg)`.
fn check_shard_agreement(masters: &[ShardWriter]) -> Result<(usize, BuildConfig), PersistError> {
    let first = masters
        .first()
        .ok_or_else(|| PersistError::Corrupt("sharded manifest names zero shards".into()))?
        .index();
    let dim = first.dim();
    for (i, sw) in masters.iter().enumerate().skip(1) {
        if sw.index().dim() != dim {
            return Err(PersistError::Corrupt(format!(
                "shard {i} is {}-dimensional, shard 0 is {dim}-dimensional",
                sw.index().dim()
            )));
        }
    }
    Ok((dim, first.config().clone()))
}
