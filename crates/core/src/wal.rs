//! Write-ahead log for dynamic index updates.
//!
//! Every [`crate::DurableIndex::insert`] / `remove` is journaled here —
//! and fsynced — *before* the in-memory index mutates, so an update that
//! was acknowledged to the caller can always be replayed after a crash.
//!
//! **Format `NNWAL001`**: an 8-byte magic followed by self-delimiting
//! records, each framed as
//!
//! ```text
//! [len: u32 le] [crc: u32 le] [payload: len bytes]
//! ```
//!
//! where `crc` is CRC32 (IEEE) over the payload. Payloads are typed by
//! their first byte: `1` = insert (`dim: u32`, then `dim` little-endian
//! `f64` coordinates), `2` = remove (`id: u64`).
//!
//! **Recovery** ([`read_wal`]) is *prefix replay*: records are decoded in
//! order until the first frame that is truncated (a torn final append) or
//! fails its CRC (a torn or corrupted append). The damaged tail is
//! *dropped* — reported in [`WalTail`], never applied, never a panic. This
//! is safe because appends are fsynced before they are acknowledged: a
//! damaged frame can only be an update nobody was told succeeded (or
//! genuine disk corruption, where fail-soft prefix recovery is the best
//! available outcome and the checksum guarantees we never apply garbage).
//!
//! A CRC-*valid* frame that decodes to nonsense (unknown type, impossible
//! sizes) is not crash damage — the writer itself misbehaved — and fails
//! the whole replay with a typed [`PersistError::Corrupt`].

use crate::persist::{crc32, PersistError};
use crate::vfs::{Vfs, VfsFile};
use nncell_geom::Point;
use std::path::Path;

/// Magic prefix of a WAL file.
pub(crate) const WAL_MAGIC: &[u8; 8] = b"NNWAL001";

/// Largest accepted record payload: one point at the format's maximum
/// dimensionality (`2^16`), with headroom. Anything larger is corruption —
/// rejected *before* any allocation.
const MAX_RECORD_LEN: usize = 1 + 4 + 8 * (1 << 16) + 64;

/// One journaled update.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// A point insertion (the id is implied by replay order).
    Insert(Point),
    /// A removal of the point with this id.
    Remove(u64),
}

const OP_INSERT: u8 = 1;
const OP_REMOVE: u8 = 2;

impl WalRecord {
    /// Serializes the payload (without the frame).
    fn encode(&self) -> Vec<u8> {
        match self {
            WalRecord::Insert(p) => {
                let mut out = Vec::with_capacity(5 + 8 * p.dim());
                out.push(OP_INSERT);
                out.extend_from_slice(&(p.dim() as u32).to_le_bytes());
                for &c in p.as_slice() {
                    out.extend_from_slice(&c.to_le_bytes());
                }
                out
            }
            WalRecord::Remove(id) => {
                let mut out = Vec::with_capacity(9);
                out.push(OP_REMOVE);
                out.extend_from_slice(&id.to_le_bytes());
                out
            }
        }
    }

    /// Parses a CRC-verified payload. Errors here mean a *writer* bug or
    /// adversarial file, not crash damage — see the module docs.
    fn decode(payload: &[u8]) -> Result<WalRecord, PersistError> {
        let corrupt = |msg: &str| PersistError::Corrupt(format!("WAL record: {msg}"));
        let (&op, rest) = payload
            .split_first()
            .ok_or_else(|| corrupt("empty payload"))?;
        match op {
            OP_INSERT => {
                if rest.len() < 4 {
                    return Err(corrupt("insert record too short for dimensionality"));
                }
                let dim = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
                let coords = &rest[4..];
                if dim == 0 || dim > 1 << 16 || coords.len() != 8 * dim {
                    return Err(corrupt("insert record size disagrees with dimensionality"));
                }
                let coords: Vec<f64> = coords
                    .chunks_exact(8)
                    .map(|c| {
                        f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]])
                    })
                    .collect();
                Ok(WalRecord::Insert(Point::new(coords)))
            }
            OP_REMOVE => {
                if rest.len() != 8 {
                    return Err(corrupt("remove record has wrong size"));
                }
                Ok(WalRecord::Remove(u64::from_le_bytes([
                    rest[0], rest[1], rest[2], rest[3], rest[4], rest[5], rest[6], rest[7],
                ])))
            }
            other => Err(corrupt(&format!("unknown record type {other}"))),
        }
    }
}

/// How replay left the end of the log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalTail {
    /// Every byte decoded into a record.
    Clean,
    /// The final frame stopped mid-bytes (torn append); dropped.
    Truncated {
        /// File offset of the dropped partial frame.
        offset: u64,
    },
    /// A frame failed its CRC; it and everything after it were dropped.
    Corrupt {
        /// File offset of the first bad frame.
        offset: u64,
    },
}

/// The decoded prefix of a WAL plus how its tail looked.
#[derive(Clone, Debug)]
pub struct WalReplay {
    /// Records in append order.
    pub records: Vec<WalRecord>,
    /// Tail condition (anything but [`WalTail::Clean`] means bytes were
    /// dropped — only ever unacknowledged bytes, per the fsync contract).
    pub tail: WalTail,
}

/// Reads and decodes a WAL file.
///
/// # Errors
/// I/O failures, a missing/garbled magic, or a CRC-valid record whose
/// payload is structurally impossible. Torn/corrupt *tails* are not errors:
/// they come back as [`WalTail`] with the surviving prefix.
pub fn read_wal(vfs: &dyn Vfs, path: &Path) -> Result<WalReplay, PersistError> {
    let bytes = vfs.read(path)?;
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(PersistError::Corrupt(format!(
            "bad WAL magic (expected {WAL_MAGIC:?})"
        )));
    }
    let mut records = Vec::new();
    let mut pos = WAL_MAGIC.len();
    let tail = loop {
        if pos == bytes.len() {
            break WalTail::Clean;
        }
        if bytes.len() - pos < 8 {
            break WalTail::Truncated { offset: pos as u64 };
        }
        let len =
            u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
                as usize;
        let stored_crc = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        if len == 0 || len > MAX_RECORD_LEN {
            // A frame this shape was never written; treat as a corrupt
            // tail (a torn length field looks exactly like this).
            break WalTail::Corrupt { offset: pos as u64 };
        }
        if bytes.len() - pos - 8 < len {
            break WalTail::Truncated { offset: pos as u64 };
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != stored_crc {
            break WalTail::Corrupt { offset: pos as u64 };
        }
        records.push(WalRecord::decode(payload)?);
        pos += 8 + len;
    };
    Ok(WalReplay { records, tail })
}

/// Append handle over an open WAL file.
///
/// After any append or sync error the writer is **poisoned**: the file may
/// hold bytes that were neither acknowledged nor rolled back, so further
/// appends are refused until [`crate::DurableIndex::checkpoint`] rotates to
/// a fresh log. (The in-memory index — which never applied the failed
/// update — is the authority the next snapshot is written from.)
pub struct WalWriter {
    file: Box<dyn VfsFile>,
    records: u64,
    poisoned: bool,
    metrics: Option<WalMetrics>,
}

/// Registry handles for the write-ahead log (attached via
/// [`crate::DurableIndex::attach_metrics`]).
#[derive(Clone)]
pub struct WalMetrics {
    /// `nncell_wal_appends_total` — records acknowledged durable.
    pub(crate) appends: std::sync::Arc<nncell_obs::Counter>,
    /// `nncell_wal_fsyncs_total` — fsyncs issued by the log (one per
    /// acknowledged append under the fsync-before-ack contract).
    pub(crate) fsyncs: std::sync::Arc<nncell_obs::Counter>,
}

impl WalMetrics {
    /// Resolves (or creates) the WAL counters in `registry`.
    pub fn register(registry: &nncell_obs::Registry) -> Self {
        Self {
            appends: registry.counter("nncell_wal_appends_total"),
            fsyncs: registry.counter("nncell_wal_fsyncs_total"),
        }
    }
}

impl WalWriter {
    /// Creates a fresh WAL at `path` (magic written and fsynced).
    ///
    /// # Errors
    /// I/O failures. The *name* is durable only after the caller syncs the
    /// directory, which [`crate::DurableIndex`] does before committing any
    /// generation pointing at this file.
    pub fn create(vfs: &dyn Vfs, path: &Path) -> Result<WalWriter, PersistError> {
        let mut file = vfs.create(path)?;
        file.write_all(WAL_MAGIC)?;
        file.sync()?;
        Ok(WalWriter {
            file,
            records: 0,
            poisoned: false,
            metrics: None,
        })
    }

    /// Opens an existing WAL whose readable prefix holds `records` records,
    /// for appending.
    ///
    /// # Errors
    /// I/O failures.
    pub fn open_append(
        vfs: &dyn Vfs,
        path: &Path,
        records: u64,
    ) -> Result<WalWriter, PersistError> {
        Ok(WalWriter {
            file: vfs.open_append(path)?,
            records,
            poisoned: false,
            metrics: None,
        })
    }

    /// Attaches registry counters; appends and fsyncs record from now on.
    pub fn set_metrics(&mut self, metrics: WalMetrics) {
        self.metrics = Some(metrics);
    }

    /// Journals one record durably: frame, append, fsync. Returns only
    /// after the bytes are on stable storage — the caller may then apply
    /// the update and acknowledge it.
    ///
    /// # Errors
    /// I/O (including injected fsync) failures. On error the writer
    /// poisons itself; see the type docs.
    pub fn append(&mut self, rec: &WalRecord) -> Result<(), PersistError> {
        if self.poisoned {
            return Err(PersistError::Corrupt(
                "WAL writer poisoned by an earlier append failure; checkpoint to rotate".into(),
            ));
        }
        // Covers frame + write + fsync; nests under the request span when
        // the acking thread is inside a sampled trace.
        let mut span = nncell_obs::trace::child("wal.append");
        let payload = rec.encode();
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        span.arg("bytes", frame.len() as u64);
        let res = self
            .file
            .write_all(&frame)
            .and_then(|()| self.file.sync());
        match res {
            Ok(()) => {
                self.records += 1;
                if let Some(m) = &self.metrics {
                    m.appends.inc();
                    m.fsyncs.inc();
                }
                Ok(())
            }
            Err(e) => {
                self.poisoned = true;
                Err(PersistError::Io(e))
            }
        }
    }

    /// Journals a batch of records with a **single** fsync covering all of
    /// them — the checkpoint path uses this to re-journal an unfolded
    /// memtable tail into a fresh log without paying one fsync per record.
    /// The batch is durable as a whole: on error nothing in it may be
    /// treated as acknowledged, and the writer poisons itself exactly as
    /// [`WalWriter::append`] does.
    ///
    /// # Errors
    /// I/O (including injected fsync) failures; the writer is poisoned.
    pub fn append_batch(&mut self, recs: &[WalRecord]) -> Result<(), PersistError> {
        if recs.is_empty() {
            return Ok(());
        }
        if self.poisoned {
            return Err(PersistError::Corrupt(
                "WAL writer poisoned by an earlier append failure; checkpoint to rotate".into(),
            ));
        }
        let mut span = nncell_obs::trace::child("wal.append_batch");
        span.arg("records", recs.len() as u64);
        let mut frames = Vec::new();
        for rec in recs {
            let payload = rec.encode();
            frames.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frames.extend_from_slice(&crc32(&payload).to_le_bytes());
            frames.extend_from_slice(&payload);
        }
        let res = self
            .file
            .write_all(&frames)
            .and_then(|()| self.file.sync());
        match res {
            Ok(()) => {
                self.records += recs.len() as u64;
                if let Some(m) = &self.metrics {
                    m.appends.add(recs.len() as u64);
                    m.fsyncs.inc();
                }
                Ok(())
            }
            Err(e) => {
                self.poisoned = true;
                Err(PersistError::Io(e))
            }
        }
    }

    /// Records acknowledged through this writer (including the replayed
    /// prefix it was opened with).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Whether an append failure has poisoned this writer.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultSchedule, FaultVfs, StdVfs};
    use std::path::PathBuf;

    fn mem() -> (FaultVfs, PathBuf) {
        (FaultVfs::new(FaultSchedule::none(1)), PathBuf::from("/wal"))
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Insert(Point::new(vec![0.25, 0.75])),
            WalRecord::Remove(0),
            WalRecord::Insert(Point::new(vec![0.5, 0.125])),
            WalRecord::Insert(Point::new(vec![0.875, 0.625])),
            WalRecord::Remove(2),
        ]
    }

    #[test]
    fn roundtrip_preserves_records_in_order() {
        let (vfs, path) = mem();
        let mut w = WalWriter::create(&vfs, &path).unwrap();
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        assert_eq!(w.records(), 5);
        let replay = read_wal(&vfs, &path).unwrap();
        assert_eq!(replay.tail, WalTail::Clean);
        assert_eq!(replay.records, sample_records());
    }

    #[test]
    fn append_batch_is_byte_identical_to_one_by_one_appends() {
        let (vfs, path) = mem();
        let mut one = WalWriter::create(&vfs, &path).unwrap();
        for r in sample_records() {
            one.append(&r).unwrap();
        }
        let per_record = vfs.read(&path).unwrap();

        let vfs2 = FaultVfs::new(FaultSchedule::none(2));
        let mut batch = WalWriter::create(&vfs2, &path).unwrap();
        batch.append_batch(&sample_records()).unwrap();
        assert_eq!(batch.records(), 5);
        assert_eq!(vfs2.read(&path).unwrap(), per_record);
        let replay = read_wal(&vfs2, &path).unwrap();
        assert_eq!(replay.tail, WalTail::Clean);
        assert_eq!(replay.records, sample_records());
        // Empty batches are free and never touch the file.
        batch.append_batch(&[]).unwrap();
        assert_eq!(batch.records(), 5);
    }

    #[test]
    fn truncated_tail_is_dropped_with_report() {
        let (vfs, path) = mem();
        let mut w = WalWriter::create(&vfs, &path).unwrap();
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        let full = vfs.read(&path).unwrap();
        // Frame boundaries: only there may a truncated file read back as a
        // clean (shorter) log.
        let mut boundaries = vec![WAL_MAGIC.len()];
        let mut pos = WAL_MAGIC.len();
        while pos < full.len() {
            let len = u32::from_le_bytes([full[pos], full[pos + 1], full[pos + 2], full[pos + 3]])
                as usize;
            pos += 8 + len;
            boundaries.push(pos);
        }
        // Every proper prefix must replay to a record prefix, never panic.
        for keep in 0..full.len() {
            let vfs2 = FaultVfs::new(FaultSchedule::none(2));
            let mut f = vfs2.create(&path).unwrap();
            f.write_all(&full[..keep]).unwrap();
            drop(f);
            match read_wal(&vfs2, &path) {
                Ok(replay) => {
                    assert!(replay.records.len() <= 5);
                    assert_eq!(
                        replay.records,
                        sample_records()[..replay.records.len()],
                        "prefix at keep={keep}"
                    );
                    if replay.tail == WalTail::Clean {
                        assert!(
                            boundaries.contains(&keep),
                            "keep={keep} lost bytes silently"
                        );
                    }
                }
                Err(PersistError::Corrupt(_)) => assert!(keep < 8, "magic-only failures"),
                Err(PersistError::Io(e)) => panic!("unexpected io error: {e}"),
            }
        }
    }

    #[test]
    fn bitflips_never_panic_and_never_fabricate_records() {
        let (vfs, path) = mem();
        let mut w = WalWriter::create(&vfs, &path).unwrap();
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        let full = vfs.read(&path).unwrap();
        for pos in 0..full.len() {
            for bit in [0u8, 3, 7] {
                let mut mutated = full.clone();
                mutated[pos] ^= 1 << bit;
                let vfs2 = FaultVfs::new(FaultSchedule::none(3));
                let mut f = vfs2.create(&path).unwrap();
                f.write_all(&mutated).unwrap();
                drop(f);
                match read_wal(&vfs2, &path) {
                    Ok(replay) => {
                        // Only a clean prefix may survive — every surviving
                        // record must be one we actually wrote.
                        assert_eq!(
                            replay.records,
                            sample_records()[..replay.records.len()],
                            "byte {pos} bit {bit}"
                        );
                    }
                    Err(PersistError::Corrupt(_)) => {}
                    Err(PersistError::Io(e)) => panic!("unexpected io error: {e}"),
                }
            }
        }
    }

    #[test]
    fn oversized_length_field_rejected_before_allocation() {
        let (vfs, path) = mem();
        let mut f = vfs.create(&path).unwrap();
        f.write_all(WAL_MAGIC).unwrap();
        f.write_all(&u32::MAX.to_le_bytes()).unwrap(); // absurd len
        f.write_all(&0u32.to_le_bytes()).unwrap();
        drop(f);
        let replay = read_wal(&vfs, &path).unwrap();
        assert!(replay.records.is_empty());
        assert!(matches!(replay.tail, WalTail::Corrupt { offset: 8 }));
    }

    #[test]
    fn crc_valid_garbage_payload_is_a_typed_error() {
        let (vfs, path) = mem();
        let mut f = vfs.create(&path).unwrap();
        f.write_all(WAL_MAGIC).unwrap();
        let payload = [9u8, 1, 2, 3]; // unknown op, correct CRC
        f.write_all(&(payload.len() as u32).to_le_bytes()).unwrap();
        f.write_all(&crate::persist::crc32(&payload).to_le_bytes())
            .unwrap();
        f.write_all(&payload).unwrap();
        drop(f);
        assert!(matches!(
            read_wal(&vfs, &path),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn poisoned_writer_refuses_appends_after_fsync_failure() {
        let path = PathBuf::from("/wal");
        // Find the op index of the first append's fsync: create(1) +
        // write magic(1) + sync(1) => append's write is op 3, sync op 4.
        let vfs = FaultVfs::new(FaultSchedule {
            seed: 9,
            fail_sync_ops: vec![4],
            ..FaultSchedule::default()
        });
        let mut w = WalWriter::create(&vfs, &path).unwrap();
        let rec = WalRecord::Remove(7);
        let err = w.append(&rec).unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
        assert!(w.is_poisoned());
        // Even though later fsyncs would succeed, the writer refuses: the
        // unacknowledged bytes on disk must not be extended.
        assert!(matches!(
            w.append(&rec),
            Err(PersistError::Corrupt(_))
        ));
        assert_eq!(w.records(), 0);
    }

    #[test]
    fn std_vfs_wal_roundtrips_on_real_files() {
        let dir = std::env::temp_dir().join(format!("nncell_wal_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&StdVfs, &path).unwrap();
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        drop(w);
        let replay = read_wal(&StdVfs, &path).unwrap();
        assert_eq!(replay.tail, WalTail::Clean);
        assert_eq!(replay.records, sample_records());
        std::fs::remove_dir_all(&dir).ok();
    }
}
