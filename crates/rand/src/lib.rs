//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so this tiny
//! in-tree crate shadows `rand` with the subset the workspace actually
//! uses: a seedable small RNG ([`rngs::SmallRng`]), [`Rng::gen_range`] over
//! integer and float ranges, and [`seq::SliceRandom::shuffle`]. The
//! generator is xoshiro256++ seeded through SplitMix64 — high quality for
//! test-data generation and Seidel's constraint shuffles, and fully
//! deterministic for a given seed (the workspace's reproducible-build
//! contract).
//!
//! Streams do **not** match the real `rand` crate bit-for-bit; nothing in
//! the workspace depends on the exact stream, only on determinism.

pub mod rngs;
pub mod seq;

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// A uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A sample from the standard distribution of `T` (callers use the raw
    /// identifier `r#gen` because `gen` is reserved in edition 2024).
    fn r#gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Types with a "standard" distribution for [`Rng::gen`]: `[0, 1)` for
/// floats, uniform over the full domain for integers and `bool`.
pub trait Standard {
    /// Draws one standard-distributed sample from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        rng.gen_f64()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one sample from `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty f64 range");
        let u = rng.gen_f64();
        let v = self.start + (self.end - self.start) * u;
        // Guard the open end against round-up at the boundary.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

int_ranges!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn float_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&v), "{v}");
        }
    }

    #[test]
    fn int_ranges_cover_all_values() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|s| *s));
        for _ in 0..100 {
            let v: i32 = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn shuffle_permutes() {
        use crate::seq::SliceRandom;
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, sorted, "20 elements virtually never shuffle to identity");
    }
}
