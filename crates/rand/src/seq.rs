//! Sequence-related sampling (`shuffle`).

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// Uniformly permutes the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}
