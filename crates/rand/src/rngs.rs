//! The concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, seedable generator (xoshiro256++).
///
/// Mirrors the role of `rand::rngs::SmallRng`: not cryptographically
/// secure, excellent statistical quality for simulation workloads.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the standard way to seed xoshiro state.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
