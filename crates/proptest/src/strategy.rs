//! The [`Strategy`] trait and the combinators/primitive strategies the
//! workspace uses.

use crate::TestRng;

/// A recipe for generating random values.
///
/// `generate` returns `None` when a filter rejects the draw; the harness
/// retries the whole case with a fresh RNG stream (bounded by
/// [`crate::MAX_REJECTS`]).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value, or `None` on filter rejection.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing the predicate (`reason` is documentation).
    fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        let _ = reason.into();
        Filter { inner: self, f }
    }

    /// Combined filter + map: `None` rejects the draw.
    fn prop_filter_map<O, F>(self, reason: impl Into<String>, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        let _ = reason.into();
        FilterMap { inner: self, f }
    }
}

/// Every reference to a strategy is a strategy.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(|v| (self.f)(v))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).and_then(&self.f)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// Uniform booleans (`prop::bool::ANY`).
#[derive(Clone, Copy, Debug)]
pub struct BoolAny;

impl Strategy for BoolAny {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> Option<bool> {
        Some(rng.next_u64() & 1 == 1)
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                debug_assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                Some((self.start as i128 + draw) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                debug_assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                Some((lo as i128 + draw) as $t)
            }
        }
    )*};
}

int_strategies!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> Option<f64> {
        debug_assert!(self.start < self.end, "empty f64 range strategy");
        let v = self.start + (self.end - self.start) * rng.next_f64();
        Some(if v >= self.end { self.start } else { v })
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)+))
            }
        }
    )*};
}

tuple_strategies! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
}

/// A collection size: fixed or ranged.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// `prop::collection::vec(element, size)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let n = if self.size.lo == self.size.hi_inclusive {
            self.size.lo
        } else {
            self.size.lo + rng.index(self.size.hi_inclusive - self.size.lo + 1)
        };
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.element.generate(rng)?);
        }
        Some(out)
    }
}
