//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so this in-tree crate
//! shadows `proptest` with the subset of its API the workspace uses:
//! the [`proptest!`] macro, the [`Strategy`] trait with `prop_map` /
//! `prop_filter` / `prop_filter_map`, integer-range and tuple strategies,
//! [`prop::collection::vec`], [`prop::bool::ANY`], and the
//! `prop_assert*` macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the exact generated inputs
//!   (they are printed in the panic message and reproducible — see below),
//!   but no minimization pass runs.
//! * **Determinism instead of entropy.** Case `i` of test `t` is generated
//!   from a seed derived from `(t, i)`, so a failure reproduces exactly on
//!   re-run — there is no `PROPTEST_` environment handling and no
//!   regressions file.
//!
//! Neither difference weakens the tests as *checks*; they only make
//! failures slightly less convenient to debug than upstream proptest.

use std::fmt;

pub mod strategy;

pub use strategy::{Just, Strategy};

/// Deterministic per-test RNG handed to strategies.
pub struct TestRng(rand::rngs::SmallRng);

impl TestRng {
    /// The next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.0.next_u64()
    }

    /// A uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        use rand::Rng;
        self.0.gen_f64()
    }

    /// A uniform index in `[0, n)`; `n` must be positive.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        use rand::Rng;
        self.0.gen_range(0..n)
    }
}

/// Builds the deterministic RNG for case `case` of test `name`.
pub fn test_rng(name: &str, case: u32) -> TestRng {
    use rand::SeedableRng;
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    TestRng(rand::rngs::SmallRng::seed_from_u64(
        h ^ ((case as u64).wrapping_mul(0x9e3779b97f4a7c15)),
    ))
}

/// Per-`proptest!`-block configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// How many times a case is re-drawn when a `prop_filter`/`prop_filter_map`
/// or a `prop_assume!` rejects, before the harness gives up.
pub const MAX_REJECTS: u32 = 10_000;

/// Why a case body did not succeed.
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs: redraw, don't fail.
    Reject,
    /// A `prop_assert*` failed.
    Fail(String),
}

/// Runs the generate-with-retries loop for one case (`salt` differentiates
/// redraws after `prop_assume!` rejections). Panics (failing the test) when
/// the strategies reject every draw.
pub fn generate_case<S: Strategy>(strat: &S, name: &str, case: u32, salt: u32) -> S::Value {
    for attempt in 0..MAX_REJECTS {
        let mut rng = test_rng(
            name,
            case.wrapping_add(salt.wrapping_mul(0x85eb))
                .wrapping_add(attempt.wrapping_mul(0x9e37)),
        );
        if let Some(v) = strat.generate(&mut rng) {
            return v;
        }
    }
    panic!("{name}: strategy rejected {MAX_REJECTS} consecutive draws (case {case})");
}

/// Debug-formats the failing inputs for the panic message.
pub fn format_inputs(parts: &[(&str, &dyn fmt::Debug)]) -> String {
    parts
        .iter()
        .map(|(n, v)| format!("{n} = {v:?}"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// The `prop::` namespace (`prop::collection::vec`, `prop::bool::ANY`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::{vec, SizeRange, VecStrategy};
    }
    /// Boolean strategies.
    pub mod bool {
        /// Either boolean, uniformly.
        pub const ANY: crate::strategy::BoolAny = crate::strategy::BoolAny;
    }
    /// Numeric strategies (ranges implement `Strategy` directly).
    pub mod num {}
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0usize..10, v in prop::collection::vec(0..100u32, 3)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategies = ( $( $strat, )* );
            'cases: for case in 0..config.cases {
                let mut rejects = 0u32;
                loop {
                    let ( $( $arg, )* ) =
                        $crate::generate_case(&strategies, stringify!($name), case, rejects);
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => continue 'cases,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                            rejects += 1;
                            if rejects > $crate::MAX_REJECTS {
                                panic!(
                                    "{}: prop_assume! rejected {} consecutive draws (case {case})",
                                    stringify!($name), $crate::MAX_REJECTS,
                                );
                            }
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {case} of {} failed: {msg}\ninputs: {}",
                                stringify!($name),
                                $crate::format_inputs(&[ $( (stringify!($arg), &$arg as &dyn ::std::fmt::Debug), )* ]),
                            );
                        }
                    }
                }
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body (fails the case,
/// reporting the generated inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond))));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {a:?} == {b:?}")));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Rejects the current case without failing it (the harness redraws).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {a:?} != {b:?}")));
        }
    }};
}
