//! Phase breakdown of the pooled build at a few sizes — the quick
//! diagnostic for "where did the build time go" (constraint gathering,
//! LP solves, decomposition, or tree packing). This is the tool that
//! caught the cell tree's super-linear per-piece insert phase; keep it
//! around for the next scaling cliff.
//!
//! ```sh
//! cargo run --release -p nncell-bench --example profile_build
//! ```

use nncell_core::{BuildConfig, ConstraintPool, NnCellIndex, Strategy};
use nncell_data::{Generator, UniformGenerator};
use std::time::Instant;

fn main() {
    let d = 8;
    for n in [8_000usize, 16_000, 32_000] {
        let pts = UniformGenerator::new(d).generate(n, 7);
        let cfg = BuildConfig::builder()
            .strategy(Strategy::NnDirection)
            .constraint_pool(ConstraintPool::ApproxKnn {
                k: ConstraintPool::recommended_k(d),
            })
            .seed(7)
            .build();
        let t0 = Instant::now();
        let idx = NnCellIndex::build(pts, cfg).expect("build");
        let total = t0.elapsed().as_secs_f64();
        let p = &idx.build_stats().profile;
        println!(
            "n={n}: total {total:.2}s | constraint {:.2}s | lp {:.2}s | decomp {:.2}s | \
             tree packing {:.2}s",
            p.constraint_selection.nanos as f64 / 1e9,
            p.lp_solve.nanos as f64 / 1e9,
            p.decomposition.nanos as f64 / 1e9,
            p.bulk_load.nanos as f64 / 1e9,
        );
    }
}
