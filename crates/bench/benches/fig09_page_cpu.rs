//! Figure 9: page accesses vs CPU time per query, NN-cell vs R\*-tree vs
//! X-tree, as dimensionality grows.
//!
//! Paper shape to reproduce: total search time is *not* dominated by page
//! accesses — the tree NN searches pay heavy CPU for priority-queue /
//! MINDIST sorting, while the NN-cell point query does none of it. The
//! NN-cell CPU advantage is the decisive one; its page-access standing
//! depends on density (the paper ran 100k points; at laptop scale the
//! trees' NN search is less degraded, see EXPERIMENTS.md).

use nncell_bench::{as_queries, env_dims, env_usize, print_table, timed};
use nncell_core::{BuildConfig, NnCellIndex, Strategy};
use nncell_data::{Generator, UniformGenerator};
use nncell_index::{RStarTree, XTree};

fn main() {
    let n = env_usize("NNCELL_N", 2_000);
    let n_queries = env_usize("NNCELL_QUERIES", 200);
    let dims = env_dims("NNCELL_DIMS", &[4, 6, 8, 10, 12, 14, 16]);
    println!("# Figure 9 — page accesses and CPU time per query (N={n})");

    let mut pages = Vec::new();
    let mut cpu = Vec::new();
    for &d in &dims {
        let points = UniformGenerator::new(d).generate(n, 70 + d as u64);
        let queries = as_queries(UniformGenerator::new(d).generate(n_queries, 71));

        let nncell = NnCellIndex::build(
            points.clone(),
            BuildConfig::builder().strategy(Strategy::CorrectPruned).seed(3).build(),
        )
        .expect("build");
        let mut rstar = RStarTree::for_points(d);
        let mut xtree = XTree::for_points(d);
        for (i, p) in points.iter().enumerate() {
            rstar.insert_point(p, i as u64);
            xtree.insert_point(p, i as u64);
        }

        nncell.reset_stats();
        rstar.reset_stats();
        xtree.reset_stats();
        let (ids_n, t_n) = timed(|| {
            queries
                .iter()
                .map(|q| nncell_bench::nn_query(&nncell, q).unwrap().id)
                .collect::<Vec<_>>()
        });
        let (ids_r, t_r) = timed(|| {
            queries
                .iter()
                .map(|q| rstar.nearest_neighbor(q).unwrap().id as usize)
                .collect::<Vec<_>>()
        });
        let (ids_x, t_x) = timed(|| {
            queries
                .iter()
                .map(|q| xtree.nearest_neighbor(q).unwrap().id as usize)
                .collect::<Vec<_>>()
        });
        assert_eq!(ids_n, ids_r);
        assert_eq!(ids_r, ids_x);

        let per = |v: u64| format!("{:.1}", v as f64 / n_queries as f64);
        let us = |t: f64| format!("{:.1}µs", t * 1e6 / n_queries as f64);
        pages.push(vec![
            d.to_string(),
            per(nncell.cell_tree_stats().page_reads),
            per(rstar.stats().page_reads),
            per(xtree.stats().page_reads),
        ]);
        cpu.push(vec![d.to_string(), us(t_n), us(t_r), us(t_x)]);
    }

    let header = ["dim", "NN-cell", "R*-tree", "X-tree"];
    print_table("Figure 9a: page accesses per query", &header, &pages);
    print_table("Figure 9b: CPU time per query", &header, &cpu);
    println!("\npaper shape check: the NN-cell point query wins CPU time decisively;");
    println!("page accesses favor it only at database-scale N (see EXPERIMENTS.md).");
}
