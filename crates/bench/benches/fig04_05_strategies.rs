//! Figures 4a, 4b and 5: the four approximation algorithms.
//!
//! * 4a — time to compute all approximations ("performance") vs dimension,
//! * 4b — average approximation overlap ("quality") vs dimension,
//! * 5  — quality-to-performance ratio.
//!
//! Paper shape to reproduce: the most accurate algorithm (Correct) is the
//! slowest and tightest; NN-Direction is the fastest and loosest; Sphere
//! wins the quality/performance trade-off at low d, NN-Direction at high d.

use nncell_bench::{as_queries, cells_of, env_dims, env_usize, print_table, secs, timed};
use nncell_core::{average_overlap, quality_to_performance, BuildConfig, NnCellIndex, Strategy};
use nncell_data::{Generator, UniformGenerator};

fn main() {
    let n = env_usize("NNCELL_N", 1_000);
    let dims = env_dims("NNCELL_DIMS", &[4, 8, 12, 16]);
    let n_queries = env_usize("NNCELL_QUERIES", 100);
    println!("# Figures 4a / 4b / 5 — approximation algorithms (N={n} uniform points)");

    let strategies = Strategy::ALL;
    let mut time_rows = Vec::new();
    let mut overlap_rows = Vec::new();
    let mut qpr_rows = Vec::new();

    for &d in &dims {
        let points = UniformGenerator::new(d).generate(n, 42 + d as u64);
        let queries = as_queries(UniformGenerator::new(d).generate(n_queries, 77));
        let mut times = Vec::new();
        let mut overlaps = Vec::new();
        let mut qprs = Vec::new();
        for strategy in strategies {
            let (index, secs_taken) = timed(|| {
                NnCellIndex::build(points.clone(), BuildConfig::builder().strategy(strategy).seed(1).build())
                    .expect("build")
            });
            let overlap = average_overlap(&cells_of(&index));
            // Sanity: exact answers regardless of strategy.
            for q in queries.iter().take(10) {
                let got = nncell_bench::nn_query(&index, q).unwrap();
                let want = nncell_core::linear_scan_nn(&points, q).unwrap();
                assert_eq!(got.id, want.id, "{strategy:?} inexact at d={d}");
            }
            times.push(secs_taken);
            overlaps.push(overlap);
            qprs.push(quality_to_performance(overlap, secs_taken));
        }
        time_rows.push(
            std::iter::once(d.to_string())
                .chain(times.iter().map(|t| secs(*t)))
                .collect(),
        );
        overlap_rows.push(
            std::iter::once(d.to_string())
                .chain(overlaps.iter().map(|o| format!("{o:.2}")))
                .collect(),
        );
        qpr_rows.push(
            std::iter::once(d.to_string())
                .chain(qprs.iter().map(|q| format!("{q:.3}")))
                .collect(),
        );
    }

    let header = ["dim", "Correct", "Point", "Sphere", "NN-Direction"];
    print_table(
        "Figure 4a: approximation time (lower = faster insertion)",
        &header,
        &time_rows,
    );
    print_table(
        "Figure 4b: average overlap of approximations (lower = better quality)",
        &header,
        &overlap_rows,
    );
    print_table(
        "Figure 5: quality-to-performance ratio (higher = better)",
        &header,
        &qpr_rows,
    );

    println!("\npaper shape check: Correct slowest+tightest, NN-Direction fastest+loosest;");
    println!("QPR winner shifts from Sphere (low d) toward NN-Direction (high d).");
}
