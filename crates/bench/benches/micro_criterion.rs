//! Criterion microbenchmarks: the primitive operations under the figures.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use nncell_core::{BuildConfig, NnCellIndex, Strategy};
use nncell_data::{Generator, UniformGenerator};
use nncell_geom::{DataSpace, Euclidean, Mbr};
use nncell_index::{RStarTree, XTree};
use nncell_lp::{SolverKind, VoronoiLp};

fn bench_lp(c: &mut Criterion) {
    let d = 8;
    let points = UniformGenerator::new(d).generate(200, 1);
    let vlp_s = VoronoiLp::new(Euclidean, DataSpace::unit(d), SolverKind::Simplex);
    let vlp_z = VoronoiLp::new(Euclidean, DataSpace::unit(d), SolverKind::Seidel);
    let rivals: Vec<&[f64]> = points[1..].iter().map(|p| p.as_slice()).collect();
    let cons = vlp_s.bisectors(&points[0], rivals.iter().copied());

    let mut g = c.benchmark_group("lp_cell_extents_d8_m199");
    g.bench_function("simplex", |b| {
        b.iter(|| vlp_s.extents(&cons, 7).unwrap().unwrap())
    });
    g.bench_function("seidel", |b| {
        b.iter(|| vlp_z.extents(&cons, 7).unwrap().unwrap())
    });
    g.finish();
}

fn bench_tree_ops(c: &mut Criterion) {
    let d = 8;
    let n = 2_000;
    let points = UniformGenerator::new(d).generate(n, 2);
    let queries = UniformGenerator::new(d).generate(64, 3);

    let mut rstar = RStarTree::for_points(d);
    let mut xtree = XTree::for_points(d);
    for (i, p) in points.iter().enumerate() {
        rstar.insert_point(p, i as u64);
        xtree.insert_point(p, i as u64);
    }

    let mut g = c.benchmark_group("tree_nn_query_d8_n2000");
    g.bench_function("rstar_branch_bound", |b| {
        let mut k = 0;
        b.iter(|| {
            k = (k + 1) % queries.len();
            rstar.nearest_neighbor(&queries[k]).unwrap()
        })
    });
    g.bench_function("xtree_best_first", |b| {
        let mut k = 0;
        b.iter(|| {
            k = (k + 1) % queries.len();
            xtree.nearest_neighbor(&queries[k]).unwrap()
        })
    });
    g.finish();

    let mut g = c.benchmark_group("tree_insert_d8");
    g.bench_function("rstar_insert", |b| {
        let fresh = UniformGenerator::new(d).generate(256, 4);
        b.iter_batched(
            || (RStarTree::for_points(d), fresh.clone()),
            |(mut t, pts)| {
                for (i, p) in pts.iter().enumerate() {
                    t.insert(Mbr::from_point(p), i as u64);
                }
                t
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_nncell_query(c: &mut Criterion) {
    let d = 8;
    let points = UniformGenerator::new(d).generate(2_000, 5);
    let queries = UniformGenerator::new(d).generate(64, 6);
    let index = NnCellIndex::build(
        points,
        BuildConfig::new(Strategy::NnDirection).with_seed(10),
    )
    .expect("build");

    c.bench_function("nncell_point_query_d8_n2000", |b| {
        let mut k = 0;
        b.iter(|| {
            k = (k + 1) % queries.len();
            index.nearest_neighbor(&queries[k]).unwrap()
        })
    });
}

fn bench_cell_build(c: &mut Criterion) {
    let d = 8;
    let points = UniformGenerator::new(d).generate(300, 7);
    let mut g = c.benchmark_group("cell_index_build_d8_n300");
    g.sample_size(10);
    for strategy in [Strategy::Sphere, Strategy::NnDirection] {
        g.bench_function(strategy.name(), |b| {
            b.iter(|| {
                NnCellIndex::build(points.clone(), BuildConfig::new(strategy).with_seed(11))
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_lp,
    bench_tree_ops,
    bench_nncell_query,
    bench_cell_build
);
criterion_main!(benches);
