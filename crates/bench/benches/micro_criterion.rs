//! Microbenchmarks: the primitive operations under the figures.
//!
//! Originally a criterion harness; rewritten on a hand-rolled timing loop
//! so the workspace builds without network access to crates.io. Each
//! benchmark warms up, then reports the median of `SAMPLES` timed batches.

use nncell_bench::env_usize;
use nncell_core::{BuildConfig, NnCellIndex, Strategy};
use nncell_data::{Generator, UniformGenerator};
use nncell_geom::{DataSpace, Euclidean, Mbr};
use nncell_index::{RStarTree, XTree};
use nncell_lp::{SolverKind, VoronoiLp};
use std::time::Instant;

const SAMPLES: usize = 15;

/// Times `f` (run `batch` times per sample) and prints the median
/// per-iteration latency.
fn bench<T>(name: &str, batch: usize, mut f: impl FnMut() -> T) {
    // Warm-up.
    for _ in 0..batch.min(16) {
        std::hint::black_box(f());
    }
    let mut per_iter: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            t.elapsed().as_secs_f64() / batch as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    println!("{name:<42} {:>12.3} µs/iter", median * 1e6);
}

fn bench_lp() {
    let d = 8;
    let points = UniformGenerator::new(d).generate(200, 1);
    let vlp_s = VoronoiLp::new(Euclidean, DataSpace::unit(d), SolverKind::Simplex);
    let vlp_z = VoronoiLp::new(Euclidean, DataSpace::unit(d), SolverKind::Seidel);
    let rivals: Vec<&[f64]> = points[1..].iter().map(|p| p.as_slice()).collect();
    let cons = vlp_s.bisectors(&points[0], rivals.iter().copied());

    bench("lp_cell_extents_d8_m199/simplex", 4, || {
        vlp_s.extents(&cons, 7).unwrap()
    });
    bench("lp_cell_extents_d8_m199/seidel", 4, || {
        vlp_z.extents(&cons, 7).unwrap()
    });
}

fn bench_tree_ops() {
    let d = 8;
    let n = env_usize("NNCELL_N", 2_000);
    let points = UniformGenerator::new(d).generate(n, 2);
    let queries = UniformGenerator::new(d).generate(64, 3);

    let mut rstar = RStarTree::for_points(d);
    let mut xtree = XTree::for_points(d);
    for (i, p) in points.iter().enumerate() {
        rstar.insert_point(p, i as u64);
        xtree.insert_point(p, i as u64);
    }

    let mut k = 0;
    bench("tree_nn_query_d8/rstar_branch_bound", 64, || {
        k = (k + 1) % queries.len();
        rstar.nearest_neighbor(&queries[k]).unwrap()
    });
    let mut k = 0;
    bench("tree_nn_query_d8/xtree_best_first", 64, || {
        k = (k + 1) % queries.len();
        xtree.nearest_neighbor(&queries[k]).unwrap()
    });

    let fresh = UniformGenerator::new(d).generate(256, 4);
    bench("tree_insert_d8/rstar_insert_256", 1, || {
        let mut t = RStarTree::for_points(d);
        for (i, p) in fresh.iter().enumerate() {
            t.insert(Mbr::from_point(p), i as u64);
        }
        t
    });
}

fn bench_nncell_query() {
    let d = 8;
    let points = UniformGenerator::new(d).generate(2_000, 5);
    let queries = UniformGenerator::new(d).generate(64, 6);
    let index = NnCellIndex::build(
        points,
        BuildConfig::builder().strategy(Strategy::NnDirection).seed(10).build(),
    )
    .expect("build");

    let mut k = 0;
    bench("nncell_point_query_d8_n2000", 64, || {
        k = (k + 1) % queries.len();
        nncell_bench::nn_query(&index, &queries[k]).unwrap()
    });
}

fn bench_cell_build() {
    let d = 8;
    let points = UniformGenerator::new(d).generate(300, 7);
    for strategy in [Strategy::Sphere, Strategy::NnDirection] {
        bench(&format!("cell_index_build_d8_n300/{}", strategy.name()), 1, || {
            NnCellIndex::build(points.clone(), BuildConfig::builder().strategy(strategy).seed(11).build()).unwrap()
        });
    }
}

fn main() {
    bench_lp();
    bench_tree_ops();
    bench_nncell_query();
    bench_cell_build();
}
