//! HTTP serving-layer throughput and overload behaviour, written as
//! JSON for CI trend tracking (`BENCH_server.json`).
//!
//! Two passes against an in-process [`nncell_server::Server`] over real
//! TCP sockets:
//!
//! 1. **Capacity**: as many client threads as worker threads fire
//!    `/query` requests back-to-back with raw (no-retry) clients —
//!    reports end-to-end QPS and p99 latency, connection setup and
//!    JSON round trip included.
//! 2. **Overload**: offered concurrency is doubled past total capacity
//!    (workers + admission queue) for a fixed window — reports the shed
//!    rate. Every non-200 must be a `429` carrying `Retry-After`; any
//!    other status (or a transport error) fails the bench, so this
//!    doubles as an end-to-end check that overload degrades *gracefully*
//!    rather than by dropped connections.
//!
//! Defaults are sized for real hardware; CI runs a smoke scale via the
//! usual env overrides (`NNCELL_N`, `NNCELL_DIM`, `NNCELL_QUERIES`,
//! `NNCELL_SERVER_THREADS`, `NNCELL_BENCH_OUT` for the JSON path).

use nncell_bench::{env_usize, timed};
use nncell_core::{BuildConfig, Registry, ShardedIndex, Strategy};
use nncell_data::{Generator, UniformGenerator};
use nncell_server::{Client, Server, ServerConfig, ServeIndex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Starts an in-process server on a fresh port; returns the address,
/// the shutdown handle, and the join handle of the serving thread.
fn start(
    index: ShardedIndex,
    threads: usize,
    queue_depth: usize,
) -> (
    String,
    nncell_server::ServerHandle,
    std::thread::JoinHandle<()>,
) {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads,
        queue_depth,
        deadline: Duration::from_secs(30),
        ..ServerConfig::default()
    };
    let server = Server::bind(config, ServeIndex::Sharded(index), Registry::new())
        .expect("bind bench server");
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || {
        server.run().expect("bench server run");
    });
    (addr, handle, join)
}

fn query_body(coords: &[f64]) -> String {
    let nums: Vec<String> = coords.iter().map(|c| format!("{c}")).collect();
    format!("{{\"point\":[{}],\"k\":3}}", nums.join(","))
}

fn percentile(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx] as f64 / 1e6
}

fn main() {
    let n = env_usize("NNCELL_N", 40_000);
    let d = env_usize("NNCELL_DIM", 16);
    let n_q = env_usize("NNCELL_QUERIES", 4_000);
    let threads = env_usize("NNCELL_SERVER_THREADS", 2);
    let out = std::env::var("NNCELL_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json").to_string()
    });
    println!("# HTTP serving layer (N={n}, d={d}, {n_q} queries, {threads} server threads)");

    let points = UniformGenerator::new(d).generate(n, 7);
    let bodies: Vec<String> = UniformGenerator::new(d)
        .generate(n_q, 8)
        .iter()
        .map(|p| query_body(p.as_slice()))
        .collect();
    let cfg = BuildConfig::new(Strategy::NnDirection).with_seed(7);
    let index = ShardedIndex::build(points, 2, cfg.clone()).expect("build index");

    // ----- pass 1: capacity (client threads == worker threads) -------
    let (addr, handle, join) = start(index, threads, 64);
    let bodies = Arc::new(bodies);
    {
        // Warm-up outside the timed window.
        let c = Client::new(addr.clone());
        for b in bodies.iter().take(64) {
            assert_eq!(c.post("/query", b).expect("warm-up").status, 200);
        }
    }
    let (latencies, elapsed_s) = timed(|| {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let addr = addr.clone();
                    let bodies = Arc::clone(&bodies);
                    s.spawn(move || {
                        let mut c = Client::new(addr);
                        c.max_attempts = 1;
                        let mut lat = Vec::with_capacity(bodies.len() / threads + 1);
                        for b in bodies.iter().skip(t).step_by(threads) {
                            let t0 = Instant::now();
                            let r = c.post("/query", b).expect("bench query");
                            assert_eq!(r.status, 200, "capacity pass must not shed");
                            lat.push(t0.elapsed().as_nanos() as u64);
                        }
                        lat
                    })
                })
                .collect();
            let mut all: Vec<u64> = Vec::with_capacity(n_q);
            for h in handles {
                all.extend(h.join().expect("client thread"));
            }
            all
        })
    });
    let mut sorted = latencies.clone();
    sorted.sort_unstable();
    let qps = latencies.len() as f64 / elapsed_s;
    let p50_ms = percentile(&sorted, 0.50);
    let p99_ms = percentile(&sorted, 0.99);
    println!("capacity: {qps:.0} q/s end-to-end, p50 {p50_ms:.2} ms, p99 {p99_ms:.2} ms");
    handle.shutdown();
    join.join().expect("server thread");

    // ----- pass 2: overload at 2x capacity ---------------------------
    // Total capacity is workers + queue slots; offer twice that in
    // concurrent no-retry clients for a fixed window. Everything the
    // server refuses must be a clean 429 + Retry-After.
    let queue_depth = threads.max(1);
    let capacity = threads + queue_depth;
    let offered = 2 * capacity;
    let window = Duration::from_millis(
        env_usize("NNCELL_SERVER_OVERLOAD_MS", 2_000) as u64,
    );
    let points = UniformGenerator::new(d).generate(n, 7);
    let index = ShardedIndex::build(points, 2, cfg).expect("rebuild index");
    let (addr, handle, join) = start(index, threads, queue_depth);
    let ok = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let gate = Barrier::new(offered);
    std::thread::scope(|s| {
        for t in 0..offered {
            let addr = addr.clone();
            let bodies = Arc::clone(&bodies);
            let (ok, shed, stop, gate) = (&ok, &shed, &stop, &gate);
            s.spawn(move || {
                let mut c = Client::new(addr);
                c.max_attempts = 1;
                gate.wait();
                let mut i = t;
                while !stop.load(Ordering::Relaxed) {
                    let r = c
                        .post("/query", &bodies[i % bodies.len()])
                        .expect("overload pass: connection must not be dropped");
                    match r.status {
                        200 => ok.fetch_add(1, Ordering::Relaxed),
                        429 => {
                            assert!(
                                r.header("retry-after").is_some(),
                                "shed without Retry-After"
                            );
                            shed.fetch_add(1, Ordering::Relaxed)
                        }
                        other => panic!("overload pass: unexpected status {other}"),
                    };
                    i += 1;
                }
            });
        }
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
    });
    let (ok, shed) = (ok.into_inner(), shed.into_inner());
    let total = ok + shed;
    let shed_rate = if total == 0 {
        0.0
    } else {
        shed as f64 / total as f64
    };
    println!(
        "overload: {offered} clients vs capacity {capacity}: {ok} served, {shed} shed \
         ({:.1}% shed rate), server sheds {} total",
        shed_rate * 100.0,
        handle.sheds()
    );
    handle.shutdown();
    join.join().expect("server thread");

    let json = format!(
        "{{\n  \"n\": {n},\n  \"dim\": {d},\n  \"queries\": {},\n  \"server_threads\": {threads},\n  \
         \"qps\": {qps:.2},\n  \"p50_ms\": {p50_ms:.3},\n  \"p99_ms\": {p99_ms:.3},\n  \
         \"overload\": {{\n    \"offered_concurrency\": {offered},\n    \"capacity\": {capacity},\n    \
         \"served\": {ok},\n    \"shed\": {shed},\n    \"shed_rate\": {shed_rate:.4}\n  }}\n}}\n",
        latencies.len()
    );
    std::fs::write(&out, json).expect("write bench json");
    println!("wrote {out}");
}
