//! HTTP serving-layer throughput and overload behaviour, written as
//! JSON for CI trend tracking (`BENCH_server.json`).
//!
//! Two passes against an in-process [`nncell_server::Server`] over real
//! TCP sockets:
//!
//! 1. **Capacity**: as many client threads as worker threads fire
//!    `/query` requests back-to-back with raw (no-retry) clients —
//!    reports end-to-end QPS and p99 latency, connection setup and
//!    JSON round trip included.
//! 2. **Overload**: offered concurrency is doubled past total capacity
//!    (workers + admission queue) for a fixed window, with clients that
//!    honor `Retry-After` under full-jitter backoff — the way a real
//!    well-behaved client responds to a shed. Accounting is per *offered
//!    request* (one logical request, however many retries it takes), so
//!    a retry storm can no longer inflate the denominator and launder
//!    the shed rate. Every non-200 must be a `429` carrying
//!    `Retry-After`; any other status (or a transport error) fails the
//!    bench, so this doubles as an end-to-end check that overload
//!    degrades *gracefully* rather than by dropped connections.
//!
//! Defaults are sized for real hardware; CI runs a smoke scale via the
//! usual env overrides (`NNCELL_N`, `NNCELL_DIM`, `NNCELL_QUERIES`,
//! `NNCELL_SERVER_THREADS`, `NNCELL_BENCH_OUT` for the JSON path).

use nncell_bench::{env_usize, timed};
use nncell_core::{BuildConfig, Registry, ShardedIndex, Strategy};
use nncell_data::{Generator, UniformGenerator};
use nncell_server::{Client, Server, ServerConfig, ServeIndex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Starts an in-process server on a fresh port; returns the address,
/// the shutdown handle, and the join handle of the serving thread.
fn start(
    index: ShardedIndex,
    threads: usize,
    queue_depth: usize,
) -> (
    String,
    nncell_server::ServerHandle,
    std::thread::JoinHandle<()>,
) {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads,
        queue_depth,
        deadline: Duration::from_secs(30),
        ..ServerConfig::default()
    };
    let server = Server::bind(config, ServeIndex::Sharded(index), Registry::new())
        .expect("bind bench server");
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || {
        server.run().expect("bench server run");
    });
    (addr, handle, join)
}

fn query_body(coords: &[f64]) -> String {
    let nums: Vec<String> = coords.iter().map(|c| format!("{c}")).collect();
    format!("{{\"point\":[{}],\"k\":3}}", nums.join(","))
}

fn percentile(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx] as f64 / 1e6
}

fn main() {
    let n = env_usize("NNCELL_N", 40_000);
    let d = env_usize("NNCELL_DIM", 16);
    let n_q = env_usize("NNCELL_QUERIES", 4_000);
    let threads = env_usize("NNCELL_SERVER_THREADS", 2);
    let out = std::env::var("NNCELL_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json").to_string()
    });
    println!("# HTTP serving layer (N={n}, d={d}, {n_q} queries, {threads} server threads)");

    let points = UniformGenerator::new(d).generate(n, 7);
    let bodies: Vec<String> = UniformGenerator::new(d)
        .generate(n_q, 8)
        .iter()
        .map(|p| query_body(p.as_slice()))
        .collect();
    let cfg = BuildConfig::builder().strategy(Strategy::NnDirection).seed(7).build();
    let index = ShardedIndex::build(points, 2, cfg.clone()).expect("build index");

    // ----- pass 1: capacity (client threads == worker threads) -------
    let (addr, handle, join) = start(index, threads, 64);
    let bodies = Arc::new(bodies);
    {
        // Warm-up outside the timed window.
        let c = Client::new(addr.clone());
        for b in bodies.iter().take(64) {
            assert_eq!(c.post("/query", b).expect("warm-up").status, 200);
        }
    }
    let (latencies, elapsed_s) = timed(|| {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let addr = addr.clone();
                    let bodies = Arc::clone(&bodies);
                    s.spawn(move || {
                        let mut c = Client::new(addr);
                        c.max_attempts = 1;
                        let mut lat = Vec::with_capacity(bodies.len() / threads + 1);
                        for b in bodies.iter().skip(t).step_by(threads) {
                            let t0 = Instant::now();
                            let r = c.post("/query", b).expect("bench query");
                            assert_eq!(r.status, 200, "capacity pass must not shed");
                            lat.push(t0.elapsed().as_nanos() as u64);
                        }
                        lat
                    })
                })
                .collect();
            let mut all: Vec<u64> = Vec::with_capacity(n_q);
            for h in handles {
                all.extend(h.join().expect("client thread"));
            }
            all
        })
    });
    let mut sorted = latencies.clone();
    sorted.sort_unstable();
    let qps = latencies.len() as f64 / elapsed_s;
    let p50_ms = percentile(&sorted, 0.50);
    let p99_ms = percentile(&sorted, 0.99);
    println!("capacity: {qps:.0} q/s end-to-end, p50 {p50_ms:.2} ms, p99 {p99_ms:.2} ms");
    handle.shutdown();
    join.join().expect("server thread");

    // ----- pass 2: overload at 2x capacity ---------------------------
    // Total capacity is workers + queue slots; offer twice that in
    // concurrent clients for a fixed window. A shed is honored the way a
    // well-behaved client honors it: sleep a full-jitter fraction of the
    // advertised Retry-After, then retry the *same* logical request.
    // Everything the server refuses must be a clean 429 + Retry-After.
    let queue_depth = threads.max(1);
    let capacity = threads + queue_depth;
    let offered_clients = 2 * capacity;
    let window = Duration::from_millis(
        env_usize("NNCELL_SERVER_OVERLOAD_MS", 2_000) as u64,
    );
    let points = UniformGenerator::new(d).generate(n, 7);
    let index = ShardedIndex::build(points, 2, cfg).expect("rebuild index");
    let (addr, handle, join) = start(index, threads, queue_depth);
    let offered = AtomicU64::new(0); // logical requests started
    let served = AtomicU64::new(0); // logical requests answered 200
    let retries = AtomicU64::new(0); // 429s absorbed by backoff
    let abandoned = AtomicU64::new(0); // still retrying when the window closed
    let stop = AtomicBool::new(false);
    let gate = Barrier::new(offered_clients);
    std::thread::scope(|s| {
        for t in 0..offered_clients {
            let addr = addr.clone();
            let bodies = Arc::clone(&bodies);
            let (offered, served, retries, abandoned) = (&offered, &served, &retries, &abandoned);
            let (stop, gate) = (&stop, &gate);
            s.spawn(move || {
                use rand::{rngs::SmallRng, Rng, SeedableRng};
                let mut rng = SmallRng::seed_from_u64(0x0ff3_4ed0 ^ t as u64);
                let mut c = Client::new(addr);
                c.max_attempts = 1;
                gate.wait();
                let mut i = t;
                'logical: while !stop.load(Ordering::Relaxed) {
                    offered.fetch_add(1, Ordering::Relaxed);
                    loop {
                        let r = c
                            .post("/query", &bodies[i % bodies.len()])
                            .expect("overload pass: connection must not be dropped");
                        match r.status {
                            200 => {
                                served.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            429 => {
                                let hint_s: u64 = r
                                    .header("retry-after")
                                    .expect("shed without Retry-After")
                                    .trim()
                                    .parse()
                                    .expect("non-numeric Retry-After");
                                retries.fetch_add(1, Ordering::Relaxed);
                                // Full jitter over the advertised hint,
                                // sliced so the window close interrupts
                                // the backoff promptly.
                                let mut left =
                                    rng.gen_range(0..=hint_s.max(1).saturating_mul(1_000));
                                while left > 0 {
                                    if stop.load(Ordering::Relaxed) {
                                        abandoned.fetch_add(1, Ordering::Relaxed);
                                        break 'logical;
                                    }
                                    let slice = left.min(10);
                                    std::thread::sleep(Duration::from_millis(slice));
                                    left -= slice;
                                }
                            }
                            other => panic!("overload pass: unexpected status {other}"),
                        }
                    }
                    i += 1;
                }
            });
        }
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
    });
    let (offered, served) = (offered.into_inner(), served.into_inner());
    let (retries, abandoned) = (retries.into_inner(), abandoned.into_inner());
    // Sheds per offered request: how many 429s the average logical
    // request absorbed before being served (or abandoned at the close).
    let sheds_per_offered = if offered == 0 {
        0.0
    } else {
        retries as f64 / offered as f64
    };
    println!(
        "overload: {offered_clients} clients vs capacity {capacity}: {offered} offered, \
         {served} served, {retries} shed-then-retried ({sheds_per_offered:.2} sheds/offered), \
         {abandoned} abandoned at window close, server sheds {} total",
        handle.sheds()
    );
    assert_eq!(
        served + abandoned,
        offered,
        "every offered request must end served or abandoned"
    );
    handle.shutdown();
    join.join().expect("server thread");

    let json = format!(
        "{{\n  \"n\": {n},\n  \"dim\": {d},\n  \"queries\": {},\n  \"server_threads\": {threads},\n  \
         \"qps\": {qps:.2},\n  \"p50_ms\": {p50_ms:.3},\n  \"p99_ms\": {p99_ms:.3},\n  \
         \"overload\": {{\n    \"offered_concurrency\": {offered_clients},\n    \"capacity\": {capacity},\n    \
         \"offered_requests\": {offered},\n    \"served\": {served},\n    \"retries\": {retries},\n    \
         \"abandoned\": {abandoned},\n    \"sheds_per_offered\": {sheds_per_offered:.4}\n  }}\n}}\n",
        latencies.len()
    );
    std::fs::write(&out, json).expect("write bench json");
    println!("wrote {out}");
}
