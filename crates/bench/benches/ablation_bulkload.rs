//! Ablation: STR bulk loading vs repeated insertion for the baseline trees.
//!
//! Bulk loading (Leutenegger et al., ICDE 1997 — contemporary with the
//! paper) packs near-overlap-free nodes bottom-up. This bench quantifies
//! what the insert-built baselines leave on the table: build cost, tree
//! size, and query page reads.

use nncell_bench::{as_queries, env_usize, print_table, secs, timed};
use nncell_data::{Generator, UniformGenerator};
use nncell_geom::Mbr;
use nncell_index::{bulk_load, Tree, TreeConfig};

fn main() {
    let d = 8;
    let n = env_usize("NNCELL_N", 20_000);
    let n_queries = env_usize("NNCELL_QUERIES", 200);
    println!("# Ablation — STR bulk load vs repeated insertion (d={d}, N={n})");

    let points = UniformGenerator::new(d).generate(n, 90);
    let queries = as_queries(UniformGenerator::new(d).generate(n_queries, 91));
    let items: Vec<(Mbr, u64)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (Mbr::from_point(p), i as u64))
        .collect();

    let cfg = TreeConfig::rstar(d).with_point_leaves(true);
    let mut rows = Vec::new();

    let (bulk, t_bulk) = timed(|| bulk_load(cfg.clone(), items.clone(), 1.0));
    let (incr, t_incr) = timed(|| {
        let mut t = Tree::new(cfg.clone());
        for (m, id) in items.clone() {
            t.insert(m, id);
        }
        t
    });

    for (label, tree, t_build) in [("STR bulk", &bulk, t_bulk), ("insert-built", &incr, t_incr)] {
        tree.validate();
        tree.reset_stats();
        let (_, t_q) = timed(|| {
            for q in &queries {
                std::hint::black_box(tree.nn_best_first(q).unwrap());
            }
        });
        rows.push(vec![
            label.to_string(),
            secs(t_build),
            tree.total_pages().to_string(),
            format!("{:.1}", tree.stats().page_reads as f64 / n_queries as f64),
            secs(t_q / n_queries as f64),
        ]);
    }

    print_table(
        "Build method vs NN-query cost",
        &[
            "method",
            "build time",
            "pages",
            "NN pages/query",
            "NN time/query",
        ],
        &rows,
    );
    println!("\nexpectation: bulk loading builds ~30x faster at comparable query cost;");
    println!("the R*-insert path buys its slow build back as slightly tighter nodes");
    println!("(forced reinsertion actively minimizes overlap, STR tiling does not).");
}
