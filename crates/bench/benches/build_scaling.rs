//! Build-time scaling of the pooled (sub-quadratic) construction path
//! versus the exhaustive paths it replaces, written as JSON for CI trend
//! tracking (`BENCH_build_scaling.json`).
//!
//! Three series:
//!
//! * **pooled** — `ConstraintPool::ApproxKnn` with the recommended `k`:
//!   STR bulk load, one bounded approximate-kNN probe per point, 2·d LPs
//!   over ~k constraints. Measured at every `n` in the ladder.
//! * **exhaustive** — the same `NnDirection` strategy with the full
//!   per-cell rival gather (an O(n) scan per cell). Measured up to
//!   `NNCELL_EXHAUSTIVE_CAP` (default 32 000), then extrapolated by the
//!   power law fitted to the measured pairs — the super-linear growth is
//!   exactly what makes measuring it at 128 000 impractical.
//! * **all-pairs** — `CorrectPruned`, the original construction this PR's
//!   pool replaces outright: every point contributes a bisector candidate
//!   to every cell. Measured at the calibration sizes only, then
//!   extrapolated by its fitted power law. The calibration range matters:
//!   below n ≈ 1000 the per-cell LP has not yet entered its
//!   linear-in-constraints regime and the fitted exponent comes out far
//!   too shallow (n^1.4 from 300/600 vs the ~n^1.9 measured between 2000
//!   and 4000), which *understates* the baseline's true paper-scale cost
//!   — hence the `1000,2000,4000` default.
//!
//! The headline ratios compare the pooled build against the **all-pairs**
//! baseline it replaces: `speedup_32k` divides the fitted all-pairs time
//! by the *measured* pooled time at n = 32 000, and `speedup_100k` is the
//! paper-scale claim from both fits at n = 100 000. The JSON records the
//! raw points and both fits so either number can be re-derived, plus
//! `speedup_vs_exhaustive` — the fully measured pooled-vs-`NnDirection`
//! ratio at the largest size both were run (a much weaker baseline: its
//! per-cell gather is an O(n) scan but its LPs stay small, so it trails
//! the pool by a constant-ish factor rather than an exponent). Every
//! pooled build is parity-checked against a linear scan on a probe set
//! before its time is accepted.
//!
//! Env overrides: `NNCELL_BUILD_NS` (comma list, default
//! `8000,32000,128000`), `NNCELL_DIM` (default 8), `NNCELL_THREADS`,
//! `NNCELL_EXHAUSTIVE_CAP`, `NNCELL_ALLPAIRS_NS` (default
//! `1000,2000,4000`), `NNCELL_BENCH_OUT`.

use nncell_bench::{env_usize, timed};
use nncell_core::{
    linear_scan_nn, BuildConfig, ConstraintPool, NnCellIndex, Query, QueryEngine, Strategy,
};
use nncell_data::{Generator, UniformGenerator};

fn env_usize_list(name: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(name)
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse().ok())
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

/// Least-squares power-law fit `t = a·n^b` over measured `(n, seconds)`
/// pairs, in log space.
fn fit_power_law(points: &[(usize, f64)]) -> (f64, f64) {
    assert!(points.len() >= 2, "need two sizes to fit a power law");
    let logs: Vec<(f64, f64)> = points
        .iter()
        .map(|&(n, t)| ((n as f64).ln(), t.max(1e-9).ln()))
        .collect();
    let n = logs.len() as f64;
    let (sx, sy): (f64, f64) = logs.iter().fold((0.0, 0.0), |a, p| (a.0 + p.0, a.1 + p.1));
    let (sxx, sxy): (f64, f64) = logs
        .iter()
        .fold((0.0, 0.0), |a, p| (a.0 + p.0 * p.0, a.1 + p.0 * p.1));
    let b = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let a = ((sy - b * sx) / n).exp();
    (a, b)
}

fn predict(a: f64, b: f64, n: usize) -> f64 {
    a * (n as f64).powf(b)
}

fn build(points: Vec<nncell_geom::Point>, cfg: BuildConfig) -> (NnCellIndex, f64) {
    let (idx, s) = timed(|| NnCellIndex::build(points, cfg).expect("build"));
    (idx, s)
}

/// Exactness spot check: the pooled index must agree with a linear scan.
fn assert_exact(idx: &NnCellIndex, pts: &[nncell_geom::Point], d: usize) {
    let probes = UniformGenerator::new(d).generate(64, 99);
    let engine = QueryEngine::sequential(idx);
    for q in &probes {
        let got = engine
            .execute(&Query::nn(q.as_slice()))
            .expect("probe")
            .best;
        let want = linear_scan_nn(pts, q.as_slice()).expect("non-empty");
        assert!(
            (got.dist - want.dist).abs() < 1e-9,
            "pooled build lost exactness: {} vs {}",
            got.dist,
            want.dist
        );
    }
}

fn main() {
    let sizes = env_usize_list("NNCELL_BUILD_NS", &[8_000, 32_000, 128_000]);
    let d = env_usize("NNCELL_DIM", 8);
    let threads = env_usize("NNCELL_THREADS", 1);
    let exhaustive_cap = env_usize("NNCELL_EXHAUSTIVE_CAP", 32_000);
    let allpairs_sizes = env_usize_list("NNCELL_ALLPAIRS_NS", &[1_000, 2_000, 4_000]);
    let out = std::env::var("NNCELL_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_build_scaling.json").to_string()
    });
    let k = ConstraintPool::recommended_k(d);
    println!("# Build scaling (d={d}, pool k={k}, {threads} thread(s))");

    let pooled_cfg = || {
        BuildConfig::builder()
            .strategy(Strategy::NnDirection)
            .constraint_pool(ConstraintPool::ApproxKnn { k })
            .seed(7)
            .threads(threads)
            .build()
    };
    let exhaustive_cfg = || {
        BuildConfig::builder()
            .strategy(Strategy::NnDirection)
            .seed(7)
            .threads(threads)
            .build()
    };
    let allpairs_cfg = || {
        BuildConfig::builder()
            .strategy(Strategy::CorrectPruned)
            .seed(7)
            .threads(threads)
            .build()
    };

    // All-pairs calibration (small n only; it is the quadratic baseline).
    let mut allpairs: Vec<(usize, f64)> = Vec::new();
    for &n in &allpairs_sizes {
        let pts = UniformGenerator::new(d).generate(n, 7);
        let (_, s) = build(pts, allpairs_cfg());
        println!("all-pairs n={n}: {s:.2}s");
        allpairs.push((n, s));
    }
    let (ap_a, ap_b) = fit_power_law(&allpairs);
    println!("all-pairs fit: t ≈ {ap_a:.3e}·n^{ap_b:.2}");

    // The ladder: pooled everywhere, exhaustive while affordable.
    let mut rows: Vec<String> = Vec::new();
    let mut pooled_pts: Vec<(usize, f64)> = Vec::new();
    let mut exhaustive_pts: Vec<(usize, f64)> = Vec::new();
    for &n in &sizes {
        let pts = UniformGenerator::new(d).generate(n, 7);
        let (idx, pooled_s) = build(pts.clone(), pooled_cfg());
        assert_exact(&idx, &pts, d);
        let fell_back = idx.build_stats().pool_fallback_cells;
        pooled_pts.push((n, pooled_s));
        let (exhaustive_s, measured) = if n <= exhaustive_cap {
            let (_, s) = build(pts, exhaustive_cfg());
            exhaustive_pts.push((n, s));
            (s, true)
        } else {
            let (a, b) = fit_power_law(&exhaustive_pts);
            (predict(a, b, n), false)
        };
        println!(
            "n={n}: pooled {pooled_s:.2}s ({fell_back} fallback cells) — exhaustive \
             {exhaustive_s:.2}s{} — {:.1}x",
            if measured { "" } else { " (extrapolated)" },
            exhaustive_s / pooled_s
        );
        rows.push(format!(
            "    {{\"n\": {n}, \"pooled_seconds\": {pooled_s:.3}, \
             \"exhaustive_seconds\": {exhaustive_s:.3}, \
             \"exhaustive_measured\": {measured}, \
             \"pool_fallback_cells\": {fell_back}}}"
        ));
    }

    // Headline ratios, both against the all-pairs baseline the pool
    // replaces: speedup_32k divides the fitted all-pairs time by the
    // *measured* pooled time at the largest ladder size ≤ 32 000;
    // speedup_100k is fitted-vs-fitted at paper scale. The measured
    // pooled-vs-NnDirection ratio rides along as a secondary number.
    let &(n_meas, ex_meas) = exhaustive_pts.last().expect("one measured exhaustive size");
    let pooled_at_meas = pooled_pts
        .iter()
        .find(|&&(n, _)| n == n_meas)
        .map(|&(_, s)| s)
        .expect("pooled measured at the same size");
    let speedup_vs_exhaustive = ex_meas / pooled_at_meas;
    let &(n_32k, pooled_32k) = pooled_pts
        .iter()
        .filter(|&&(n, _)| n <= 32_000)
        .next_back()
        .expect("one pooled size at or below 32k");
    let speedup_32k = predict(ap_a, ap_b, n_32k) / pooled_32k;
    let (po_a, po_b) = fit_power_law(&pooled_pts);
    let n_claim = 100_000;
    let speedup_100k = predict(ap_a, ap_b, n_claim) / predict(po_a, po_b, n_claim);
    println!(
        "all-pairs vs pooled at n={n_32k}: {speedup_32k:.0}x — at n={n_claim} (fitted): \
         {speedup_100k:.0}x — vs exhaustive NnDirection at n={n_meas} (measured): \
         {speedup_vs_exhaustive:.1}x"
    );

    let json = format!(
        "{{\n  \"dim\": {d},\n  \"pool_k\": {k},\n  \"threads\": {threads},\n  \
         \"sizes\": [\n{}\n  ],\n  \
         \"allpairs_fit\": {{\"a\": {ap_a:.6e}, \"b\": {ap_b:.4}}},\n  \
         \"pooled_fit\": {{\"a\": {po_a:.6e}, \"b\": {po_b:.4}}},\n  \
         \"speedup_32k_n\": {n_32k},\n  \
         \"speedup_32k\": {speedup_32k:.2},\n  \
         \"speedup_100k\": {speedup_100k:.2},\n  \
         \"exhaustive_measured_n\": {n_meas},\n  \
         \"speedup_vs_exhaustive\": {speedup_vs_exhaustive:.2}\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&out, json).expect("write bench json");
    println!("wrote {out}");
}
