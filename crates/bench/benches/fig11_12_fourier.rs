//! Figures 11 and 12: the NN-cell approach vs the X-tree on (synthetic)
//! Fourier data, d = 8, as a function of database size.
//!
//! Paper shape to reproduce: a consistent NN-cell win in total search time
//! (paper: up to ~2.5×), and — unlike the uniform case — a win on *both*
//! page accesses and CPU time, because the clustered real data yields much
//! tighter cell approximations.

use nncell_bench::{as_queries, env_usize, print_table, secs, timed};
use nncell_core::{BuildConfig, NnCellIndex, Strategy};
use nncell_data::{FourierGenerator, Generator};
use nncell_index::XTree;

fn main() {
    let d = 8;
    let n_queries = env_usize("NNCELL_QUERIES", 200);
    let base = env_usize("NNCELL_N", 4_000);
    let sizes = [base / 8, base / 4, base / 2, base];
    println!("# Figures 11 / 12 — synthetic Fourier data (d={d})");

    let mut fig11 = Vec::new();
    let mut fig12 = Vec::new();
    for &n in &sizes {
        let points = FourierGenerator::new(d).generate(n, 20);
        let queries = as_queries(FourierGenerator::new(d).generate(n_queries, 21));

        let nncell = NnCellIndex::build(
            points.clone(),
            BuildConfig::builder().strategy(Strategy::CorrectPruned).seed(5).build(),
        )
        .expect("build");
        let mut xtree = XTree::for_points(d);
        for (i, p) in points.iter().enumerate() {
            xtree.insert_point(p, i as u64);
        }

        nncell.reset_stats();
        xtree.reset_stats();
        let (ids_n, t_n) = timed(|| {
            queries
                .iter()
                .map(|q| nncell_bench::nn_query(&nncell, q).unwrap().id)
                .collect::<Vec<_>>()
        });
        let (ids_x, t_x) = timed(|| {
            queries
                .iter()
                .map(|q| xtree.nearest_neighbor(q).unwrap().id as usize)
                .collect::<Vec<_>>()
        });
        // Both are exact engines; distances must match (ids may differ on
        // exact ties in clustered data).
        for (a, b) in ids_n.iter().zip(ids_x.iter()) {
            if a != b {
                let da = nncell_geom::dist(&points[*a], &points[*b]);
                assert!(da < 1e-9, "engines disagree beyond a tie");
            }
        }
        let (sn, sx) = (nncell.cell_tree_stats(), xtree.stats());
        fig11.push(vec![
            n.to_string(),
            secs(t_n),
            secs(t_x),
            format!("{:.0}%", 100.0 * t_x / t_n),
        ]);
        let per = |v: u64| format!("{:.1}", v as f64 / n_queries as f64);
        fig12.push(vec![
            n.to_string(),
            per(sn.page_reads),
            per(sx.page_reads),
            per(sn.cpu_ops),
            per(sx.cpu_ops),
        ]);
    }

    print_table(
        "Figure 11: total search time on Fourier data",
        &["N", "NN-cell", "X-tree", "speed-up"],
        &fig11,
    );
    print_table(
        "Figure 12: page accesses and CPU ops per query",
        &[
            "N",
            "pages NN-cell",
            "pages X-tree",
            "cpu NN-cell",
            "cpu X-tree",
        ],
        &fig12,
    );
    println!("\npaper shape check: NN-cell ahead throughout; on clustered data it wins");
    println!("both page accesses and CPU (approximations are much tighter than uniform).");
}
