//! Ablation: decomposition depth vs candidate count vs cost — the
//! experiment behind the engine's cost-model default for
//! `decompose_pieces`.
//!
//! Sweeps `decompose_pieces ∈ {1, 2, 4, 8}` on one fixed-seed workload
//! and reports, per depth: build time, cell-tree candidates per point
//! query (the paper's overlap-driven number, via
//! [`nncell_core::measured_candidates`]), and the query engine's
//! throughput and per-query evaluation work.
//!
//! What the sweep shows — and why the default is **no decomposition**:
//! deeper decomposition does cut cell-tree candidates (fig. 13's claim,
//! reproduced here), but it multiplies build time, and since the engine
//! moved to the MINDIST-ordered traversal of the *point* tree its QPS and
//! examined-candidate counts are independent of cell decomposition.
//! Paying a multi-× build slowdown for a metric the serving path no
//! longer reads is a bad trade, so `BuildConfig` leaves
//! `decompose_pieces` unset unless the caller explicitly wants tighter
//! cell approximations (e.g. for figure-13-style quality studies).
//!
//! Smoke-scale defaults (overridable via `NNCELL_N`, `NNCELL_DIM`,
//! `NNCELL_QUERIES`, `NNCELL_PIECES_SWEEP`, `NNCELL_BENCH_OUT`); the
//! JSON lands in `BENCH_ablation_decompose.json` for CI trend tracking.

use nncell_bench::{as_queries, env_usize, print_table, timed};
use nncell_core::{
    measured_candidates, BuildConfig, ConstraintPool, NnCellIndex, Query, Strategy,
};
use nncell_data::{Generator, UniformGenerator};

fn main() {
    let n = env_usize("NNCELL_N", 2000);
    let d = env_usize("NNCELL_DIM", 8);
    let n_q = env_usize("NNCELL_QUERIES", 1000);
    let sweep: Vec<usize> = std::env::var("NNCELL_PIECES_SWEEP")
        .map(|s| {
            s.split(',')
                .map(|v| v.trim().parse().expect("piece count"))
                .collect()
        })
        .unwrap_or_else(|_| vec![1, 2, 4, 8]);
    let out = std::env::var("NNCELL_BENCH_OUT").unwrap_or_else(|_| {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_ablation_decompose.json"
        )
        .to_string()
    });
    println!("# Ablation — decomposition depth (N={n}, d={d}, {n_q} queries)");

    let points = UniformGenerator::new(d).generate(n, 7);
    let raw_queries = as_queries(UniformGenerator::new(d).generate(n_q, 8));
    let queries: Vec<Query> = raw_queries.iter().map(|q| Query::nn(q.clone())).collect();

    let mut rows = Vec::new();
    let mut entries = Vec::new();
    let mut baseline: Option<Vec<_>> = None;
    for &pieces in &sweep {
        let mut cfg = BuildConfig::builder()
            .strategy(Strategy::NnDirection)
            .constraint_pool(ConstraintPool::ApproxKnn {
                k: ConstraintPool::recommended_k(d),
            })
            .seed(7);
        if pieces > 1 {
            cfg = cfg.decompose_pieces(pieces);
        }
        let (index, build_s) = timed(|| NnCellIndex::build(points.clone(), cfg.build()).unwrap());

        let cell_cands = measured_candidates(&index, &raw_queries);
        let engine = index.engine().with_threads(1);
        engine.batch(&queries[..n_q.min(256)]); // warm the scratch
        let (resp, query_s) = timed(|| engine.batch(&queries));
        let answered = resp.iter().filter(|r| r.is_ok()).count().max(1);
        let examined: usize = resp
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .map(|r| r.stats.candidates_examined)
            .sum();
        let qps = n_q as f64 / query_s;
        let mean_examined = examined as f64 / answered as f64;

        // Decomposition must not change answers: same traversal, same
        // points, bit-identical to the undecomposed run.
        match &baseline {
            None => baseline = Some(resp),
            Some(base) => assert_eq!(
                *base, resp,
                "pieces={pieces} diverged from the undecomposed answers"
            ),
        }

        rows.push(vec![
            pieces.to_string(),
            format!("{build_s:.2}s"),
            format!("{cell_cands:.1}"),
            format!("{qps:.0}"),
            format!("{mean_examined:.1}"),
        ]);
        entries.push(format!(
            "    {{\"pieces\": {pieces}, \"build_seconds\": {build_s:.3}, \
             \"cell_candidates\": {cell_cands:.4}, \"qps\": {qps:.2}, \
             \"mean_examined\": {mean_examined:.4}}}"
        ));
    }

    print_table(
        "Decomposition depth: build cost vs cell candidates vs engine work",
        &[
            "pieces",
            "build",
            "cell cands/query",
            "engine q/s",
            "examined/query",
        ],
        &rows,
    );
    println!(
        "\ncost-model conclusion: decomposition shrinks *cell-tree* candidates but \
         multiplies build time, while the engine's point-tree traversal (QPS, \
         examined) is unaffected — so the default stays decompose_pieces = unset."
    );

    let json = format!(
        "{{\n  \"n\": {n},\n  \"dim\": {d},\n  \"queries\": {n_q},\n  \"sweep\": [\n{}\n  ],\n  \
         \"default\": \"no decomposition — build cost scales with pieces while \
         engine throughput does not benefit\"\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(&out, json).expect("write bench json");
    println!("wrote {out}");
}
