//! Mixed read/write throughput for the LSM-style write path, written as
//! JSON for CI trend tracking (`BENCH_mixed.json`).
//!
//! The headline claim under test: with the journaled memtable tail, an
//! insert/remove ack does **O(1)** work — append to the tail, no cell
//! construction, no snapshot publish — so ack latency is independent of
//! index size. The synchronous write path (cell construction plus a
//! copy-on-write snapshot publish per write) grows with `n` and serves
//! as the contrast.
//!
//! For each database size (default n ∈ {2 000, 8 000, 32 000}; override
//! with `NNCELL_MIXED_NS=a,b,c`):
//!
//! 1. build a 2-shard in-memory index once;
//! 2. **sync pass**: a timed storm of mixed writes (7/8 inserts, 1/8
//!    removes) with interleaved k-NN reads against the bare index;
//! 3. **memtable pass**: wrap the same index via `with_memtable` and
//!    repeat the storm — acks land in the tail, reads merge the tail by
//!    linear scan;
//! 4. **exactness**: a probe set is answered with the tail still
//!    unfolded, the tail is flushed into the cells, and the same probes
//!    must answer *bit-identically* (Lemma 1: snapshot + tail − tombstones
//!    is exact);
//! 5. the bench asserts the memtable ack p99 at the largest `n` stays
//!    within 10x of the smallest `n` (with a 50 µs noise floor) — a
//!    generous bound that still catches any O(n) work leaking back into
//!    the ack path.
//!
//! The sync storm runs far fewer ops than the memtable storm
//! (`NNCELL_MIXED_SYNC_OPS`, default 48): a synchronous ack costs
//! hundreds of milliseconds at these sizes — the very pathology the
//! memtable removes — and 48 samples are plenty for a contrast p99.
//!
//! Env overrides: `NNCELL_MIXED_NS`, `NNCELL_MIXED_OPS` (memtable storm
//! size), `NNCELL_MIXED_SYNC_OPS`, `NNCELL_DIM`, `NNCELL_BENCH_OUT`.

use nncell_bench::{env_dims, env_usize, timed};
use nncell_core::{BuildConfig, FoldConfig, Query, ShardedIndex, Strategy};
use nncell_data::{Generator, UniformGenerator};
use nncell_geom::Point;
use std::time::Instant;

const SHARDS: usize = 2;

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx] as f64 / 1e3
}

/// One mixed storm against `idx`: `ops` writes (every 8th a remove of an
/// id inserted earlier in the storm, the rest inserts of fresh points),
/// with a timed k=3 read every 4th op. Returns (ack p99 µs, read p99 µs).
fn storm(idx: &ShardedIndex, fresh: &[Point], probes: &[Vec<f64>]) -> (f64, f64) {
    let mut acks: Vec<u64> = Vec::with_capacity(fresh.len());
    let mut reads: Vec<u64> = Vec::with_capacity(fresh.len() / 4 + 1);
    let mut inserted: Vec<usize> = Vec::with_capacity(fresh.len());
    for (i, p) in fresh.iter().enumerate() {
        let t0 = Instant::now();
        if i % 8 == 7 {
            // Remove an id this storm inserted (never the seed set, so
            // repeated passes stay independent).
            let victim = inserted.swap_remove((i * 5) % inserted.len());
            assert!(idx.remove(victim).expect("remove ack"), "victim was live");
        } else {
            let id = idx.insert(p.clone()).expect("insert ack");
            inserted.push(id);
        }
        acks.push(t0.elapsed().as_nanos() as u64);
        if i % 4 == 3 {
            let q = &probes[(i / 4) % probes.len()];
            let t0 = Instant::now();
            idx.query(&Query::knn(q.clone(), 3)).expect("read");
            reads.push(t0.elapsed().as_nanos() as u64);
        }
    }
    acks.sort_unstable();
    reads.sort_unstable();
    (percentile_us(&acks, 0.99), percentile_us(&reads, 0.99))
}

fn main() {
    let sizes = env_dims("NNCELL_MIXED_NS", &[2_000, 8_000, 32_000]);
    let ops = env_usize("NNCELL_MIXED_OPS", 400);
    let sync_ops = env_usize("NNCELL_MIXED_SYNC_OPS", 48).max(8);
    let d = env_usize("NNCELL_DIM", 4);
    let out = std::env::var("NNCELL_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mixed.json").to_string()
    });
    let threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1)
        .min(8);
    println!("# Mixed read/write (sizes {sizes:?}, d={d}, {ops} ops/storm, {SHARDS} shards)");

    let probes: Vec<Vec<f64>> = UniformGenerator::new(d)
        .generate(64, 9)
        .iter()
        .map(|p| p.as_slice().to_vec())
        .collect();

    let mut rows = Vec::new();
    let mut memtable_p99s: Vec<(usize, f64)> = Vec::new();
    for &n in &sizes {
        let seed_pts = UniformGenerator::new(d).generate(n, 7);
        // Fresh points for the two storms, disjoint from the seed set
        // (coordinates are continuous uniform; duplicate rejection is a
        // non-issue at these scales).
        let fresh = UniformGenerator::new(d).generate(sync_ops + ops, 8 + n as u64);
        let cfg = BuildConfig::builder().strategy(Strategy::Sphere)
            .seed(7)
            .threads(threads).build();
        let (idx, build_s) = timed(|| {
            ShardedIndex::build(seed_pts, SHARDS, cfg).expect("seed build")
        });
        println!("n={n}: built in {build_s:.1}s");

        // Sync pass: every write constructs its cell and publishes a
        // fresh snapshot before the ack.
        let (sync_ack_p99, sync_read_p99) = storm(&idx, &fresh[..sync_ops], &probes);

        // Memtable pass on the same index: acks append to the tail.
        let idx = idx.with_memtable(FoldConfig {
            tail_max: 4 * ops.max(1),
            ..FoldConfig::default()
        });
        let (mem_ack_p99, tail_read_p99) = storm(&idx, &fresh[sync_ops..], &probes);
        let tail_depth = idx.tail_depth();
        assert!(tail_depth > 0, "storm must leave unfolded tail ops");

        // Exactness across the fold boundary: tail-merged answers must
        // be bit-identical to the folded answers.
        let before: Vec<Vec<(usize, u64)>> = probes
            .iter()
            .map(|q| {
                idx.query(&Query::knn(q.clone(), 3))
                    .expect("probe (tail)")
                    .iter()
                    .map(|r| (r.id, r.dist.to_bits()))
                    .collect()
            })
            .collect();
        let (folded, fold_s) = timed(|| idx.flush().expect("flush"));
        assert_eq!(idx.tail_depth(), 0, "flush must drain the tail");
        let mut folded_reads: Vec<u64> = Vec::new();
        for (q, want) in probes.iter().zip(&before) {
            let t0 = Instant::now();
            let got: Vec<(usize, u64)> = idx
                .query(&Query::knn(q.clone(), 3))
                .expect("probe (folded)")
                .iter()
                .map(|r| (r.id, r.dist.to_bits()))
                .collect();
            folded_reads.push(t0.elapsed().as_nanos() as u64);
            assert_eq!(&got, want, "fold changed an answer (n={n})");
        }
        folded_reads.sort_unstable();
        let folded_read_p99 = percentile_us(&folded_reads, 0.99);
        let fold_krecs = folded as f64 / fold_s.max(f64::MIN_POSITIVE) / 1e3;

        println!(
            "n={n}: ack p99 sync {sync_ack_p99:.1} µs vs memtable {mem_ack_p99:.1} µs — \
             read p99 sync {sync_read_p99:.1} µs, tail-merged {tail_read_p99:.1} µs, \
             folded {folded_read_p99:.1} µs — fold {folded} recs @ {fold_krecs:.0}k/s"
        );
        memtable_p99s.push((n, mem_ack_p99));
        rows.push(format!(
            "    {{\n      \"n\": {n},\n      \"sync_insert_p99_us\": {sync_ack_p99:.2},\n      \
             \"memtable_insert_p99_us\": {mem_ack_p99:.2},\n      \
             \"sync_read_p99_us\": {sync_read_p99:.2},\n      \
             \"tail_read_p99_us\": {tail_read_p99:.2},\n      \
             \"folded_read_p99_us\": {folded_read_p99:.2},\n      \
             \"tail_depth_at_flush\": {tail_depth},\n      \
             \"fold_krecords_per_s\": {fold_krecs:.1},\n      \
             \"build_seconds\": {build_s:.2}\n    }}"
        ));
    }

    // The O(1)-ack assertion: p99 at the largest size within 10x of the
    // smallest (50 µs floor so micro-timings don't trip it).
    let (n_min, p99_min) = memtable_p99s[0];
    let (n_max, p99_max) = memtable_p99s[memtable_p99s.len() - 1];
    let bound = 10.0 * p99_min.max(50.0);
    assert!(
        p99_max <= bound,
        "memtable ack p99 grew with index size: {p99_max:.1} µs at n={n_max} vs \
         {p99_min:.1} µs at n={n_min} (bound {bound:.1} µs) — O(1) ack contract broken"
    );
    println!(
        "memtable ack p99 flat: {p99_min:.1} µs at n={n_min} → {p99_max:.1} µs at n={n_max} \
         (bound {bound:.1} µs)"
    );

    let json = format!(
        "{{\n  \"dim\": {d},\n  \"shards\": {SHARDS},\n  \"ops_per_storm\": {ops},\n  \
         \"sync_ops_per_storm\": {sync_ops},\n  \
         \"sizes\": [\n{}\n  ],\n  \"memtable_ack_p99_flat\": true\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&out, json).expect("write bench json");
    println!("wrote {out}");
}
