//! Figure 10: total search time (plus page accesses and CPU) as a function
//! of database size, at fixed dimensionality d = 10.
//!
//! Paper shape to reproduce: the NN-cell approach stays far below the
//! R\*-tree and X-tree at every size and grows roughly logarithmically in N.

use nncell_bench::{as_queries, env_dims, env_usize, print_table, secs, timed};
use nncell_core::{BuildConfig, NnCellIndex, Strategy};
use nncell_data::{Generator, UniformGenerator};
use nncell_index::{RStarTree, XTree};

fn main() {
    let d = env_dims("NNCELL_DIMS", &[10])[0];
    let n_queries = env_usize("NNCELL_QUERIES", 200);
    let base = env_usize("NNCELL_N", 4_000);
    let sizes = [base / 8, base / 4, base / 2, base];
    println!("# Figure 10 — total search time vs database size (d={d})");

    let mut time_rows = Vec::new();
    let mut io_rows = Vec::new();
    for &n in &sizes {
        let points = UniformGenerator::new(d).generate(n, 10);
        let queries = as_queries(UniformGenerator::new(d).generate(n_queries, 11));

        let nncell = NnCellIndex::build(
            points.clone(),
            BuildConfig::builder().strategy(Strategy::CorrectPruned).seed(4).build(),
        )
        .expect("build");
        let mut rstar = RStarTree::for_points(d);
        let mut xtree = XTree::for_points(d);
        for (i, p) in points.iter().enumerate() {
            rstar.insert_point(p, i as u64);
            xtree.insert_point(p, i as u64);
        }

        nncell.reset_stats();
        rstar.reset_stats();
        xtree.reset_stats();
        let (_, t_n) = timed(|| {
            for q in &queries {
                std::hint::black_box(nncell_bench::nn_query(&nncell, q).unwrap());
            }
        });
        let (_, t_r) = timed(|| {
            for q in &queries {
                std::hint::black_box(rstar.nearest_neighbor(q).unwrap());
            }
        });
        let (_, t_x) = timed(|| {
            for q in &queries {
                std::hint::black_box(xtree.nearest_neighbor(q).unwrap());
            }
        });
        time_rows.push(vec![n.to_string(), secs(t_n), secs(t_r), secs(t_x)]);
        let per = |v: u64| format!("{:.1}", v as f64 / n_queries as f64);
        let (sn, sr, sx) = (nncell.cell_tree_stats(), rstar.stats(), xtree.stats());
        io_rows.push(vec![
            n.to_string(),
            per(sn.page_reads),
            per(sr.page_reads),
            per(sx.page_reads),
            per(sn.cpu_ops),
            per(sr.cpu_ops),
            per(sx.cpu_ops),
        ]);
    }

    print_table(
        "Figure 10: total search time vs database size",
        &["N", "NN-cell", "R*-tree", "X-tree"],
        &time_rows,
    );
    print_table(
        "Figure 10 (detail): page accesses and CPU ops per query",
        &[
            "N",
            "pages NN-cell",
            "pages R*",
            "pages X",
            "cpu NN-cell",
            "cpu R*",
            "cpu X",
        ],
        &io_rows,
    );
    println!("\npaper shape check: NN-cell lowest at every N, near-logarithmic growth.");
}
