//! Ablation: the paper's two roads out of high-dimensional NN degeneration.
//!
//! The introduction offers a choice: exploit **parallelism** (declustered
//! multi-disk search, \[Ber+ 97\]) or precompute the **solution space**
//! (this paper). This bench puts both on the same simulated cost model:
//! I/O time per query (critical-path pages) for a D-disk parallel scan vs
//! the sequential NN-cell point query — plus the plain sequential scan both
//! are escaping from.

use nncell_bench::{as_queries, env_usize, print_table};
use nncell_core::{BuildConfig, NnCellIndex, Strategy};
use nncell_data::{Generator, UniformGenerator};
use nncell_index::{DeclusteredScan, LinearScan};

fn main() {
    let d = 12;
    let n = env_usize("NNCELL_N", 3_000);
    let n_queries = env_usize("NNCELL_QUERIES", 100);
    println!("# Ablation — parallelism vs solution-space precomputation (d={d}, N={n})");

    let points = UniformGenerator::new(d).generate(n, 95);
    let queries = as_queries(UniformGenerator::new(d).generate(n_queries, 96));

    let nncell = NnCellIndex::build(
        points.clone(),
        BuildConfig::builder().strategy(Strategy::CorrectPruned).seed(11).build(),
    )
    .expect("build");
    let mut scan = LinearScan::new(d);
    for (i, p) in points.iter().enumerate() {
        scan.insert(p, i as u64);
    }

    let mut rows = Vec::new();
    // Sequential scan row.
    scan.reset_stats();
    for q in &queries {
        std::hint::black_box(scan.nearest_neighbor(q).unwrap());
    }
    rows.push(vec![
        "sequential scan".into(),
        format!("{:.1}", scan.stats().page_reads as f64 / n_queries as f64),
    ]);
    // Parallel scans with growing disk counts.
    for disks in [2usize, 4, 8, 16] {
        let mut par = DeclusteredScan::new(d, disks);
        for (i, p) in points.iter().enumerate() {
            par.insert(p, i as u64);
        }
        par.reset_stats();
        for q in &queries {
            let a = par.nearest_neighbor(q).unwrap();
            let b = scan.nearest_neighbor(q).unwrap();
            assert_eq!(a.id, b.id);
        }
        rows.push(vec![
            format!("parallel scan ({disks} disks)"),
            format!("{:.1}", par.stats().page_reads as f64 / n_queries as f64),
        ]);
    }
    // NN-cell row (sequential, one disk).
    nncell.reset_stats();
    for q in &queries {
        std::hint::black_box(nncell_bench::nn_query(&nncell, q).unwrap());
    }
    rows.push(vec![
        "NN-cell point query (1 disk)".into(),
        format!(
            "{:.1}",
            nncell.cell_tree_stats().page_reads as f64 / n_queries as f64
        ),
    ]);

    print_table(
        "I/O time per query (critical-path pages)",
        &["method", "pages/query"],
        &rows,
    );
    println!("\nexpectation: declustering divides scan I/O by the disk count; the");
    println!("NN-cell approach competes with a multi-disk rig on a single disk once");
    println!("the database is large enough for tree/scan degeneration to bite.");
}
