//! Figure 13: the effect of decomposing the NN-cell approximations.
//!
//! Compares the average overlap of the exact (Correct) approximations with
//! and without MBR decomposition at d ∈ {4, 8, 12}.
//!
//! Paper shape to reproduce: a clear overlap reduction that *increases* with
//! dimensionality.

use nncell_bench::{cells_of, env_dims, env_usize, print_table};
use nncell_core::{average_overlap, BuildConfig, NnCellIndex, Strategy};
use nncell_data::{FourierGenerator, Generator, UniformGenerator};

fn main() {
    let n = env_usize("NNCELL_N", 600);
    let dims = env_dims("NNCELL_DIMS", &[4, 8, 12]);
    let pieces = env_usize("NNCELL_PIECES", 8);
    println!("# Figure 13 — decomposition effect on overlap (N={n}, k={pieces} pieces)");
    println!("# CorrectPruned produces the same MBRs as Correct (Lemma-1-exact prune)");

    for (label, uniform) in [("uniform", true), ("fourier (clustered)", false)] {
        let mut rows = Vec::new();
        for &d in &dims {
            let points = if uniform {
                UniformGenerator::new(d).generate(n, 130 + d as u64)
            } else {
                FourierGenerator::new(d).generate(n, 131 + d as u64)
            };
            let exact = NnCellIndex::build(
                points.clone(),
                BuildConfig::builder().strategy(Strategy::CorrectPruned).seed(6).build(),
            )
            .expect("build exact");
            let decomposed = NnCellIndex::build(
                points.clone(),
                BuildConfig::builder().strategy(Strategy::CorrectPruned)
                    .decompose_pieces(pieces)
                    .seed(6).build(),
            )
            .expect("build decomposed");
            let o_exact = average_overlap(&cells_of(&exact));
            let o_dec = average_overlap(&cells_of(&decomposed));
            let gain = if o_exact > 0.0 {
                100.0 * (o_exact - o_dec) / o_exact
            } else {
                0.0
            };
            rows.push(vec![
                d.to_string(),
                format!("{o_exact:.2}"),
                format!("{o_dec:.2}"),
                format!("{gain:.0}%"),
                decomposed.total_pieces().to_string(),
            ]);
        }
        print_table(
            &format!("Figure 13 ({label}): overlap, exact vs decomposed"),
            &["dim", "exact", "decomposed", "reduction", "pieces stored"],
            &rows,
        );
    }
    println!("\npaper shape check: decomposition cuts overlap, more so at higher d.");
}
