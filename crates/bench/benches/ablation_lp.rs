//! Ablation: LP backend (tableau simplex vs Seidel's randomized LP).
//!
//! Verifies the two solvers produce identical cell MBRs and shows where each
//! wins: the simplex on small constraint sets, Seidel as constraint counts
//! approach database size (the `Correct` regime). Also measures the
//! exactness-preserving constraint prune of `CorrectPruned`.

#![allow(clippy::needless_range_loop)]

use nncell_bench::{env_usize, print_table, secs, timed};
use nncell_core::{BuildConfig, NnCellIndex, Strategy};
use nncell_data::{Generator, UniformGenerator};
use nncell_lp::SolverKind;

fn main() {
    let d = 8;
    let n = env_usize("NNCELL_N", 150);
    println!("# Ablation — LP backends (d={d}, N={n}, Correct strategy: m≈N constraints/LP)");

    let points = UniformGenerator::new(d).generate(n, 60);

    let mut rows = Vec::new();
    let mut mbrs = Vec::new();
    for (label, solver, strategy) in [
        ("simplex / Correct", SolverKind::Simplex, Strategy::Correct),
        ("seidel / Correct", SolverKind::Seidel, Strategy::Correct),
        ("dual / Correct", SolverKind::DualSimplex, Strategy::Correct),
        (
            "active-set / Correct",
            SolverKind::ActiveSet,
            Strategy::Correct,
        ),
        (
            "auto / CorrectPruned",
            SolverKind::Auto,
            Strategy::CorrectPruned,
        ),
    ] {
        let (index, t) = timed(|| {
            NnCellIndex::build(
                points.clone(),
                BuildConfig::builder().strategy(strategy).solver(solver).seed(8).build(),
            )
            .expect("build")
        });
        let st = index.build_stats();
        rows.push(vec![
            label.to_string(),
            secs(t),
            st.lp.lp_calls.to_string(),
            format!("{:.0}", st.lp.constraints as f64 / st.lp.lp_calls as f64),
        ]);
        mbrs.push(
            (0..n)
                .map(|i| index.cell(i).unwrap().pieces[0].clone())
                .collect::<Vec<_>>(),
        );
    }

    // All three must produce the same (exact) MBRs.
    for variant in 1..mbrs.len() {
        for i in 0..n {
            let a = &mbrs[0][i];
            let b = &mbrs[variant][i];
            for k in 0..d {
                assert!(
                    (a.lo()[k] - b.lo()[k]).abs() < 1e-6 && (a.hi()[k] - b.hi()[k]).abs() < 1e-6,
                    "solver disagreement on cell {i}"
                );
            }
        }
    }

    print_table(
        "LP backend comparison (identical MBRs verified)",
        &[
            "backend / strategy",
            "build time",
            "LP calls",
            "avg constraints/LP",
        ],
        &rows,
    );
    println!("\nexpectation: the dual simplex and the Best-Ritter active-set method");
    println!("(which starts from the point itself, as the paper prescribes) scale far");
    println!("past the tableau; the prune cuts constraints per LP at zero quality cost.");
}
