//! Ablation: index-structure knobs.
//!
//! 1. Block size: the paper fixes 4 KB blocks; this sweep shows the
//!    fanout/page-access trade-off.
//! 2. R\*-tree vs X-tree as the *cell store*: the paper stores the (highly
//!    overlapping) cell MBRs in an X-tree because its supernodes tolerate
//!    unsplittable directories; the comparison quantifies that choice.

use nncell_bench::{as_queries, env_usize, print_table};
use nncell_core::{BuildConfig, NnCellIndex, Strategy};
use nncell_data::{Generator, UniformGenerator};
use nncell_geom::Mbr;
use nncell_index::{RStarTree, SplitPolicy, Tree, TreeConfig, XTree};

fn main() {
    let d = 10;
    let n = env_usize("NNCELL_N", 3_000);
    let n_queries = env_usize("NNCELL_QUERIES", 200);
    println!("# Ablation — index knobs (d={d}, N={n})");

    let points = UniformGenerator::new(d).generate(n, 80);
    let queries = as_queries(UniformGenerator::new(d).generate(n_queries, 81));

    // --- 1. block size sweep on the NN-cell index -----------------------
    let mut rows = Vec::new();
    for block in [1024usize, 4096, 16384] {
        let index = NnCellIndex::build(
            points.clone(),
            BuildConfig::builder().strategy(Strategy::NnDirection)
                .block_size(block)
                .seed(9).build(),
        )
        .expect("build");
        index.reset_stats();
        for q in &queries {
            std::hint::black_box(nncell_bench::nn_query(&index, q).unwrap());
        }
        let st = index.cell_tree_stats();
        rows.push(vec![
            format!("{} B", block),
            format!("{:.1}", st.page_reads as f64 / n_queries as f64),
            format!("{:.0}", st.cpu_ops as f64 / n_queries as f64),
        ]);
    }
    print_table(
        "Block size vs NN-cell query cost",
        &["block", "pages/query", "cpu/query"],
        &rows,
    );

    // --- 2. cell store: X-tree vs R*-tree -------------------------------
    // Store the same cell MBRs in both structures and run the same point
    // queries.
    let index = NnCellIndex::build(
        points.clone(),
        BuildConfig::builder().strategy(Strategy::NnDirection).seed(9).build(),
    )
    .expect("build");
    let cells: Vec<Mbr> = (0..n)
        .map(|i| index.cell(i).unwrap().pieces[0].clone())
        .collect();

    let mut rows = Vec::new();
    for (label, policy) in [
        ("X-tree", SplitPolicy::XTree),
        ("R*-tree", SplitPolicy::RStar),
    ] {
        let cfg = match policy {
            SplitPolicy::XTree => TreeConfig::xtree(d),
            SplitPolicy::RStar => TreeConfig::rstar(d),
        };
        let mut tree = Tree::new(cfg);
        for (i, m) in cells.iter().enumerate() {
            tree.insert(m.clone(), i as u64);
        }
        tree.reset_stats();
        for q in &queries {
            std::hint::black_box(tree.point_query(q));
        }
        let st = tree.stats();
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", st.page_reads as f64 / n_queries as f64),
            tree.total_pages().to_string(),
            tree.max_span().to_string(),
        ]);
    }
    print_table(
        "Cell store: point-query cost by structure",
        &["store", "pages/query", "total pages", "max supernode span"],
        &rows,
    );

    // --- 2b. cache budget sweep (the paper grants every structure "the
    // same amount of cache") --------------------------------------------
    let mut rows = Vec::new();
    let mut rstar = RStarTree::for_points(d);
    for (i, p) in points.iter().enumerate() {
        rstar.insert_point(p, i as u64);
    }
    for cache_pages in [0usize, 32, 128, 1024] {
        index.enable_cache(cache_pages);
        rstar.enable_cache(cache_pages);
        index.reset_stats();
        rstar.reset_stats();
        for q in &queries {
            std::hint::black_box(nncell_bench::nn_query(&index, q).unwrap());
            std::hint::black_box(rstar.nearest_neighbor(q).unwrap());
        }
        let (sn, sr) = (index.cell_tree_stats(), rstar.stats());
        rows.push(vec![
            cache_pages.to_string(),
            format!("{:.1}", sn.page_reads as f64 / n_queries as f64),
            format!("{:.1}", sn.cache_hits as f64 / n_queries as f64),
            format!("{:.1}", sr.page_reads as f64 / n_queries as f64),
            format!("{:.1}", sr.cache_hits as f64 / n_queries as f64),
        ]);
    }
    index.enable_cache(0);
    print_table(
        "LRU cache budget vs disk reads per NN query",
        &[
            "cache pages",
            "NN-cell reads",
            "NN-cell hits",
            "R* reads",
            "R* hits",
        ],
        &rows,
    );

    // --- 3. baseline sanity: R*-tree wrapper still answers NN ----------
    let mut rstar = RStarTree::for_points(d);
    let mut xtree = XTree::for_points(d);
    for (i, p) in points.iter().enumerate() {
        rstar.insert_point(p, i as u64);
        xtree.insert_point(p, i as u64);
    }
    rstar.reset_stats();
    xtree.reset_stats();
    for q in queries.iter().take(50) {
        assert_eq!(
            rstar.nearest_neighbor(q).unwrap().id,
            xtree.nearest_neighbor(q).unwrap().id
        );
    }
    println!("\nbaseline agreement verified (R* branch-and-bound vs X-tree best-first).");
}
