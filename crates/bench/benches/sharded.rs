//! Sharded serving-layer throughput: build time and batch QPS at shard
//! counts S ∈ {1, 2, 4} on one fixed-seed workload, written as JSON for
//! CI trend tracking (`BENCH_sharded.json`).
//!
//! Every sharded pass is asserted bit-identical to the S = 1 pass — the
//! sharded index's exactness contract (same ids, same distance bits, same
//! ranking) is load-bearing for this bench, not just for the proptests.
//!
//! Defaults are sized for real hardware; CI runs a smoke scale via the
//! usual env overrides (`NNCELL_N`, `NNCELL_DIM`, `NNCELL_QUERIES`,
//! `NNCELL_SHARD_COUNTS` as a comma list, `NNCELL_BENCH_OUT` for the
//! JSON path).

use nncell_bench::{env_usize, timed};
use nncell_core::{BuildConfig, Query, QueryResponse, ShardedIndex, Strategy};
use nncell_data::{Generator, UniformGenerator};

fn shard_counts() -> Vec<usize> {
    match std::env::var("NNCELL_SHARD_COUNTS") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim().parse().expect("NNCELL_SHARD_COUNTS holds counts"))
            .collect(),
        Err(_) => vec![1, 2, 4],
    }
}

fn assert_bit_identical(a: &[Result<QueryResponse, nncell_core::QueryError>], b: &[Result<QueryResponse, nncell_core::QueryError>], s: usize) {
    assert_eq!(a.len(), b.len());
    for (i, (ra, rb)) in a.iter().zip(b).enumerate() {
        let (ra, rb) = (ra.as_ref().expect("query ok"), rb.as_ref().expect("query ok"));
        let va: Vec<_> = ra.iter().collect();
        let vb: Vec<_> = rb.iter().collect();
        assert_eq!(va.len(), vb.len(), "S={s} query {i}");
        for (x, y) in va.iter().zip(&vb) {
            assert_eq!(x.id, y.id, "S={s} query {i}");
            assert_eq!(x.dist.to_bits(), y.dist.to_bits(), "S={s} query {i}");
        }
    }
}

fn main() {
    let n = env_usize("NNCELL_N", 40_000);
    let d = env_usize("NNCELL_DIM", 16);
    let n_q = env_usize("NNCELL_QUERIES", 4_000);
    let counts = shard_counts();
    let out = std::env::var("NNCELL_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sharded.json").to_string()
    });
    println!("# Sharded serving layer (N={n}, d={d}, {n_q} queries, S={counts:?})");

    let points = UniformGenerator::new(d).generate(n, 7);
    let queries: Vec<Query> = UniformGenerator::new(d)
        .generate(n_q, 8)
        .iter()
        .map(|p| Query::nn(p.as_slice()))
        .collect();

    let mut baseline: Option<Vec<Result<QueryResponse, nncell_core::QueryError>>> = None;
    let mut rows = Vec::new();
    for &s in &counts {
        let cfg = BuildConfig::builder().strategy(Strategy::NnDirection).seed(7).build();
        let (index, build_s) = timed(|| {
            ShardedIndex::build(points.clone(), s, cfg).expect("sharded build")
        });
        index.batch(&queries[..n_q.min(256)]); // warm-up
        let (results, q_s) = timed(|| index.batch(&queries));
        match &baseline {
            Some(base) => assert_bit_identical(base, &results, s),
            None => baseline = Some(results),
        }
        let qps = n_q as f64 / q_s;
        println!("S={s}: built in {build_s:.2}s, {qps:.0} q/s (merged, exact)");
        rows.push(format!(
            "    {{\"shards\": {s}, \"build_seconds\": {build_s:.3}, \"qps\": {qps:.2}}}"
        ));
    }

    let json = format!(
        "{{\n  \"n\": {n},\n  \"dim\": {d},\n  \"queries\": {n_q},\n  \"runs\": [\n{}\n  ],\n  \
         \"bit_identical\": true\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&out, json).expect("write bench json");
    println!("wrote {out}");
}
