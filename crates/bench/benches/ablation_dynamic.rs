//! Ablation: dynamic insertion (section 2's insertion algorithm).
//!
//! Measures per-insert cost with and without neighbor-cell refinement, and
//! the approximation-quality drift refinement prevents. Exactness holds in
//! both modes (inserts only shrink true cells; approximations stay
//! supersets) — the trade is insert latency vs query candidate count.
//!
//! Runs at moderate dimensionality, where cells are local and refinement
//! touches only genuine neighbors; in the saturated high-d regime (fig. 4b)
//! nearly every cell borders every other and per-insert refinement
//! approaches a rebuild — turn it off there or batch the updates.

use nncell_bench::{as_queries, cells_of, env_usize, print_table, secs, timed};
use nncell_core::{
    average_overlap, linear_scan_nn, measured_candidates, BuildConfig, NnCellIndex, Strategy,
};
use nncell_data::{Generator, UniformGenerator};

fn main() {
    let d = 4;
    let n0 = env_usize("NNCELL_N", 1_000);
    let inserts = env_usize("NNCELL_INSERTS", 150);
    let n_queries = env_usize("NNCELL_QUERIES", 100);
    println!("# Ablation — dynamic inserts (d={d}, base N={n0}, {inserts} inserts)");

    let base = UniformGenerator::new(d).generate(n0, 50);
    let arrivals = UniformGenerator::new(d).generate(inserts, 51);
    let queries = as_queries(UniformGenerator::new(d).generate(n_queries, 52));

    let mut rows = Vec::new();
    for (label, refine) in [("refine ON", true), ("refine OFF", false)] {
        let mut index = NnCellIndex::build(
            base.clone(),
            BuildConfig::builder().strategy(Strategy::Sphere)
                .refine_on_insert(refine)
                .seed(7).build(),
        )
        .expect("build");
        let (_, t_ins) = timed(|| {
            for p in arrivals.clone() {
                index.insert(p).expect("insert");
            }
        });

        // Exactness after the insert storm.
        let mut all = base.clone();
        all.extend(arrivals.iter().cloned());
        for q in &queries {
            let got = nncell_bench::nn_query(&index, q).unwrap();
            let want = linear_scan_nn(&all, q).unwrap();
            assert!((got.dist - want.dist).abs() < 1e-9, "{label}: inexact");
        }

        let overlap = average_overlap(&cells_of(&index));
        let cands = measured_candidates(&index, &queries);
        rows.push(vec![
            label.to_string(),
            secs(t_ins / inserts as f64),
            format!("{overlap:.2}"),
            format!("{cands:.1}"),
        ]);
    }

    print_table(
        "Dynamic insert: cost vs quality",
        &["mode", "time/insert", "overlap after", "candidates/query"],
        &rows,
    );
    println!("\nexpectation: refinement costs insert time, buys fewer query candidates.");
}
