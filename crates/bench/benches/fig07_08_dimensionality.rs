//! Figures 7 and 8: total NN search time vs dimensionality, and the speed-up
//! of the NN-cell approach over the R\*-tree.
//!
//! Paper shape to reproduce: comparable at low d; the NN-cell approach pulls
//! far ahead as d grows (paper: >300% speed-up over the R\*-tree at d=16 on
//! 100k points; we run laptop scale, same ordering expected).

use nncell_bench::{as_queries, env_dims, env_usize, print_table, secs, timed};
use nncell_core::{BuildConfig, NnCellIndex, Strategy};
use nncell_data::{Generator, UniformGenerator};
use nncell_index::{LinearScan, RStarTree, XTree};

fn main() {
    let n = env_usize("NNCELL_N", 2_000);
    let n_queries = env_usize("NNCELL_QUERIES", 200);
    let dims = env_dims("NNCELL_DIMS", &[4, 6, 8, 10, 12, 14, 16]);
    println!(
        "# Figures 7 / 8 — total search time vs dimension (N={n}, {n_queries} queries)\n\
         # NN-cell build strategy: CorrectPruned (exact MBRs, as the paper's query-time figures)"
    );

    let mut fig7 = Vec::new();
    let mut fig8 = Vec::new();
    for &d in &dims {
        let points = UniformGenerator::new(d).generate(n, 7 + d as u64);
        let queries = as_queries(UniformGenerator::new(d).generate(n_queries, 99));

        let nncell = NnCellIndex::build(
            points.clone(),
            BuildConfig::builder().strategy(Strategy::CorrectPruned).seed(2).build(),
        )
        .expect("build");
        let mut rstar = RStarTree::for_points(d);
        let mut xtree = XTree::for_points(d);
        let mut scan = LinearScan::new(d);
        for (i, p) in points.iter().enumerate() {
            rstar.insert_point(p, i as u64);
            xtree.insert_point(p, i as u64);
            scan.insert(p, i as u64);
        }

        let (nncell_ids, t_nncell) = timed(|| {
            queries
                .iter()
                .map(|q| nncell_bench::nn_query(&nncell, q).unwrap().id)
                .collect::<Vec<_>>()
        });
        let (rstar_ids, t_rstar) = timed(|| {
            queries
                .iter()
                .map(|q| rstar.nearest_neighbor(q).unwrap().id as usize)
                .collect::<Vec<_>>()
        });
        let (xtree_ids, t_xtree) = timed(|| {
            queries
                .iter()
                .map(|q| xtree.nearest_neighbor(q).unwrap().id as usize)
                .collect::<Vec<_>>()
        });
        let (scan_ids, t_scan) = timed(|| {
            queries
                .iter()
                .map(|q| scan.nearest_neighbor(q).unwrap().id as usize)
                .collect::<Vec<_>>()
        });
        assert_eq!(nncell_ids, scan_ids, "NN-cell inexact at d={d}");
        assert_eq!(rstar_ids, scan_ids, "R* inexact at d={d}");
        assert_eq!(xtree_ids, scan_ids, "X-tree inexact at d={d}");

        fig7.push(vec![
            d.to_string(),
            secs(t_nncell),
            secs(t_rstar),
            secs(t_xtree),
            secs(t_scan),
        ]);
        fig8.push(vec![
            d.to_string(),
            format!("{:.0}%", 100.0 * t_rstar / t_nncell),
            format!("{:.0}%", 100.0 * t_xtree / t_nncell),
        ]);
    }

    print_table(
        "Figure 7: total search time",
        &["dim", "NN-cell", "R*-tree", "X-tree", "scan"],
        &fig7,
    );
    print_table(
        "Figure 8: NN-cell speed-up (search time ratio)",
        &["dim", "vs R*-tree", "vs X-tree"],
        &fig8,
    );
    println!("\npaper shape check: speed-up grows with dimension (paper: >300% at d=16).");
}
