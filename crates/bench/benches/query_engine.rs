//! Throughput smoke for the [`nncell_core::QueryEngine`]: sequential vs
//! parallel batch QPS on one fixed-seed workload, written as JSON for CI
//! trend tracking (`BENCH_query_engine.json`).
//!
//! Defaults match the CI gate — 100 000 uniform points, d = 16, 10 000
//! queries — and scale with the usual env overrides (`NNCELL_N`,
//! `NNCELL_QUERIES`, `NNCELL_DIM`, `NNCELL_THREADS`, plus
//! `NNCELL_BENCH_OUT` for the JSON path). The parallel pass must be
//! bit-identical to the sequential pass; the bench exits non-zero if not.
//!
//! A third sequential pass runs with a live metrics registry attached to
//! measure observability overhead (`seq_qps_metrics` / `metrics_overhead`
//! in the JSON). That pass must also be bit-identical — instrumentation
//! may cost nanoseconds, never answers.
//!
//! Every timed pass runs twice and reports the *minimum* elapsed time:
//! at CI smoke scale a single pass lasts well under a second, so one
//! scheduler preemption or page-cache miss lands entirely in the
//! numerator and once inflated the measured metrics overhead to double
//! digits (the in-process microbenches in `crates/obs` put the true
//! per-record cost at tens of nanoseconds). The min of two runs discards
//! such one-off stalls while leaving real regressions visible.
//!
//! The overhead A/B itself is additionally **interleaved**: with the
//! registry attached, the control arm (same engine, recording disabled
//! via `without_metrics`) and the instrumented arm alternate for several
//! rounds and each reports its per-round minimum. Measuring the control
//! arm once, minutes earlier in process life, let allocator and cache
//! drift masquerade as recording cost — that is what once inflated the
//! reported overhead to 8%.

use nncell_bench::{env_usize, timed};
use nncell_core::{BuildConfig, ConstraintPool, NnCellIndex, Query, Registry, Strategy};
use nncell_data::{Generator, UniformGenerator};

/// Runs `f` twice and keeps the faster elapsed time (the result is
/// asserted identical across passes by the callers' determinism checks,
/// so returning the second value loses nothing).
fn best_of_two<T, F: FnMut() -> T>(mut f: F) -> (T, f64) {
    let (_, first_s) = timed(&mut f);
    let (v, second_s) = timed(&mut f);
    (v, first_s.min(second_s))
}

fn main() {
    let n = env_usize("NNCELL_N", 100_000);
    let d = env_usize("NNCELL_DIM", 16);
    let n_q = env_usize("NNCELL_QUERIES", 10_000);
    let default_threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);
    let threads = env_usize("NNCELL_THREADS", default_threads.min(8));
    // Cargo runs benches with the package directory as cwd; anchor the
    // default output at the workspace root so CI always finds it there.
    let out = std::env::var("NNCELL_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_query_engine.json").to_string()
    });
    println!("# Query-engine throughput (N={n}, d={d}, {n_q} queries, {threads} threads)");

    let points = UniformGenerator::new(d).generate(n, 7);
    let (mut index, build_s) = timed(|| {
        NnCellIndex::build(
            points,
            BuildConfig::builder()
                .strategy(Strategy::NnDirection)
                .constraint_pool(ConstraintPool::ApproxKnn {
                    k: ConstraintPool::recommended_k(d),
                })
                .seed(7)
                .threads(threads)
                .build(),
        )
        .expect("build")
    });
    println!("built in {build_s:.1}s ({} cells)", index.len());

    let queries: Vec<Query> = UniformGenerator::new(d)
        .generate(n_q, 8)
        .iter()
        .map(|p| Query::nn(p.as_slice()))
        .collect();

    let engine_seq = index.engine().with_threads(1);
    let engine_par = index.engine().with_threads(threads);
    // One untimed warm-up pass each, so page-cache state and allocator
    // high-water marks do not favor whichever runs second.
    engine_seq.batch(&queries[..n_q.min(512)]);
    engine_par.batch(&queries[..n_q.min(512)]);

    let (seq, seq_s) = best_of_two(|| engine_seq.batch(&queries));
    let (par, par_s) = best_of_two(|| engine_par.batch(&queries));
    assert_eq!(seq, par, "parallel batch diverged from sequential");
    drop(engine_seq);
    drop(engine_par);

    // Overhead A/B: same sequential workload with a live registry
    // attached (latency/candidate/page/pruning histograms recording on
    // every query) against a control engine on the *same* index with
    // recording disabled. The two arms alternate — control, instrumented,
    // control, … — so allocator state, page cache, and CPU clocks drift
    // identically for both, and each arm keeps its fastest round.
    let registry = Registry::new();
    index.attach_metrics(registry.clone());
    let engine_ctl = index.engine().with_threads(1).without_metrics();
    let engine_obs = index.engine().with_threads(1);
    engine_ctl.batch(&queries[..n_q.min(512)]);
    engine_obs.batch(&queries[..n_q.min(512)]);
    let mut ctl_s = f64::INFINITY;
    let mut obs_s = f64::INFINITY;
    let mut obs = Vec::new();
    for round in 0..4 {
        // Alternate which arm goes first so neither systematically
        // inherits the warmer caches of a same-round predecessor.
        if round % 2 == 0 {
            let (_, s) = timed(|| engine_ctl.batch(&queries));
            ctl_s = ctl_s.min(s);
            let (v, s) = timed(|| engine_obs.batch(&queries));
            obs_s = obs_s.min(s);
            obs = v;
        } else {
            let (v, s) = timed(|| engine_obs.batch(&queries));
            obs_s = obs_s.min(s);
            obs = v;
            let (_, s) = timed(|| engine_ctl.batch(&queries));
            ctl_s = ctl_s.min(s);
        }
    }
    assert_eq!(seq, obs, "metrics-attached batch diverged from sequential");
    let recorded = registry.snapshot().counter("nncell_queries_total");
    assert!(
        recorded >= Some(n_q as u64),
        "registry missed queries: {recorded:?} < {n_q}"
    );

    let answered = seq.iter().filter(|r| r.is_ok()).count();
    let stats = || seq.iter().filter_map(|r| r.as_ref().ok()).map(|r| &r.stats);
    let cands: usize = stats().map(|s| s.candidates).sum();
    let examined: usize = stats().map(|s| s.candidates_examined).sum();
    let aborted: usize = stats().map(|s| s.candidates_aborted_early).sum();
    let pruned: u64 = stats().map(|s| s.nodes_pruned).sum();
    let fallbacks = stats().filter(|s| s.fallback).count();
    let seq_qps = n_q as f64 / seq_s;
    let par_qps = n_q as f64 / par_s;
    let obs_qps = n_q as f64 / obs_s;
    // Overhead of the instrumented arm relative to its interleaved
    // control arm; reported (not asserted) because even per-round minima
    // carry some machine noise.
    let metrics_overhead = obs_s / ctl_s.max(f64::MIN_POSITIVE) - 1.0;
    let per_q = |total: f64| total / answered.max(1) as f64;
    let mean_cands = per_q(cands as f64);
    let mean_examined = per_q(examined as f64);
    let mean_aborted = per_q(aborted as f64);
    let mean_pruned = per_q(pruned as f64);
    println!(
        "sequential: {seq_qps:.0} q/s — parallel ({threads} threads): {par_qps:.0} q/s \
         ({:.2}x) — {mean_cands:.1} candidates/query ({mean_examined:.1} examined, \
         {mean_aborted:.1} aborted early, {mean_pruned:.1} subtrees pruned), \
         {fallbacks} fallback(s)",
        par_qps / seq_qps
    );
    println!(
        "with metrics: {obs_qps:.0} q/s ({:+.1}% vs interleaved control)",
        metrics_overhead * 100.0
    );

    let json = format!(
        "{{\n  \"n\": {n},\n  \"dim\": {d},\n  \"queries\": {n_q},\n  \
         \"threads\": {threads},\n  \"build_seconds\": {build_s:.2},\n  \
         \"seq_qps\": {seq_qps:.2},\n  \"par_qps\": {par_qps:.2},\n  \
         \"seq_qps_metrics\": {obs_qps:.2},\n  \"metrics_overhead\": {metrics_overhead:.4},\n  \
         \"speedup\": {:.4},\n  \"mean_candidates\": {mean_cands:.4},\n  \
         \"mean_examined\": {mean_examined:.4},\n  \"mean_aborted_early\": {mean_aborted:.4},\n  \
         \"mean_nodes_pruned\": {mean_pruned:.4},\n  \
         \"fallbacks\": {fallbacks},\n  \"bit_identical\": true\n}}\n",
        par_qps / seq_qps
    );
    std::fs::write(&out, json).expect("write bench json");
    println!("wrote {out}");
}
