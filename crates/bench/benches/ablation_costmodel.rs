//! Ablation: the \[BBKK 97\] cost model vs measured tree behaviour.
//!
//! The NN-cell paper's motivation is theoretical: under uniform data,
//! index-based NN search must read a portion of the database that explodes
//! with dimensionality. This bench puts the model's predicted access
//! fraction next to the measured R\*-tree and X-tree numbers — and next to
//! the NN-cell point query, which sidesteps the argument entirely because it
//! never searches a neighborhood.

use nncell_bench::{as_queries, env_dims, env_usize, print_table};
use nncell_core::{BuildConfig, NnCellIndex, Strategy};
use nncell_data::{Generator, UniformGenerator};
use nncell_index::costmodel::{expected_access_fraction, expected_nn_distance};
use nncell_index::{RStarTree, XTree};

fn main() {
    let n = env_usize("NNCELL_N", 1_500);
    let n_queries = env_usize("NNCELL_QUERIES", 100);
    let dims = env_dims("NNCELL_DIMS", &[2, 4, 8, 12, 16]);
    println!("# Ablation — BBKK'97 cost model vs measurement (N={n})");

    let mut rows = Vec::new();
    for &d in &dims {
        let points = UniformGenerator::new(d).generate(n, 3 + d as u64);
        let queries = as_queries(UniformGenerator::new(d).generate(n_queries, 4));

        let mut rstar = RStarTree::for_points(d);
        let mut xtree = XTree::for_points(d);
        for (i, p) in points.iter().enumerate() {
            rstar.insert_point(p, i as u64);
            xtree.insert_point(p, i as u64);
        }
        let nncell = NnCellIndex::build(
            points.clone(),
            BuildConfig::builder().strategy(Strategy::CorrectPruned).seed(5).build(),
        )
        .expect("build");

        rstar.reset_stats();
        xtree.reset_stats();
        nncell.reset_stats();
        for q in &queries {
            std::hint::black_box(rstar.nearest_neighbor(q));
            std::hint::black_box(xtree.nearest_neighbor(q));
            std::hint::black_box(nncell_bench::nn_query(&nncell, q));
        }
        let c_eff = rstar.config().max_leaf_entries();
        let predicted = expected_access_fraction(n, d, c_eff);
        let frac = |reads: u64, pages: u64| {
            format!(
                "{:.1}%",
                100.0 * reads as f64 / (n_queries as u64 * pages) as f64
            )
        };
        rows.push(vec![
            d.to_string(),
            format!("{:.3}", expected_nn_distance(n, d)),
            format!("{:.1}%", 100.0 * predicted),
            frac(rstar.stats().page_reads, rstar.total_pages()),
            frac(xtree.stats().page_reads, xtree.total_pages()),
            frac(
                nncell.cell_tree_stats().page_reads,
                nncell.cell_tree_pages(),
            ),
        ]);
    }

    print_table(
        "Predicted vs measured fraction of pages read per NN query",
        &["dim", "E[nn dist]", "model", "R*-tree", "X-tree", "NN-cell"],
        &rows,
    );
    println!("\nexpectation: the model tracks the trees' degeneration toward a scan.");
    println!("The NN-cell fraction is lowest at low d; at laptop-scale N its inflated");
    println!("high-d approximations read more pages (see EXPERIMENTS.md on density).");
}
