//! Shared harness utilities for the per-figure benches.
//!
//! Every bench target in this crate regenerates one table/figure of the
//! ICDE'98 NN-cell paper at laptop scale. Sizes default to values that keep
//! a full `cargo bench` run in minutes; set the environment variables
//! `NNCELL_N` (database size), `NNCELL_QUERIES` (query count), and
//! `NNCELL_DIMS` (comma-separated dimensions) to approach paper scale.
//! Results are printed as aligned tables — the same rows/series the paper
//! plots — and recorded in `EXPERIMENTS.md`.

use nncell_core::{CellApprox, NnCellIndex, Query, QueryEngine, QueryResult};
use nncell_geom::{Metric, Point};
use std::time::Instant;

/// One NN query through the typed engine, with the `Option` shape the
/// removed convenience shims had — what most figure benches need.
pub fn nn_query<M: Metric>(index: &NnCellIndex<M>, q: &[f64]) -> Option<QueryResult> {
    QueryEngine::sequential(index)
        .execute(&Query::nn(q))
        .ok()
        .map(|r| r.best)
}

/// Reads a `usize` environment override.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads a comma-separated dimension list override.
pub fn env_dims(name: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(name)
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse().ok())
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

/// Times a closure, returning its result and elapsed seconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed().as_secs_f64())
}

/// Collects the live cell approximations of an index.
pub fn cells_of<M: Metric>(index: &NnCellIndex<M>) -> Vec<CellApprox> {
    (0..index.points().len())
        .filter_map(|i| index.cell(i).cloned())
        .collect()
}

/// Converts points into raw query vectors.
pub fn as_queries(points: Vec<Point>) -> Vec<Vec<f64>> {
    points.into_iter().map(Point::into_vec).collect()
}

/// Prints an aligned table: a title line, a header, and rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats seconds with sensible precision.
pub fn secs(s: f64) -> String {
    if s < 0.001 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_overrides_parse() {
        std::env::set_var("NNCELL_TEST_X", "123");
        assert_eq!(env_usize("NNCELL_TEST_X", 5), 123);
        assert_eq!(env_usize("NNCELL_TEST_MISSING", 5), 5);
        std::env::set_var("NNCELL_TEST_D", "4, 8,12");
        assert_eq!(env_dims("NNCELL_TEST_D", &[2]), vec![4, 8, 12]);
        assert_eq!(env_dims("NNCELL_TEST_D_MISSING", &[2]), vec![2]);
    }

    #[test]
    fn secs_formats() {
        assert!(secs(0.0000005).ends_with("µs"));
        assert!(secs(0.05).ends_with("ms"));
        assert!(secs(2.0).ends_with('s'));
    }
}
