//! Name → metric registry and point-in-time snapshots with
//! Prometheus-text and JSON rendering (both hand-rolled, no serde).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::metrics::{bucket_upper_bound, Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS};

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Owns the name → metric map. The internal mutex is taken only when a
/// handle is first registered and when a snapshot is rendered — the hot
/// path works purely on the returned `Arc` handles.
///
/// Metric names follow the Prometheus convention
/// (`nncell_<subsystem>_<what>[_total]`, snake_case).
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
    /// Base metric name → `# HELP` text (optional, set via
    /// [`Registry::describe`]).
    helps: Mutex<BTreeMap<String, String>>,
}

impl Registry {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Returns the counter registered under `name`, creating it on
    /// first use. If `name` is already taken by a different metric
    /// kind, a detached (unexported) handle is returned instead of
    /// panicking — instrumentation must never take down the data path.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = match self.metrics.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => Arc::new(Counter::new()),
        }
    }

    /// Returns the gauge registered under `name` (see [`Registry::counter`]
    /// for the kind-conflict policy).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = match self.metrics.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => Arc::new(Gauge::new()),
        }
    }

    /// Returns the histogram registered under `name` (see
    /// [`Registry::counter`] for the kind-conflict policy).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = match self.metrics.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => Arc::new(Histogram::new()),
        }
    }

    /// Attaches `# HELP` text to a metric family (identified by its
    /// **base** name, without any label block). Rendered once per family
    /// by [`Snapshot::to_prometheus`], immediately before the `# TYPE`
    /// line. Re-describing a family replaces its text.
    pub fn describe(&self, base: &str, help: &str) {
        let mut helps = match self.helps.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        helps.insert(base.to_string(), help.to_string());
    }

    /// Copies every registered metric into an immutable [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let map = match self.metrics.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        let helps = match self.helps.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        Snapshot {
            metrics: map
                .iter()
                .map(|(name, m)| {
                    let v = match m {
                        Metric::Counter(c) => MetricSnapshot::Counter(c.get()),
                        Metric::Gauge(g) => MetricSnapshot::Gauge(g.get()),
                        Metric::Histogram(h) => {
                            MetricSnapshot::Histogram(Box::new(h.snapshot()))
                        }
                    };
                    (name.clone(), v)
                })
                .collect(),
            helps: helps.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
        }
    }
}

/// Renders a label set as a Prometheus-style series suffix:
/// `&[("shard", "3")]` → `{shard="3"}`, the empty slice → `""`.
/// Append the result to a base metric name to form a registry key —
/// [`Snapshot::to_prometheus`] and [`Snapshot::sum_counters`] understand
/// keys of this shape.
pub fn format_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    out.push('}');
    out
}

/// Escapes a label value per the Prometheus text exposition format:
/// backslash, double-quote, and newline become `\\`, `\"`, `\n`.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes `# HELP` text per the Prometheus text exposition format:
/// backslash and newline become `\\` and `\n` (quotes stay literal).
fn escape_help_text(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Splits a registry key into `(base_name, label_block)` where the label
/// block includes the braces (`""` when the key carries no labels).
fn split_series(key: &str) -> (&str, &str) {
    match key.find('{') {
        Some(i) if key.ends_with('}') => (&key[..i], &key[i..]),
        _ => (key, ""),
    }
}

/// One metric's value inside a [`Snapshot`].
///
/// The histogram variant is boxed: a [`HistogramSnapshot`] carries its
/// full bucket array (~0.5 KiB), which would otherwise inflate every
/// counter and gauge entry to the same size.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricSnapshot {
    Counter(u64),
    Gauge(i64),
    Histogram(Box<HistogramSnapshot>),
}

/// A point-in-time copy of a [`Registry`], sorted by metric name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` pairs in lexicographic name order.
    pub metrics: Vec<(String, MetricSnapshot)>,
    /// `(base_name, help_text)` pairs in lexicographic name order, from
    /// [`Registry::describe`].
    pub helps: Vec<(String, String)>,
}

impl Snapshot {
    /// Looks up the `# HELP` text attached to a family base name.
    fn help_for(&self, base: &str) -> Option<&str> {
        self.helps
            .binary_search_by(|(n, _)| n.as_str().cmp(base))
            .ok()
            .map(|i| self.helps[i].1.as_str())
    }

    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricSnapshot> {
        self.metrics
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.metrics[i].1)
    }

    /// Convenience: the value of a counter, or `None` if absent or not
    /// a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricSnapshot::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Convenience: the value of a gauge.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.get(name)? {
            MetricSnapshot::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Convenience: a histogram snapshot.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name)? {
            MetricSnapshot::Histogram(h) => Some(h.as_ref()),
            _ => None,
        }
    }

    /// Sums every counter series whose base name is `base` — the bare
    /// `base` key plus any labeled `base{…}` variants (e.g. the per-shard
    /// `nncell_queries_total{shard="…"}` family). Returns `None` when no
    /// such counter exists at all.
    pub fn sum_counters(&self, base: &str) -> Option<u64> {
        let mut total = 0u64;
        let mut seen = false;
        for (name, m) in &self.metrics {
            if let MetricSnapshot::Counter(v) = m {
                if split_series(name).0 == base {
                    total += v;
                    seen = true;
                }
            }
        }
        seen.then_some(total)
    }

    /// Sums every gauge series with base name `base` (see
    /// [`Snapshot::sum_counters`]).
    pub fn sum_gauges(&self, base: &str) -> Option<i64> {
        let mut total = 0i64;
        let mut seen = false;
        for (name, m) in &self.metrics {
            if let MetricSnapshot::Gauge(v) = m {
                if split_series(name).0 == base {
                    total += v;
                    seen = true;
                }
            }
        }
        seen.then_some(total)
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    /// Histograms emit cumulative `_bucket{le="…"}` series (up to the
    /// highest non-empty bucket, then `+Inf`), `_sum`, and `_count`.
    ///
    /// Registry keys may carry a label block (`name{shard="0"}`, see
    /// [`format_labels`]): the `# TYPE` comment is emitted once per base
    /// name (series of one family sort adjacently), and histogram labels
    /// are merged into the `le` block of each `_bucket` line.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_base: Option<String> = None;
        for (name, m) in &self.metrics {
            let (base, labels) = split_series(name);
            // `,shard="0"` when labeled, `""` when not — appended after
            // the `le` label inside bucket braces.
            let inner = if labels.is_empty() {
                String::new()
            } else {
                format!(",{}", &labels[1..labels.len() - 1])
            };
            let new_family = last_base.as_deref() != Some(base);
            if new_family {
                if let Some(help) = self.help_for(base) {
                    let _ = writeln!(out, "# HELP {base} {}", escape_help_text(help));
                }
            }
            match m {
                MetricSnapshot::Counter(v) => {
                    if new_family {
                        let _ = writeln!(out, "# TYPE {base} counter");
                    }
                    let _ = writeln!(out, "{base}{labels} {v}");
                }
                MetricSnapshot::Gauge(v) => {
                    if new_family {
                        let _ = writeln!(out, "# TYPE {base} gauge");
                    }
                    let _ = writeln!(out, "{base}{labels} {v}");
                }
                MetricSnapshot::Histogram(h) => {
                    if new_family {
                        let _ = writeln!(out, "# TYPE {base} histogram");
                    }
                    let last = h
                        .counts
                        .iter()
                        .rposition(|&c| c > 0)
                        .map_or(0, |i| (i + 1).min(BUCKETS - 1));
                    let mut cum = 0u64;
                    for i in 0..=last {
                        cum += h.counts[i];
                        let _ = writeln!(
                            out,
                            "{base}_bucket{{le=\"{}\"{inner}}} {cum}",
                            bucket_upper_bound(i)
                        );
                    }
                    let count = h.count();
                    let _ = writeln!(out, "{base}_bucket{{le=\"+Inf\"{inner}}} {count}");
                    let _ = writeln!(out, "{base}_sum{labels} {}", h.sum);
                    let _ = writeln!(out, "{base}_count{labels} {count}");
                }
            }
            last_base = Some(base.to_string());
        }
        out
    }

    /// Renders the snapshot as a JSON object keyed by metric name.
    /// Counters/gauges become `{"type":…,"value":…}`; histograms carry
    /// count/sum/max/mean, the standard percentiles, and the non-empty
    /// buckets as `[upper_bound, count]` pairs. Hand-rolled — metric
    /// names are snake_case identifiers, so no string escaping is
    /// needed beyond what [`json_escape`] provides.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (name, m)) in self.metrics.iter().enumerate() {
            let comma = if i + 1 < self.metrics.len() { "," } else { "" };
            match m {
                MetricSnapshot::Counter(v) => {
                    let _ = writeln!(
                        out,
                        "  \"{}\": {{\"type\": \"counter\", \"value\": {v}}}{comma}",
                        json_escape(name)
                    );
                }
                MetricSnapshot::Gauge(v) => {
                    let _ = writeln!(
                        out,
                        "  \"{}\": {{\"type\": \"gauge\", \"value\": {v}}}{comma}",
                        json_escape(name)
                    );
                }
                MetricSnapshot::Histogram(h) => {
                    let buckets: Vec<String> = h
                        .counts
                        .iter()
                        .enumerate()
                        .filter(|(_, &c)| c > 0)
                        .map(|(i, &c)| format!("[{}, {c}]", bucket_upper_bound(i)))
                        .collect();
                    let _ = writeln!(
                        out,
                        "  \"{}\": {{\"type\": \"histogram\", \"count\": {}, \"sum\": {}, \
                         \"max\": {}, \"mean\": {:.3}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \
                         \"buckets\": [{}]}}{comma}",
                        json_escape(name),
                        h.count(),
                        h.sum,
                        h.max,
                        h.mean(),
                        h.percentile(0.50),
                        h.percentile(0.90),
                        h.percentile(0.99),
                        buckets.join(", ")
                    );
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_handle() {
        let r = Registry::new();
        let a = r.counter("nncell_test_total");
        let b = r.counter("nncell_test_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.snapshot().counter("nncell_test_total"), Some(3));
    }

    #[test]
    fn kind_conflict_returns_detached_handle() {
        let r = Registry::new();
        let c = r.counter("nncell_thing");
        c.add(5);
        // Same name as a gauge: detached, does not clobber the counter.
        let g = r.gauge("nncell_thing");
        g.set(-1);
        assert_eq!(r.snapshot().counter("nncell_thing"), Some(5));
    }

    #[test]
    fn prometheus_rendering() {
        let r = Registry::new();
        r.counter("nncell_queries_total").add(4);
        r.gauge("nncell_live_points").set(100);
        let h = r.histogram("nncell_query_latency_ns");
        h.record(3);
        h.record(5);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE nncell_queries_total counter"), "{text}");
        assert!(text.contains("nncell_queries_total 4"), "{text}");
        assert!(text.contains("nncell_live_points 100"), "{text}");
        // Bucket 2 (ub 3) holds the 3; bucket 3 (ub 7) the 5; cumulative.
        assert!(text.contains("nncell_query_latency_ns_bucket{le=\"3\"} 1"), "{text}");
        assert!(text.contains("nncell_query_latency_ns_bucket{le=\"7\"} 2"), "{text}");
        assert!(text.contains("nncell_query_latency_ns_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("nncell_query_latency_ns_sum 8"), "{text}");
        assert!(text.contains("nncell_query_latency_ns_count 2"), "{text}");
    }

    #[test]
    fn labeled_series_render_with_shared_type_line() {
        let r = Registry::new();
        let labels = format_labels(&[("shard", "0")]);
        assert_eq!(labels, "{shard=\"0\"}");
        r.counter("nncell_queries_total").add(2);
        r.counter(&format!("nncell_queries_total{labels}")).add(3);
        r.counter(&format!("nncell_queries_total{}", format_labels(&[("shard", "1")])))
            .add(4);
        let h = r.histogram(&format!("nncell_query_latency_ns{labels}"));
        h.record(3);
        let text = r.snapshot().to_prometheus();
        // One TYPE line for the whole family, three series.
        assert_eq!(text.matches("# TYPE nncell_queries_total counter").count(), 1, "{text}");
        assert!(text.contains("nncell_queries_total 2"), "{text}");
        assert!(text.contains("nncell_queries_total{shard=\"0\"} 3"), "{text}");
        assert!(text.contains("nncell_queries_total{shard=\"1\"} 4"), "{text}");
        // Histogram labels merge into the le block.
        assert!(
            text.contains("nncell_query_latency_ns_bucket{le=\"3\",shard=\"0\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("nncell_query_latency_ns_bucket{le=\"+Inf\",shard=\"0\"} 1"),
            "{text}"
        );
        assert!(text.contains("nncell_query_latency_ns_sum{shard=\"0\"} 3"), "{text}");
        assert!(text.contains("nncell_query_latency_ns_count{shard=\"0\"} 1"), "{text}");
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(
            format_labels(&[("path", "a\\b\"c\nd")]),
            "{path=\"a\\\\b\\\"c\\nd\"}"
        );
        let r = Registry::new();
        r.counter(&format!(
            "nncell_esc_total{}",
            format_labels(&[("route", "/query\"x\"")])
        ))
        .inc();
        let text = r.snapshot().to_prometheus();
        assert!(
            text.contains("nncell_esc_total{route=\"/query\\\"x\\\"\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn help_rendered_once_per_family_before_type() {
        let r = Registry::new();
        r.describe("nncell_h_total", "Requests handled.\nSecond line \\ done.");
        r.counter("nncell_h_total").inc();
        r.counter("nncell_h_total{shard=\"0\"}").add(2);
        r.counter("nncell_h_total{shard=\"1\"}").add(3);
        r.counter("nncell_undescribed_total").inc();
        let text = r.snapshot().to_prometheus();
        // Exactly one HELP and one TYPE line for the whole family, with
        // HELP first and newline/backslash escaped.
        assert_eq!(text.matches("# HELP nncell_h_total").count(), 1, "{text}");
        assert_eq!(text.matches("# TYPE nncell_h_total counter").count(), 1, "{text}");
        let help_pos = text.find("# HELP nncell_h_total").unwrap();
        let type_pos = text.find("# TYPE nncell_h_total").unwrap();
        assert!(help_pos < type_pos, "{text}");
        assert!(
            text.contains("# HELP nncell_h_total Requests handled.\\nSecond line \\\\ done."),
            "{text}"
        );
        // Families without a describe() get no HELP line.
        assert!(!text.contains("# HELP nncell_undescribed_total"), "{text}");
    }

    #[test]
    fn sum_counters_aggregates_label_family() {
        let r = Registry::new();
        r.counter("nncell_x_total").add(1);
        r.counter("nncell_x_total{shard=\"0\"}").add(2);
        r.counter("nncell_x_total{shard=\"1\"}").add(3);
        r.counter("nncell_x_total_other").add(100);
        r.gauge("nncell_live{shard=\"0\"}").set(5);
        r.gauge("nncell_live{shard=\"1\"}").set(7);
        let s = r.snapshot();
        assert_eq!(s.sum_counters("nncell_x_total"), Some(6));
        assert_eq!(s.sum_counters("nncell_missing"), None);
        assert_eq!(s.sum_gauges("nncell_live"), Some(12));
    }

    #[test]
    fn json_rendering_is_parseable_shape() {
        let r = Registry::new();
        r.counter("a_total").inc();
        r.histogram("b_hist").record(100);
        let json = r.snapshot().to_json();
        assert!(json.starts_with("{\n"), "{json}");
        assert!(json.trim_end().ends_with('}'), "{json}");
        assert!(json.contains("\"a_total\": {\"type\": \"counter\", \"value\": 1},"), "{json}");
        assert!(json.contains("\"b_hist\": {\"type\": \"histogram\", \"count\": 1,"), "{json}");
        assert!(json.contains("\"buckets\": [[127, 1]]"), "{json}");
    }

    #[test]
    fn snapshot_get_is_name_sorted() {
        let r = Registry::new();
        r.counter("z_total").inc();
        r.counter("a_total").add(7);
        let s = r.snapshot();
        assert_eq!(s.metrics[0].0, "a_total");
        assert_eq!(s.counter("z_total"), Some(1));
        assert!(s.get("missing").is_none());
    }
}
