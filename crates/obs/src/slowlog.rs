//! Fixed-capacity slow-query ring buffer.
//!
//! The threshold check is a single relaxed atomic load, so when the
//! threshold is disabled (the default, `u64::MAX`) the query path pays
//! one load and a predictable branch. When a query is slow enough to
//! record, the ring's mutex is taken and the query point is copied into
//! a slot whose buffer was preallocated at construction — recording
//! never heap-allocates as long as the query dimensionality does not
//! exceed the dimensionality the log was built for.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One captured slow query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SlowQueryEntry {
    /// Monotonic sequence number (total slow queries seen, 1-based);
    /// gaps in a drained ring mean older entries were overwritten.
    pub seq: u64,
    /// Query latency in nanoseconds.
    pub latency_ns: u64,
    /// The query point (copied).
    pub point: Vec<f64>,
    /// Requested neighbor count.
    pub k: usize,
    /// Candidate set size for this query.
    pub candidates: usize,
    /// Pages touched by this query.
    pub pages: usize,
    /// Whether the query took the linear-scan fallback route.
    pub fallback: bool,
    /// Trace id of the sampled trace this query ran under, or 0 when
    /// the query was not traced. Links the slow-log entry to its span
    /// timeline in the flight recorder (`GET /debug/trace`).
    pub trace_id: u128,
}

#[derive(Debug)]
struct Ring {
    slots: Vec<SlowQueryEntry>,
    /// Next slot to overwrite.
    next: usize,
    /// Number of live entries (saturates at `slots.len()`).
    len: usize,
}

/// Threshold-gated ring buffer of [`SlowQueryEntry`] records.
#[derive(Debug)]
pub struct SlowQueryLog {
    /// Latency threshold in ns; `u64::MAX` disables recording.
    threshold_ns: AtomicU64,
    /// Total queries at or over threshold (including overwritten ones).
    seen: AtomicU64,
    ring: Mutex<Ring>,
}

impl SlowQueryLog {
    /// A log holding up to `capacity` entries, each with a point buffer
    /// preallocated for `dim` coordinates. Starts disabled.
    pub fn new(capacity: usize, dim: usize) -> Self {
        let slots = (0..capacity.max(1))
            .map(|_| SlowQueryEntry {
                point: Vec::with_capacity(dim),
                ..SlowQueryEntry::default()
            })
            .collect();
        Self {
            threshold_ns: AtomicU64::new(u64::MAX),
            seen: AtomicU64::new(0),
            ring: Mutex::new(Ring { slots, next: 0, len: 0 }),
        }
    }

    /// Sets the recording threshold; queries with latency ≥ this many
    /// nanoseconds are captured. `u64::MAX` disables recording.
    pub fn set_threshold_ns(&self, ns: u64) {
        self.threshold_ns.store(ns, Ordering::Relaxed);
    }

    /// Current threshold in nanoseconds (`u64::MAX` = disabled).
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns.load(Ordering::Relaxed)
    }

    /// Total number of queries that met the threshold since creation
    /// (including ones already overwritten in the ring).
    pub fn total_seen(&self) -> u64 {
        self.seen.load(Ordering::Relaxed)
    }

    /// Records a query if it meets the threshold. The fast path (under
    /// threshold) is one atomic load; the slow path copies into a
    /// preallocated slot under the ring mutex.
    // Flat scalar args keep the disabled fast path a single branch;
    // a params struct would force construction before the threshold
    // check on every query.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn record(
        &self,
        latency_ns: u64,
        point: &[f64],
        k: usize,
        candidates: usize,
        pages: usize,
        fallback: bool,
        trace_id: u128,
    ) {
        if latency_ns < self.threshold_ns.load(Ordering::Relaxed) {
            return;
        }
        let seq = self.seen.fetch_add(1, Ordering::Relaxed) + 1;
        let mut ring = match self.ring.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        let i = ring.next;
        ring.next = (i + 1) % ring.slots.len();
        ring.len = (ring.len + 1).min(ring.slots.len());
        let slot = &mut ring.slots[i];
        slot.seq = seq;
        slot.latency_ns = latency_ns;
        slot.point.clear();
        slot.point.extend_from_slice(point);
        slot.k = k;
        slot.candidates = candidates;
        slot.pages = pages;
        slot.fallback = fallback;
        slot.trace_id = trace_id;
    }

    /// Copies the live entries out, oldest first, and clears the ring.
    /// (The `seen` total and the threshold are left untouched.)
    pub fn drain(&self) -> Vec<SlowQueryEntry> {
        let mut ring = match self.ring.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        let cap = ring.slots.len();
        let len = ring.len;
        let start = (ring.next + cap - len) % cap;
        let out = (0..len)
            .map(|i| ring.slots[(start + i) % cap].clone())
            .collect();
        ring.len = 0;
        ring.next = 0;
        out
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        match self.ring.lock() {
            Ok(g) => g.len,
            Err(p) => p.into_inner().len,
        }
    }

    /// True when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default() {
        let log = SlowQueryLog::new(4, 2);
        log.record(u64::MAX - 1, &[0.0, 0.0], 1, 10, 2, false, 0);
        assert!(log.is_empty());
        assert_eq!(log.total_seen(), 0);
    }

    #[test]
    fn records_over_threshold_and_wraps() {
        let log = SlowQueryLog::new(2, 1);
        log.set_threshold_ns(100);
        log.record(99, &[1.0], 1, 1, 1, false, 0); // under: dropped
        log.record(100, &[2.0], 1, 2, 1, false, 0);
        log.record(150, &[3.0], 2, 3, 2, true, 0xbeef);
        log.record(200, &[4.0], 1, 4, 3, false, 0); // overwrites seq 1
        assert_eq!(log.total_seen(), 3);
        let entries = log.drain();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].seq, 2);
        assert_eq!(entries[0].point, vec![3.0]);
        assert!(entries[0].fallback);
        assert_eq!(entries[0].trace_id, 0xbeef);
        assert_eq!(entries[1].seq, 3);
        assert_eq!(entries[1].latency_ns, 200);
        // Drained: ring is empty again but the total persists.
        assert!(log.is_empty());
        assert_eq!(log.total_seen(), 3);
    }
}
