//! Atomic metric primitives: counters, gauges, and log2-bucketed
//! histograms. All recording methods take `&self`, use only relaxed
//! atomics, and never allocate.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Number of histogram buckets: bucket 0 holds the value 0, bucket `k`
/// (1 ≤ k ≤ 64) holds values in `[2^(k-1), 2^k - 1]`. Together they
/// cover every `u64`.
pub const BUCKETS: usize = 65;

/// The bucket a value falls into: `0` for `0`, otherwise
/// `64 - v.leading_zeros()` (the position of the highest set bit, 1-based).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i`: `0` for bucket 0, `2^i - 1`
/// otherwise (saturating at `u64::MAX` for the last bucket).
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A monotonic counter. Cheap to record (`fetch_add` relaxed), cheap to
/// read; never decreases and never resets — epoch handling is the
/// reader's job (keep a baseline and subtract).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (live points, resident pages, …).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn new() -> Self {
        Self(AtomicI64::new(0))
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log2-bucketed histogram over `u64` samples (latencies in
/// nanoseconds, candidate counts, page counts, …).
///
/// Recording touches exactly three relaxed atomics (bucket count,
/// running sum, max) and never locks or allocates, so it is safe on
/// the steady-state query path. Reads go through [`Histogram::snapshot`];
/// a snapshot taken concurrently with writers is not a single atomic
/// cut, but every individual counter is consistent and the nearest-rank
/// percentile is still within one bucket of exact for the samples it
/// observed.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Allocation-free and lock-free.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a wall-clock duration in nanoseconds (the unit every
    /// `*_ns` histogram in the stack uses), saturating past ~584 years.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Copies the current counts into an owned, immutable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`]. Supports merging (for
/// per-thread histograms) and nearest-rank percentile estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts; `counts[i]` counts samples in bucket `i`.
    pub counts: [u64; BUCKETS],
    /// Sum of all recorded samples (wrapping on overflow, like recording).
    pub sum: u64,
    /// Largest recorded sample (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self { counts: [0; BUCKETS], sum: 0, max: 0 }
    }
}

impl HistogramSnapshot {
    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Nearest-rank percentile estimate for `q` in `[0, 1]`: the
    /// inclusive upper bound of the bucket containing the sample of
    /// rank `ceil(q · n)`. Because the true sample of that rank lies in
    /// the same bucket, the estimate is within one log2 bucket of the
    /// exact percentile. Returns 0 for an empty histogram; `q ≥ 1`
    /// returns the recorded max.
    pub fn percentile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        self.max
    }

    /// Adds another snapshot's counts into this one (per-thread merge).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
        for k in 1..64 {
            let lo = 1u64 << (k - 1);
            let hi = (1u64 << k) - 1;
            assert_eq!(bucket_index(lo), k, "low edge of bucket {k}");
            assert_eq!(bucket_index(hi), k, "high edge of bucket {k}");
            assert_eq!(bucket_upper_bound(k), hi);
        }
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn record_duration_lands_in_the_nanosecond_bucket() {
        let h = Histogram::new();
        h.record_duration(std::time::Duration::from_nanos(1000));
        h.record_duration(std::time::Duration::from_micros(1));
        let s = h.snapshot();
        assert_eq!(s.count(), 2);
        assert_eq!(s.sum, 2000);
        assert_eq!(s.max, 1000);
    }

    #[test]
    fn counter_and_gauge() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_records_and_percentiles() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 6);
        assert_eq!(s.sum, 1105);
        assert_eq!(s.max, 1000);
        // rank(0.5 · 6) = 3 → third-smallest sample is 1 → bucket 1, ub 1.
        assert_eq!(s.percentile(0.5), 1);
        // p100 is exact.
        assert_eq!(s.percentile(1.0), 1000);
        // Empty histogram.
        assert_eq!(HistogramSnapshot::default().percentile(0.99), 0);
    }

    #[test]
    fn snapshot_merge_matches_combined_recording() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in [5u64, 9, 13] {
            a.record(v);
            all.record(v);
        }
        for v in [2u64, 1 << 20] {
            b.record(v);
            all.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }
}
