//! Zero-dependency observability primitives for the nncell workspace.
//!
//! The crate provides four building blocks, all safe to share across
//! threads and all allocation-free on their recording paths:
//!
//! * [`Counter`] — a monotonic `u64` counter (relaxed atomics).
//! * [`Gauge`] — a signed instantaneous value (relaxed atomics).
//! * [`Histogram`] — a log2-bucketed distribution (65 fixed buckets
//!   covering the whole `u64` range) with an atomic per-bucket count,
//!   running sum, and max; percentiles are computed from a
//!   [`HistogramSnapshot`] by nearest-rank walk and are exact to within
//!   one bucket.
//! * [`SlowQueryLog`] — a fixed-capacity ring buffer of slow-query
//!   records with a lock-free threshold fast path and preallocated
//!   entry slots, so recording a slow query never heap-allocates.
//! * [`trace`] + [`FlightRecorder`] — request tracing: head-sampled
//!   spans with parent/child nesting, buffered per thread and drained
//!   into a fixed-capacity flight-recorder ring, exportable as Chrome
//!   trace-event JSON ([`chrome_trace_json`]). Disabled sampling costs
//!   one relaxed atomic load per root and one thread-local read per
//!   child span.
//!
//! Handles are obtained from a [`Registry`], which owns the name →
//! metric map behind a single mutex that is touched only at
//! registration and snapshot time — never on the hot path. A
//! [`Snapshot`] is a point-in-time copy that renders to
//! Prometheus-style text ([`Snapshot::to_prometheus`]) and to JSON
//! ([`Snapshot::to_json`]) without any serialization dependency.
//!
//! Everything is panic-free by design: registering a name under a
//! conflicting metric kind returns a fresh detached handle instead of
//! panicking, so instrumentation can never take down the data path.

#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]

mod flight;
mod metrics;
mod registry;
mod slowlog;
pub mod trace;

pub use flight::{chrome_trace_json, FlightRecorder};
pub use metrics::{bucket_index, bucket_upper_bound, Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{escape_label_value, format_labels, MetricSnapshot, Registry, Snapshot};
pub use slowlog::{SlowQueryEntry, SlowQueryLog};
pub use trace::{SpanContext, SpanGuard, SpanRecord, TraceMetrics};
