//! Always-on flight recorder: a fixed-capacity ring of finished spans,
//! plus the Chrome trace-event JSON export that makes it loadable in
//! `chrome://tracing` / Perfetto.
//!
//! Same discipline as the slow-query ring in `slowlog.rs`: every slot
//! is preallocated at construction, recording overwrites the oldest
//! entry, and the mutex is poison-tolerant — a panicking exporter
//! thread must never wedge the request path. Unlike the slow-query
//! ring the flight recorder is written in batches (one whole trace's
//! spans per lock take, see `trace::flush_thread`), so the lock is
//! taken once per sampled request, not once per span.

use std::fmt::Write as _;
use std::sync::Mutex;

use crate::trace::SpanRecord;

/// Fixed-capacity span ring. Construction preallocates every slot;
/// recording and export never allocate ring storage.
pub struct FlightRecorder {
    inner: Mutex<Ring>,
}

struct Ring {
    slots: Vec<SpanRecord>,
    /// Index of the oldest slot once the ring has wrapped.
    head: usize,
    /// Live slot count (`<= slots.capacity()` forever).
    len: usize,
    capacity: usize,
}

impl FlightRecorder {
    /// Creates a recorder holding at most `capacity` spans (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            inner: Mutex::new(Ring {
                slots: Vec::with_capacity(capacity),
                head: 0,
                len: 0,
                capacity,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Ring> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Copies a batch of spans into the ring, overwriting the oldest
    /// entries when full. Returns how many previously-recorded spans
    /// were evicted to make room.
    pub fn record_batch(&self, spans: &[SpanRecord]) -> usize {
        if spans.is_empty() {
            return 0;
        }
        let mut ring = self.lock();
        // A batch larger than the ring keeps only its newest suffix.
        let skip = spans.len().saturating_sub(ring.capacity);
        let mut evicted = skip;
        for &rec in &spans[skip..] {
            if ring.len < ring.capacity {
                ring.slots.push(rec);
                ring.len += 1;
            } else {
                let head = ring.head;
                ring.slots[head] = rec;
                ring.head = (head + 1) % ring.capacity;
                evicted += 1;
            }
        }
        evicted
    }

    /// Copies out every recorded span, oldest first, without clearing.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let ring = self.lock();
        let mut out = Vec::with_capacity(ring.len);
        for i in 0..ring.len {
            out.push(ring.slots[(ring.head + i) % ring.capacity]);
        }
        out
    }

    /// Spans belonging to the most recent `n` distinct traces (by
    /// flush order), oldest span first. `n = 0` returns nothing.
    pub fn last_traces(&self, n: usize) -> Vec<SpanRecord> {
        let all = self.snapshot();
        if n == 0 {
            return Vec::new();
        }
        // Walk newest → oldest collecting distinct trace ids.
        let mut keep: Vec<u128> = Vec::new();
        for rec in all.iter().rev() {
            if !keep.contains(&rec.trace) {
                if keep.len() == n {
                    break;
                }
                keep.push(rec.trace);
            }
        }
        all.into_iter().filter(|r| keep.contains(&r.trace)).collect()
    }

    /// Number of spans currently held.
    pub fn len(&self) -> usize {
        self.lock().len
    }

    /// Whether the ring holds no spans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum span count (fixed at construction).
    pub fn capacity(&self) -> usize {
        self.lock().capacity
    }

    /// Discards every recorded span (test isolation; capacity and
    /// preallocated storage are retained).
    pub fn clear(&self) {
        let mut ring = self.lock();
        ring.head = 0;
        ring.len = 0;
        ring.slots.clear();
    }
}

/// Microseconds with fixed 3-decimal precision from a nanosecond
/// count — Chrome trace-event timestamps are float µs, and emitting a
/// stable decimal keeps the golden file deterministic.
fn fmt_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Renders spans as Chrome trace-event JSON (the `traceEvents` array
/// format), loadable by `chrome://tracing` and Perfetto. Each span
/// becomes one complete (`"ph":"X"`) event; trace/span/parent ids and
/// inline args are carried in `args` so timelines stay greppable.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n{{\"name\":\"{}\",\"cat\":\"nncell\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{},\"args\":{{\"trace\":\"{:032x}\",\"span\":\"{:016x}\",\
             \"parent\":\"{:016x}\"",
            crate::registry::json_escape(s.name),
            fmt_us(s.start_ns),
            fmt_us(s.end_ns.saturating_sub(s.start_ns)),
            s.tid,
            s.trace,
            s.span,
            s.parent,
        );
        for (key, value) in s.live_args() {
            let _ = write!(out, ",\"{}\":{}", crate::registry::json_escape(key), value);
        }
        out.push_str("}}");
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(trace: u128, span: u64, start: u64) -> SpanRecord {
        SpanRecord::new(trace, span, 0, "t", start, start + 10, 1)
    }

    #[test]
    fn ring_overwrites_oldest_and_reports_evictions() {
        let f = FlightRecorder::new(4);
        assert_eq!(f.record_batch(&[rec(1, 1, 0), rec(1, 2, 10)]), 0);
        assert_eq!(f.record_batch(&[rec(2, 3, 20), rec(2, 4, 30)]), 0);
        assert_eq!(f.len(), 4);
        // Fifth span evicts the oldest.
        assert_eq!(f.record_batch(&[rec(3, 5, 40)]), 1);
        let spans = f.snapshot();
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].span, 2, "oldest surviving span");
        assert_eq!(spans[3].span, 5, "newest span last");
    }

    #[test]
    fn oversized_batch_keeps_newest_suffix() {
        let f = FlightRecorder::new(2);
        let batch: Vec<SpanRecord> = (0..5).map(|i| rec(9, i + 1, i as u64 * 10)).collect();
        assert_eq!(f.record_batch(&batch), 3);
        let spans = f.snapshot();
        assert_eq!(spans.len(), 2);
        assert_eq!((spans[0].span, spans[1].span), (4, 5));
    }

    #[test]
    fn last_traces_selects_newest_distinct_traces() {
        let f = FlightRecorder::new(16);
        f.record_batch(&[rec(1, 1, 0), rec(1, 2, 5)]);
        f.record_batch(&[rec(2, 3, 10)]);
        f.record_batch(&[rec(3, 4, 20), rec(3, 5, 25)]);
        let last2 = f.last_traces(2);
        assert!(last2.iter().all(|s| s.trace == 2 || s.trace == 3));
        assert_eq!(last2.len(), 3);
        // Oldest-first ordering is preserved.
        assert_eq!(last2[0].span, 3);
        assert!(f.last_traces(0).is_empty());
        assert_eq!(f.last_traces(10).len(), 5);
    }

    #[test]
    fn chrome_json_shape() {
        let spans = [
            rec(0xab, 1, 1_500).with_arg("k", 5),
            SpanRecord::new(0xab, 2, 1, "child", 2_000, 2_250, 2),
        ];
        let json = chrome_trace_json(&spans);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["), "{json}");
        assert!(json.trim_end().ends_with("]}"), "{json}");
        assert!(json.contains("\"ts\":1.500"), "{json}");
        assert!(json.contains("\"dur\":0.010"), "{json}");
        assert!(json.contains("\"k\":5"), "{json}");
        assert!(
            json.contains("\"parent\":\"0000000000000001\""),
            "{json}"
        );
        // Balanced braces/brackets — cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count(), "{json}");
        assert_eq!(json.matches('[').count(), json.matches(']').count(), "{json}");
    }

    #[test]
    fn clear_empties_the_ring() {
        let f = FlightRecorder::new(4);
        f.record_batch(&[rec(1, 1, 0)]);
        assert!(!f.is_empty());
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.capacity(), 4);
        // Ring still usable after clear.
        f.record_batch(&[rec(2, 2, 0)]);
        assert_eq!(f.snapshot().len(), 1);
    }
}
