//! Request tracing: spans with parent/child nesting, head-based
//! sampling, and a lock-free thread-local span buffer.
//!
//! Design constraints, in order:
//!
//! 1. **Disabled must be free.** With sampling off (`set_sampling(0)`)
//!    and no upstream `traceparent` forcing a trace, starting a root
//!    span costs one relaxed atomic load and child spans cost one
//!    thread-local flag read. No allocation, no lock, no timestamp.
//!    The counting-allocator test and the ci.sh QPS gate hold this to
//!    the contract.
//! 2. **Recording never blocks the request path on a global lock.**
//!    Finished spans are pushed onto a thread-local `Vec` and the whole
//!    batch is drained into the [`crate::FlightRecorder`] ring in one
//!    mutex take when the root span (or an adopted context) ends.
//! 3. **Span records are allocation-free.** Names and arg keys are
//!    `&'static str`; args are a fixed-size inline array; timestamps
//!    are nanoseconds since a process-wide epoch `Instant`.
//!
//! The tracer is a process-wide singleton: the WAL, LP solver, and
//! folder worker sit too deep in the stack to plumb a handle through
//! every signature, and the flight recorder is an "always-on black box"
//! by design — there is exactly one per process, like the panic hook.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::flight::FlightRecorder;
use crate::metrics::Counter;
use crate::registry::Registry;
use std::sync::Arc;

/// Maximum number of `(key, value)` pairs a span can carry inline.
pub const SPAN_MAX_ARGS: usize = 2;

/// One finished span. Plain data, no heap pointers: safe to copy into
/// the preallocated flight-recorder ring without allocating.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace this span belongs to (W3C: 16 bytes, never zero).
    pub trace: u128,
    /// Span id (W3C: 8 bytes, never zero).
    pub span: u64,
    /// Parent span id; zero for the root span of a trace.
    pub parent: u64,
    /// Operation name, e.g. `"server.request"` or `"wal.append"`.
    pub name: &'static str,
    /// Start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the process trace epoch (`>= start_ns`).
    pub end_ns: u64,
    /// Small integer id of the recording thread (stable per thread).
    pub tid: u64,
    /// Inline key/value annotations; only the first `nargs` are live.
    pub args: [(&'static str, u64); SPAN_MAX_ARGS],
    /// Number of live entries in `args`.
    pub nargs: u8,
}

impl SpanRecord {
    /// Builds a record by hand — used by tests and the golden-file
    /// fixture; production records come out of [`SpanGuard`].
    pub fn new(
        trace: u128,
        span: u64,
        parent: u64,
        name: &'static str,
        start_ns: u64,
        end_ns: u64,
        tid: u64,
    ) -> Self {
        SpanRecord {
            trace,
            span,
            parent,
            name,
            start_ns,
            end_ns,
            tid,
            args: [("", 0); SPAN_MAX_ARGS],
            nargs: 0,
        }
    }

    /// Appends an inline annotation, silently dropping it when the
    /// fixed arg slots are full (bounded memory beats completeness in
    /// a flight recorder).
    pub fn with_arg(mut self, key: &'static str, value: u64) -> Self {
        if (self.nargs as usize) < SPAN_MAX_ARGS {
            self.args[self.nargs as usize] = (key, value);
            self.nargs += 1;
        }
        self
    }

    /// Live annotations, in insertion order.
    pub fn live_args(&self) -> &[(&'static str, u64)] {
        &self.args[..self.nargs as usize]
    }
}

/// Propagatable identity of an in-flight trace: what crosses thread
/// and process boundaries (W3C `traceparent`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanContext {
    pub trace: u128,
    pub span: u64,
    pub sampled: bool,
}

impl SpanContext {
    /// Renders the W3C `traceparent` header value:
    /// `00-<32 hex trace>-<16 hex span>-<2 hex flags>`.
    pub fn to_traceparent(&self) -> String {
        let flags = if self.sampled { 1u8 } else { 0u8 };
        format!("00-{:032x}-{:016x}-{:02x}", self.trace, self.span, flags)
    }

    /// Parses a W3C `traceparent` header value. Returns `None` for
    /// malformed input, the forbidden version `ff`, or all-zero ids
    /// (both invalid per spec). Future versions (`01`..) are accepted
    /// as long as the first four fields parse, per the spec's
    /// forward-compatibility rule.
    pub fn parse_traceparent(value: &str) -> Option<SpanContext> {
        let mut parts = value.trim().splitn(4, '-');
        let version = parts.next()?;
        let trace_hex = parts.next()?;
        let span_hex = parts.next()?;
        let flags_hex = parts.next()?;
        if version.len() != 2 || version.eq_ignore_ascii_case("ff") {
            return None;
        }
        u8::from_str_radix(version, 16).ok()?;
        if trace_hex.len() != 32 || span_hex.len() != 16 {
            return None;
        }
        // Version 00 allows nothing after flags; later versions may
        // append `-extra`, so only take the leading two hex digits.
        let flags_hex = flags_hex.get(..2)?;
        let trace = u128::from_str_radix(trace_hex, 16).ok()?;
        let span = u64::from_str_radix(span_hex, 16).ok()?;
        let flags = u8::from_str_radix(flags_hex, 16).ok()?;
        if trace == 0 || span == 0 {
            return None;
        }
        Some(SpanContext {
            trace,
            span,
            sampled: flags & 1 == 1,
        })
    }
}

/// Counters for the `nncell_trace_*` family; attach with
/// [`attach_metrics`] so span flushes feed a live [`Registry`].
#[derive(Clone)]
pub struct TraceMetrics {
    spans: Arc<Counter>,
    traces: Arc<Counter>,
    dropped: Arc<Counter>,
}

impl TraceMetrics {
    /// Registers the trace counter family (with HELP text) on `r`.
    pub fn register(r: &Registry) -> Self {
        Self::describe(r);
        TraceMetrics {
            spans: r.counter("nncell_trace_spans_total"),
            traces: r.counter("nncell_trace_traces_total"),
            dropped: r.counter("nncell_trace_dropped_spans_total"),
        }
    }

    /// HELP text only — lets exporters describe the family without
    /// creating series (the golden-metrics fixture uses this).
    pub fn describe(r: &Registry) {
        r.describe(
            "nncell_trace_spans_total",
            "Finished spans flushed into the flight recorder.",
        );
        r.describe(
            "nncell_trace_traces_total",
            "Sampled traces completed (root span finished).",
        );
        r.describe(
            "nncell_trace_dropped_spans_total",
            "Spans evicted from the flight-recorder ring before export.",
        );
    }
}

/// Process-wide tracer state. Everything the hot path touches is an
/// atomic; the flight ring and metrics handle sit behind their own
/// locks and are only taken at flush time.
struct Tracer {
    flight: FlightRecorder,
    metrics: Mutex<Option<TraceMetrics>>,
    /// Head-sampling rate: record every Nth root. 0 = disabled.
    sample_every: AtomicU64,
    /// Root-span counter driving the `% sample_every` decision.
    sample_counter: AtomicU64,
    /// Span-id allocator (never hands out 0).
    next_span: AtomicU64,
    /// Trace-id allocator, mixed with a per-process seed.
    next_trace: AtomicU64,
    trace_seed: u128,
    epoch: Instant,
}

static TRACER: OnceLock<Tracer> = OnceLock::new();

/// Default flight-recorder capacity in spans. At 96 bytes per
/// [`SpanRecord`] slot this bounds the ring under 1 MiB, preallocated
/// once — same discipline as the slow-query ring.
pub const FLIGHT_CAPACITY: usize = 8192;

fn tracer() -> &'static Tracer {
    TRACER.get_or_init(|| {
        // Seed trace ids with wall-clock nanos so two processes started
        // back to back don't collide; uniqueness, not secrecy, is the goal.
        let seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0x6e6e63656c6c); // "nncell" if the clock is broken
        Tracer {
            flight: FlightRecorder::new(FLIGHT_CAPACITY),
            metrics: Mutex::new(None),
            sample_every: AtomicU64::new(0),
            sample_counter: AtomicU64::new(0),
            next_span: AtomicU64::new(1),
            next_trace: AtomicU64::new(1),
            trace_seed: seed,
            epoch: Instant::now(),
        }
    })
}

/// Forces tracer (and epoch) initialisation. Call early — e.g. when a
/// server binds — so admission timestamps taken before the first
/// sampled request still map into the trace clock.
pub fn init() {
    let _ = tracer();
}

/// Nanoseconds since the process trace epoch.
pub fn now_ns() -> u64 {
    tracer().epoch.elapsed().as_nanos() as u64
}

/// Maps an `Instant` captured elsewhere (e.g. at admission, before any
/// tracing decision) onto the trace clock. Saturates to 0 for instants
/// that predate tracer initialisation — call [`init`] at startup to
/// avoid that.
pub fn instant_ns(t: Instant) -> u64 {
    t.saturating_duration_since(tracer().epoch).as_nanos() as u64
}

/// Sets the head-sampling rate: record every `every`-th root span.
/// `0` disables sampling (upstream `traceparent` sampled flags still
/// force individual traces). `1` records everything.
pub fn set_sampling(every: u64) {
    tracer().sample_every.store(every, Ordering::Relaxed);
}

/// Current head-sampling rate (0 = disabled).
pub fn sampling() -> u64 {
    tracer().sample_every.load(Ordering::Relaxed)
}

/// The process flight recorder: every sampled span ends up here.
pub fn flight() -> &'static FlightRecorder {
    &tracer().flight
}

/// Attaches trace counters to a registry; replaces any previous handle
/// (latest registry wins, matching the slow-log metrics discipline).
pub fn attach_metrics(r: &Registry) {
    let handle = TraceMetrics::register(r);
    let mut slot = match tracer().metrics.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    *slot = Some(handle);
}

/// Detaches the metrics handle (used by tests to restore isolation).
pub fn detach_metrics() {
    let mut slot = match tracer().metrics.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    *slot = None;
}

// ---------------------------------------------------------------------
// Thread-local recording state
// ---------------------------------------------------------------------

struct ThreadState {
    trace: Cell<u128>,
    parent: Cell<u64>,
    sampled: Cell<bool>,
    depth: Cell<u32>,
    tid: Cell<u64>,
    buf: RefCell<Vec<SpanRecord>>,
}

thread_local! {
    static THREAD: ThreadState = const {
        ThreadState {
            trace: Cell::new(0),
            parent: Cell::new(0),
            sampled: Cell::new(false),
            depth: Cell::new(0),
            tid: Cell::new(0),
            buf: RefCell::new(Vec::new()),
        }
    };
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

fn thread_id(state: &ThreadState) -> u64 {
    let tid = state.tid.get();
    if tid != 0 {
        return tid;
    }
    let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    state.tid.set(tid);
    tid
}

fn next_span_id() -> u64 {
    // fetch_add from 1 never yields 0 before u64 wrap (~584 years of
    // continuous allocation at 1 GHz); treat wrap as unreachable.
    tracer().next_span.fetch_add(1, Ordering::Relaxed)
}

fn next_trace_id() -> u128 {
    let t = tracer();
    let n = t.next_trace.fetch_add(1, Ordering::Relaxed) as u128;
    // splitmix64-style finalizer over (seed, counter) — cheap, well
    // spread, and never all-zero thanks to the `| 1`.
    let mut z = t.trace_seed ^ (n << 64 | n);
    z ^= z >> 61;
    z = z.wrapping_mul(0x9e37_79b9_7f4a_7c15_85eb_ca6b_27d4_eb2f);
    z ^= z >> 59;
    z | 1
}

/// Identity of the innermost active span on this thread, or `None`
/// when the thread is not inside a sampled trace. This is what goes
/// into an outgoing `traceparent` header or a cross-thread [`adopt`].
pub fn current() -> Option<SpanContext> {
    THREAD.with(|s| {
        if s.sampled.get() {
            Some(SpanContext {
                trace: s.trace.get(),
                span: s.parent.get(),
                sampled: true,
            })
        } else {
            None
        }
    })
}

/// Trace id of the active trace on this thread, or 0. Cheap enough to
/// call unconditionally when stamping slow-query exemplars.
pub fn current_trace_id() -> u128 {
    THREAD.with(|s| if s.sampled.get() { s.trace.get() } else { 0 })
}

fn flush_thread(state: &ThreadState, root_finished: bool) {
    let mut buf = state.buf.borrow_mut();
    if buf.is_empty() {
        return;
    }
    let t = tracer();
    let evicted = t.flight.record_batch(&buf);
    let metrics = match t.metrics.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    if let Some(m) = metrics.as_ref() {
        m.spans.add(buf.len() as u64);
        if root_finished {
            m.traces.inc();
        }
        if evicted > 0 {
            m.dropped.add(evicted as u64);
        }
    }
    buf.clear();
}

// ---------------------------------------------------------------------
// Span guards
// ---------------------------------------------------------------------

/// RAII handle for an in-flight span. Created by [`root`],
/// [`root_from`], [`force_root`], or [`child`]; the span's interval
/// closes when the guard drops. Inert guards (unsampled) are
/// zero-cost at drop.
pub struct SpanGuard {
    name: &'static str,
    span: u64,
    saved_parent: u64,
    start_ns: u64,
    args: [(&'static str, u64); SPAN_MAX_ARGS],
    nargs: u8,
    active: bool,
    is_root: bool,
}

impl SpanGuard {
    fn inert() -> Self {
        SpanGuard {
            name: "",
            span: 0,
            saved_parent: 0,
            start_ns: 0,
            args: [("", 0); SPAN_MAX_ARGS],
            nargs: 0,
            active: false,
            is_root: false,
        }
    }

    /// Whether this guard is recording (i.e. the trace is sampled).
    pub fn is_recording(&self) -> bool {
        self.active
    }

    /// Attaches an inline annotation; no-op on inert guards or when
    /// the fixed arg slots are full.
    pub fn arg(&mut self, key: &'static str, value: u64) {
        if self.active && (self.nargs as usize) < SPAN_MAX_ARGS {
            self.args[self.nargs as usize] = (key, value);
            self.nargs += 1;
        }
    }

    /// Context for propagating this span across a boundary (header or
    /// worker thread); `None` when inert.
    pub fn context(&self) -> Option<SpanContext> {
        if self.active {
            THREAD.with(|s| {
                Some(SpanContext {
                    trace: s.trace.get(),
                    span: self.span,
                    sampled: true,
                })
            })
        } else {
            None
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let end_ns = now_ns();
        THREAD.with(|s| {
            let rec = SpanRecord {
                trace: s.trace.get(),
                span: self.span,
                parent: self.saved_parent,
                name: self.name,
                start_ns: self.start_ns,
                end_ns,
                tid: thread_id(s),
                args: self.args,
                nargs: self.nargs,
            };
            // borrow_mut cannot collide: guards only touch the buffer
            // from Drop/span_at, never reentrantly.
            s.buf.borrow_mut().push(rec);
            s.parent.set(self.saved_parent);
            let depth = s.depth.get().saturating_sub(1);
            s.depth.set(depth);
            if depth == 0 {
                flush_thread(s, self.is_root);
                s.sampled.set(false);
                s.trace.set(0);
                s.parent.set(0);
            }
        });
    }
}

fn activate_root(name: &'static str, trace: u128, parent: u64, start_ns: u64) -> SpanGuard {
    THREAD.with(|s| {
        let span = next_span_id();
        s.trace.set(trace);
        s.sampled.set(true);
        let saved_parent = parent;
        s.parent.set(span);
        s.depth.set(s.depth.get() + 1);
        SpanGuard {
            name,
            span,
            saved_parent,
            start_ns,
            args: [("", 0); SPAN_MAX_ARGS],
            nargs: 0,
            active: true,
            is_root: true,
        }
    })
}

/// Starts a root span, subject to head sampling. With sampling
/// disabled this is a single relaxed atomic load. Nested calls on an
/// already-sampled thread degrade gracefully to child spans.
pub fn root(name: &'static str) -> SpanGuard {
    root_from_at(name, None, None)
}

/// Starts a root span honouring an upstream [`SpanContext`] (e.g. a
/// parsed `traceparent`): the upstream trace id is adopted and its
/// sampled flag forces recording even when local sampling is disabled
/// — that is what makes `curl -H traceparent:…-01` a usable on-demand
/// tracing switch. `start_ns` backdates the span (e.g. to admission
/// time) so retroactive children like queue-wait still nest inside it.
pub fn root_from_at(
    name: &'static str,
    upstream: Option<SpanContext>,
    start_ns: Option<u64>,
) -> SpanGuard {
    // A "root" started inside an active trace (e.g. the engine called
    // both directly and under a server request) is just a child.
    if THREAD.with(|s| s.sampled.get()) {
        return child(name);
    }
    let forced = upstream.map(|u| u.sampled).unwrap_or(false);
    if !forced {
        let every = tracer().sample_every.load(Ordering::Relaxed);
        if every == 0 {
            return SpanGuard::inert();
        }
        let n = tracer().sample_counter.fetch_add(1, Ordering::Relaxed);
        if !n.is_multiple_of(every) {
            return SpanGuard::inert();
        }
    }
    let (trace, parent) = match upstream {
        Some(u) => (u.trace, u.span),
        None => (next_trace_id(), 0),
    };
    let start = start_ns.unwrap_or_else(now_ns);
    activate_root(name, trace, parent, start)
}

/// [`root_from_at`] with `start_ns = now`.
pub fn root_from(name: &'static str, upstream: Option<SpanContext>) -> SpanGuard {
    root_from_at(name, upstream, None)
}

/// Starts a root span unconditionally, bypassing the sampling
/// decision. For tests and the CLI `trace` subcommand.
pub fn force_root(name: &'static str) -> SpanGuard {
    if THREAD.with(|s| s.sampled.get()) {
        return child(name);
    }
    activate_root(name, next_trace_id(), 0, now_ns())
}

/// Starts a child of the innermost active span on this thread. Inert
/// (one thread-local flag read) when the thread is not tracing.
pub fn child(name: &'static str) -> SpanGuard {
    THREAD.with(|s| {
        if !s.sampled.get() {
            return SpanGuard::inert();
        }
        let span = next_span_id();
        let saved_parent = s.parent.get();
        s.parent.set(span);
        s.depth.set(s.depth.get() + 1);
        SpanGuard {
            name,
            span,
            saved_parent,
            start_ns: now_ns(),
            args: [("", 0); SPAN_MAX_ARGS],
            nargs: 0,
            active: true,
            is_root: false,
        }
    })
}

/// Records a retroactive leaf span over `[start_ns, end_ns]` as a
/// child of the innermost active span — used for intervals measured
/// before the trace existed, like admission-queue wait. No-op when the
/// thread is not tracing.
pub fn span_at(name: &'static str, start_ns: u64, end_ns: u64) {
    THREAD.with(|s| {
        if !s.sampled.get() {
            return;
        }
        let rec = SpanRecord {
            trace: s.trace.get(),
            span: next_span_id(),
            parent: s.parent.get(),
            name,
            start_ns,
            end_ns: end_ns.max(start_ns),
            tid: thread_id(s),
            args: [("", 0); SPAN_MAX_ARGS],
            nargs: 0,
        };
        s.buf.borrow_mut().push(rec);
    });
}

/// RAII guard restoring a thread's pre-[`adopt`] trace state.
pub struct AdoptGuard {
    active: bool,
}

impl Drop for AdoptGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        THREAD.with(|s| {
            // Workers flush their own buffer: the parent root may
            // finish on another thread and can't see this one's spans.
            flush_thread(s, false);
            s.sampled.set(false);
            s.trace.set(0);
            s.parent.set(0);
            s.depth.set(0);
        });
    }
}

/// Adopts a sampled context on the current thread so spans created
/// here become children of `ctx.span` — the cross-thread propagation
/// primitive for batch workers and the folder. Pass `current()` from
/// the spawning thread. `None` or an unsampled context is a no-op.
pub fn adopt(ctx: Option<SpanContext>) -> AdoptGuard {
    let Some(ctx) = ctx.filter(|c| c.sampled) else {
        return AdoptGuard { active: false };
    };
    THREAD.with(|s| {
        if s.sampled.get() {
            // Already tracing on this thread; don't clobber.
            return AdoptGuard { active: false };
        }
        s.trace.set(ctx.trace);
        s.parent.set(ctx.span);
        s.sampled.set(true);
        // Hold one virtual depth frame: child guards then bottom out at
        // depth 1, not 0, so their Drop never tears down the adopted
        // context between spans — only AdoptGuard::drop does.
        s.depth.set(1);
        AdoptGuard { active: true }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traceparent_round_trip() {
        let ctx = SpanContext {
            trace: 0x0123_4567_89ab_cdef_0123_4567_89ab_cdef,
            span: 0xfedc_ba98_7654_3210,
            sampled: true,
        };
        let header = ctx.to_traceparent();
        assert_eq!(
            header,
            "00-0123456789abcdef0123456789abcdef-fedcba9876543210-01"
        );
        assert_eq!(SpanContext::parse_traceparent(&header), Some(ctx));
    }

    #[test]
    fn traceparent_rejects_malformed() {
        for bad in [
            "",
            "00",
            "00-1234-5678-01",
            // all-zero trace id
            "00-00000000000000000000000000000000-fedcba9876543210-01",
            // all-zero span id
            "00-0123456789abcdef0123456789abcdef-0000000000000000-01",
            // forbidden version
            "ff-0123456789abcdef0123456789abcdef-fedcba9876543210-01",
            // non-hex
            "00-0123456789abcdef0123456789abcdeg-fedcba9876543210-01",
        ] {
            assert_eq!(SpanContext::parse_traceparent(bad), None, "{bad:?}");
        }
        // Unsampled flag parses with sampled = false.
        let ctx = SpanContext::parse_traceparent(
            "00-0123456789abcdef0123456789abcdef-fedcba9876543210-00",
        )
        .expect("valid header");
        assert!(!ctx.sampled);
    }

    #[test]
    fn disabled_sampling_yields_inert_guards() {
        set_sampling(0);
        let g = root("test.root");
        assert!(!g.is_recording());
        assert!(current().is_none());
        assert_eq!(current_trace_id(), 0);
        drop(g);
        let c = child("test.child");
        assert!(!c.is_recording());
    }

    #[test]
    fn forced_root_records_nested_spans() {
        set_sampling(0);
        let trace_id;
        {
            let mut root = force_root("test.request");
            root.arg("k", 5);
            trace_id = current_trace_id();
            assert_ne!(trace_id, 0);
            {
                let _child = child("test.inner");
                assert_eq!(current_trace_id(), trace_id);
            }
        }
        // After the root drops the thread is clean again.
        assert_eq!(current_trace_id(), 0);
        let spans: Vec<SpanRecord> = flight()
            .snapshot()
            .into_iter()
            .filter(|s| s.trace == trace_id)
            .collect();
        assert_eq!(spans.len(), 2);
        let root_rec = spans
            .iter()
            .find(|s| s.name == "test.request")
            .expect("root span present");
        let child_rec = spans
            .iter()
            .find(|s| s.name == "test.inner")
            .expect("child span present");
        assert_eq!(root_rec.parent, 0);
        assert_eq!(child_rec.parent, root_rec.span);
        assert!(child_rec.start_ns >= root_rec.start_ns);
        assert!(child_rec.end_ns <= root_rec.end_ns);
        assert_eq!(root_rec.live_args(), &[("k", 5)]);
    }

    #[test]
    fn upstream_sampled_traceparent_forces_recording() {
        set_sampling(0);
        let upstream = SpanContext {
            trace: 0xabcdef,
            span: 0x1234,
            sampled: true,
        };
        {
            let g = root_from("test.forced", Some(upstream));
            assert!(g.is_recording());
            assert_eq!(current_trace_id(), 0xabcdef);
        }
        let spans: Vec<SpanRecord> = flight()
            .snapshot()
            .into_iter()
            .filter(|s| s.trace == 0xabcdef && s.name == "test.forced")
            .collect();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].parent, 0x1234);
    }

    #[test]
    fn unsampled_upstream_does_not_force() {
        set_sampling(0);
        let upstream = SpanContext {
            trace: 0xabcd,
            span: 0x99,
            sampled: false,
        };
        let g = root_from("test.unsampled", Some(upstream));
        assert!(!g.is_recording());
    }

    #[test]
    fn adopt_propagates_across_threads() {
        set_sampling(0);
        let mut seen = 0u128;
        let trace_id;
        {
            let _root = force_root("test.fanout");
            trace_id = current_trace_id();
            let ctx = current();
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    let _adopt = adopt(ctx);
                    let _w = child("test.worker");
                    seen = current_trace_id();
                });
            });
        }
        assert_eq!(seen, trace_id, "worker thread saw the adopted trace id");
        let worker: Vec<SpanRecord> = flight()
            .snapshot()
            .into_iter()
            .filter(|s| s.trace == trace_id && s.name == "test.worker")
            .collect();
        assert_eq!(worker.len(), 1);
    }

    #[test]
    fn span_at_records_retroactive_child() {
        set_sampling(0);
        let trace_id;
        {
            let _root = force_root("test.root_at");
            trace_id = current_trace_id();
            span_at("test.retro", 10, 20);
        }
        let retro: Vec<SpanRecord> = flight()
            .snapshot()
            .into_iter()
            .filter(|s| s.trace == trace_id && s.name == "test.retro")
            .collect();
        assert_eq!(retro.len(), 1);
        assert_eq!((retro[0].start_ns, retro[0].end_ns), (10, 20));
    }
}
