//! Property tests for the tracing subsystem: arbitrary span trees must
//! come out of the flight recorder well-formed (every span nests inside
//! its parent's interval, parents form a tree rooted at the request
//! root), and W3C `traceparent` serialization must round-trip ids
//! unchanged — the invariant the cross-process propagation rests on.

use nncell_obs::trace;
use nncell_obs::{SpanContext, SpanRecord};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-case unique trace ids: the flight recorder is a process-global
/// ring shared by every test thread, so each case tags its spans with a
/// fresh id and filters the snapshot down to its own trace.
static CASE: AtomicU64 = AtomicU64::new(1);

fn fresh_trace_id(salt: u64) -> u128 {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    ((salt as u128) << 64) | u128::from(case)
}

/// Interprets a random op tape as a span tree under a forced root:
/// 0 closes the innermost open span, 4 emits a retroactive leaf
/// (`span_at`), anything else opens a child. Returns the number of
/// spans emitted (root excluded).
fn run_tree(ops: &[u8]) -> usize {
    const NAMES: [&str; 4] = ["op.a", "op.b", "op.c", "op.d"];
    let mut guards = Vec::new();
    let mut count = 0usize;
    for &op in ops {
        match op {
            0 => {
                // Innermost first — children must close before parents.
                drop(guards.pop());
            }
            4 => {
                let s = trace::now_ns();
                let e = trace::now_ns();
                trace::span_at("op.leaf", s, e);
                count += 1;
            }
            d => {
                if guards.len() < 6 {
                    guards.push(trace::child(NAMES[(d as usize - 1) % NAMES.len()]));
                    count += 1;
                }
            }
        }
    }
    while let Some(g) = guards.pop() {
        drop(g);
    }
    count
}

fn spans_of(trace_id: u128) -> Vec<SpanRecord> {
    trace::flight()
        .snapshot()
        .into_iter()
        .filter(|r| r.trace == trace_id)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every span emitted under a root nests inside its parent's
    /// interval, and parent pointers form a tree rooted at the root
    /// span — for arbitrary open/close/leaf interleavings.
    #[test]
    fn span_trees_are_well_formed(
        ops in prop::collection::vec(0u8..=4, 1..40),
        salt in 1u64..=u64::MAX,
    ) {
        trace::init();
        let trace_id = fresh_trace_id(salt);
        let upstream = SpanContext { trace: trace_id, span: 0x1234, sampled: true };

        // A sampled upstream forces recording regardless of the global
        // sampling rate, so concurrent tests can't interfere.
        let expected = {
            let root = trace::root_from("test.root", Some(upstream));
            prop_assert!(root.is_recording());
            run_tree(&ops)
        };

        let spans = spans_of(trace_id);
        prop_assert_eq!(spans.len(), expected + 1, "root + every emitted span");

        let roots: Vec<&SpanRecord> =
            spans.iter().filter(|r| r.parent == upstream.span).collect();
        prop_assert_eq!(roots.len(), 1, "exactly one root record");
        let root = roots[0];
        prop_assert_eq!(root.name, "test.root");

        let by_span: std::collections::HashMap<u64, &SpanRecord> =
            spans.iter().map(|r| (r.span, r)).collect();
        for r in &spans {
            prop_assert!(r.start_ns <= r.end_ns, "{}: interval inverted", r.name);
            if r.span == root.span {
                continue;
            }
            // Parent exists in the same trace (tree connectivity)...
            let parent = by_span.get(&r.parent);
            prop_assert!(parent.is_some(), "{}: dangling parent {}", r.name, r.parent);
            let parent = parent.expect("checked");
            // ...and the child's interval nests inside the parent's.
            prop_assert!(
                parent.start_ns <= r.start_ns && r.end_ns <= parent.end_ns,
                "{} [{},{}] escapes parent {} [{},{}]",
                r.name, r.start_ns, r.end_ns,
                parent.name, parent.start_ns, parent.end_ns,
            );
        }

        // Walking parent pointers from any span terminates at the root
        // (no cycles, single tree).
        for r in &spans {
            let mut cur = r.span;
            let mut hops = 0;
            while cur != root.span {
                cur = by_span.get(&cur).map(|p| p.parent).unwrap_or(root.span);
                hops += 1;
                prop_assert!(hops <= spans.len(), "parent chain does not terminate");
            }
        }
    }

    /// `traceparent` serialization round-trips arbitrary ids unchanged —
    /// what the HTTP client sends is exactly what the server adopts.
    #[test]
    fn traceparent_round_trips_ids_unchanged(
        hi in 0u64..=u64::MAX,
        lo in 1u64..=u64::MAX,
        span in 1u64..=u64::MAX,
        sampled in prop::bool::ANY,
    ) {
        // The shim proptest has no u128 strategy; splice one from two
        // u64 halves (lo >= 1 keeps the id valid per W3C).
        let trace_id = (u128::from(hi) << 64) | u128::from(lo);
        let ctx = SpanContext { trace: trace_id, span, sampled };
        let header = ctx.to_traceparent();
        let back = SpanContext::parse_traceparent(&header);
        prop_assert_eq!(back, Some(ctx));
    }

    /// A sampled context adopted on another thread tags that thread's
    /// spans with the same unmodified trace id — the fan-out invariant
    /// ShardedIndex workers rely on.
    #[test]
    fn adopted_threads_propagate_the_trace_id(
        workers in 1usize..=4,
        salt in 1u64..=u64::MAX,
    ) {
        trace::init();
        let trace_id = fresh_trace_id(salt);
        let upstream = SpanContext { trace: trace_id, span: 0x77, sampled: true };

        {
            let root = trace::root_from("test.fanout", Some(upstream));
            let ctx = root.context();
            prop_assert!(ctx.is_some());
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(move || {
                        let _adopt = trace::adopt(ctx);
                        let _span = trace::child("worker.op");
                    });
                }
            });
        }

        let spans = spans_of(trace_id);
        let worker_spans = spans.iter().filter(|r| r.name == "worker.op").count();
        prop_assert_eq!(worker_spans, workers, "one span per adopted worker");
        for r in &spans {
            prop_assert_eq!(r.trace, trace_id);
        }
    }
}
