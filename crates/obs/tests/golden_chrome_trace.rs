//! Golden-file test for the Chrome trace-event JSON export: a
//! deterministic span tree rendered through [`chrome_trace_json`] must
//! match `tests/golden_chrome_trace.json` byte-for-byte. Any drift in
//! the event shape — field order, timestamp formatting, id hex widths,
//! args — fails here first, before Perfetto ever sees it.
//!
//! Re-bless after an intentional change:
//! `NNCELL_BLESS=1 cargo test -p nncell-obs --test golden_chrome_trace`

use nncell_obs::{chrome_trace_json, SpanRecord};

/// A miniature request trace shaped like the real server emits: root →
/// queue-wait + parse + handle(shard fan-out → engine) + serialize,
/// with hand-picked timestamps (µs-scale) so every formatting branch
/// (zero duration, sub-µs remainder, args) is exercised.
fn build_fixture() -> String {
    const TRACE: u128 = 0x0123_4567_89ab_cdef_0123_4567_89ab_cdef;
    let spans = [
        SpanRecord::new(TRACE, 0x10, 0x1, "server.request", 1_000, 950_500, 1)
            .with_arg("status", 200),
        SpanRecord::new(TRACE, 0x11, 0x10, "server.queue_wait", 1_000, 40_000, 1),
        SpanRecord::new(TRACE, 0x12, 0x10, "server.parse", 41_000, 42_750, 1),
        SpanRecord::new(TRACE, 0x13, 0x10, "server.handle", 43_000, 900_000, 1),
        SpanRecord::new(TRACE, 0x14, 0x13, "shard.query", 44_000, 400_000, 1)
            .with_arg("shard", 0),
        SpanRecord::new(TRACE, 0x15, 0x14, "engine.query", 45_000, 399_000, 1)
            .with_arg("candidates", 17)
            .with_arg("pages", 3),
        SpanRecord::new(TRACE, 0x16, 0x13, "shard.query", 400_000, 890_000, 1)
            .with_arg("shard", 1),
        SpanRecord::new(TRACE, 0x17, 0x16, "engine.query", 401_000, 889_123, 1)
            .with_arg("candidates", 9)
            .with_arg("pages", 2),
        SpanRecord::new(TRACE, 0x18, 0x10, "server.serialize", 900_100, 900_100, 1),
    ];
    chrome_trace_json(&spans)
}

#[test]
fn chrome_trace_export_matches_golden_file() {
    let got = build_fixture();
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden_chrome_trace.json");
    if std::env::var_os("NNCELL_BLESS").is_some() {
        std::fs::write(&path, &got).expect("bless golden file");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .expect("golden file missing — run with NNCELL_BLESS=1 to create it");
    assert_eq!(
        got, want,
        "Chrome trace-event export drifted from tests/golden_chrome_trace.json;\n\
         if intentional, re-bless with NNCELL_BLESS=1"
    );
}
