//! Property tests for the log2-bucketed histogram: concurrent and
//! per-thread recording must agree exactly with single-threaded
//! recording of the same samples, and nearest-rank percentile estimates
//! must land in the same log2 bucket as the exact sample percentile.

use nncell_obs::{bucket_index, Histogram};
use proptest::prelude::*;

/// Decodes `(shift, offset)` pairs into samples that cluster around
/// power-of-two bucket boundaries, where off-by-one bucketing bugs live.
fn decode_samples(raw: &[(u32, u64)]) -> Vec<u64> {
    raw.iter()
        .map(|&(shift, off)| (1u64 << shift).wrapping_sub(2).wrapping_add(off % 4).wrapping_add(off))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Merging per-thread histogram snapshots is exactly equivalent to
    /// recording every sample into one histogram — counts, sum, and max.
    #[test]
    fn merged_per_thread_histograms_equal_single_threaded(
        raw in prop::collection::vec((0u32..=40, 0u64..=1000), 1..300),
        threads in 1usize..=4,
    ) {
        let samples = decode_samples(&raw);

        // Reference: single-threaded recording of everything.
        let single = Histogram::new();
        for &v in &samples {
            single.record(v);
        }
        let expect = single.snapshot();

        // Per-thread histograms over a round-robin partition, recorded
        // concurrently, then merged.
        let parts: Vec<Histogram> = (0..threads).map(|_| Histogram::new()).collect();
        std::thread::scope(|scope| {
            for (t, hist) in parts.iter().enumerate() {
                let samples = &samples;
                scope.spawn(move || {
                    for v in samples.iter().skip(t).step_by(threads) {
                        hist.record(*v);
                    }
                });
            }
        });
        let mut merged = parts[0].snapshot();
        for h in &parts[1..] {
            merged.merge(&h.snapshot());
        }
        prop_assert_eq!(&merged, &expect);

        // A single histogram shared by all threads must agree too.
        let shared = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..threads {
                let (samples, shared) = (&samples, &shared);
                scope.spawn(move || {
                    for v in samples.iter().skip(t).step_by(threads) {
                        shared.record(*v);
                    }
                });
            }
        });
        prop_assert_eq!(&shared.snapshot(), &expect);
    }

    /// The histogram's nearest-rank percentile falls in the same log2
    /// bucket as the exact nearest-rank sample percentile, i.e. the
    /// estimate is within one bucket of exact.
    #[test]
    fn percentile_estimates_within_one_bucket_of_exact(
        raw in prop::collection::vec((0u32..=40, 0u64..=1000), 1..300),
        qs in prop::collection::vec(0u32..=100, 5),
    ) {
        let mut samples = decode_samples(&raw);
        let hist = Histogram::new();
        for &v in &samples {
            hist.record(v);
        }
        let snap = hist.snapshot();
        samples.sort_unstable();
        let n = samples.len();

        for &qi in &qs {
            let q = qi as f64 / 100.0;
            let est = snap.percentile(q);
            if q >= 1.0 {
                // p100 is the exact max by construction.
                prop_assert_eq!(est, samples[n - 1]);
                continue;
            }
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            let exact = samples[rank - 1];
            prop_assert_eq!(
                bucket_index(est),
                bucket_index(exact),
                "q={} est={} exact={}", q, est, exact
            );
            // And the estimate is the bucket upper bound, so never
            // below the exact value it stands for.
            prop_assert!(est >= exact, "q={} est={} exact={}", q, est, exact);
        }
    }
}
