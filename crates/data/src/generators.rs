//! Synthetic point-set generators.

use nncell_geom::Point;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded generator of point sets in `[0,1]^d`.
pub trait Generator {
    /// Dimensionality of generated points.
    fn dim(&self) -> usize;

    /// Generates `n` points, deterministically for a given `seed`.
    fn generate(&self, n: usize, seed: u64) -> Vec<Point>;
}

/// Rescales every dimension of `points` to span `[0,1]` (no-op for a
/// degenerate dimension).
pub fn normalize_to_unit(points: &mut [Point]) {
    if points.is_empty() {
        return;
    }
    let d = points[0].dim();
    let mut lo = vec![f64::INFINITY; d];
    let mut hi = vec![f64::NEG_INFINITY; d];
    for p in points.iter() {
        for i in 0..d {
            lo[i] = lo[i].min(p[i]);
            hi[i] = hi[i].max(p[i]);
        }
    }
    for p in points.iter_mut() {
        let mut v = p.clone().into_vec();
        for i in 0..d {
            let span = hi[i] - lo[i];
            v[i] = if span > 0.0 {
                (v[i] - lo[i]) / span
            } else {
                0.5
            };
        }
        *p = Point::new(v);
    }
}

/// iid `U[0,1]` per dimension — the paper's synthetic workload.
///
/// As the paper stresses, this is *not* "multidimensionally uniform": in
/// high dimensions the points are effectively sparse.
#[derive(Clone, Debug)]
pub struct UniformGenerator {
    dim: usize,
}

impl UniformGenerator {
    /// A uniform generator in `[0,1]^dim`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0);
        Self { dim }
    }
}

impl Generator for UniformGenerator {
    fn dim(&self) -> usize {
        self.dim
    }

    fn generate(&self, n: usize, seed: u64) -> Vec<Point> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point::new(
                    (0..self.dim)
                        .map(|_| rng.gen_range(0.0..1.0))
                        .collect::<Vec<_>>(),
                )
            })
            .collect()
    }
}

/// A regular multidimensional lattice — the paper's best case, where NN-cell
/// MBRs coincide with the cells and never overlap (figure 2c/d).
///
/// `k^d` grid positions with `k = ⌈n^(1/d)⌉`; the first `n` positions are
/// emitted in row-major order, each optionally jittered by `±jitter/2` of a
/// grid step.
#[derive(Clone, Debug)]
pub struct GridGenerator {
    dim: usize,
    jitter: f64,
}

impl GridGenerator {
    /// An exact lattice.
    pub fn new(dim: usize) -> Self {
        Self::with_jitter(dim, 0.0)
    }

    /// A lattice with relative jitter in `[0,1)` of a grid step.
    pub fn with_jitter(dim: usize, jitter: f64) -> Self {
        assert!(dim > 0);
        assert!((0.0..1.0).contains(&jitter));
        Self { dim, jitter }
    }
}

impl Generator for GridGenerator {
    fn dim(&self) -> usize {
        self.dim
    }

    fn generate(&self, n: usize, seed: u64) -> Vec<Point> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let k = (n as f64).powf(1.0 / self.dim as f64).ceil().max(1.0) as usize;
        let step = 1.0 / k as f64;
        let mut out = Vec::with_capacity(n);
        let mut idx = vec![0usize; self.dim];
        for _ in 0..n {
            let coords: Vec<f64> = idx
                .iter()
                .map(|&i| {
                    let center = (i as f64 + 0.5) * step;
                    if self.jitter > 0.0 {
                        let j = rng.gen_range(-0.5..0.5) * self.jitter * step;
                        (center + j).clamp(0.0, 1.0)
                    } else {
                        center
                    }
                })
                .collect();
            out.push(Point::new(coords));
            // Row-major increment.
            for dimi in (0..self.dim).rev() {
                idx[dimi] += 1;
                if idx[dimi] < k {
                    break;
                }
                idx[dimi] = 0;
            }
        }
        out
    }
}

/// Sparse data: points near the unit-cube diagonal — the paper's worst case,
/// where almost every NN-cell MBR covers almost the whole data space
/// (figure 2e/f).
#[derive(Clone, Debug)]
pub struct SparseGenerator {
    dim: usize,
    spread: f64,
}

impl SparseGenerator {
    /// Diagonal data with default spread 0.02.
    pub fn new(dim: usize) -> Self {
        Self::with_spread(dim, 0.02)
    }

    /// Diagonal data with an explicit per-axis spread.
    pub fn with_spread(dim: usize, spread: f64) -> Self {
        assert!(dim > 0);
        assert!(spread >= 0.0);
        Self { dim, spread }
    }
}

impl Generator for SparseGenerator {
    fn dim(&self) -> usize {
        self.dim
    }

    fn generate(&self, n: usize, seed: u64) -> Vec<Point> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let t: f64 = rng.gen_range(0.0..1.0);
                let coords: Vec<f64> = (0..self.dim)
                    .map(|_| (t + rng.gen_range(-1.0..1.0) * self.spread).clamp(0.0, 1.0))
                    .collect();
                Point::new(coords)
            })
            .collect()
    }
}

/// A Gaussian mixture clipped to the unit cube — the "high clustering of the
/// real data" the paper blames for the Point/Sphere strategies' variance.
#[derive(Clone, Debug)]
pub struct ClusteredGenerator {
    dim: usize,
    clusters: usize,
    sigma: f64,
}

impl ClusteredGenerator {
    /// `clusters` Gaussian blobs of standard deviation `sigma`.
    pub fn new(dim: usize, clusters: usize, sigma: f64) -> Self {
        assert!(dim > 0 && clusters > 0 && sigma > 0.0);
        Self {
            dim,
            clusters,
            sigma,
        }
    }
}

impl Generator for ClusteredGenerator {
    fn dim(&self) -> usize {
        self.dim
    }

    fn generate(&self, n: usize, seed: u64) -> Vec<Point> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let centers: Vec<Vec<f64>> = (0..self.clusters)
            .map(|_| (0..self.dim).map(|_| rng.gen_range(0.15..0.85)).collect())
            .collect();
        (0..n)
            .map(|_| {
                let c = &centers[rng.gen_range(0..self.clusters)];
                let coords: Vec<f64> = c
                    .iter()
                    .map(|&m| (m + gaussian(&mut rng) * self.sigma).clamp(0.0, 1.0))
                    .collect();
                Point::new(coords)
            })
            .collect()
    }
}

/// Standard normal via Box–Muller.
fn gaussian(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_seeded_and_in_bounds() {
        let g = UniformGenerator::new(6);
        let a = g.generate(100, 42);
        let b = g.generate(100, 42);
        let c = g.generate(100, 43);
        assert_eq!(a.len(), 100);
        assert_eq!(a, b, "same seed must reproduce");
        assert_ne!(a, c, "different seeds must differ");
        for p in &a {
            assert_eq!(p.dim(), 6);
            assert!(p.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn uniform_marginals_look_uniform() {
        let g = UniformGenerator::new(3);
        let pts = g.generate(5000, 7);
        for i in 0..3 {
            let mean: f64 = pts.iter().map(|p| p[i]).sum::<f64>() / pts.len() as f64;
            assert!((mean - 0.5).abs() < 0.02, "dim {i} mean {mean}");
        }
    }

    #[test]
    fn grid_is_regular_and_complete() {
        let g = GridGenerator::new(2);
        let pts = g.generate(9, 0);
        // 3x3 grid at {1/6, 3/6, 5/6}²
        let expect = [1.0 / 6.0, 0.5, 5.0 / 6.0];
        for p in &pts {
            assert!(expect.iter().any(|e| (p[0] - e).abs() < 1e-12));
            assert!(expect.iter().any(|e| (p[1] - e).abs() < 1e-12));
        }
        // all distinct
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                assert_ne!(pts[i], pts[j]);
            }
        }
    }

    #[test]
    fn grid_jitter_stays_near_lattice() {
        let g = GridGenerator::with_jitter(2, 0.5);
        let pts = g.generate(16, 3);
        let step = 0.25;
        for p in &pts {
            for i in 0..2 {
                // distance to nearest lattice center < step/2
                let cell = ((p[i] / step) - 0.5).round();
                let center = (cell + 0.5) * step;
                assert!((p[i] - center).abs() <= step * 0.25 + 1e-9);
            }
        }
    }

    #[test]
    fn sparse_hugs_diagonal() {
        let g = SparseGenerator::new(8);
        let pts = g.generate(200, 5);
        for p in &pts {
            let mean: f64 = p.iter().sum::<f64>() / 8.0;
            for v in p.iter() {
                assert!((v - mean).abs() < 0.1, "coordinate far from diagonal");
            }
        }
    }

    #[test]
    fn clustered_points_concentrate() {
        let g = ClusteredGenerator::new(4, 3, 0.03);
        let pts = g.generate(600, 11);
        // Average NN distance must be far below the uniform expectation.
        let mut total = 0.0;
        for (i, p) in pts.iter().enumerate().take(100) {
            let mut best = f64::INFINITY;
            for (j, q) in pts.iter().enumerate() {
                if i != j {
                    best = best.min(nncell_geom::dist_sq(p, q));
                }
            }
            total += best.sqrt();
        }
        let avg_nn = total / 100.0;
        assert!(avg_nn < 0.05, "clusters not tight: {avg_nn}");
    }

    #[test]
    fn normalize_spans_unit_cube() {
        let mut pts = vec![
            Point::new(vec![2.0, -1.0]),
            Point::new(vec![4.0, 3.0]),
            Point::new(vec![3.0, 1.0]),
        ];
        normalize_to_unit(&mut pts);
        assert_eq!(pts[0].as_slice(), &[0.0, 0.0]);
        assert_eq!(pts[1].as_slice(), &[1.0, 1.0]);
        assert_eq!(pts[2].as_slice(), &[0.5, 0.5]);
    }

    #[test]
    fn normalize_handles_degenerate_dimension() {
        let mut pts = vec![Point::new(vec![1.0, 0.0]), Point::new(vec![1.0, 2.0])];
        normalize_to_unit(&mut pts);
        assert_eq!(pts[0][0], 0.5);
        assert_eq!(pts[1][0], 0.5);
    }
}
