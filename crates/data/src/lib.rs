//! Workload generators for the NN-cell experiments.
//!
//! The paper evaluates on (a) iid-uniform synthetic data of 4–16 dimensions
//! and (b) a real database of 8-dimensional Fourier points. It additionally
//! discusses three illustrative distributions (figure 2): iid uniform,
//! *regular multidimensional* uniform (a grid — the approach's best case),
//! and *sparse* data (the worst case). This crate generates all of them,
//! fully seeded:
//!
//! * [`UniformGenerator`] — iid `U[0,1]` per dimension,
//! * [`GridGenerator`] — a regular lattice (optionally jittered),
//! * [`SparseGenerator`] — points hugging the unit-cube diagonal, so every
//!   NN-cell MBR degenerates toward the whole data space,
//! * [`ClusteredGenerator`] — a Gaussian mixture clipped to the cube,
//! * [`FourierGenerator`] — DFT coefficients of smooth seeded random-walk
//!   signals, the documented substitution for the paper's proprietary
//!   Fourier dataset (clustered, correlated, decaying per-axis variance),
//! * [`ColorHistogramGenerator`] — simplex-bound color histograms (\[SH 94\],
//!   the paper's other marquee feature type).

pub mod fourier;
pub mod generators;
pub mod histogram;

pub use fourier::FourierGenerator;
pub use generators::{
    normalize_to_unit, ClusteredGenerator, Generator, GridGenerator, SparseGenerator,
    UniformGenerator,
};
pub use histogram::ColorHistogramGenerator;
