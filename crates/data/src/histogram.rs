//! Synthetic color-histogram feature vectors.
//!
//! Color histograms are the paper's other marquee feature type (\[SH 94\],
//! "Efficient Color Histogram Indexing"). A `d`-bin histogram is simulated
//! by rendering an "image" as a mixture of a few dominant colors plus
//! noise, binning, and normalizing — producing vectors on the probability
//! simplex: non-negative, summing to 1, strongly anti-correlated across
//! bins, sparse in most bins. That geometry (points on a `(d−1)`-simplex
//! inside `[0,1]^d`) is a realistic stress case for the NN-cell approach:
//! the data lies on a lower-dimensional manifold, like the paper's "sparse"
//! worst case but curved.

use crate::generators::Generator;
use nncell_geom::Point;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generator of `d`-bin color histograms.
#[derive(Clone, Debug)]
pub struct ColorHistogramGenerator {
    bins: usize,
    palettes: usize,
    dominant: usize,
}

impl ColorHistogramGenerator {
    /// Histograms over `bins` colors with 16 palette families of 3 dominant
    /// colors each.
    pub fn new(bins: usize) -> Self {
        Self::with_params(bins, 16, 3)
    }

    /// Full control over the family structure.
    ///
    /// # Panics
    /// Panics when `dominant` exceeds `bins` or anything is zero.
    pub fn with_params(bins: usize, palettes: usize, dominant: usize) -> Self {
        assert!(bins > 0 && palettes > 0 && dominant > 0);
        assert!(dominant <= bins, "more dominant colors than bins");
        Self {
            bins,
            palettes,
            dominant,
        }
    }
}

impl Generator for ColorHistogramGenerator {
    fn dim(&self) -> usize {
        self.bins
    }

    fn generate(&self, n: usize, seed: u64) -> Vec<Point> {
        let mut rng = SmallRng::seed_from_u64(seed);
        // Each palette: dominant bins and their mixture weights.
        let palettes: Vec<(Vec<usize>, Vec<f64>)> = (0..self.palettes)
            .map(|_| {
                let mut bins: Vec<usize> = Vec::new();
                while bins.len() < self.dominant {
                    let b = rng.gen_range(0..self.bins);
                    if !bins.contains(&b) {
                        bins.push(b);
                    }
                }
                let raw: Vec<f64> = (0..self.dominant)
                    .map(|_| rng.gen_range(0.5..1.0))
                    .collect();
                let total: f64 = raw.iter().sum();
                (bins, raw.into_iter().map(|w| w / total).collect())
            })
            .collect();

        (0..n)
            .map(|_| {
                let (bins, weights) = &palettes[rng.gen_range(0..self.palettes)];
                let mut h = vec![0.0f64; self.bins];
                // Dominant mass with per-image variation.
                for (b, w) in bins.iter().zip(weights.iter()) {
                    h[*b] = w * rng.gen_range(0.7..1.3);
                }
                // Background noise over all bins (≈10% of the mass).
                for v in h.iter_mut() {
                    *v += rng.gen_range(0.0..0.1 / self.bins as f64);
                }
                let total: f64 = h.iter().sum();
                for v in h.iter_mut() {
                    *v /= total;
                }
                Point::new(h)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histograms_live_on_the_simplex() {
        let g = ColorHistogramGenerator::new(8);
        let pts = g.generate(200, 3);
        for p in &pts {
            assert_eq!(p.dim(), 8);
            let sum: f64 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "not normalized: {sum}");
            assert!(p.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn deterministic() {
        let g = ColorHistogramGenerator::new(6);
        assert_eq!(g.generate(50, 9), g.generate(50, 9));
        assert_ne!(g.generate(50, 9), g.generate(50, 10));
    }

    #[test]
    fn mass_concentrates_on_dominant_bins() {
        let g = ColorHistogramGenerator::with_params(16, 4, 3);
        let pts = g.generate(100, 5);
        for p in &pts {
            let mut v: Vec<f64> = p.to_vec();
            v.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let top3: f64 = v[..3].iter().sum();
            assert!(top3 > 0.6, "dominant colors must carry the mass: {top3}");
        }
    }

    #[test]
    fn palette_families_cluster() {
        let g = ColorHistogramGenerator::with_params(12, 3, 3);
        let pts = g.generate(300, 6);
        // Average NN distance far below random-simplex scale.
        let mut total = 0.0;
        for (i, p) in pts.iter().enumerate().take(60) {
            let mut best = f64::INFINITY;
            for (j, q) in pts.iter().enumerate() {
                if i != j {
                    best = best.min(nncell_geom::dist_sq(p, q));
                }
            }
            total += best.sqrt();
        }
        assert!(total / 60.0 < 0.1, "families must cluster");
    }

    #[test]
    #[should_panic(expected = "more dominant colors than bins")]
    fn too_many_dominant_rejected() {
        let _ = ColorHistogramGenerator::with_params(2, 1, 3);
    }
}
