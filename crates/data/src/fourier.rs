//! Synthetic Fourier feature vectors.
//!
//! The paper's real workload is a database of 8-dimensional "Fourier points"
//! (Fourier coefficients of CAD/multimedia contours). That dataset is not
//! available, so — per the substitution policy in DESIGN.md — we synthesize
//! feature vectors the same way such datasets were built: take a smooth
//! seeded random signal, compute its discrete Fourier transform, and keep
//! the first `d/2` complex coefficients (real and imaginary parts
//! interleaved). The resulting vectors share the properties the paper
//! attributes to its real data: strong clustering, correlated dimensions,
//! and per-axis variance that decays with the coefficient index.

use crate::generators::{normalize_to_unit, Generator};
use nncell_geom::Point;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generator of DFT-coefficient feature vectors in `[0,1]^d` (normalized per
/// dimension across the generated set).
#[derive(Clone, Debug)]
pub struct FourierGenerator {
    dim: usize,
    signal_len: usize,
    families: usize,
}

impl FourierGenerator {
    /// Feature vectors of dimension `dim` (paper: 8) from length-64 signals
    /// drawn from 8 signal families.
    pub fn new(dim: usize) -> Self {
        Self::with_params(dim, 64, 8)
    }

    /// Full control: `signal_len` samples per signal, `families` distinct
    /// signal prototypes (each family is one cluster in feature space).
    pub fn with_params(dim: usize, signal_len: usize, families: usize) -> Self {
        assert!(dim > 0 && signal_len >= dim && families > 0);
        Self {
            dim,
            signal_len,
            families,
        }
    }

    /// A smooth prototype signal for family `f`: a low-order random Fourier
    /// series, so family members differ by small perturbations only.
    fn prototype(&self, rng: &mut SmallRng) -> Vec<f64> {
        let l = self.signal_len;
        let orders = 4;
        let coefs: Vec<(f64, f64)> = (0..orders)
            .map(|k| {
                let scale = 1.0 / (k + 1) as f64;
                (
                    rng.gen_range(-1.0..1.0) * scale,
                    rng.gen_range(-1.0..1.0) * scale,
                )
            })
            .collect();
        (0..l)
            .map(|t| {
                let x = t as f64 / l as f64 * std::f64::consts::TAU;
                coefs
                    .iter()
                    .enumerate()
                    .map(|(k, (a, b))| {
                        a * ((k + 1) as f64 * x).cos() + b * ((k + 1) as f64 * x).sin()
                    })
                    .sum()
            })
            .collect()
    }
}

impl Generator for FourierGenerator {
    fn dim(&self) -> usize {
        self.dim
    }

    fn generate(&self, n: usize, seed: u64) -> Vec<Point> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let prototypes: Vec<Vec<f64>> = (0..self.families)
            .map(|_| self.prototype(&mut rng))
            .collect();
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            // Perturb a random prototype with smooth noise + a random walk.
            let proto = &prototypes[rng.gen_range(0..self.families)];
            let mut signal = proto.clone();
            let mut walk = 0.0;
            for s in signal.iter_mut() {
                walk += rng.gen_range(-0.05..0.05);
                *s += walk;
            }
            out.push(Point::new(dft_features(&signal, self.dim)));
        }
        normalize_to_unit(&mut out);
        out
    }
}

/// First `dim` DFT features of `signal`: real and imaginary parts of
/// coefficients `1, 2, …` interleaved (coefficient 0, the mean, is skipped —
/// shape descriptors are translation-invariant).
pub fn dft_features(signal: &[f64], dim: usize) -> Vec<f64> {
    let l = signal.len() as f64;
    let mut out = Vec::with_capacity(dim);
    let mut k = 1usize;
    while out.len() < dim {
        let (mut re, mut im) = (0.0, 0.0);
        for (t, &s) in signal.iter().enumerate() {
            let ang = std::f64::consts::TAU * k as f64 * t as f64 / l;
            re += s * ang.cos();
            im -= s * ang.sin();
        }
        out.push(re / l);
        if out.len() < dim {
            out.push(im / l);
        }
        k += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_unit_cube() {
        let g = FourierGenerator::new(8);
        let a = g.generate(300, 5);
        let b = g.generate(300, 5);
        assert_eq!(a, b);
        for p in &a {
            assert_eq!(p.dim(), 8);
            assert!(p.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn dft_of_pure_cosine_concentrates_on_its_coefficient() {
        // signal = cos(2π·2t/L) → coefficient k=2 has re≈1/2, everything
        // else ≈0.
        let l = 32;
        let signal: Vec<f64> = (0..l)
            .map(|t| (std::f64::consts::TAU * 2.0 * t as f64 / l as f64).cos())
            .collect();
        let f = dft_features(&signal, 8);
        // features: [re1, im1, re2, im2, re3, im3, re4, im4]
        assert!(f[0].abs() < 1e-9 && f[1].abs() < 1e-9);
        assert!((f[2] - 0.5).abs() < 1e-9, "re2 = {}", f[2]);
        assert!(f[3].abs() < 1e-9);
        assert!(f[4].abs() < 1e-9 && f[5].abs() < 1e-9);
    }

    #[test]
    fn fourier_data_is_clustered() {
        let g = FourierGenerator::new(8);
        let pts = g.generate(400, 9);
        let mut total = 0.0;
        for (i, p) in pts.iter().enumerate().take(80) {
            let mut best = f64::INFINITY;
            for (j, q) in pts.iter().enumerate() {
                if i != j {
                    best = best.min(nncell_geom::dist_sq(p, q));
                }
            }
            total += best.sqrt();
        }
        let avg_nn = total / 80.0;
        // Uniform 8-d data at N=400 has expected NN distance ≈ 0.4; the
        // Fourier families must be far tighter.
        assert!(avg_nn < 0.2, "not clustered: avg NN dist {avg_nn}");
    }

    #[test]
    fn variance_decays_with_coefficient_index() {
        let g = FourierGenerator::with_params(8, 64, 4);
        let mut pts = g.generate(500, 2);
        // Undo the per-axis normalization effect by inspecting raw features.
        // Regenerate raw (unnormalized) features directly:
        let mut rng = rand::rngs::SmallRng::seed_from_u64(123);
        let mut raw: Vec<Vec<f64>> = Vec::new();
        for _ in 0..500 {
            let signal: Vec<f64> = {
                let mut w = 0.0;
                (0..64)
                    .map(|t| {
                        w += rng.gen_range(-0.05..0.05);
                        (std::f64::consts::TAU * t as f64 / 64.0).cos() + w
                    })
                    .collect()
            };
            raw.push(dft_features(&signal, 8));
        }
        let var = |k: usize| {
            let m: f64 = raw.iter().map(|p| p[k]).sum::<f64>() / raw.len() as f64;
            raw.iter().map(|p| (p[k] - m).powi(2)).sum::<f64>() / raw.len() as f64
        };
        // Higher coefficients of a smooth signal carry less energy.
        assert!(var(0) + var(1) > var(6) + var(7));
        let _ = &mut pts;
    }
}
