//! Property-based tests of the tree core: after arbitrary insert/delete
//! sequences, queries must match brute force and structural invariants must
//! hold, for both split policies.

use nncell_geom::{dist_sq, Mbr};
use nncell_index::{SplitPolicy, Tree, TreeConfig};
use proptest::prelude::*;

fn coord() -> impl Strategy<Value = f64> {
    (0..=1000u32).prop_map(|v| v as f64 / 1000.0)
}

fn points(d: usize, max: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(coord(), d), 1..max)
}

fn build(policy: SplitPolicy, d: usize, pts: &[Vec<f64>]) -> Tree {
    let cfg = match policy {
        SplitPolicy::RStar => TreeConfig::rstar(d),
        SplitPolicy::XTree => TreeConfig::xtree(d),
    }
    .with_point_leaves(true)
    .with_block_size(256); // tiny pages → real tree depth at test sizes
    let mut t = Tree::new(cfg);
    for (i, p) in pts.iter().enumerate() {
        t.insert(Mbr::from_point(p), i as u64);
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn nn_matches_scan(pts in points(3, 80), q in prop::collection::vec(coord(), 3)) {
        for policy in [SplitPolicy::RStar, SplitPolicy::XTree] {
            let t = build(policy, 3, &pts);
            t.validate();
            let scan = (0..pts.len())
                .min_by(|&a, &b| dist_sq(&q, &pts[a]).partial_cmp(&dist_sq(&q, &pts[b])).unwrap())
                .unwrap();
            let bf = t.nn_best_first(&q).unwrap();
            let bb = t.nn_branch_bound(&q).unwrap();
            let scan_d = dist_sq(&q, &pts[scan]).sqrt();
            prop_assert!((bf.dist - scan_d).abs() < 1e-9, "{policy:?} best-first distance");
            prop_assert!((bb.dist - scan_d).abs() < 1e-9, "{policy:?} branch-bound distance");
        }
    }

    #[test]
    fn window_query_matches_scan(pts in points(2, 100), a in prop::collection::vec(coord(), 2), b in prop::collection::vec(coord(), 2)) {
        let lo: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x.min(*y)).collect();
        let hi: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x.max(*y)).collect();
        let w = Mbr::new(lo, hi);
        for policy in [SplitPolicy::RStar, SplitPolicy::XTree] {
            let t = build(policy, 2, &pts);
            let mut got = t.window_query(&w);
            got.sort_unstable();
            let mut want: Vec<u64> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| w.contains_point(p))
                .map(|(i, _)| i as u64)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want, "{:?}", policy);
        }
    }

    #[test]
    fn interleaved_insert_delete_consistent(
        pts in points(2, 60),
        dels in prop::collection::vec(0usize..60, 0..30),
    ) {
        for policy in [SplitPolicy::RStar, SplitPolicy::XTree] {
            let mut t = build(policy, 2, &pts);
            let mut live: Vec<bool> = vec![true; pts.len()];
            for &k in &dels {
                let id = k % pts.len();
                let expect = live[id];
                let did = t.delete(&Mbr::from_point(&pts[id]), id as u64);
                prop_assert_eq!(did, expect, "{:?}: delete({}) mismatch", policy, id);
                live[id] = false;
            }
            t.validate();
            // Every live point findable, every dead point gone.
            for (i, p) in pts.iter().enumerate() {
                let hits = t.point_query(p);
                prop_assert_eq!(hits.contains(&(i as u64)), live[i], "{:?}: point {}", policy, i);
            }
            // NN over survivors still exact.
            if live.iter().any(|l| *l) {
                let q = [0.31, 0.62];
                let scan = (0..pts.len())
                    .filter(|&i| live[i])
                    .min_by(|&a, &b| dist_sq(&q, &pts[a]).partial_cmp(&dist_sq(&q, &pts[b])).unwrap())
                    .unwrap();
                let nn = t.nn_best_first(&q).unwrap();
                prop_assert!((nn.dist - dist_sq(&q, &pts[scan]).sqrt()).abs() < 1e-9);
            } else {
                prop_assert!(t.nn_best_first(&[0.5, 0.5]).is_none());
            }
        }
    }

    #[test]
    fn box_inserts_point_query_matches_scan(
        boxes in prop::collection::vec((prop::collection::vec(coord(), 2), prop::collection::vec(coord(), 2)), 1..60),
        q in prop::collection::vec(coord(), 2),
    ) {
        let mbrs: Vec<Mbr> = boxes
            .iter()
            .map(|(a, b)| {
                let lo: Vec<f64> = a.iter().zip(b).map(|(x, y)| x.min(*y)).collect();
                let hi: Vec<f64> = a.iter().zip(b).map(|(x, y)| x.max(*y)).collect();
                Mbr::new(lo, hi)
            })
            .collect();
        let mut t = Tree::new(TreeConfig::xtree(2).with_block_size(256));
        for (i, m) in mbrs.iter().enumerate() {
            t.insert(m.clone(), i as u64);
        }
        t.validate();
        let mut got = t.point_query(&q);
        got.sort_unstable();
        let mut want: Vec<u64> = mbrs
            .iter()
            .enumerate()
            .filter(|(_, m)| m.contains_point(&q))
            .map(|(i, _)| i as u64)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
