//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! Building a tree by repeated insertion costs `O(N log N)` page touches and
//! produces overlap that queries pay for forever. STR packing (Leutenegger
//! et al., ICDE 1997 — contemporary with the paper) sorts the entries into
//! `⌈N/c⌉^(1/d)` vertical slices per dimension, recursively, and emits fully
//! packed, near-overlap-free leaves bottom-up. Both tree flavours accept the
//! result; the overflow policy only matters for later dynamic inserts.

use crate::config::TreeConfig;
use crate::node::{Entry, ItemId, Node, PageId};
use crate::tree::Tree;
use nncell_geom::Mbr;

/// Bulk-loads `items` into a fresh tree with STR packing.
///
/// `fill` in `(0,1]` is the target node-fill fraction (1.0 = fully packed;
/// the R\*-tree literature recommends ~0.7 for update-heavy workloads so
/// early inserts don't split every touched node).
///
/// # Panics
/// Panics on an empty `items` slice, mismatched dimensionality, or a `fill`
/// outside `(0,1]`.
pub fn bulk_load(cfg: TreeConfig, items: Vec<(Mbr, ItemId)>, fill: f64) -> Tree {
    assert!(!items.is_empty(), "bulk_load needs at least one item");
    assert!(fill > 0.0 && fill <= 1.0, "fill must be in (0,1]");
    let dim = cfg.dim;
    for (m, _) in &items {
        assert_eq!(m.dim(), dim, "item dimensionality mismatch");
    }

    let mut tree = Tree::new(cfg.clone());
    let leaf_cap = ((cfg.max_leaf_entries() as f64 * fill) as usize).max(1);
    let dir_cap = ((cfg.max_dir_entries() as f64 * fill) as usize).max(2);

    // Level 0: pack the items into leaves.
    let entries: Vec<Entry> = items
        .into_iter()
        .map(|(m, id)| Entry::item(m, id))
        .collect();
    let mut level_nodes: Vec<(Mbr, PageId)> = str_pack(entries, dim, leaf_cap)
        .into_iter()
        .map(|group| {
            let mbr = Mbr::union_all(group.iter().map(|e| &e.mbr)).expect("non-empty group");
            let mut node = Node::new(0);
            node.entries = group;
            (mbr, tree.adopt_node(node))
        })
        .collect();

    // Upper levels until one root remains.
    let mut level = 1u32;
    while level_nodes.len() > 1 {
        let entries: Vec<Entry> = level_nodes
            .into_iter()
            .map(|(mbr, id)| Entry::child(mbr, id))
            .collect();
        level_nodes = str_pack(entries, dim, dir_cap)
            .into_iter()
            .map(|group| {
                let mbr = Mbr::union_all(group.iter().map(|e| &e.mbr)).expect("non-empty group");
                let mut node = Node::new(level);
                node.entries = group;
                (mbr, tree.adopt_node(node))
            })
            .collect();
        level += 1;
    }
    let (_, root) = level_nodes.pop().expect("exactly one root");
    tree.adopt_root(root);
    tree
}

/// Recursive STR tiling: slice along the first dimension into
/// `⌈(N/c)^(1/d)⌉` runs by center coordinate, recurse on the remaining
/// dimensions, emit runs of ≤ `cap` entries.
fn str_pack(mut entries: Vec<Entry>, dims_left: usize, cap: usize) -> Vec<Vec<Entry>> {
    let n = entries.len();
    if n <= cap {
        return vec![entries];
    }
    if dims_left <= 1 {
        sort_by_center(&mut entries, 0);
        return entries.chunks(cap).map(|c| c.to_vec()).collect();
    }
    let n_groups = (n as f64 / cap as f64).ceil();
    let slices = n_groups.powf(1.0 / dims_left as f64).ceil() as usize;
    let axis = entries[0].mbr.dim() - dims_left;
    sort_by_center(&mut entries, axis);
    let per_slice = n.div_ceil(slices.max(1));
    let mut out = Vec::new();
    while !entries.is_empty() {
        let take = per_slice.min(entries.len());
        let rest = entries.split_off(take);
        let slice = std::mem::replace(&mut entries, rest);
        out.extend(str_pack_inner(slice, dims_left - 1, cap, axis + 1));
    }
    out
}

/// Inner recursion keeps slicing along successive axes.
fn str_pack_inner(
    mut entries: Vec<Entry>,
    dims_left: usize,
    cap: usize,
    axis: usize,
) -> Vec<Vec<Entry>> {
    let n = entries.len();
    if n <= cap {
        return vec![entries];
    }
    if dims_left == 0 || axis >= entries[0].mbr.dim() {
        return entries.chunks(cap).map(|c| c.to_vec()).collect();
    }
    let n_groups = (n as f64 / cap as f64).ceil();
    let slices = n_groups.powf(1.0 / dims_left as f64).ceil() as usize;
    sort_by_center(&mut entries, axis);
    let per_slice = n.div_ceil(slices.max(1));
    let mut out = Vec::new();
    while !entries.is_empty() {
        let take = per_slice.min(entries.len());
        let rest = entries.split_off(take);
        let slice = std::mem::replace(&mut entries, rest);
        out.extend(str_pack_inner(slice, dims_left - 1, cap, axis + 1));
    }
    out
}

fn sort_by_center(entries: &mut [Entry], axis: usize) {
    entries.sort_by(|a, b| {
        let ca = a.mbr.lo()[axis] + a.mbr.hi()[axis];
        let cb = b.mbr.lo()[axis] + b.mbr.hi()[axis];
        ca.total_cmp(&cb)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use nncell_geom::dist_sq;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn points(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect()
    }

    fn items(pts: &[Vec<f64>]) -> Vec<(Mbr, ItemId)> {
        pts.iter()
            .enumerate()
            .map(|(i, p)| (Mbr::from_point(p), i as ItemId))
            .collect()
    }

    #[test]
    fn bulk_load_preserves_all_items_and_invariants() {
        let pts = points(777, 3, 1);
        let cfg = TreeConfig::xtree(3)
            .with_point_leaves(true)
            .with_block_size(512);
        let t = bulk_load(cfg, items(&pts), 1.0);
        assert_eq!(t.len(), 777);
        t.validate();
        for (i, p) in pts.iter().enumerate() {
            assert!(t.point_query(p).contains(&(i as u64)), "lost item {i}");
        }
    }

    #[test]
    fn bulk_loaded_nn_matches_scan() {
        let pts = points(400, 4, 2);
        let cfg = TreeConfig::rstar(4).with_point_leaves(true);
        let t = bulk_load(cfg, items(&pts), 0.7);
        let qs = points(40, 4, 3);
        for q in &qs {
            let scan = (0..pts.len())
                .min_by(|&a, &b| {
                    dist_sq(q, &pts[a])
                        .partial_cmp(&dist_sq(q, &pts[b]))
                        .unwrap()
                })
                .unwrap();
            assert_eq!(t.nn_best_first(q).unwrap().id, scan as u64);
        }
    }

    #[test]
    fn bulk_load_reads_fewer_pages_than_insert_build() {
        let pts = points(1500, 6, 4);
        let cfg = TreeConfig::rstar(6)
            .with_point_leaves(true)
            .with_block_size(512);
        let bulk = bulk_load(cfg.clone(), items(&pts), 1.0);
        let mut incr = Tree::new(cfg);
        for (i, p) in pts.iter().enumerate() {
            incr.insert(Mbr::from_point(p), i as u64);
        }
        // Packed trees occupy fewer pages ...
        assert!(bulk.total_pages() <= incr.total_pages());
        // ... and window queries touch fewer of them.
        bulk.reset_stats();
        incr.reset_stats();
        let w = Mbr::new(vec![0.2; 6], vec![0.5; 6]);
        let a = bulk.window_query(&w);
        let b = incr.window_query(&w);
        assert_eq!(
            {
                let mut a = a;
                a.sort_unstable();
                a
            },
            {
                let mut b = b;
                b.sort_unstable();
                b
            }
        );
        assert!(
            bulk.stats().page_reads <= incr.stats().page_reads,
            "packed tree must not read more pages ({} vs {})",
            bulk.stats().page_reads,
            incr.stats().page_reads
        );
    }

    #[test]
    fn bulk_load_supports_dynamic_inserts_afterwards() {
        let pts = points(300, 2, 5);
        let cfg = TreeConfig::xtree(2)
            .with_point_leaves(true)
            .with_block_size(512);
        let mut t = bulk_load(cfg, items(&pts), 0.7);
        let extra = points(100, 2, 6);
        for (i, p) in extra.iter().enumerate() {
            t.insert(Mbr::from_point(p), (300 + i) as u64);
        }
        t.validate();
        assert_eq!(t.len(), 400);
        for (i, p) in extra.iter().enumerate() {
            assert!(t.point_query(p).contains(&((300 + i) as u64)));
        }
    }

    #[test]
    fn single_item_bulk_load() {
        let cfg = TreeConfig::rstar(2).with_point_leaves(true);
        let t = bulk_load(cfg, vec![(Mbr::from_point(&[0.5, 0.5]), 9)], 1.0);
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
        assert_eq!(t.nn_best_first(&[0.0, 0.0]).unwrap().id, 9);
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn empty_bulk_load_rejected() {
        let _ = bulk_load(TreeConfig::rstar(2), vec![], 1.0);
    }
}
